//! Online batch/memory-space auto-tuner.
//!
//! The paper's fig1 ladder hard-codes its best operating point (batch
//! size and number of CUDA memory spaces) from offline sweeps. The
//! [`AutoTuner`] rediscovers that point online: it probes candidate
//! `(batch, spaces)` configurations through a caller-supplied measure
//! function (an epoch of the live pipeline, or a modeled run of it),
//! reads back throughput and p99 latency, and hill-climbs the
//! two-dimensional grid until no neighbor is meaningfully better.
//!
//! The climb is deterministic: the grids are fixed, neighbors are
//! probed in a fixed order, results are cached so a configuration is
//! measured at most once, and a move requires a relative throughput
//! gain above [`AutoTuner::min_gain`] — so the trajectory (and thus the
//! converged configuration) is a pure function of the measure function.

use std::collections::HashMap;
use std::sync::Arc;

use telemetry::SchedCounters;

/// What one measurement epoch observed at a candidate configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochMeasure {
    /// Items (or batches) per modeled second — the objective.
    pub throughput: f64,
    /// 99th-percentile per-batch latency, modeled ns (reported in the
    /// trajectory; a tie on throughput breaks toward lower p99).
    pub p99_ns: u64,
}

/// One probe in the tuner's trajectory.
#[derive(Clone, Copy, Debug)]
pub struct TuneStep {
    /// Which climb epoch this probe belongs to (0 = the starting point).
    pub epoch: usize,
    /// Candidate batch size.
    pub batch_size: usize,
    /// Candidate memory-space count.
    pub mem_spaces: usize,
    /// What the epoch measured there.
    pub measure: EpochMeasure,
    /// Whether the tuner moved to this configuration.
    pub accepted: bool,
}

/// Where the tuner converged, with the full audit trail.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Converged batch size.
    pub batch_size: usize,
    /// Converged memory-space count.
    pub mem_spaces: usize,
    /// Measurement at the converged configuration.
    pub measure: EpochMeasure,
    /// Every probe, in order (cache hits are not re-recorded).
    pub trajectory: Vec<TuneStep>,
    /// Climb epochs consumed (accepted moves + the final rejected round).
    pub epochs: usize,
}

/// Greedy cached hill-climber over the batch × memory-space grid.
pub struct AutoTuner {
    batch_grid: Vec<usize>,
    spaces_grid: Vec<usize>,
    start: (usize, usize),
    min_gain: f64,
    max_epochs: usize,
    counters: Option<Arc<SchedCounters>>,
}

impl AutoTuner {
    /// Tuner over the default grids: batch sizes are powers of two in
    /// `4..=128`, memory spaces in `{1, 2, 4, 8}`, starting from the
    /// naive corner `(4, 1)` — deliberately far from the paper's
    /// hand-picked optimum so convergence is earned, not seeded.
    pub fn new() -> Self {
        AutoTuner {
            batch_grid: vec![4, 8, 16, 32, 64, 128],
            spaces_grid: vec![1, 2, 4, 8],
            start: (0, 0),
            min_gain: 0.01,
            max_epochs: 32,
            counters: None,
        }
    }

    /// Replace the search grids. `start` indexes into the new grids.
    ///
    /// # Panics
    /// Panics if either grid is empty or `start` is out of range.
    pub fn with_grids(
        mut self,
        batch_grid: Vec<usize>,
        spaces_grid: Vec<usize>,
        start: (usize, usize),
    ) -> Self {
        assert!(
            !batch_grid.is_empty() && !spaces_grid.is_empty(),
            "grids must be non-empty"
        );
        assert!(
            start.0 < batch_grid.len() && start.1 < spaces_grid.len(),
            "start out of range"
        );
        self.batch_grid = batch_grid;
        self.spaces_grid = spaces_grid;
        self.start = start;
        self
    }

    /// Minimum relative throughput gain required to accept a move
    /// (default 1%). A dead-band keeps the controller from chattering
    /// between statistically identical neighbors.
    pub fn min_gain(mut self, gain: f64) -> Self {
        self.min_gain = gain;
        self
    }

    /// Count accepted moves as retunes on `counters` (the scheduler's
    /// counter block, so `hetstream_sched_retunes_total` tracks them).
    pub fn with_counters(mut self, counters: Arc<SchedCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Climb until converged (no neighbor clears the dead-band) or the
    /// epoch budget runs out. `probe(batch, spaces)` runs one
    /// measurement epoch at a candidate configuration and reports what
    /// it saw; each configuration is probed at most once.
    pub fn run(&self, mut probe: impl FnMut(usize, usize) -> EpochMeasure) -> TuneOutcome {
        let mut cache: HashMap<(usize, usize), EpochMeasure> = HashMap::new();
        let mut trajectory = Vec::new();
        let (mut bi, mut si) = self.start;
        let mut epoch = 0usize;
        let mut measure_at = |bi: usize,
                              si: usize,
                              epoch: usize,
                              trajectory: &mut Vec<TuneStep>,
                              cache: &mut HashMap<(usize, usize), EpochMeasure>|
         -> EpochMeasure {
            if let Some(&m) = cache.get(&(bi, si)) {
                return m;
            }
            let m = probe(self.batch_grid[bi], self.spaces_grid[si]);
            cache.insert((bi, si), m);
            trajectory.push(TuneStep {
                epoch,
                batch_size: self.batch_grid[bi],
                mem_spaces: self.spaces_grid[si],
                measure: m,
                accepted: false,
            });
            m
        };
        let mut current = measure_at(bi, si, epoch, &mut trajectory, &mut cache);
        if let Some(step) = trajectory.last_mut() {
            step.accepted = true;
        }
        loop {
            epoch += 1;
            if epoch > self.max_epochs {
                break;
            }
            // Probe the four grid neighbors in a fixed order.
            let mut neighbors = Vec::with_capacity(4);
            if bi + 1 < self.batch_grid.len() {
                neighbors.push((bi + 1, si));
            }
            if bi > 0 {
                neighbors.push((bi - 1, si));
            }
            if si + 1 < self.spaces_grid.len() {
                neighbors.push((bi, si + 1));
            }
            if si > 0 {
                neighbors.push((bi, si - 1));
            }
            let mut best: Option<(usize, usize, EpochMeasure)> = None;
            for (nb, ns) in neighbors {
                let m = measure_at(nb, ns, epoch, &mut trajectory, &mut cache);
                let better = match best {
                    None => true,
                    Some((_, _, bm)) => {
                        m.throughput > bm.throughput
                            || (m.throughput == bm.throughput && m.p99_ns < bm.p99_ns)
                    }
                };
                if better {
                    best = Some((nb, ns, m));
                }
            }
            let Some((nb, ns, m)) = best else { break };
            if m.throughput <= current.throughput * (1.0 + self.min_gain) {
                break; // converged: no neighbor clears the dead-band
            }
            (bi, si) = (nb, ns);
            current = m;
            if let Some(step) = trajectory.iter_mut().rev().find(|s| {
                s.batch_size == self.batch_grid[bi] && s.mem_spaces == self.spaces_grid[si]
            }) {
                step.accepted = true;
            }
            if let Some(c) = &self.counters {
                c.retune();
            }
        }
        TuneOutcome {
            batch_size: self.batch_grid[bi],
            mem_spaces: self.spaces_grid[si],
            measure: current,
            trajectory,
            epochs: epoch,
        }
    }
}

impl Default for AutoTuner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth unimodal landscape peaking at (32, 4) — the shape of the
    /// paper's fig1 sweep (throughput rises with batch until launch
    /// overhead amortizes, then transfer serialization bites; spaces
    /// help until occupancy saturates).
    fn fig1_like(batch: usize, spaces: usize) -> EpochMeasure {
        let b = batch as f64;
        let s = spaces as f64;
        let batch_term = -((b.log2() - 5.0).powi(2)); // peak at 32
        let space_term = -((s.log2() - 2.0).powi(2)); // peak at 4
        EpochMeasure {
            throughput: 100.0 + 10.0 * batch_term + 6.0 * space_term,
            p99_ns: (1_000.0 * b) as u64,
        }
    }

    #[test]
    fn climbs_to_the_peak_from_the_naive_corner() {
        let out = AutoTuner::new().run(fig1_like);
        assert_eq!((out.batch_size, out.mem_spaces), (32, 4), "{out:?}");
        assert!(out.epochs <= 10, "should converge quickly: {}", out.epochs);
    }

    #[test]
    fn caches_probes_and_is_deterministic() {
        let mut calls_a = Vec::new();
        let a = AutoTuner::new().run(|b, s| {
            calls_a.push((b, s));
            fig1_like(b, s)
        });
        let mut calls_b = Vec::new();
        let b = AutoTuner::new().run(|b, s| {
            calls_b.push((b, s));
            fig1_like(b, s)
        });
        assert_eq!(calls_a, calls_b, "probe order must be deterministic");
        assert_eq!(a.batch_size, b.batch_size);
        assert_eq!(a.mem_spaces, b.mem_spaces);
        // Caching: never more probes than grid cells.
        assert!(calls_a.len() <= 24, "cached probes: {}", calls_a.len());
        let mut sorted = calls_a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), calls_a.len(), "no config probed twice");
    }

    #[test]
    fn dead_band_rejects_noise_sized_gains() {
        // Flat landscape with a 0.5% bump one step away: below the 1%
        // dead-band, so the tuner must stay put.
        let out = AutoTuner::new().run(|b, _| EpochMeasure {
            throughput: if b == 8 { 100.5 } else { 100.0 },
            p99_ns: 1_000,
        });
        assert_eq!((out.batch_size, out.mem_spaces), (4, 1), "{out:?}");
    }

    #[test]
    fn trajectory_marks_accepted_moves() {
        let out = AutoTuner::new().run(fig1_like);
        let accepted: Vec<(usize, usize)> = out
            .trajectory
            .iter()
            .filter(|s| s.accepted)
            .map(|s| (s.batch_size, s.mem_spaces))
            .collect();
        assert_eq!(accepted.first(), Some(&(4, 1)), "start is accepted");
        assert_eq!(accepted.last(), Some(&(32, 4)), "peak is accepted");
    }

    #[test]
    fn counts_retunes() {
        let counters = SchedCounters::new();
        let _ = AutoTuner::new()
            .with_counters(Arc::clone(&counters))
            .run(fig1_like);
        let snap = counters.snapshot();
        assert!(snap.retunes >= 2, "moves counted as retunes: {snap:?}");
    }
}
