//! Cost-model task-graph scheduling over N simulated devices.
//!
//! The paper hand-picks batch size, memory-space count and a fixed
//! round-robin over exactly two GPUs; the Workload SDK inherited those
//! choices. This crate closes the loop instead, in the style of
//! Heteroflow's dependency-driven CPU-GPU task graphs:
//!
//! * [`CostModelScheduler`] — a [`workload::Placement`] policy that
//!   places every ready batch onto one of **N** devices using a learned
//!   per-device cost model (EWMA of the batch's modeled kernel+transfer
//!   busy time per work unit), device residency (prefer the device
//!   already holding the batch's lane state) and queue pressure (the
//!   scheduler's own deterministic backlog accounting).
//! * [`AutoTuner`] — an online feedback controller that adjusts batch
//!   size and memory-space count from live throughput/p99 telemetry,
//!   rediscovering the paper's hand-picked fig1 operating point without
//!   being told it.
//!
//! # Why the placement log is deterministic
//!
//! Three rules make the decision sequence a pure function of the stream,
//! independent of thread timing:
//!
//! 1. **Serial decisions.** Causal batch ids are drawn serially at feed
//!    time and [`Placement::place`] runs serially on the farm emitter in
//!    batch-id order ([`WorkloadDriver::run_placed`]'s contract).
//! 2. **Deterministic cost samples.** A batch's measured cost is the
//!    *delta of the device's modeled busy time* around the batch. Busy
//!    time is additive and independent of wall-clock interleaving, and
//!    one worker owns each device, so the delta is exactly the batch's
//!    own modeled kernel+transfer time — every run measures the same
//!    number.
//! 3. **Windowed application.** Observations arrive in worker-completion
//!    order, which is *not* deterministic — so the scheduler folds them
//!    into the model strictly in batch-id order, and only up to a
//!    lookahead window behind the batch being decided. The decision for
//!    batch *i* waits (blocks the emitter) until every observation for
//!    ids `<= i - lookahead` is applied and never reads anything newer.
//!
//! The routed farm delivers each item before routing the next (burst 1),
//! so any lookahead ≥ 1 is deadlock-free; [`SchedConfig::for_devices`]
//! defaults to a window deep enough to keep N devices busy.
//!
//! [`Placement::place`]: workload::Placement::place
//! [`WorkloadDriver::run_placed`]: workload::WorkloadDriver::run_placed
#![deny(missing_docs)]
#![deny(clippy::unwrap_used)]

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use gpusim::GpuSystem;
use telemetry::{Recorder, SchedCounters};
use workload::{Decision, Placement};

mod tune;
pub use tune::{AutoTuner, EpochMeasure, TuneOutcome, TuneStep};

/// Tuning knobs of the [`CostModelScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// How many batches a decision may run ahead of the applied
    /// observations. Smaller = fresher model, larger = more pipeline
    /// slack (at most `lookahead` batches are in flight, so it should
    /// comfortably exceed the device count). Must be ≥ 1.
    pub lookahead: u64,
    /// EWMA smoothing factor for per-unit cost samples, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Cost added to every non-resident device while a key has lane
    /// state somewhere — the price of moving the key, modeled ns.
    pub migration_penalty_ns: u64,
    /// Optimistic per-batch cost assumed for a device with no samples
    /// yet. Must be nonzero: each blind placement adds it to the chosen
    /// device's backlog, so warm-up placements rotate across the
    /// unexplored devices instead of herding onto device 0 until its
    /// first observation lands.
    pub seed_cost_ns: u64,
}

impl SchedConfig {
    /// Defaults for an `n`-device fleet.
    pub fn for_devices(n: usize) -> Self {
        SchedConfig {
            lookahead: (4 * n as u64).max(16),
            ewma_alpha: 0.25,
            migration_penalty_ns: 20_000,
            seed_cost_ns: 1,
        }
    }
}

/// Learned state of one device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceModel {
    /// Device index.
    pub device: usize,
    /// EWMA modeled cost per work unit, ns.
    pub ewma_unit_ns: f64,
    /// Cost samples folded in so far.
    pub samples: u64,
    /// Predicted modeled ns of placed-but-unapplied batches (queue
    /// pressure as the scheduler accounts it).
    pub backlog_ns: f64,
    /// Total measured modeled busy ns attributed to this device.
    pub busy_ns: u64,
}

struct DevState {
    ewma_unit_ns: f64,
    samples: u64,
    backlog_ns: f64,
    last_busy_ns: u64,
    busy_ns: u64,
}

struct PlacedRec {
    device: usize,
    predicted_ns: f64,
    units: u64,
}

struct SchedState {
    devs: Vec<DevState>,
    residency: HashMap<u64, usize>,
    placed: HashMap<u64, PlacedRec>,
    /// Observations not yet folded into the model, keyed by batch id.
    pending: BTreeMap<u64, u64>, // batch_id -> measured cost ns
    /// First batch id this scheduler placed (`None` until the first
    /// decision); applications advance from here.
    first_id: Option<u64>,
    /// Next batch id whose observation must be applied.
    next_apply: u64,
}

/// The N-device placement policy: measured cost × residency × pressure.
///
/// Implements [`workload::Placement`]; hand an `Arc` of it to
/// [`workload::WorkloadDriver::run_placed`] with one farm replica per
/// device. Scoring, per candidate device `d`:
///
/// ```text
/// score(d) = backlog_ns(d)                  // queue pressure
///          + predicted_ns(d, units)         // EWMA unit cost × units
///          + migration_penalty (d not holding the key's lane state)
/// ```
///
/// Lowest score wins, ties break to the lowest device index.
pub struct CostModelScheduler {
    system: Arc<GpuSystem>,
    cfg: SchedConfig,
    counters: Arc<SchedCounters>,
    state: Mutex<SchedState>,
    obs_ready: Condvar,
}

impl CostModelScheduler {
    /// A scheduler over every device of `system`, registered with `rec`
    /// under `name` so its decision counters are scrape-visible.
    pub fn new(system: &Arc<GpuSystem>, cfg: SchedConfig, rec: &Recorder, name: &str) -> Arc<Self> {
        let n = system.device_count();
        let counters = SchedCounters::new();
        rec.register_sched(name, &counters);
        let devs = (0..n)
            .map(|d| {
                // Baseline busy so deltas attribute only what this
                // scheduler's batches add, even on a used system.
                let busy = system.device(d).stats().total_busy().as_nanos();
                DevState {
                    ewma_unit_ns: 0.0,
                    samples: 0,
                    backlog_ns: 0.0,
                    last_busy_ns: busy,
                    busy_ns: 0,
                }
            })
            .collect();
        Arc::new(CostModelScheduler {
            system: Arc::clone(system),
            cfg,
            counters,
            state: Mutex::new(SchedState {
                devs,
                residency: HashMap::new(),
                placed: HashMap::new(),
                pending: BTreeMap::new(),
                first_id: None,
                next_apply: 0,
            }),
            obs_ready: Condvar::new(),
        })
    }

    /// The decision counters this scheduler bumps (shared with the
    /// recorder it registered under).
    pub fn counters(&self) -> &Arc<SchedCounters> {
        &self.counters
    }

    /// Snapshot the learned per-device models (for reports).
    pub fn models(&self) -> Vec<DeviceModel> {
        let st = self.state.lock().expect("sched state");
        st.devs
            .iter()
            .enumerate()
            .map(|(device, d)| DeviceModel {
                device,
                ewma_unit_ns: d.ewma_unit_ns,
                samples: d.samples,
                backlog_ns: d.backlog_ns,
                busy_ns: d.busy_ns,
            })
            .collect()
    }

    /// Deterministic balance metric of a finished run: the largest total
    /// measured busy time any one device carries, ns. Under perfect
    /// engine overlap this is the modeled makespan a placement achieves;
    /// unlike the device timeline it is independent of host-thread
    /// interleaving, so benches gate on it reproducibly.
    pub fn max_device_busy_ns(&self) -> u64 {
        self.models().iter().map(|m| m.busy_ns).max().unwrap_or(0)
    }

    /// Fold one observation into the model (caller holds the lock).
    fn apply_obs(st: &mut SchedState, alpha: f64, batch_id: u64, cost_ns: u64) {
        let Some(rec) = st.placed.remove(&batch_id) else {
            return;
        };
        let dev = &mut st.devs[rec.device];
        dev.backlog_ns = (dev.backlog_ns - rec.predicted_ns).max(0.0);
        dev.busy_ns += cost_ns;
        let unit = cost_ns as f64 / rec.units.max(1) as f64;
        dev.ewma_unit_ns = if dev.samples == 0 {
            unit
        } else {
            alpha * unit + (1.0 - alpha) * dev.ewma_unit_ns
        };
        dev.samples += 1;
    }
}

impl Placement for CostModelScheduler {
    fn place(&self, batch_id: u64, key: u64, units: u64) -> Decision {
        let mut st = self.state.lock().expect("sched state");
        if st.first_id.is_none() {
            st.first_id = Some(batch_id);
            st.next_apply = batch_id;
        }
        // Apply observations strictly in batch-id order, up to the
        // lookahead horizon — and no further, so the model state a
        // decision sees is a pure function of the batch id.
        let horizon = batch_id.saturating_sub(self.cfg.lookahead);
        while st.next_apply <= horizon {
            let id = st.next_apply;
            if let Some(cost_ns) = st.pending.remove(&id) {
                Self::apply_obs(&mut st, self.cfg.ewma_alpha, id, cost_ns);
                st.next_apply += 1;
            } else if st.placed.contains_key(&id) {
                // Placed but not yet observed: its worker is still on it.
                st = self.obs_ready.wait(st).expect("sched state");
            } else {
                // Never placed by this scheduler (id gap in the stream):
                // decisions arrive in batch-id order, so it never will be.
                st.next_apply += 1;
            }
        }
        // Overhead timing starts here: time blocked in the window above
        // is pipeline backpressure (waiting for devices to finish real
        // work), not scheduling cost — the overhead counter answers "what
        // does choosing a device cost per batch", and that is the scoring
        // and bookkeeping below.
        let t0 = Instant::now();
        // Score every device.
        let resident = st.residency.get(&key).copied();
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (d, dev) in st.devs.iter().enumerate() {
            let predicted = if dev.samples == 0 {
                self.cfg.seed_cost_ns as f64
            } else {
                dev.ewma_unit_ns * units as f64
            };
            let migration = match resident {
                Some(r) if r != d => self.cfg.migration_penalty_ns as f64,
                _ => 0.0,
            };
            let score = dev.backlog_ns + predicted + migration;
            if score < best_score {
                best_score = score;
                best = d;
            }
        }
        let predicted = if st.devs[best].samples == 0 {
            self.cfg.seed_cost_ns as f64
        } else {
            st.devs[best].ewma_unit_ns * units as f64
        };
        st.devs[best].backlog_ns += predicted;
        st.placed.insert(
            batch_id,
            PlacedRec {
                device: best,
                predicted_ns: predicted,
                units,
            },
        );
        match resident {
            Some(r) if r == best => self.counters.residency_hit(),
            Some(_) => self.counters.migration(),
            None => {}
        }
        st.residency.insert(key, best);
        drop(st);
        self.counters.decision(t0.elapsed().as_nanos() as u64);
        Decision {
            device: best,
            predicted_ns: predicted as u64,
        }
    }

    fn observe(&self, batch_id: u64, device: usize) {
        // Measure the batch's modeled cost as the device's busy-time
        // delta. One worker per device serializes its batches, and busy
        // time is additive and timing-independent, so this is exact and
        // deterministic (rule 2 of the module docs).
        let busy = self.system.device(device).stats().total_busy().as_nanos();
        let mut st = self.state.lock().expect("sched state");
        let cost = busy.saturating_sub(st.devs[device].last_busy_ns);
        st.devs[device].last_busy_ns = busy;
        st.pending.insert(batch_id, cost);
        drop(st);
        self.obs_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::DeviceProps;

    fn sched(n: usize) -> (Arc<GpuSystem>, Arc<CostModelScheduler>) {
        let sys = GpuSystem::new(n, DeviceProps::test_tiny());
        let s = CostModelScheduler::new(
            &sys,
            SchedConfig {
                lookahead: 4,
                ..SchedConfig::for_devices(n)
            },
            &Recorder::disabled(),
            "test",
        );
        (sys, s)
    }

    /// Drive the scheduler synchronously: place then observe each batch,
    /// charging `cost_by_dev[d]` modeled ns to the chosen device.
    fn drive(
        s: &Arc<CostModelScheduler>,
        sys: &Arc<GpuSystem>,
        n_batches: u64,
        key_of: impl Fn(u64) -> u64,
        cost_by_dev: &[u64],
    ) -> Vec<usize> {
        let mut placements = Vec::new();
        for i in 1..=n_batches {
            let d = s.place(i, key_of(i), 8).device;
            placements.push(d);
            // Charge the device's modeled busy time via a real kernel
            // proxy: we bypass the device and inject the cost by
            // advancing last_busy through observe's delta math.
            let dev = sys.device(d);
            let host: Vec<u8> = vec![0; cost_by_dev[d] as usize];
            let buf = dev.alloc::<u8>(host.len()).expect("alloc");
            dev.copy_h2d(
                gpusim::StreamId::DEFAULT,
                &host,
                buf,
                0,
                true,
                simtime::SimTime::ZERO,
            );
            dev.free(buf);
            s.observe(i, d);
        }
        placements
    }

    #[test]
    fn explores_every_device_then_balances() {
        let (sys, s) = sched(3);
        // Equal cost per device: placement must spread the load.
        let placements = drive(&s, &sys, 60, |i| i, &[1_000_000, 1_000_000, 1_000_000]);
        for d in 0..3 {
            let n = placements.iter().filter(|&&p| p == d).count();
            assert!(
                n >= 10,
                "device {d} got only {n}/60 batches: {placements:?}"
            );
        }
    }

    #[test]
    fn skews_load_away_from_a_slow_device() {
        let (sys, s) = sched(2);
        // Device 1 pays 4x the transfer bytes per batch -> ~4x the cost.
        let placements = drive(&s, &sys, 100, |i| i, &[500_000, 2_000_000]);
        let slow = placements.iter().filter(|&&p| p == 1).count();
        let fast = placements.iter().filter(|&&p| p == 0).count();
        assert!(
            fast > 2 * slow,
            "fast device must carry most of the load: fast={fast} slow={slow}"
        );
        assert!(slow >= 1, "slow device still explored");
    }

    #[test]
    fn residency_keeps_a_key_on_its_device() {
        let (sys, s) = sched(2);
        // Two keys, equal costs: each key should stick to one device.
        let placements = drive(&s, &sys, 40, |i| i % 2, &[200_000, 200_000]);
        let k0: Vec<usize> = placements.iter().copied().step_by(2).collect();
        let k1: Vec<usize> = placements.iter().copied().skip(1).step_by(2).collect();
        // After warmup, each key's placements are constant.
        assert!(k0[4..].windows(2).all(|w| w[0] == w[1]), "{k0:?}");
        assert!(k1[4..].windows(2).all(|w| w[0] == w[1]), "{k1:?}");
        let snap = s.counters().snapshot();
        assert!(snap.residency_hits > 30, "{snap:?}");
        assert_eq!(snap.decisions, 40);
    }

    #[test]
    fn decision_sequence_is_reproducible() {
        let a = {
            let (sys, s) = sched(3);
            drive(&s, &sys, 80, |i| i % 5, &[300_000, 600_000, 900_000])
        };
        let b = {
            let (sys, s) = sched(3);
            drive(&s, &sys, 80, |i| i % 5, &[300_000, 600_000, 900_000])
        };
        assert_eq!(a, b, "same stream must produce the same placement log");
    }

    #[test]
    fn models_report_busy_and_samples() {
        let (sys, s) = sched(2);
        drive(&s, &sys, 30, |i| i, &[400_000, 400_000]);
        // Apply everything by placing one far-future probe batch.
        let _ = s.place(1_000, 0, 1);
        let models = s.models();
        let samples: u64 = models.iter().map(|m| m.samples).sum();
        assert!(samples >= 26, "most observations applied: {models:?}");
        assert!(s.max_device_busy_ns() > 0);
        for m in &models {
            if m.samples > 0 {
                assert!(m.ewma_unit_ns > 0.0, "{m:?}");
            }
        }
    }
}
