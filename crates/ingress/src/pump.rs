//! The pump: routes a [`Source`]'s shards into the batched `fastflow`
//! channels that feed `Workload` pipelines.
//!
//! A pump thread loops `source.next_batch` → decode → `send_batch`,
//! backing off when the source is dry and blocking on the channel when
//! the pipeline is full (backpressure flows transport ← channel). Per
//! shard it registers [`IngressCounters`] with the recorder (Prometheus
//! families `hetstream_ingress_*`) and emits
//! [`FlightKind::IngressBatch`] events whose `batch_id` carries the
//! shard id, so replay and lag are visible on the live plane.
//!
//! The pump owns its end of the copy story: give [`PumpConfig`] a
//! [`CopyLedger`](telemetry::copy::CopyLedger) and the pump thread runs
//! under a ledger scope, so the "external bytes land in pooled pinned
//! slabs with no extra copy" claim is checkable per pipeline, not just
//! process-wide.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use telemetry::{FlightKind, IngressCounters, Recorder};

use crate::{IngressError, Message, Source};

/// Tuning for one pump thread.
#[derive(Debug, Clone)]
pub struct PumpConfig {
    /// Most records pulled from the source per iteration.
    pub max_batch: usize,
    /// Sleep when the source has nothing (the transport's liveness is
    /// its own; the pump only polls).
    pub idle: Duration,
    /// Optional delta-scoped copy ledger entered for the pump thread's
    /// whole lifetime.
    pub ledger: Option<telemetry::copy::CopyLedger>,
}

impl Default for PumpConfig {
    fn default() -> Self {
        PumpConfig {
            max_batch: 64,
            idle: Duration::from_millis(1),
            ledger: None,
        }
    }
}

/// Shared per-shard ingress counters for one stream, lazily registered
/// with the recorder as shards appear.
#[derive(Debug)]
pub struct IngressStats {
    rec: Recorder,
    stream: String,
    shards: Mutex<HashMap<u32, Arc<IngressCounters>>>,
}

impl IngressStats {
    /// Stats for `stream`, registering into `rec` (which may be
    /// disabled — counters still count, they just go unscraped).
    pub fn new(rec: &Recorder, stream: impl Into<String>) -> Arc<IngressStats> {
        Arc::new(IngressStats {
            rec: rec.clone(),
            stream: stream.into(),
            shards: Mutex::new(HashMap::new()),
        })
    }

    /// The counters for `shard`, creating and registering on first use.
    pub fn counters(&self, shard: u32) -> Arc<IngressCounters> {
        let mut shards = self.shards.lock().expect("ingress stats");
        Arc::clone(shards.entry(shard).or_insert_with(|| {
            let c = Arc::new(IngressCounters::new());
            self.rec.register_ingress(self.stream.clone(), shard, &c);
            c
        }))
    }
}

/// Handle to a running pump thread.
pub struct PumpHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Result<u64, IngressError>>>,
}

impl PumpHandle {
    /// Ask the pump to stop after its current iteration.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stop and join, returning how many records were pumped.
    pub fn join(mut self) -> Result<u64, IngressError> {
        self.stop();
        match self.thread.take() {
            Some(t) => t.join().unwrap_or(Err(IngressError::Closed)),
            None => Err(IngressError::Closed),
        }
    }
}

impl Drop for PumpHandle {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawn a pump: pull batches from `source`, decode each [`Message`]
/// into a pipeline item, and push them down `tx` in batches. The sender
/// is dropped when the pump stops — EOS propagates like any other
/// `fastflow` producer hanging up.
pub fn spawn_pump<T, F>(
    mut source: Box<dyn Source>,
    tx: fastflow::Sender<T>,
    mut decode: F,
    cfg: PumpConfig,
    rec: &Recorder,
    stats: Arc<IngressStats>,
) -> PumpHandle
where
    T: Send + 'static,
    F: FnMut(Message) -> T + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let flight = rec.flight_handle(&format!("ingress:{}", source.stream_key()));
    let thread = std::thread::Builder::new()
        .name("hetstream-ingress-pump".into())
        .spawn(move || {
            let _scope = cfg.ledger.as_ref().map(|l| l.enter());
            let mut raw: Vec<Message> = Vec::with_capacity(cfg.max_batch);
            let mut pumped = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                raw.clear();
                let n = source.next_batch(&mut raw, cfg.max_batch.max(1))?;
                if n == 0 {
                    std::thread::sleep(cfg.idle);
                    continue;
                }
                // Account per shard before the buffers move on.
                let mut per_shard: HashMap<u32, (u64, u64, u64)> = HashMap::new();
                for m in &raw {
                    let e = per_shard.entry(m.shard.0).or_default();
                    e.0 += 1;
                    e.1 += m.payload.len() as u64;
                    e.2 = e.2.max(m.seq + 1);
                }
                for (shard, (records, bytes, hi)) in per_shard {
                    let c = stats.counters(shard);
                    c.add_records(records, bytes);
                    c.produced_to(hi);
                    flight.emit(FlightKind::IngressBatch, shard as u64, records, bytes);
                }
                pumped += n as u64;
                if tx.send_batch(raw.drain(..).map(&mut decode)).is_err() {
                    break; // pipeline hung up: stop pumping
                }
            }
            Ok(pumped)
        })
        .expect("spawn ingress pump thread");
    PumpHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filelog::{FileLogSink, FileLogSource};
    use crate::{ShardId, Sink, StreamKey};

    #[test]
    fn pump_feeds_a_fastflow_channel_and_counts_per_shard() {
        let root = std::env::temp_dir().join(format!(
            "hetstream_pump_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let key = StreamKey::new("pumped").expect("valid");
        let mut sink = FileLogSink::open(&root, &key, 2).expect("open sink");
        for i in 0..12u8 {
            sink.send(ShardId((i % 2) as u32), &[i; 8]).expect("send");
        }
        sink.flush().expect("flush");

        let rec = Recorder::enabled();
        let stats = IngressStats::new(&rec, "pumped");
        let src = FileLogSource::open_replay(&root, &key, fastflow::BufPool::new()).expect("open");
        let (tx, rx) = fastflow::channel::<(u32, u64, usize)>(32, fastflow::WaitStrategy::Block);
        let pump = spawn_pump(
            Box::new(src),
            tx,
            |m| (m.shard.0, m.seq, m.payload.len()),
            PumpConfig::default(),
            &rec,
            Arc::clone(&stats),
        );
        let mut got = Vec::new();
        while got.len() < 12 {
            if rx.recv_batch(&mut got, 16) == 0 {
                break; // EOS would mean the pump died early
            }
        }
        assert_eq!(got.len(), 12);
        assert!(got.iter().all(|&(_, _, len)| len == 8));
        assert_eq!(pump.join().expect("pump result"), 12);
        assert_eq!(stats.counters(0).records(), 6);
        assert_eq!(stats.counters(1).records(), 6);
        assert_eq!(stats.counters(0).bytes(), 48);
        let prom = rec.prometheus();
        assert!(
            prom.contains("hetstream_ingress_records_total{stream=\"pumped\",shard=\"0\"} 6"),
            "missing ingress family in:\n{prom}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
