//! Segmented file-log transport: durable, replayable, resumable.
//!
//! On-disk layout under `<root>/<stream-key>/`:
//!
//! ```text
//! shard-<n>/seg-<base:016x>.log   records; <base> = seq of the first one
//! shard-<n>/seg-<base:016x>.idx   one [u64 seq][u64 pos] pair per record
//! groups/<group>/shard-<n>.off    consumer-group offset: u64 next_seq
//! ```
//!
//! A record is `[u32 len][u32 crc][u64 seq][payload]` (little-endian,
//! CRC32 over the payload). Sequence numbers are dense per shard, so a
//! segment's base name tells exactly which records it holds and the
//! offset index is addressable by subtraction — entry `seq - base` at
//! byte `16 * (seq - base)`.
//!
//! Durability contract (fsync-on-ack): [`FileLogSink::send`] buffers;
//! [`FileLogSink::flush`] fsyncs log + index and only then acks the
//! pending [`Receipt`]s. A crash between send and flush loses at most
//! the unacked tail, and the producer-side reopen truncates any torn
//! record so the log always ends on a record boundary. Readers treat a
//! torn or partially flushed tail as "no data yet", never as an error.
//!
//! Consumer offsets are per *group*: `commit(shard, next_seq)` writes
//! the offset file via temp + rename + fsync, and
//! [`FileLogSource::open_resume`] seeks every shard to its committed
//! offset — the restart-and-resume half of the exactly-once story (the
//! dedup half, skipping re-emits below the egress watermark, belongs to
//! the consumer; see DESIGN.md §"Ingress/egress").

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::{
    GroupMembership, IngressError, Message, Receipt, SeqPos, SequenceNo, ShardId, Sink, Source,
    StreamKey,
};

/// Byte size a segment may reach before the next record starts a new one.
const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// Sends buffered before the sink flushes on its own.
const DEFAULT_MAX_IN_FLIGHT: usize = 64;

const REC_HEADER: usize = 4 + 4 + 8;
const IDX_ENTRY: usize = 8 + 8;

/// Largest accepted record payload. A header claiming more is a torn or
/// corrupt tail, never a real record — checked *before* any allocation
/// so garbage bytes cannot demand gigabytes (mirrors `tcp::MAX_FRAME`).
const MAX_RECORD: usize = 64 << 20;

fn shard_dir(stream_dir: &Path, shard: ShardId) -> PathBuf {
    stream_dir.join(format!("shard-{}", shard.0))
}

fn seg_path(dir: &Path, base: SequenceNo, ext: &str) -> PathBuf {
    dir.join(format!("seg-{base:016x}.{ext}"))
}

/// Segment bases present in `dir`, sorted ascending.
fn list_segments(dir: &Path) -> Result<Vec<SequenceNo>, IngressError> {
    let mut bases = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("seg-")
            .and_then(|r| r.strip_suffix(".log"))
        {
            if let Ok(base) = SequenceNo::from_str_radix(hex, 16) {
                bases.push(base);
            }
        }
    }
    bases.sort_unstable();
    Ok(bases)
}

/// Scan one segment from the front, validating records. Returns
/// `(next_seq, good_bytes, positions)`: the sequence after the last
/// intact record, the byte length of the intact prefix, and the byte
/// offset of each intact record — everything a correct offset index
/// must contain, so recovery can rebuild one.
fn scan_segment(dir: &Path, base: SequenceNo) -> Result<(SequenceNo, u64, Vec<u64>), IngressError> {
    let mut f = BufReader::new(File::open(seg_path(dir, base, "log"))?);
    let mut next = base;
    let mut good = 0u64;
    let mut positions = Vec::new();
    let mut payload = Vec::new();
    loop {
        let mut head = [0u8; REC_HEADER];
        match f.read_exact(&mut head) {
            Ok(()) => {}
            Err(_) => break, // clean EOF or torn header: prefix ends here
        }
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
        if len > MAX_RECORD {
            break; // garbage header: don't even allocate for it
        }
        payload.clear();
        payload.resize(len, 0);
        if f.read_exact(&mut payload).is_err() {
            break; // torn payload
        }
        if seq != next || crate::crc32(&payload) != crc {
            break; // wrong seq chain or corrupt payload: stop trusting
        }
        positions.push(good);
        next += 1;
        good += (REC_HEADER + len) as u64;
    }
    Ok((next, good, positions))
}

/// The durable watermark of one shard directory: `(tail_base, next_seq)`
/// of the newest segment, or `None` when the shard has no segments.
fn shard_tail(dir: &Path) -> Result<Option<(SequenceNo, SequenceNo)>, IngressError> {
    let bases = list_segments(dir)?;
    let Some(&base) = bases.last() else {
        return Ok(None);
    };
    let (next, _, _) = scan_segment(dir, base)?;
    Ok(Some((base, next)))
}

// ---------------------------------------------------------------------
// Producer
// ---------------------------------------------------------------------

struct ShardWriter {
    dir: PathBuf,
    log: BufWriter<File>,
    idx: BufWriter<File>,
    base: SequenceNo,
    next_seq: SequenceNo,
    /// Bytes in the current segment (intact prefix at open; grows per send).
    seg_bytes: u64,
    dirty: bool,
}

impl ShardWriter {
    fn open(dir: PathBuf) -> Result<ShardWriter, IngressError> {
        fs::create_dir_all(&dir)?;
        let (base, next_seq) = shard_tail(&dir)?.unwrap_or_default();
        let (good, positions) = if next_seq > base {
            let (_, good, positions) = scan_segment(&dir, base)?;
            (good, positions)
        } else {
            (0, Vec::new())
        };
        let log_path = seg_path(&dir, base, "log");
        let idx_path = seg_path(&dir, base, "idx");
        // `truncate(false)`: keep the intact prefix; the explicit
        // `set_len` below trims exactly the torn tail.
        let log = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&log_path)?;
        log.set_len(good)?;
        // The log and idx can be torn *independently* (the log buffer
        // flushes to the OS far more often than the 16-byte-per-record
        // idx buffer, and a crash can land between the two syncs), so
        // the idx is trusted only as far as it agrees with the log scan.
        // Everything past that prefix — including entries the crash
        // never wrote — is rebuilt from the scanned record positions;
        // zero-extending here would plant seq=0/pos=0 entries that later
        // seeks read as hard corruption.
        let idx = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&idx_path)?;
        let mut valid = 0usize;
        {
            let mut rdr = BufReader::new(&idx);
            let mut e = [0u8; IDX_ENTRY];
            while valid < positions.len() {
                if rdr.read_exact(&mut e).is_err() {
                    break;
                }
                let seq = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
                let pos = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
                if seq != base + valid as u64 || pos != positions[valid] {
                    break;
                }
                valid += 1;
            }
        }
        idx.set_len((valid * IDX_ENTRY) as u64)?;
        let mut idx = BufWriter::new(idx);
        idx.seek(SeekFrom::Start((valid * IDX_ENTRY) as u64))?;
        for (i, &pos) in positions.iter().enumerate().skip(valid) {
            idx.write_all(&(base + i as u64).to_le_bytes())?;
            idx.write_all(&pos.to_le_bytes())?;
        }
        if valid < positions.len() {
            idx.flush()?;
            idx.get_ref().sync_data()?;
        }
        let mut log = BufWriter::new(log);
        log.seek(SeekFrom::End(0))?;
        Ok(ShardWriter {
            dir,
            log,
            idx,
            base,
            next_seq,
            seg_bytes: good,
            dirty: false,
        })
    }

    fn roll(&mut self) -> Result<(), IngressError> {
        self.sync()?;
        self.base = self.next_seq;
        let log = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(seg_path(&self.dir, self.base, "log"))?;
        let idx = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(seg_path(&self.dir, self.base, "idx"))?;
        self.log = BufWriter::new(log);
        self.idx = BufWriter::new(idx);
        self.seg_bytes = 0;
        Ok(())
    }

    fn append(&mut self, payload: &[u8], segment_bytes: u64) -> Result<SequenceNo, IngressError> {
        if self.seg_bytes >= segment_bytes {
            self.roll()?;
        }
        let seq = self.next_seq;
        let pos = self.seg_bytes;
        self.log.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.log.write_all(&crate::crc32(payload).to_le_bytes())?;
        self.log.write_all(&seq.to_le_bytes())?;
        self.log.write_all(payload)?;
        self.idx.write_all(&seq.to_le_bytes())?;
        self.idx.write_all(&pos.to_le_bytes())?;
        self.next_seq += 1;
        self.seg_bytes += (REC_HEADER + payload.len()) as u64;
        self.dirty = true;
        Ok(seq)
    }

    fn sync(&mut self) -> Result<(), IngressError> {
        if self.dirty {
            self.log.flush()?;
            self.log.get_ref().sync_data()?;
            self.idx.flush()?;
            self.idx.get_ref().sync_data()?;
            self.dirty = false;
        }
        Ok(())
    }
}

/// Producer into a file-logged stream: batched sends, fsync-on-ack.
pub struct FileLogSink {
    key: StreamKey,
    writers: Vec<ShardWriter>,
    pending: Vec<Receipt>,
    segment_bytes: u64,
    max_in_flight: usize,
}

impl FileLogSink {
    /// Open (or create) the stream under `root` with `shards` shards,
    /// recovering per-shard sequence state and truncating torn tails.
    pub fn open(
        root: impl AsRef<Path>,
        key: &StreamKey,
        shards: u32,
    ) -> Result<FileLogSink, IngressError> {
        let stream_dir = root.as_ref().join(key.as_str());
        let writers = (0..shards)
            .map(|s| ShardWriter::open(shard_dir(&stream_dir, ShardId(s))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FileLogSink {
            key: key.clone(),
            writers,
            pending: Vec::new(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
        })
    }

    /// Override the segment roll threshold (bytes). Tiny values make
    /// multi-segment layouts testable.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// Override how many sends may be in flight before an automatic
    /// flush.
    pub fn with_max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// The sequence the next record sent to `shard` will get.
    pub fn next_seq(&self, shard: ShardId) -> Result<SequenceNo, IngressError> {
        self.writers
            .get(shard.0 as usize)
            .map(|w| w.next_seq)
            .ok_or(IngressError::UnknownShard(shard))
    }
}

impl Sink for FileLogSink {
    fn stream_key(&self) -> &StreamKey {
        &self.key
    }

    fn send(&mut self, shard: ShardId, payload: &[u8]) -> Result<Receipt, IngressError> {
        let w = self
            .writers
            .get_mut(shard.0 as usize)
            .ok_or(IngressError::UnknownShard(shard))?;
        let seq = w.append(payload, self.segment_bytes)?;
        let receipt = Receipt::pending(shard, seq);
        self.pending.push(receipt.clone());
        if self.pending.len() >= self.max_in_flight {
            self.flush()?;
        }
        Ok(receipt)
    }

    fn flush(&mut self) -> Result<(), IngressError> {
        for w in &mut self.writers {
            w.sync()?;
        }
        // Everything buffered is now durable: ack in send order.
        for r in self.pending.drain(..) {
            r.mark_acked();
        }
        Ok(())
    }
}

impl Drop for FileLogSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

// ---------------------------------------------------------------------
// Consumer-group offsets
// ---------------------------------------------------------------------

/// Durable per-(group, shard) consumer offsets.
struct OffsetStore {
    dir: PathBuf,
}

impl OffsetStore {
    fn open(stream_dir: &Path, group: &str) -> Result<OffsetStore, IngressError> {
        let dir = stream_dir.join("groups").join(group);
        fs::create_dir_all(&dir)?;
        Ok(OffsetStore { dir })
    }

    fn path(&self, shard: ShardId) -> PathBuf {
        self.dir.join(format!("shard-{}.off", shard.0))
    }

    fn load(&self, shard: ShardId) -> Result<Option<SequenceNo>, IngressError> {
        match fs::read(self.path(shard)) {
            Ok(bytes) if bytes.len() == 8 => Ok(Some(u64::from_le_bytes(
                bytes[..8].try_into().expect("8 bytes"),
            ))),
            Ok(_) => Ok(None), // torn offset file: start from the beginning
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn commit(&self, shard: ShardId, next_seq: SequenceNo) -> Result<(), IngressError> {
        let tmp = self.dir.join(format!("shard-{}.off.tmp", shard.0));
        let mut f = File::create(&tmp)?;
        f.write_all(&next_seq.to_le_bytes())?;
        f.sync_data()?;
        fs::rename(&tmp, self.path(shard))?;
        Ok(())
    }
}

/// Standalone handle to one consumer group's durable offsets.
///
/// A [`FileLogSource`] opened with [`FileLogSource::open_resume`] owns
/// the same store internally, but the source is usually moved into a
/// pump thread — this handle lets the *consumer* end of the pipeline
/// commit a shard's progress (after its downstream effect is durable)
/// without sharing the source.
pub struct GroupOffsets {
    store: OffsetStore,
}

impl GroupOffsets {
    /// Open (creating directories as needed) the offsets of `group` for
    /// stream `key` under `root`.
    pub fn open(
        root: impl AsRef<Path>,
        key: &StreamKey,
        group: &str,
    ) -> Result<GroupOffsets, IngressError> {
        Ok(GroupOffsets {
            store: OffsetStore::open(&root.as_ref().join(key.as_str()), group)?,
        })
    }

    /// The committed next-sequence for `shard` (`None` = never committed).
    pub fn load(&self, shard: ShardId) -> Result<Option<SequenceNo>, IngressError> {
        self.store.load(shard)
    }

    /// Durably record that `shard` is fully consumed below `next_seq`.
    pub fn commit(&self, shard: ShardId, next_seq: SequenceNo) -> Result<(), IngressError> {
        self.store.commit(shard, next_seq)
    }
}

// ---------------------------------------------------------------------
// Consumer
// ---------------------------------------------------------------------

struct ShardReader {
    id: ShardId,
    dir: PathBuf,
    next_seq: SequenceNo,
    /// Open segment: `(base, log reader)`. Dropped on seek / roll.
    open: Option<(SequenceNo, BufReader<File>)>,
}

impl ShardReader {
    fn new(id: ShardId, dir: PathBuf, next_seq: SequenceNo) -> ShardReader {
        ShardReader {
            id,
            dir,
            next_seq,
            open: None,
        }
    }

    /// Position a reader at `self.next_seq`, using the offset index.
    /// `Ok(false)` = that record does not exist (yet).
    fn ensure_open(&mut self) -> Result<bool, IngressError> {
        if let Some((base, _)) = &self.open {
            // A roll may have moved the live tail past this segment; the
            // read path handles that by reopening on clean EOF.
            let _ = base;
            return Ok(true);
        }
        let bases = list_segments(&self.dir)?;
        if bases.is_empty() {
            return Ok(false);
        }
        // The segment that would hold next_seq: greatest base <= next_seq
        // (clamped up to the oldest segment for pre-retention seeks).
        let base = match bases.iter().rev().find(|&&b| b <= self.next_seq) {
            Some(&b) => b,
            None => {
                self.next_seq = bases[0];
                bases[0]
            }
        };
        let mut idx = File::open(seg_path(&self.dir, base, "idx"))?;
        let entry = self.next_seq - base;
        if idx.metadata()?.len() < (entry + 1) * IDX_ENTRY as u64 {
            // Not indexed yet: either not written, or the tail segment
            // rolled and next_seq lives in the next one.
            if bases.iter().any(|&b| b > base && b <= self.next_seq) {
                self.open = None;
                // Recurse once via loop: simplest is to retry directly.
                return self.retry_later_segment(&bases);
            }
            return Ok(false);
        }
        idx.seek(SeekFrom::Start(entry * IDX_ENTRY as u64))?;
        let mut e = [0u8; IDX_ENTRY];
        idx.read_exact(&mut e)?;
        let seq = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
        let pos = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
        if seq != self.next_seq {
            return Err(IngressError::Corrupt(format!(
                "index {}: entry {entry} holds seq {seq}, expected {}",
                seg_path(&self.dir, base, "idx").display(),
                self.next_seq
            )));
        }
        let mut log = BufReader::new(File::open(seg_path(&self.dir, base, "log"))?);
        log.seek(SeekFrom::Start(pos))?;
        self.open = Some((base, log));
        Ok(true)
    }

    fn retry_later_segment(&mut self, bases: &[SequenceNo]) -> Result<bool, IngressError> {
        let base = match bases.iter().rev().find(|&&b| b <= self.next_seq) {
            Some(&b) => b,
            None => return Ok(false),
        };
        // Only called when a later segment covers next_seq; open it at
        // the indexed position.
        let mut idx = File::open(seg_path(&self.dir, base, "idx"))?;
        let entry = self.next_seq - base;
        if idx.metadata()?.len() < (entry + 1) * IDX_ENTRY as u64 {
            return Ok(false);
        }
        idx.seek(SeekFrom::Start(entry * IDX_ENTRY as u64))?;
        let mut e = [0u8; IDX_ENTRY];
        idx.read_exact(&mut e)?;
        let pos = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
        let mut log = BufReader::new(File::open(seg_path(&self.dir, base, "log"))?);
        log.seek(SeekFrom::Start(pos))?;
        self.open = Some((base, log));
        Ok(true)
    }

    /// Read the record at `next_seq` into a pool buffer. `Ok(None)` =
    /// nothing (durable) there yet.
    fn read_next(&mut self, pool: &fastflow::BufPool<u8>) -> Result<Option<Message>, IngressError> {
        if !self.ensure_open()? {
            return Ok(None);
        }
        let (base, log) = self.open.as_mut().expect("ensure_open established");
        let mut head = [0u8; REC_HEADER];
        match log.read_exact(&mut head) {
            Ok(()) => {}
            Err(_) => {
                // Clean EOF or torn tail. If the writer rolled, the next
                // record lives in a newer segment — reopen there.
                let rolled = list_segments(&self.dir)?
                    .iter()
                    .any(|&b| b > *base && b <= self.next_seq);
                self.open = None;
                if rolled {
                    return self.read_next(pool);
                }
                return Ok(None);
            }
        }
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
        if len > MAX_RECORD {
            // A garbage header could claim ~4 GiB; treat it as a torn
            // tail (the writer-side reopen truncates it) rather than
            // letting corrupt bytes size an allocation.
            self.open = None;
            return Ok(None);
        }
        let mut payload = pool.acquire(len);
        if log.read_exact(&mut payload[..]).is_err() {
            // Torn / partially flushed: rewind by reopening next time.
            self.open = None;
            return Ok(None);
        }
        if seq != self.next_seq || crate::crc32(&payload[..]) != crc {
            self.open = None;
            return Ok(None);
        }
        self.next_seq += 1;
        Ok(Some(Message {
            shard: self.id,
            seq,
            payload,
        }))
    }

    fn seek(&mut self, pos: SeqPos) -> Result<(), IngressError> {
        self.open = None;
        self.next_seq = match pos {
            SeqPos::At(seq) => seq,
            SeqPos::Beginning => list_segments(&self.dir)?.first().copied().unwrap_or(0),
            SeqPos::End => match shard_tail(&self.dir)? {
                Some((_, next)) => next,
                None => 0,
            },
        };
        Ok(())
    }
}

/// Consumer over a file-logged stream: real-time, replay, resumable, or
/// consumer-group load-balanced — all the same type, differing only in
/// how it was opened and whether a [`GroupMembership`] is attached.
pub struct FileLogSource {
    key: StreamKey,
    stream_dir: PathBuf,
    pool: fastflow::BufPool<u8>,
    readers: Vec<ShardReader>,
    offsets: Option<OffsetStore>,
    membership: Option<GroupMembership>,
    generation: u64,
    rr: usize,
}

impl FileLogSource {
    fn discover_shards(stream_dir: &Path) -> Result<Vec<ShardId>, IngressError> {
        let mut shards = Vec::new();
        match fs::read_dir(stream_dir) {
            Ok(entries) => {
                for entry in entries {
                    let name = entry?.file_name();
                    if let Some(n) = name.to_string_lossy().strip_prefix("shard-") {
                        if let Ok(n) = n.parse::<u32>() {
                            shards.push(ShardId(n));
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        shards.sort_unstable();
        Ok(shards)
    }

    fn open_with(
        root: impl AsRef<Path>,
        key: &StreamKey,
        start: SeqPos,
        group: Option<&str>,
        membership: Option<GroupMembership>,
        pool: fastflow::BufPool<u8>,
    ) -> Result<FileLogSource, IngressError> {
        let stream_dir = root.as_ref().join(key.as_str());
        let all = Self::discover_shards(&stream_dir)?;
        let offsets = match group {
            Some(g) => Some(OffsetStore::open(&stream_dir, g)?),
            None => None,
        };
        let assigned: Vec<ShardId> = match &membership {
            Some(m) => m.assigned(&all),
            None => all,
        };
        let mut readers = Vec::new();
        for id in assigned {
            let dir = shard_dir(&stream_dir, id);
            let mut r = ShardReader::new(id, dir, 0);
            match (&offsets, start) {
                (Some(store), _) => match store.load(id)? {
                    Some(next) => r.next_seq = next,
                    None => r.seek(start)?,
                },
                (None, pos) => r.seek(pos)?,
            }
            readers.push(r);
        }
        let generation = membership.as_ref().map_or(0, |m| m.generation());
        Ok(FileLogSource {
            key: key.clone(),
            stream_dir,
            pool,
            readers,
            offsets,
            membership,
            generation,
            rr: 0,
        })
    }

    /// Real-time mode: start at each shard's end, see only new records.
    pub fn open_realtime(
        root: impl AsRef<Path>,
        key: &StreamKey,
        pool: fastflow::BufPool<u8>,
    ) -> Result<FileLogSource, IngressError> {
        Self::open_with(root, key, SeqPos::End, None, None, pool)
    }

    /// Replay mode: start at each shard's beginning, no offset storage.
    pub fn open_replay(
        root: impl AsRef<Path>,
        key: &StreamKey,
        pool: fastflow::BufPool<u8>,
    ) -> Result<FileLogSource, IngressError> {
        Self::open_with(root, key, SeqPos::Beginning, None, None, pool)
    }

    /// Resumable mode: start each shard at `group`'s committed offset
    /// (beginning when the group has none); `commit` persists offsets.
    pub fn open_resume(
        root: impl AsRef<Path>,
        key: &StreamKey,
        group: &str,
        pool: fastflow::BufPool<u8>,
    ) -> Result<FileLogSource, IngressError> {
        Self::open_with(root, key, SeqPos::Beginning, Some(group), None, pool)
    }

    /// Consumer-group mode: like `open_resume`, but reading only the
    /// shards `membership` assigns this member; reassignments on
    /// join/leave are picked up at the next `next_batch`.
    pub fn open_group(
        root: impl AsRef<Path>,
        key: &StreamKey,
        group: &str,
        membership: GroupMembership,
        pool: fastflow::BufPool<u8>,
    ) -> Result<FileLogSource, IngressError> {
        Self::open_with(
            root,
            key,
            SeqPos::Beginning,
            Some(group),
            Some(membership),
            pool,
        )
    }

    /// The offset this source's shard cursor currently sits at.
    pub fn position(&self, shard: ShardId) -> Option<SequenceNo> {
        self.readers
            .iter()
            .find(|r| r.id == shard)
            .map(|r| r.next_seq)
    }

    /// The committed offset stored for `shard` (resumable/group modes).
    pub fn committed(&self, shard: ShardId) -> Result<Option<SequenceNo>, IngressError> {
        match &self.offsets {
            Some(store) => store.load(shard),
            None => Ok(None),
        }
    }

    /// Apply a consumer-group generation change: rebuild the reader set
    /// from the current assignment, starting newly acquired shards at
    /// their committed offsets.
    fn rebalance(&mut self) -> Result<(), IngressError> {
        let Some(m) = &self.membership else {
            return Ok(());
        };
        let gen = m.generation();
        if gen == self.generation {
            return Ok(());
        }
        let all = Self::discover_shards(&self.stream_dir)?;
        let assigned = m.assigned(&all);
        self.readers.retain(|r| assigned.contains(&r.id));
        for id in assigned {
            if self.readers.iter().any(|r| r.id == id) {
                continue;
            }
            let dir = shard_dir(&self.stream_dir, id);
            let mut r = ShardReader::new(id, dir, 0);
            match &self.offsets {
                Some(store) => match store.load(id)? {
                    Some(next) => r.next_seq = next,
                    None => r.seek(SeqPos::Beginning)?,
                },
                None => r.seek(SeqPos::Beginning)?,
            }
            self.readers.push(r);
        }
        self.readers.sort_unstable_by_key(|r| r.id);
        self.rr = 0;
        self.generation = gen;
        Ok(())
    }

    /// Pick up shard directories created after this source was opened
    /// (non-group mode — group mode rediscovers through `rebalance`).
    /// A source opened before the producer ever wrote would otherwise
    /// keep an empty reader set forever. Newly found shards start at
    /// their committed offset when one exists, else at the beginning:
    /// every record in a shard born after open is "new" to this reader,
    /// whatever mode it was opened in. Returns true when a shard was
    /// added.
    fn refresh_shards(&mut self) -> Result<bool, IngressError> {
        let mut added = false;
        for id in Self::discover_shards(&self.stream_dir)? {
            if self.readers.iter().any(|r| r.id == id) {
                continue;
            }
            let dir = shard_dir(&self.stream_dir, id);
            let mut r = ShardReader::new(id, dir, 0);
            match &self.offsets {
                Some(store) => match store.load(id)? {
                    Some(next) => r.next_seq = next,
                    None => r.seek(SeqPos::Beginning)?,
                },
                None => r.seek(SeqPos::Beginning)?,
            }
            self.readers.push(r);
            added = true;
        }
        if added {
            self.readers.sort_unstable_by_key(|r| r.id);
            self.rr = 0;
        }
        Ok(added)
    }

    /// One round-robin sweep over the current reader set.
    fn poll_readers(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, IngressError> {
        if self.readers.is_empty() {
            return Ok(0);
        }
        let mut got = 0;
        let mut dry = 0;
        while got < max && dry < self.readers.len() {
            let i = self.rr % self.readers.len();
            self.rr += 1;
            match self.readers[i].read_next(&self.pool)? {
                Some(msg) => {
                    out.push(msg);
                    got += 1;
                    dry = 0;
                }
                None => dry += 1,
            }
        }
        Ok(got)
    }
}

impl Source for FileLogSource {
    fn stream_key(&self) -> &StreamKey {
        &self.key
    }

    fn assigned_shards(&self) -> Vec<ShardId> {
        self.readers.iter().map(|r| r.id).collect()
    }

    fn next_batch(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, IngressError> {
        self.rebalance()?;
        if max == 0 {
            return Ok(0);
        }
        let mut got = self.poll_readers(out, max)?;
        // An idle sweep is the cheap moment to look for shard
        // directories that did not exist at open (producer started
        // later, or added shards); group mode gets this via rebalance.
        if got == 0 && self.membership.is_none() && self.refresh_shards()? {
            got = self.poll_readers(out, max)?;
        }
        Ok(got)
    }

    fn seek(&mut self, shard: ShardId, pos: SeqPos) -> Result<(), IngressError> {
        // Repositioning restarts the round-robin from shard order, so a
        // rewound replay interleaves exactly like the first pass —
        // replay determinism is part of the contract.
        self.rr = 0;
        self.readers
            .iter_mut()
            .find(|r| r.id == shard)
            .ok_or(IngressError::UnknownShard(shard))?
            .seek(pos)
    }

    fn commit(&mut self, shard: ShardId, next_seq: SequenceNo) -> Result<(), IngressError> {
        match &self.offsets {
            Some(store) => store.commit(shard, next_seq),
            None => Ok(()),
        }
    }
}

/// Read a whole stream back as `shard -> ordered payload list` — the
/// verification helper the kill-and-resume demo and tests use to prove
/// bit-exactness.
pub fn read_all(
    root: impl AsRef<Path>,
    key: &StreamKey,
) -> Result<HashMap<u32, Vec<Vec<u8>>>, IngressError> {
    let pool = fastflow::BufPool::<u8>::new();
    let mut src = FileLogSource::open_replay(root, key, pool)?;
    let mut out = HashMap::new();
    let mut batch = Vec::new();
    loop {
        batch.clear();
        if src.next_batch(&mut batch, 256)? == 0 {
            break;
        }
        for msg in batch.drain(..) {
            let rows: &mut Vec<Vec<u8>> = out.entry(msg.shard.0).or_default();
            if msg.seq as usize != rows.len() {
                return Err(IngressError::Corrupt(format!(
                    "shard {} replay out of order: seq {} at position {}",
                    msg.shard,
                    msg.seq,
                    rows.len()
                )));
            }
            rows.push(msg.payload.to_vec());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hetstream_ingress_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    fn key() -> StreamKey {
        StreamKey::new("t").expect("valid key")
    }

    #[test]
    fn produce_flush_consume_roundtrip() {
        let root = tmpdir("roundtrip");
        let mut sink = FileLogSink::open(&root, &key(), 2).expect("open sink");
        let mut receipts = Vec::new();
        for i in 0..10u32 {
            let r = sink
                .send(ShardId(i % 2), format!("payload-{i}").as_bytes())
                .expect("send");
            receipts.push(r);
        }
        assert!(
            receipts.iter().all(|r| !r.is_acked()),
            "acks wait for flush"
        );
        sink.flush().expect("flush");
        assert!(receipts.iter().all(Receipt::is_acked), "flush acks all");

        let mut src =
            FileLogSource::open_replay(&root, &key(), fastflow::BufPool::new()).expect("open");
        let mut msgs = Vec::new();
        while src.next_batch(&mut msgs, 64).expect("read") > 0 {}
        assert_eq!(msgs.len(), 10);
        for m in &msgs {
            let text = String::from_utf8(m.payload.to_vec()).expect("utf8");
            let i: u32 = text
                .strip_prefix("payload-")
                .expect("prefix")
                .parse()
                .expect("n");
            assert_eq!(m.shard.0, i % 2);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn segments_roll_and_replay_across_the_boundary() {
        let root = tmpdir("roll");
        let mut sink = FileLogSink::open(&root, &key(), 1)
            .expect("open sink")
            .with_segment_bytes(64);
        for i in 0..20u8 {
            sink.send(ShardId(0), &[i; 24]).expect("send");
        }
        sink.flush().expect("flush");
        let dir = shard_dir(&root.join("t"), ShardId(0));
        assert!(
            list_segments(&dir).expect("list").len() > 1,
            "tiny threshold must produce multiple segments"
        );
        let all = read_all(&root, &key()).expect("read back");
        assert_eq!(all[&0].len(), 20);
        for (i, p) in all[&0].iter().enumerate() {
            assert_eq!(p, &vec![i as u8; 24]);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopened_sink_truncates_torn_tail_and_resumes_seq() {
        let root = tmpdir("torn");
        {
            let mut sink = FileLogSink::open(&root, &key(), 1).expect("open");
            sink.send(ShardId(0), b"alpha").expect("send");
            sink.send(ShardId(0), b"beta").expect("send");
            sink.flush().expect("flush");
        }
        // Tear the log mid-record, as a crash between write and fsync
        // would.
        let log = seg_path(&shard_dir(&root.join("t"), ShardId(0)), 0, "log");
        let full = fs::metadata(&log).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&log).expect("open log");
        f.set_len(full + 7).expect("fake torn half-record"); // garbage tail
        drop(f);
        let mut sink = FileLogSink::open(&root, &key(), 1).expect("reopen");
        assert_eq!(sink.next_seq(ShardId(0)).expect("seq"), 2, "two intact");
        assert_eq!(fs::metadata(&log).expect("meta").len(), full, "tail gone");
        sink.send(ShardId(0), b"gamma").expect("send");
        sink.flush().expect("flush");
        let all = read_all(&root, &key()).expect("read back");
        assert_eq!(
            all[&0],
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_rebuilds_index_entries_lost_in_crash() {
        // The log can be durable while the trailing idx entries are not
        // (crash between the two syncs, or BufWriter flush asymmetry).
        // Reopen must rebuild those entries from the log scan — the old
        // zero-extend planted seq=0/pos=0 entries that made any later
        // seek into that range a hard Corrupt error.
        let root = tmpdir("idxloss");
        {
            let mut sink = FileLogSink::open(&root, &key(), 1).expect("open");
            for i in 0..6u8 {
                sink.send(ShardId(0), &[i; 10]).expect("send");
            }
            sink.flush().expect("flush");
        }
        let idx = seg_path(&shard_dir(&root.join("t"), ShardId(0)), 0, "idx");
        let full = fs::metadata(&idx).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&idx).expect("open idx");
        f.set_len(full - 2 * IDX_ENTRY as u64)
            .expect("drop last two idx entries");
        drop(f);
        let mut sink = FileLogSink::open(&root, &key(), 1).expect("reopen");
        assert_eq!(sink.next_seq(ShardId(0)).expect("seq"), 6);
        assert_eq!(
            fs::metadata(&idx).expect("meta").len(),
            full,
            "reopen restores the missing idx entries"
        );
        // Seek straight into the formerly zero-extended range.
        let mut src =
            FileLogSource::open_replay(&root, &key(), fastflow::BufPool::new()).expect("open");
        src.seek(ShardId(0), SeqPos::At(4)).expect("seek");
        let mut msgs = Vec::new();
        while src
            .next_batch(&mut msgs, 8)
            .expect("read past rebuilt entries")
            > 0
        {}
        assert_eq!(
            msgs.iter().map(|m| m.seq).collect::<Vec<_>>(),
            vec![4, 5],
            "rebuilt index addresses the tail records"
        );
        assert_eq!(&msgs[0].payload[..], &[4u8; 10]);
        // And the reopened sink keeps appending consistently.
        sink.send(ShardId(0), &[6; 10]).expect("send");
        sink.flush().expect("flush");
        let all = read_all(&root, &key()).expect("read back");
        assert_eq!(all[&0].len(), 7);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_replaces_corrupt_index_entries() {
        // Not just missing entries: garbage in the idx (torn write) must
        // be detected against the log scan and rewritten.
        let root = tmpdir("idxgarbage");
        {
            let mut sink = FileLogSink::open(&root, &key(), 1).expect("open");
            for i in 0..4u8 {
                sink.send(ShardId(0), &[i; 8]).expect("send");
            }
            sink.flush().expect("flush");
        }
        let idx = seg_path(&shard_dir(&root.join("t"), ShardId(0)), 0, "idx");
        let mut f = OpenOptions::new().write(true).open(&idx).expect("open idx");
        f.seek(SeekFrom::Start(2 * IDX_ENTRY as u64)).expect("seek");
        f.write_all(&[0xAA; 2 * IDX_ENTRY]).expect("scribble");
        drop(f);
        let _ = FileLogSink::open(&root, &key(), 1).expect("reopen");
        let mut src =
            FileLogSource::open_replay(&root, &key(), fastflow::BufPool::new()).expect("open");
        src.seek(ShardId(0), SeqPos::At(2)).expect("seek");
        let mut msgs = Vec::new();
        while src.next_batch(&mut msgs, 8).expect("read") > 0 {}
        assert_eq!(msgs.iter().map(|m| m.seq).collect::<Vec<_>>(), vec![2, 3]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn oversized_length_header_is_torn_tail_not_allocation() {
        // A garbage header claiming ~4 GiB must be rejected before any
        // buffer is sized from it — reader treats it as a torn tail,
        // writer reopen truncates it.
        let root = tmpdir("hugelen");
        {
            let mut sink = FileLogSink::open(&root, &key(), 1).expect("open");
            sink.send(ShardId(0), b"good").expect("send");
            sink.flush().expect("flush");
        }
        let log = seg_path(&shard_dir(&root.join("t"), ShardId(0)), 0, "log");
        let full = fs::metadata(&log).expect("meta").len();
        let mut f = OpenOptions::new()
            .append(true)
            .open(&log)
            .expect("open log");
        let mut garbage = Vec::new();
        garbage.extend_from_slice(&u32::MAX.to_le_bytes()); // len ~4 GiB
        garbage.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // crc
        garbage.extend_from_slice(&1u64.to_le_bytes()); // seq (would chain)
        f.write_all(&garbage).expect("append garbage header");
        drop(f);
        let mut src =
            FileLogSource::open_replay(&root, &key(), fastflow::BufPool::new()).expect("open");
        let mut msgs = Vec::new();
        while src
            .next_batch(&mut msgs, 8)
            .expect("no error, no huge alloc")
            > 0
        {}
        assert_eq!(msgs.len(), 1, "only the intact record is delivered");
        let mut sink = FileLogSink::open(&root, &key(), 1).expect("reopen");
        assert_eq!(sink.next_seq(ShardId(0)).expect("seq"), 1);
        assert_eq!(
            fs::metadata(&log).expect("meta").len(),
            full,
            "reopen truncates the garbage tail"
        );
        sink.send(ShardId(0), b"next").expect("send");
        sink.flush().expect("flush");
        let all = read_all(&root, &key()).expect("read back");
        assert_eq!(all[&0], vec![b"good".to_vec(), b"next".to_vec()]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn source_opened_before_sink_discovers_shards_later() {
        // A non-group source opened before the producer created any
        // shard directory must pick them up once they appear instead of
        // returning 0 forever.
        let root = tmpdir("latesink");
        fs::create_dir_all(root.join("t")).expect("stream dir");
        let mut src =
            FileLogSource::open_replay(&root, &key(), fastflow::BufPool::new()).expect("open");
        let mut msgs = Vec::new();
        assert_eq!(src.next_batch(&mut msgs, 8).expect("read"), 0);
        assert!(src.assigned_shards().is_empty());
        let mut sink = FileLogSink::open(&root, &key(), 2).expect("open sink");
        for i in 0..4u8 {
            sink.send(ShardId(u32::from(i % 2)), &[i]).expect("send");
        }
        sink.flush().expect("flush");
        while src.next_batch(&mut msgs, 8).expect("read") > 0 {}
        assert_eq!(msgs.len(), 4, "late-created shards are discovered");
        assert_eq!(src.assigned_shards(), vec![ShardId(0), ShardId(1)]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn committed_offsets_resume_where_the_group_left_off() {
        let root = tmpdir("resume");
        let mut sink = FileLogSink::open(&root, &key(), 1).expect("open");
        for i in 0..6u8 {
            sink.send(ShardId(0), &[i]).expect("send");
        }
        sink.flush().expect("flush");
        {
            let mut src = FileLogSource::open_resume(&root, &key(), "g", fastflow::BufPool::new())
                .expect("open");
            let mut msgs = Vec::new();
            src.next_batch(&mut msgs, 4).expect("read");
            assert_eq!(msgs.len(), 4);
            src.commit(ShardId(0), 4).expect("commit");
        }
        let mut src = FileLogSource::open_resume(&root, &key(), "g", fastflow::BufPool::new())
            .expect("reopen");
        assert_eq!(src.committed(ShardId(0)).expect("load"), Some(4));
        let mut msgs = Vec::new();
        src.next_batch(&mut msgs, 16).expect("read");
        let seqs: Vec<u64> = msgs.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![4, 5], "resume starts at the committed offset");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn seek_and_rewind_replay_deterministically() {
        let root = tmpdir("seek");
        let mut sink = FileLogSink::open(&root, &key(), 1)
            .expect("open")
            .with_segment_bytes(48);
        for i in 0..12u8 {
            sink.send(ShardId(0), &[i, i, i]).expect("send");
        }
        sink.flush().expect("flush");
        let mut src =
            FileLogSource::open_replay(&root, &key(), fastflow::BufPool::new()).expect("open");
        let drain = |src: &mut FileLogSource| {
            let mut msgs = Vec::new();
            while src.next_batch(&mut msgs, 8).expect("read") > 0 {}
            msgs.iter().map(|m| m.seq).collect::<Vec<_>>()
        };
        let first = drain(&mut src);
        assert_eq!(first, (0..12).collect::<Vec<u64>>());
        src.seek(ShardId(0), SeqPos::At(7)).expect("seek");
        assert_eq!(drain(&mut src), (7..12).collect::<Vec<u64>>());
        src.rewind().expect("rewind");
        assert_eq!(drain(&mut src), first, "rewind replays identically");
        src.seek(ShardId(0), SeqPos::End).expect("end");
        assert_eq!(drain(&mut src), Vec::<u64>::new());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn realtime_source_sees_only_new_records() {
        let root = tmpdir("realtime");
        let mut sink = FileLogSink::open(&root, &key(), 1).expect("open");
        sink.send(ShardId(0), b"old").expect("send");
        sink.flush().expect("flush");
        let mut src =
            FileLogSource::open_realtime(&root, &key(), fastflow::BufPool::new()).expect("open");
        let mut msgs = Vec::new();
        assert_eq!(src.next_batch(&mut msgs, 8).expect("read"), 0);
        sink.send(ShardId(0), b"new").expect("send");
        sink.flush().expect("flush");
        assert_eq!(src.next_batch(&mut msgs, 8).expect("read"), 1);
        assert_eq!(&msgs[0].payload[..], b"new");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unflushed_records_are_invisible_to_readers() {
        let root = tmpdir("unflushed");
        let mut sink = FileLogSink::open(&root, &key(), 1).expect("open");
        sink.send(ShardId(0), b"pending").expect("send");
        // No flush: the record may sit in the BufWriter; whatever the
        // reader sees must parse as either nothing or the whole record —
        // and commit-before-flush semantics say nothing.
        let mut src =
            FileLogSource::open_replay(&root, &key(), fastflow::BufPool::new()).expect("open");
        let mut msgs = Vec::new();
        let _ = src.next_batch(&mut msgs, 8).expect("no error on torn tail");
        sink.flush().expect("flush");
        while src.next_batch(&mut msgs, 8).expect("read") > 0 {}
        assert_eq!(msgs.len(), 1);
        assert_eq!(&msgs[0].payload[..], b"pending");
        let _ = fs::remove_dir_all(&root);
    }
}
