//! Stream ingress/egress: the boundary where external records enter and
//! leave the runtime.
//!
//! Everything upstream of this crate was born in-process — harness
//! generator loops feeding farms. This layer adds the missing edge in
//! the sea-streamer mold: streams are addressed by
//! [`StreamKey`] + [`ShardId`] + [`SequenceNo`], consumed in real-time,
//! resumable-from-offset, or load-balanced consumer-group modes, and
//! replayed with [`Source::seek`]/[`Source::rewind`]. Producers batch
//! in-flight sends and learn durability through acknowledged
//! [`Receipt`]s.
//!
//! Two transports implement the contract:
//!
//! * [`filelog`] — a segmented on-disk log with an offset index,
//!   fsync-on-ack durability, and restart-and-resume consumer offsets;
//! * [`tcp`] — a length-prefixed TCP transport with windowed in-flight
//!   sends and ack frames, for live feeds.
//!
//! Payloads land in [`fastflow::PooledBuf`]s acquired from the pool the
//! caller supplies — hand a `workload::pinned_pool()` and external bytes
//! are read straight into page-locked slabs, so the downstream offload
//! path keeps its zero-copy guarantee (the copy ledger stays at
//! 0 bytes/batch). [`pump`] routes a source's shards into the batched
//! `fastflow` channels that feed existing `Workload` pipelines.

#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub mod filelog;
pub mod group;
pub mod pump;
pub mod tcp;

pub use filelog::{FileLogSink, FileLogSource, GroupOffsets};
pub use group::{GroupCoordinator, GroupMembership};
pub use pump::{spawn_pump, IngressStats, PumpConfig, PumpHandle};
pub use tcp::{TcpIngressServer, TcpSink, TcpSource};

/// A validated stream name: 1–64 chars of `[a-z0-9._-]`. Doubles as the
/// on-disk directory name for the file transport, hence the restriction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamKey(String);

impl StreamKey {
    /// Validate `name` as a stream key.
    pub fn new(name: impl Into<String>) -> Result<StreamKey, IngressError> {
        let name = name.into();
        let ok = !name.is_empty()
            && name.len() <= 64
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b"._-".contains(&b));
        if ok {
            Ok(StreamKey(name))
        } else {
            Err(IngressError::BadKey(name))
        }
    }

    /// The key as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StreamKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One shard (partition) of a stream. Records are totally ordered
/// *within* a shard, unordered across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Position of a record within its shard: dense, starting at 0.
pub type SequenceNo = u64;

/// Where to (re)position a shard cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqPos {
    /// The oldest retained record.
    Beginning,
    /// Past the newest record — i.e. only new data from here on.
    End,
    /// The record with this sequence number.
    At(SequenceNo),
}

/// One record delivered by a [`Source`]: its shard address plus the
/// payload in a pooled buffer (pinned, when the pool is a
/// `workload::pinned_pool()`).
#[derive(Debug)]
pub struct Message {
    /// The shard this record belongs to.
    pub shard: ShardId,
    /// Its position within the shard.
    pub seq: SequenceNo,
    /// The record payload, in a pool-acquired buffer.
    pub payload: fastflow::PooledBuf<u8>,
}

/// Errors from ingress transports.
#[derive(Debug)]
pub enum IngressError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The on-disk or on-wire data failed validation (CRC, framing).
    Corrupt(String),
    /// The operation is not supported by this transport (e.g. `seek` on
    /// the real-time TCP source).
    Unsupported(&'static str),
    /// The peer or transport has shut down.
    Closed,
    /// An invalid stream key.
    BadKey(String),
    /// The shard id is not part of this stream / assignment.
    UnknownShard(ShardId),
}

impl fmt::Display for IngressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngressError::Io(e) => write!(f, "ingress i/o: {e}"),
            IngressError::Corrupt(what) => write!(f, "ingress corrupt data: {what}"),
            IngressError::Unsupported(op) => write!(f, "ingress operation unsupported: {op}"),
            IngressError::Closed => write!(f, "ingress transport closed"),
            IngressError::BadKey(k) => write!(f, "invalid stream key: {k:?}"),
            IngressError::UnknownShard(s) => write!(f, "unknown shard {s}"),
        }
    }
}

impl std::error::Error for IngressError {}

impl From<std::io::Error> for IngressError {
    fn from(e: std::io::Error) -> Self {
        IngressError::Io(e)
    }
}

/// A sharded record source (consumer side of a stream).
///
/// `next_batch` is non-blocking-ish: it returns however many records are
/// available now (up to `max`), possibly 0 — liveness (wait/retry) is
/// the caller's policy, usually [`pump::spawn_pump`]'s idle backoff.
pub trait Source: Send {
    /// The stream this source consumes.
    fn stream_key(&self) -> &StreamKey;

    /// The shards this source currently reads (the full set, or this
    /// member's slice under a consumer group).
    fn assigned_shards(&self) -> Vec<ShardId>;

    /// Append up to `max` available records to `out`, round-robin across
    /// assigned shards. Returns how many were appended (0 = nothing
    /// available right now).
    fn next_batch(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, IngressError>;

    /// Reposition one shard's cursor.
    fn seek(&mut self, shard: ShardId, pos: SeqPos) -> Result<(), IngressError>;

    /// Reposition every assigned shard to [`SeqPos::Beginning`].
    fn rewind(&mut self) -> Result<(), IngressError> {
        for shard in self.assigned_shards() {
            self.seek(shard, SeqPos::Beginning)?;
        }
        Ok(())
    }

    /// Durably record that this consumer (group) has processed shard
    /// records *below* `next_seq`; a later `open_resume` starts there.
    /// Transports without offset storage accept and ignore it.
    fn commit(&mut self, shard: ShardId, next_seq: SequenceNo) -> Result<(), IngressError>;
}

/// Producer-side acknowledgement of one sent record. Starts pending;
/// flips acked exactly when the record is durable (fsynced, or
/// ack-framed by the TCP peer).
#[derive(Debug, Clone)]
pub struct Receipt {
    shard: ShardId,
    seq: SequenceNo,
    acked: Arc<AtomicBool>,
}

impl Receipt {
    /// A pending receipt for `(shard, seq)`.
    pub fn pending(shard: ShardId, seq: SequenceNo) -> Receipt {
        Receipt {
            shard,
            seq,
            acked: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The shard the record was sent to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The sequence number the transport assigned to the record.
    pub fn seq(&self) -> SequenceNo {
        self.seq
    }

    /// True once the record is durable.
    pub fn is_acked(&self) -> bool {
        self.acked.load(Ordering::Acquire)
    }

    pub(crate) fn mark_acked(&self) {
        self.acked.store(true, Ordering::Release);
    }
}

/// A sharded record sink (producer side of a stream).
///
/// Sends are batched: a [`send`](Sink::send) may buffer; receipts ack on
/// [`flush`](Sink::flush) (or earlier, at the transport's discretion —
/// e.g. when the in-flight window fills and the sink syncs internally).
pub trait Sink: Send {
    /// The stream this sink produces into.
    fn stream_key(&self) -> &StreamKey;

    /// Queue one record for `shard`; the returned receipt acks when the
    /// record is durable.
    fn send(&mut self, shard: ShardId, payload: &[u8]) -> Result<Receipt, IngressError>;

    /// Make every queued record durable and ack its receipt.
    fn flush(&mut self) -> Result<(), IngressError>;
}

/// CRC32 (IEEE, reflected) over `bytes` — the record checksum both
/// transports use. Table-driven, table built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_keys_validate() {
        assert!(StreamKey::new("fig1-pixels.v2").is_ok());
        assert!(StreamKey::new("").is_err());
        assert!(StreamKey::new("Upper").is_err());
        assert!(StreamKey::new("has space").is_err());
        assert!(StreamKey::new("a/b").is_err());
        assert!(StreamKey::new("x".repeat(65)).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn receipts_start_pending_and_ack_once() {
        let r = Receipt::pending(ShardId(3), 17);
        assert!(!r.is_acked());
        assert_eq!(r.shard(), ShardId(3));
        assert_eq!(r.seq(), 17);
        let clone = r.clone();
        r.mark_acked();
        assert!(clone.is_acked(), "clones share the ack cell");
    }
}
