//! Length-prefixed TCP transport: live feeds with windowed in-flight
//! sends and explicit ack frames.
//!
//! Wire format, little-endian: every frame is `[u32 len][u8 kind][body]`
//! where `len` counts the kind byte plus the body.
//!
//! ```text
//! kind 0  HELLO  body = stream key bytes          (client -> server)
//! kind 1  DATA   body = [u32 shard][u64 seq][payload]  (client -> server)
//! kind 2  ACK    body = [u32 shard][u64 seq]      (server -> client)
//! ```
//!
//! The server acks a DATA frame after enqueueing it for the consumer, so
//! a [`Receipt`] acking means "the consumer side holds it", not merely
//! "the kernel buffered it". The queue is bounded: when the pipeline
//! falls behind, enqueue blocks, the connection thread stops reading,
//! TCP flow control fills the producer's window, and
//! [`TcpSink`] blocks in its in-flight window — backpressure end to end
//! with no unbounded buffer anywhere.
//!
//! This transport is real-time only: [`TcpSource::seek`] and `rewind`
//! report [`IngressError::Unsupported`]; replay belongs to the file log.

use std::collections::{BTreeSet, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{IngressError, Message, Receipt, SeqPos, SequenceNo, ShardId, Sink, Source, StreamKey};

const KIND_HELLO: u8 = 0;
const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

/// Largest accepted frame body; a frame claiming more is protocol
/// corruption, not a big record.
const MAX_FRAME: usize = 64 << 20;

/// Default bound on the server's consumer queue (messages).
const DEFAULT_QUEUE_CAP: usize = 1024;

/// Default producer in-flight window (unacked sends).
const DEFAULT_MAX_IN_FLIGHT: usize = 64;

/// Read `buf.len()` bytes, tolerating read-timeout wakeups so `stop` is
/// polled. Returns the bytes actually read (short = EOF or shutdown).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(filled);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Bounded handoff queue between connection threads and the source.
#[derive(Debug)]
struct SharedQueue {
    q: Mutex<VecDeque<Message>>,
    not_full: Condvar,
    cap: usize,
    stop: AtomicBool,
}

impl SharedQueue {
    fn new(cap: usize) -> SharedQueue {
        SharedQueue {
            q: Mutex::new(VecDeque::new()),
            not_full: Condvar::new(),
            cap: cap.max(1),
            stop: AtomicBool::new(false),
        }
    }

    /// Block until there is room (backpressure), then enqueue. Returns
    /// false when the server is stopping.
    fn push(&self, msg: Message) -> bool {
        let mut q = self.q.lock().expect("ingress queue");
        while q.len() >= self.cap {
            if self.stop.load(Ordering::Relaxed) {
                return false;
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(q, Duration::from_millis(50))
                .expect("ingress queue");
            q = guard;
        }
        q.push_back(msg);
        true
    }

    fn pop_many(&self, out: &mut Vec<Message>, max: usize) -> usize {
        let mut q = self.q.lock().expect("ingress queue");
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        if n > 0 {
            self.not_full.notify_all();
        }
        n
    }
}

/// Server half of the TCP transport: accepts producer connections for
/// one stream and queues their records for a [`TcpSource`].
pub struct TcpIngressServer {
    key: StreamKey,
    addr: SocketAddr,
    queue: Arc<SharedQueue>,
    shards_seen: Arc<Mutex<BTreeSet<u32>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpIngressServer {
    /// Bind `addr` (port 0 picks a free port) and start accepting
    /// producers for `key`. Payloads are read straight into buffers from
    /// `pool` — hand a pinned pool for the zero-copy path.
    pub fn bind(
        addr: impl ToSocketAddrs,
        key: &StreamKey,
        pool: fastflow::BufPool<u8>,
        queue_cap: usize,
    ) -> Result<TcpIngressServer, IngressError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(SharedQueue::new(if queue_cap == 0 {
            DEFAULT_QUEUE_CAP
        } else {
            queue_cap
        }));
        let shards_seen = Arc::new(Mutex::new(BTreeSet::new()));
        let accept_queue = Arc::clone(&queue);
        let accept_shards = Arc::clone(&shards_seen);
        let accept_key = key.clone();
        let accept_pool = pool;
        let accept_thread = std::thread::Builder::new()
            .name("hetstream-ingress-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !accept_queue.stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let q = Arc::clone(&accept_queue);
                            let sh = Arc::clone(&accept_shards);
                            let k = accept_key.clone();
                            let p = accept_pool.clone();
                            if let Ok(h) = std::thread::Builder::new()
                                .name("hetstream-ingress-conn".into())
                                .spawn(move || serve_producer(stream, k, q, sh, p))
                            {
                                conns.push(h);
                            }
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
                for h in conns {
                    let _ = h.join();
                }
            })
            .expect("spawn ingress accept thread");
        Ok(TcpIngressServer {
            key: key.clone(),
            addr,
            queue,
            shards_seen,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A consumer over this server's queue. Multiple sources share the
    /// queue load-balanced (each record goes to exactly one).
    pub fn source(&self) -> TcpSource {
        TcpSource {
            key: self.key.clone(),
            queue: Arc::clone(&self.queue),
            shards_seen: Arc::clone(&self.shards_seen),
        }
    }

    /// Stop accepting and wake blocked connection threads.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.queue.stop.store(true, Ordering::Relaxed);
        self.queue.not_full.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpIngressServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One producer connection: HELLO handshake, then DATA frames acked
/// after enqueue.
fn serve_producer(
    mut stream: TcpStream,
    key: StreamKey,
    queue: Arc<SharedQueue>,
    shards_seen: Arc<Mutex<BTreeSet<u32>>>,
    pool: fastflow::BufPool<u8>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let stop = &queue.stop;
    let mut head = [0u8; 5];
    let mut hello = true;
    loop {
        match read_full(&mut stream, &mut head, stop) {
            Ok(n) if n == head.len() => {}
            _ => return, // EOF, shutdown, or error: drop the connection
        }
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        let kind = head[4];
        if len == 0 || len > MAX_FRAME {
            return;
        }
        let body_len = len - 1;
        match (hello, kind) {
            (true, KIND_HELLO) => {
                let mut body = vec![0u8; body_len];
                if read_full(&mut stream, &mut body, stop).unwrap_or(0) != body_len {
                    return;
                }
                if body != key.as_str().as_bytes() {
                    return; // wrong stream: refuse silently
                }
                hello = false;
            }
            (false, KIND_DATA) => {
                if body_len < 12 {
                    return;
                }
                let mut meta = [0u8; 12];
                if read_full(&mut stream, &mut meta, stop).unwrap_or(0) != meta.len() {
                    return;
                }
                let shard = u32::from_le_bytes(meta[0..4].try_into().expect("4 bytes"));
                let seq = u64::from_le_bytes(meta[4..12].try_into().expect("8 bytes"));
                let payload_len = body_len - 12;
                let mut payload = pool.acquire(payload_len);
                if read_full(&mut stream, &mut payload[..], stop).unwrap_or(0) != payload_len {
                    return;
                }
                shards_seen.lock().expect("shard set").insert(shard);
                let msg = Message {
                    shard: ShardId(shard),
                    seq,
                    payload,
                };
                if !queue.push(msg) {
                    return; // server stopping
                }
                // Ack *after* enqueue: the receipt means the consumer
                // side holds the record.
                let mut ack = [0u8; 4 + 1 + 12];
                ack[0..4].copy_from_slice(&13u32.to_le_bytes());
                ack[4] = KIND_ACK;
                ack[5..9].copy_from_slice(&shard.to_le_bytes());
                ack[9..17].copy_from_slice(&seq.to_le_bytes());
                if stream.write_all(&ack).is_err() {
                    return;
                }
            }
            _ => return, // protocol violation
        }
    }
}

/// Consumer over a [`TcpIngressServer`]'s queue. Real-time only.
pub struct TcpSource {
    key: StreamKey,
    queue: Arc<SharedQueue>,
    shards_seen: Arc<Mutex<BTreeSet<u32>>>,
}

impl Source for TcpSource {
    fn stream_key(&self) -> &StreamKey {
        &self.key
    }

    fn assigned_shards(&self) -> Vec<ShardId> {
        self.shards_seen
            .lock()
            .expect("shard set")
            .iter()
            .map(|&s| ShardId(s))
            .collect()
    }

    fn next_batch(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, IngressError> {
        Ok(self.queue.pop_many(out, max))
    }

    fn seek(&mut self, _shard: ShardId, _pos: SeqPos) -> Result<(), IngressError> {
        Err(IngressError::Unsupported(
            "seek on the real-time TCP source",
        ))
    }

    fn rewind(&mut self) -> Result<(), IngressError> {
        Err(IngressError::Unsupported(
            "rewind on the real-time TCP source",
        ))
    }

    fn commit(&mut self, _shard: ShardId, _next_seq: SequenceNo) -> Result<(), IngressError> {
        Ok(()) // no offset storage; commits are meaningful on the file log
    }
}

/// Producer over one TCP connection: batched writes, a bounded in-flight
/// window, receipts acked by the server's ACK frames (in send order).
pub struct TcpSink {
    key: StreamKey,
    writer: BufWriter<TcpStream>,
    reader: TcpStream,
    next_seq: Vec<SequenceNo>,
    pending: VecDeque<Receipt>,
    max_in_flight: usize,
}

impl TcpSink {
    /// Connect to a [`TcpIngressServer`] and handshake for `key` with
    /// `shards` sequence counters starting at 0.
    pub fn connect(
        addr: impl ToSocketAddrs,
        key: &StreamKey,
        shards: u32,
    ) -> Result<TcpSink, IngressError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Poll interval for the ack wait, not a deadline: await_one_ack
        // loops on timeout, so a backpressured consumer blocks the sink
        // (as documented) instead of erroring it out.
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        let body = key.as_str().as_bytes();
        writer.write_all(&(1 + body.len() as u32).to_le_bytes())?;
        writer.write_all(&[KIND_HELLO])?;
        writer.write_all(body)?;
        writer.flush()?;
        Ok(TcpSink {
            key: key.clone(),
            writer,
            reader,
            next_seq: vec![0; shards.max(1) as usize],
            pending: VecDeque::new(),
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
        })
    }

    /// Override the in-flight window (unacked sends tolerated before
    /// `send` blocks for acks).
    pub fn with_max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Override how often the ack wait re-polls its socket. This bounds
    /// poll latency only — never how long the sink will wait for a
    /// backpressured consumer. Mostly useful to speed up tests.
    pub fn with_ack_poll(self, interval: Duration) -> Result<Self, IngressError> {
        self.reader
            .set_read_timeout(Some(interval.max(Duration::from_millis(1))))?;
        Ok(self)
    }

    /// Block until the oldest pending receipt is acked by the server.
    ///
    /// A read-timeout wakeup is *not* an error: the server withholds
    /// acks exactly when the consumer is backpressured, and the
    /// documented contract is that the sink blocks in its in-flight
    /// window until the pipeline drains — however long that takes. A
    /// closed connection (`Ok(0)`) is still a hard [`IngressError::Closed`].
    fn await_one_ack(&mut self) -> Result<(), IngressError> {
        let mut frame = [0u8; 17];
        let mut filled = 0;
        while filled < frame.len() {
            match self.reader.read(&mut frame[filled..]) {
                Ok(0) => return Err(IngressError::Closed),
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue; // stalled consumer = backpressure, keep waiting
                }
                Err(e) => return Err(IngressError::Io(e)),
            }
        }
        let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
        if len != 13 || frame[4] != KIND_ACK {
            return Err(IngressError::Corrupt(format!(
                "expected ACK frame, got kind {} len {len}",
                frame[4]
            )));
        }
        let shard = u32::from_le_bytes(frame[5..9].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(frame[9..17].try_into().expect("8 bytes"));
        let Some(front) = self.pending.pop_front() else {
            return Err(IngressError::Corrupt("unsolicited ACK".into()));
        };
        if front.shard().0 != shard || front.seq() != seq {
            return Err(IngressError::Corrupt(format!(
                "ACK out of order: got shard {shard} seq {seq}, expected shard {} seq {}",
                front.shard(),
                front.seq()
            )));
        }
        front.mark_acked();
        Ok(())
    }
}

impl Sink for TcpSink {
    fn stream_key(&self) -> &StreamKey {
        &self.key
    }

    fn send(&mut self, shard: ShardId, payload: &[u8]) -> Result<Receipt, IngressError> {
        let counter = self
            .next_seq
            .get_mut(shard.0 as usize)
            .ok_or(IngressError::UnknownShard(shard))?;
        let seq = *counter;
        *counter += 1;
        let body_len = 12 + payload.len();
        self.writer
            .write_all(&(1 + body_len as u32).to_le_bytes())?;
        self.writer.write_all(&[KIND_DATA])?;
        self.writer.write_all(&shard.0.to_le_bytes())?;
        self.writer.write_all(&seq.to_le_bytes())?;
        self.writer.write_all(payload)?;
        let receipt = Receipt::pending(shard, seq);
        self.pending.push_back(receipt.clone());
        if self.pending.len() >= self.max_in_flight {
            // Window full: push bytes out and absorb acks until there is
            // room again — this is where server-side backpressure lands.
            self.writer.flush()?;
            while self.pending.len() >= self.max_in_flight {
                self.await_one_ack()?;
            }
        }
        Ok(receipt)
    }

    fn flush(&mut self) -> Result<(), IngressError> {
        self.writer.flush()?;
        while !self.pending.is_empty() {
            self.await_one_ack()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> StreamKey {
        StreamKey::new("live").expect("valid key")
    }

    #[test]
    fn produce_ack_consume_over_tcp() {
        let server = TcpIngressServer::bind("127.0.0.1:0", &key(), fastflow::BufPool::new(), 64)
            .expect("bind");
        let mut sink = TcpSink::connect(server.addr(), &key(), 2).expect("connect");
        let mut receipts = Vec::new();
        for i in 0..10u32 {
            receipts.push(
                sink.send(ShardId(i % 2), format!("rec-{i}").as_bytes())
                    .expect("send"),
            );
        }
        sink.flush().expect("flush");
        assert!(receipts.iter().all(Receipt::is_acked));
        let mut src = server.source();
        let mut msgs = Vec::new();
        while msgs.len() < 10 {
            if src.next_batch(&mut msgs, 16).expect("pop") == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert_eq!(msgs.len(), 10);
        // Per-shard order is preserved and sequences are dense.
        for shard in 0..2u32 {
            let seqs: Vec<u64> = msgs
                .iter()
                .filter(|m| m.shard.0 == shard)
                .map(|m| m.seq)
                .collect();
            assert_eq!(seqs, (0..5).collect::<Vec<u64>>());
        }
        assert_eq!(src.assigned_shards(), vec![ShardId(0), ShardId(1)]);
        assert!(matches!(
            src.seek(ShardId(0), SeqPos::Beginning),
            Err(IngressError::Unsupported(_))
        ));
        server.stop();
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_deadlock() {
        // Queue of 4, window of 4, 64 records: the producer must block on
        // acks while the consumer drains slowly — and still finish.
        let server = TcpIngressServer::bind("127.0.0.1:0", &key(), fastflow::BufPool::new(), 4)
            .expect("bind");
        let addr = server.addr();
        let producer = std::thread::spawn(move || {
            let mut sink = TcpSink::connect(addr, &key(), 1)
                .expect("connect")
                .with_max_in_flight(4);
            for i in 0..64u8 {
                sink.send(ShardId(0), &[i; 100]).expect("send");
            }
            sink.flush().expect("flush");
        });
        let mut src = server.source();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while got.len() < 64 {
            assert!(
                std::time::Instant::now() < deadline,
                "backpressured transfer deadlocked ({} of 64)",
                got.len()
            );
            if src.next_batch(&mut got, 3).expect("pop") == 0 {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                // A slow consumer: drain in dribbles.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        producer.join().expect("producer");
        assert_eq!(got.len(), 64);
        let seqs: Vec<u64> = got.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, (0..64).collect::<Vec<u64>>());
        server.stop();
    }

    #[test]
    fn consumer_stalled_past_read_timeout_blocks_producer_instead_of_erroring() {
        // The exact condition backpressure exists for: the consumer goes
        // quiet for longer than the sink's socket read timeout. The
        // sink must keep waiting for acks (blocked, per the module
        // contract), not fail with Io(TimedOut).
        let server = TcpIngressServer::bind("127.0.0.1:0", &key(), fastflow::BufPool::new(), 1)
            .expect("bind");
        let addr = server.addr();
        let producer = std::thread::spawn(move || {
            let mut sink = TcpSink::connect(addr, &key(), 1)
                .expect("connect")
                .with_max_in_flight(1)
                .with_ack_poll(Duration::from_millis(20))
                .expect("ack poll");
            for i in 0..3u8 {
                sink.send(ShardId(0), &[i; 50])
                    .expect("send must block through the stall, not time out");
            }
            sink.flush().expect("flush");
        });
        // Stall well past several poll intervals before draining.
        std::thread::sleep(Duration::from_millis(300));
        let mut src = server.source();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while got.len() < 3 {
            assert!(std::time::Instant::now() < deadline, "transfer wedged");
            if src.next_batch(&mut got, 4).expect("pop") == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        producer.join().expect("producer survived the stall");
        assert_eq!(got.iter().map(|m| m.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        server.stop();
    }

    #[test]
    fn wrong_stream_key_is_refused() {
        let server = TcpIngressServer::bind("127.0.0.1:0", &key(), fastflow::BufPool::new(), 16)
            .expect("bind");
        let other = StreamKey::new("not-live").expect("valid");
        let mut sink = TcpSink::connect(server.addr(), &other, 1).expect("connect");
        // The server drops the connection on the mismatched HELLO; the
        // failure surfaces on the ack path.
        let _ = sink.send(ShardId(0), b"x");
        assert!(sink.flush().is_err(), "mismatched key must not ack");
        server.stop();
    }
}
