//! Load-balanced consumer groups: shard assignment across members.
//!
//! The coordinator is in-process (the repo's streams are files and
//! sockets, not a brokered cluster), but the contract matches the
//! brokered shape: members join and leave, every membership change bumps
//! a *generation*, and each member derives its shard slice from the
//! current member list by rank — shard `s` belongs to the member whose
//! rank equals `s mod member_count`. Sources poll the generation at each
//! `next_batch` and rebuild their reader sets when it moves, resuming
//! newly acquired shards from the group's committed offsets.
//!
//! Exactly-once across a rebalance therefore holds under *clean handoff*:
//! a leaving member commits its offsets before [`GroupMembership::leave`]
//! (or drop). A member killed mid-batch re-delivers from its last commit
//! — at-least-once — and the consumer's egress watermark dedup (DESIGN.md
//! §"Ingress/egress") upgrades that back to exactly-once re-emit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::ShardId;

#[derive(Debug, Default)]
struct GroupState {
    /// Member ids in join order; rank = index.
    members: Vec<u64>,
    next_id: u64,
}

/// In-process coordinator for one consumer group.
#[derive(Debug, Clone, Default)]
pub struct GroupCoordinator {
    state: Arc<Mutex<GroupState>>,
    generation: Arc<AtomicU64>,
}

impl GroupCoordinator {
    /// A coordinator with no members yet.
    pub fn new() -> GroupCoordinator {
        GroupCoordinator::default()
    }

    /// Join the group; the returned membership carries this member's
    /// identity and tracks rebalances. Bumps the generation.
    pub fn join(&self) -> GroupMembership {
        let id = {
            let mut s = self.state.lock().expect("group state");
            s.next_id += 1;
            let id = s.next_id;
            s.members.push(id);
            id
        };
        self.generation.fetch_add(1, Ordering::AcqRel);
        GroupMembership {
            id,
            state: Arc::clone(&self.state),
            generation: Arc::clone(&self.generation),
        }
    }

    /// The current rebalance generation (bumps on every join/leave).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// How many members are currently in the group.
    pub fn member_count(&self) -> usize {
        self.state.lock().expect("group state").members.len()
    }
}

/// One member's view of a consumer group; dropping it leaves the group.
#[derive(Debug)]
pub struct GroupMembership {
    id: u64,
    state: Arc<Mutex<GroupState>>,
    generation: Arc<AtomicU64>,
}

impl GroupMembership {
    /// The rebalance generation this membership currently observes.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The slice of `all_shards` assigned to this member under the
    /// current membership: shard at position `i` goes to rank `i mod n`.
    /// A departed member gets nothing.
    pub fn assigned(&self, all_shards: &[ShardId]) -> Vec<ShardId> {
        let s = self.state.lock().expect("group state");
        let n = s.members.len();
        let Some(rank) = s.members.iter().position(|&m| m == self.id) else {
            return Vec::new();
        };
        all_shards
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n == rank)
            .map(|(_, &sh)| sh)
            .collect()
    }

    /// Leave the group explicitly (drop does the same). Commit your
    /// offsets first for a clean — exactly-once — handoff.
    pub fn leave(self) {
        // Drop impl does the work.
    }
}

impl Drop for GroupMembership {
    fn drop(&mut self) {
        let mut s = self.state.lock().expect("group state");
        if let Some(i) = s.members.iter().position(|&m| m == self.id) {
            s.members.remove(i);
            drop(s);
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: u32) -> Vec<ShardId> {
        (0..n).map(ShardId).collect()
    }

    #[test]
    fn members_partition_shards_without_overlap() {
        let coord = GroupCoordinator::new();
        let a = coord.join();
        let b = coord.join();
        let all = shards(5);
        let sa = a.assigned(&all);
        let sb = b.assigned(&all);
        assert_eq!(sa.len() + sb.len(), 5);
        for s in &all {
            assert_eq!(
                sa.contains(s) as u32 + sb.contains(s) as u32,
                1,
                "shard {s} must be owned by exactly one member"
            );
        }
    }

    #[test]
    fn leave_bumps_generation_and_reassigns_everything() {
        let coord = GroupCoordinator::new();
        let a = coord.join();
        let b = coord.join();
        let g = a.generation();
        let all = shards(4);
        assert_eq!(a.assigned(&all).len(), 2);
        b.leave();
        assert!(a.generation() > g, "leave must bump the generation");
        assert_eq!(a.assigned(&all), all, "sole survivor owns every shard");
    }

    #[test]
    fn single_member_owns_all_and_departed_owns_none() {
        let coord = GroupCoordinator::new();
        let a = coord.join();
        let all = shards(3);
        assert_eq!(a.assigned(&all), all);
        let b = coord.join();
        let before = b.assigned(&all);
        assert!(!before.is_empty());
        drop(a);
        assert_eq!(b.assigned(&all), all);
        assert_eq!(coord.member_count(), 1);
    }
}
