//! `spar` — the paper's primary contribution, rebuilt in Rust: a
//! high-level, annotation-style DSL for expressing stream parallelism.
//!
//! SPar (Griebler et al.) lets the programmer annotate sequential C++ with
//! five attributes — `ToStream`, `Stage`, `Input`, `Output`, `Replicate` —
//! and source-to-source compiles them into FastFlow runtime calls. This
//! crate reproduces that contract:
//!
//! * the [`to_stream!`] macro is the annotation front end (its expansion is
//!   the source-to-source transformation);
//! * [`ToStream`]/[`StreamStage`] is the structured builder the macro
//!   targets, generating a [`fastflow`] pipeline/farm graph;
//! * order preservation (`-spar_ordered`) and per-replica state factories
//!   (the hook needed to hold non-thread-safe GPU objects per worker, §IV-A
//!   of the paper) are first-class.
//!
//! # Quick start
//!
//! ```
//! let mut doubled = Vec::new();
//! spar::to_stream! {
//!     ordered;
//!     source |em| {
//!         for i in 0..8u64 {
//!             em.send(i);
//!         }
//!     };
//!     stage(input(i), replicate = 2) |x: u64| -> u64 { x * 2 };
//!     last_stage |x: u64| { doubled.push(x); };
//! }
//! assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! ```

pub mod builder;
pub mod macros;

#[allow(deprecated)]
pub use builder::StreamBuilder;
pub use builder::{SparConfig, StreamStage, ToStream};
// Re-exports the macro expansion relies on.
pub use fastflow::{Emitter, Node, SchedPolicy, WaitStrategy};
// Fail-soft error model (see fastflow::error): stages emit typed errors
// downstream instead of unwinding, with bounded retry.
pub use fastflow::{try_map, try_map_with, FaultPolicy, RunReport, StageError, TryMapNode};
