//! The `to_stream!` macro — SPar's C++11 attribute annotations as a Rust
//! declarative macro.
//!
//! SPar's compiler parses `[[spar::ToStream]]`, `[[spar::Stage]]`,
//! `[[spar::Input(...)]]`, `[[spar::Output(...)]]` and
//! `[[spar::Replicate(n)]]` annotations and rewrites the code into FastFlow
//! calls. Here the macro expansion *is* that source-to-source
//! transformation: the grammar mirrors the annotations and the expansion
//! targets [`ToStream`](crate::ToStream)/[`StreamStage`](crate::StreamStage),
//! which generate the `fastflow` runtime graph.
//!
//! `input(...)`/`output(...)` lists are accepted for annotation fidelity
//! and self-documentation, but carry no semantics: in Rust the data flowing
//! between stages is exactly the closure argument/return types, checked by
//! the compiler instead of declared by the programmer (a productivity bug
//! class SPar's C++ front end has to diagnose itself).
//!
//! # Grammar
//!
//! ```text
//! to_stream! {
//!     [ordered;] [unordered;] [config(EXPR);]
//!     source [ (output(IDENTS)) ] |em| BLOCK ;
//!     stage(ATTRS) |arg: InTy| -> OutTy BLOCK ;   // zero or more
//!     last_stage [ (ATTRS) ] |arg: InTy| BLOCK ;
//! }
//! // ATTRS ::= attr [, attr]*      (any order)
//! // attr  ::= input(IDENTS) | output(IDENTS) | replicate = EXPR
//! ```
//!
//! # Example — the paper's Listing 1, in Rust
//!
//! ```
//! let dim = 16usize;
//! let workers = 3usize;
//! let mut shown = 0usize;
//! spar::to_stream! {
//!     ordered;
//!     source(output(i)) |em| {
//!         for i in 0..dim {
//!             em.send(i);
//!         }
//!     };
//!     stage(input(i, dim), output(img), replicate = workers)
//!     |i: usize| -> (usize, Vec<u8>) {
//!         let img = (0..dim).map(|j| ((i * j) % 256) as u8).collect();
//!         (i, img)
//!     };
//!     last_stage(input(img)) |line: (usize, Vec<u8>)| {
//!         assert_eq!(line.0, shown);
//!         shown += 1;
//!     };
//! }
//! assert_eq!(shown, dim);
//! ```

/// Annotate a stream region. See the [module docs](crate::macros) for the
/// grammar and an example.
#[macro_export]
macro_rules! to_stream {
    // --- region-level attributes ---
    ( ordered; $($rest:tt)* ) => {
        $crate::to_stream!(@src [$crate::ToStream::new().ordered(true)] $($rest)*)
    };
    ( unordered; $($rest:tt)* ) => {
        $crate::to_stream!(@src [$crate::ToStream::new().ordered(false)] $($rest)*)
    };
    ( config($cfg:expr); $($rest:tt)* ) => {
        $crate::to_stream!(@src [$crate::ToStream::annotate($cfg)] $($rest)*)
    };
    ( source $($rest:tt)* ) => {
        $crate::to_stream!(@src [$crate::ToStream::new()] source $($rest)*)
    };

    // --- source: with or without an output(...) annotation ---
    (@src [$b:expr] source( output($($o:tt)*) ) |$em:ident| $body:block; $($rest:tt)*) => {
        $crate::to_stream!(@stages [($b).source(move |$em: &mut $crate::Emitter<'_, _>| $body)] $($rest)*)
    };
    (@src [$b:expr] source |$em:ident| $body:block; $($rest:tt)*) => {
        $crate::to_stream!(@stages [($b).source(move |$em: &mut $crate::Emitter<'_, _>| $body)] $($rest)*)
    };

    // --- middle stages ---
    (@stages [$p:expr] stage( $($attrs:tt)* ) |$arg:ident : $inty:ty| -> $outty:ty $body:block; $($rest:tt)*) => {
        $crate::to_stream!(@stages
            [$crate::__spar_stage!([$p] [1usize] [move |$arg: $inty| -> $outty { $body }] $($attrs)*)]
            $($rest)*)
    };

    // --- last stage: with or without attributes ---
    (@stages [$p:expr] last_stage( $($attrs:tt)* ) |$arg:ident : $inty:ty| $body:block $(;)?) => {
        ($p).last_stage(|$arg: $inty| $body)
    };
    (@stages [$p:expr] last_stage |$arg:ident : $inty:ty| $body:block $(;)?) => {
        ($p).last_stage(|$arg: $inty| $body)
    };
}

/// Internal: fold `stage(...)` attributes, extracting `replicate = n` and
/// discarding `input(...)`/`output(...)` documentation attributes.
#[doc(hidden)]
#[macro_export]
macro_rules! __spar_stage {
    // all attributes consumed -> apply
    ([$p:expr] [$rep:expr] [$f:expr]) => {
        ($p).stage($rep, $f)
    };
    ([$p:expr] [$rep:expr] [$f:expr] replicate = $n:expr) => {
        ($p).stage($n, $f)
    };
    ([$p:expr] [$rep:expr] [$f:expr] replicate = $n:expr, $($rest:tt)*) => {
        $crate::__spar_stage!([$p] [$n] [$f] $($rest)*)
    };
    ([$p:expr] [$rep:expr] [$f:expr] input($($i:tt)*)) => {
        $crate::__spar_stage!([$p] [$rep] [$f])
    };
    ([$p:expr] [$rep:expr] [$f:expr] input($($i:tt)*), $($rest:tt)*) => {
        $crate::__spar_stage!([$p] [$rep] [$f] $($rest)*)
    };
    ([$p:expr] [$rep:expr] [$f:expr] output($($o:tt)*)) => {
        $crate::__spar_stage!([$p] [$rep] [$f])
    };
    ([$p:expr] [$rep:expr] [$f:expr] output($($o:tt)*), $($rest:tt)*) => {
        $crate::__spar_stage!([$p] [$rep] [$f] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macro_sequential_region() {
        let mut out = Vec::new();
        crate::to_stream! {
            source |em| {
                for i in 0..10u64 {
                    em.send(i);
                }
            };
            stage(input(i)) |x: u64| -> u64 { x * 2 };
            last_stage |x: u64| { out.push(x); };
        }
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn macro_replicated_ordered() {
        let workers = 4usize;
        let mut out = Vec::new();
        crate::to_stream! {
            ordered;
            source(output(i)) |em| {
                for i in 0..200u64 {
                    em.send(i);
                }
            };
            stage(input(i), output(y), replicate = workers) |x: u64| -> u64 { x + 7 };
            last_stage(input(y)) |x: u64| { out.push(x); };
        }
        assert_eq!(out, (0..200).map(|x| x + 7).collect::<Vec<u64>>());
    }

    #[test]
    fn macro_unordered_region() {
        let mut out = Vec::new();
        crate::to_stream! {
            unordered;
            source |em| {
                for i in 0..100u32 {
                    em.send(i);
                }
            };
            stage(replicate = 3) |x: u32| -> u32 { x ^ 0xFF };
            last_stage |x: u32| { out.push(x); };
        }
        out.sort_unstable();
        let mut expected: Vec<u32> = (0..100).map(|x| x ^ 0xFF).collect();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn macro_two_middle_stages() {
        let mut out = Vec::new();
        crate::to_stream! {
            ordered;
            source |em| {
                for i in 1..=20u64 {
                    em.send(i);
                }
            };
            stage(replicate = 2) |x: u64| -> u64 { x * x };
            stage(input(sq)) |x: u64| -> u64 { x + 1 };
            last_stage |x: u64| { out.push(x); };
        }
        assert_eq!(out, (1..=20).map(|x| x * x + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn macro_with_explicit_config() {
        let cfg = crate::SparConfig {
            queue_capacity: 8,
            ordered: true,
            ..Default::default()
        };
        let mut n = 0u32;
        crate::to_stream! {
            config(cfg);
            source |em| {
                for i in 0..50u32 {
                    em.send(i);
                }
            };
            stage(replicate = 2) |x: u32| -> u32 { x };
            last_stage |_x: u32| { n += 1; };
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn macro_replicate_attr_in_any_position() {
        let mut out = Vec::new();
        crate::to_stream! {
            ordered;
            source |em| {
                for i in 0..30u64 {
                    em.send(i);
                }
            };
            stage(replicate = 3, input(x), output(y)) |x: u64| -> u64 { x * 10 };
            last_stage |x: u64| { out.push(x); };
        }
        assert_eq!(out, (0..30).map(|x| x * 10).collect::<Vec<u64>>());
    }
}
