//! The `ToStream` builder: SPar's annotation semantics as a fluent API.
//!
//! This is the *target* of the [`to_stream!`](crate::to_stream) macro, in the
//! same way FastFlow calls are the target of the SPar source-to-source
//! compiler; it can also be used directly.
//!
//! Attribute mapping (paper §III-C → this API):
//!
//! | SPar attribute | Here |
//! |---|---|
//! | `[[spar::ToStream]]`  | [`ToStream::new`] / [`ToStream::annotate`] |
//! | `[[spar::Stage]]`     | [`StreamStage::stage`] (and variants) |
//! | `[[spar::Replicate(n)]]` | the `replicate` argument |
//! | `[[spar::Input(...)]]` / `[[spar::Output(...)]]` | closure captures and argument/return types — Rust's ownership rules make the data-flow declaration implicit and compiler-checked |
//! | `-spar_ordered` flag  | [`ToStream::ordered`] |

use fastflow::node::{self, Node};
use fastflow::pipeline::{Pipeline, PipelineBuilder};
use fastflow::{Emitter, SchedPolicy, WaitStrategy};
use telemetry::Recorder;

/// Configuration of a stream region (SPar's `ToStream` scope).
#[derive(Clone, Copy, Debug)]
pub struct SparConfig {
    /// Capacity of the queues the generated runtime uses between stages.
    pub queue_capacity: usize,
    /// Wait strategy of the generated runtime queues.
    pub wait: WaitStrategy,
    /// Preserve stream order across replicated stages (SPar's
    /// `-spar_ordered` compiler flag).
    pub ordered: bool,
    /// Scheduling policy for replicated stages.
    pub policy: SchedPolicy,
}

impl Default for SparConfig {
    fn default() -> Self {
        SparConfig {
            queue_capacity: 64,
            wait: WaitStrategy::default(),
            ordered: true,
            policy: SchedPolicy::default(),
        }
    }
}

/// A stream region being annotated — SPar's `[[spar::ToStream]]`.
#[derive(Default)]
pub struct ToStream {
    cfg: SparConfig,
    rec: Recorder,
}

/// Alias once used by the prelude and examples.
#[deprecated(since = "0.1.0", note = "use `ToStream`")]
pub type StreamBuilder = ToStream;

impl ToStream {
    /// Open a stream region with default configuration (ordered, blocking
    /// queues of capacity 64).
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a stream region with explicit configuration.
    pub fn annotate(cfg: SparConfig) -> Self {
        ToStream {
            cfg,
            rec: Recorder::default(),
        }
    }

    /// Attach a telemetry recorder: the generated runtime registers a
    /// [`telemetry::StageMetrics`] per stage and farm replica (named
    /// `source`, `stage1`, `stage2`, ..., `sink`). A disabled recorder (the
    /// default) makes every probe a no-op branch — the annotated region is
    /// unchanged.
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Toggle order preservation across replicated stages.
    pub fn ordered(mut self, ordered: bool) -> Self {
        self.cfg.ordered = ordered;
        self
    }

    /// Set the inter-stage queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity;
        self
    }

    /// Set the queue wait strategy.
    pub fn wait(mut self, wait: WaitStrategy) -> Self {
        self.cfg.wait = wait;
        self
    }

    /// Set the scheduling policy for replicated stages.
    pub fn policy(mut self, policy: SchedPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// The stream-generation loop (the code between `ToStream` and the first
    /// `Stage` in the paper's Listing 1): runs on its own thread and emits
    /// stream items.
    pub fn source<T, F>(self, f: F) -> StreamStage<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Emitter<'_, T>) + Send + 'static,
    {
        let inner = Pipeline::builder()
            .capacity(self.cfg.queue_capacity)
            .wait(self.cfg.wait)
            .recorder(self.rec)
            .source(f);
        StreamStage {
            cfg: self.cfg,
            inner,
        }
    }

    /// Convenience: generate the stream from an iterator.
    pub fn source_iter<I>(self, iter: I) -> StreamStage<I::Item>
    where
        I: IntoIterator + Send + 'static,
        I::Item: Send + 'static,
    {
        self.source(move |em| {
            for item in iter {
                if !em.send(item) {
                    break;
                }
            }
        })
    }
}

/// A stream region with at least the source attached; append `Stage`s.
pub struct StreamStage<T: Send + 'static> {
    cfg: SparConfig,
    inner: PipelineBuilder<T>,
}

impl<T: Send + 'static> StreamStage<T> {
    /// `[[spar::Stage, spar::Replicate(replicate)]]` over a pure function.
    ///
    /// `replicate == 1` produces a plain sequential stage; `replicate > 1`
    /// produces a farm (ordered if the region is ordered). The closure is
    /// cloned once per replica, which is what makes the stage *stateless*
    /// in SPar's sense — per-replica mutable state needs
    /// [`stage_factory`](Self::stage_factory).
    pub fn stage<U, F>(self, replicate: usize, f: F) -> StreamStage<U>
    where
        U: Send + 'static,
        F: FnMut(T) -> U + Send + Clone + 'static,
    {
        self.stage_factory(replicate, move |_replica| f.clone())
    }

    /// A replicated stage whose per-replica worker function is built by
    /// `factory(replica_id)` on the worker's own thread context.
    ///
    /// This is the hook the paper's GPU integrations need: each replica can
    /// own non-thread-safe handles (an OpenCL `cl_kernel` analogue) and run
    /// per-thread initialization (`cudaSetDevice`).
    pub fn stage_factory<U, F, G>(self, replicate: usize, mut factory: G) -> StreamStage<U>
    where
        U: Send + 'static,
        F: FnMut(T) -> U + Send + 'static,
        G: FnMut(usize) -> F,
    {
        assert!(replicate >= 1, "Replicate(n) requires n >= 1");
        let cfg = self.cfg;
        let inner = if replicate == 1 {
            self.inner.node(node::map(factory(0)))
        } else {
            self.inner.farm_with(
                replicate,
                move |replica| node::map(factory(replica)),
                cfg.policy,
                cfg.ordered,
            )
        };
        StreamStage { cfg, inner }
    }

    /// A replicated stage over a full [`Node`] (multi-output, EOS hooks).
    pub fn stage_node<N, G>(self, replicate: usize, factory: G) -> StreamStage<N::Out>
    where
        N: Node<In = T>,
        G: FnMut(usize) -> N,
    {
        assert!(replicate >= 1, "Replicate(n) requires n >= 1");
        let cfg = self.cfg;
        let inner = if replicate == 1 {
            let mut factory = factory;
            self.inner.node(factory(0))
        } else {
            self.inner
                .farm_with(replicate, factory, cfg.policy, cfg.ordered)
        };
        StreamStage { cfg, inner }
    }

    /// A feedback stage (the wrap-around farm the SPar→FastFlow toolchain
    /// can target): each item circulates through the replicas until the
    /// worker returns [`fastflow::feedback::Loop::Emit`]. Output order is
    /// not preserved (feedback and ordering are mutually exclusive, as in
    /// FastFlow's wrap-around farms).
    pub fn stage_feedback<U, W, G>(self, replicate: usize, factory: G) -> StreamStage<U>
    where
        U: Send + 'static,
        W: FnMut(T) -> fastflow::feedback::Loop<T, U> + Send + 'static,
        G: FnMut(usize) -> W,
    {
        assert!(replicate >= 1, "Replicate(n) requires n >= 1");
        let cfg = self.cfg;
        let inner = self.inner.feedback_farm(replicate, factory);
        StreamStage { cfg, inner }
    }

    /// The final `Stage` (the collector): runs on the calling thread and
    /// returns when the stream region completes, like exiting the annotated
    /// loop in SPar.
    pub fn last_stage<F>(self, f: F)
    where
        F: FnMut(T),
    {
        self.inner.for_each(f)
    }

    /// Terminal convenience: collect the stream into a `Vec`.
    pub fn collect(self) -> Vec<T> {
        self.inner.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_region_matches_loop() {
        let out = ToStream::new()
            .source_iter(0..50u64)
            .stage(1, |x| x * 2)
            .collect();
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn replicated_ordered_stage_preserves_order() {
        let out = ToStream::new()
            .source_iter(0..300u64)
            .stage(4, |x| x + 1000)
            .collect();
        assert_eq!(out, (0..300).map(|x| x + 1000).collect::<Vec<u64>>());
    }

    #[test]
    fn unordered_region_still_processes_everything() {
        let mut out = ToStream::new()
            .ordered(false)
            .source_iter(0..300u64)
            .stage(4, |x| x + 1)
            .collect();
        out.sort_unstable();
        assert_eq!(out, (1..=300).collect::<Vec<u64>>());
    }

    #[test]
    fn multi_stage_region() {
        let out = ToStream::new()
            .source_iter(1..=20u64)
            .stage(3, |x| x * x)
            .stage(1, |x| x + 1)
            .collect();
        assert_eq!(out, (1..=20).map(|x| x * x + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn last_stage_runs_in_order() {
        let mut seen = Vec::new();
        ToStream::new()
            .source_iter(0..100u32)
            .stage(5, |x| x)
            .last_stage(|x| seen.push(x));
        assert_eq!(seen, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn stage_factory_gives_each_replica_its_own_state() {
        // Each replica stamps items with its own id; with round-robin over
        // 3 replicas, ids must cycle 0,1,2,0,1,2,...
        let out = ToStream::new()
            .source_iter(0..9u64)
            .stage_factory(3, |replica| move |x: u64| (x, replica))
            .collect();
        for (i, &(x, rep)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
            assert_eq!(rep, i % 3);
        }
    }

    #[test]
    fn on_demand_policy_processes_everything() {
        let mut out = ToStream::new()
            .policy(SchedPolicy::OnDemand)
            .source_iter(0..200u64)
            .stage(4, |x| x * 3)
            .collect();
        out.sort_unstable();
        let mut expected: Vec<u64> = (0..200).map(|x| x * 3).collect();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn feedback_stage_iterates_until_done() {
        // Integer square root by iteration: refine until stable.
        let mut out = ToStream::new()
            .source_iter([100u64, 64, 2, 1_000_000].map(|n| (n, n.max(1))))
            .stage_feedback(3, |_| {
                |(n, guess): (u64, u64)| {
                    let next = (guess + n / guess.max(1)) / 2;
                    if next == guess || next == guess - 1 && next * next <= n {
                        fastflow::feedback::Loop::Emit((n, next))
                    } else {
                        fastflow::feedback::Loop::Recycle((n, next))
                    }
                }
            })
            .collect();
        out.sort_unstable();
        for (n, root) in out {
            assert!(
                root * root <= n && (root + 1) * (root + 1) > n,
                "isqrt({n}) = {root}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "Replicate(n) requires n >= 1")]
    fn replicate_zero_panics() {
        let _ = ToStream::new().source_iter(0..1u32).stage(0, |x| x);
    }
}
