//! Randomized tests for the queueing-network model: makespans must respect
//! the classic bounds for any workload. Workloads come from the in-tree
//! seeded RNG — deterministic and offline.
//!
//! For a single replicated stage with per-item costs `c_i` and `w` workers:
//!   max(Σc_i / w, max c_i)  ≤  makespan  ≤  Σc_i
//! and adding workers or removing work can never lengthen the makespan.

use perfmodel::pipe::{Phase, PipeModel};
use simtime::{SimDuration, XorShift64};

fn model(costs: &[u64], workers: usize, cap: usize) -> f64 {
    let costs: Vec<SimDuration> = costs.iter().map(|&c| SimDuration::from_nanos(c)).collect();
    let n = costs.len();
    PipeModel::new(n, |_| SimDuration::ZERO)
        .buffer_cap(cap)
        .stage("work", workers, move |i| vec![Phase::Cpu(costs[i])])
        .run()
        .makespan
        .as_secs_f64()
}

fn random_costs(rng: &mut XorShift64, max_len: usize, max_cost: u64) -> Vec<u64> {
    (0..rng.range_usize(1, max_len))
        .map(|_| rng.range_u64(1, max_cost))
        .collect()
}

fn for_cases(cases: u64, mut f: impl FnMut(&mut XorShift64)) {
    for case in 0..cases {
        let mut rng = XorShift64::new(0x9171E ^ case);
        f(&mut rng);
    }
}

#[test]
fn makespan_respects_classic_bounds() {
    for_cases(32, |rng| {
        let costs = random_costs(rng, 100, 10_000);
        let workers = rng.range_usize(1, 8);
        let cap = rng.range_usize(1, 16);
        let total: u64 = costs.iter().sum();
        let longest = *costs.iter().max().expect("non-empty");
        let ms = model(&costs, workers, cap);
        let lower = (total as f64 / workers as f64).max(longest as f64) * 1e-9;
        let upper = total as f64 * 1e-9;
        assert!(
            ms + 1e-12 >= lower,
            "makespan {ms} below lower bound {lower}"
        );
        assert!(
            ms <= upper + 1e-12,
            "makespan {ms} above serial bound {upper}"
        );
    });
}

#[test]
fn more_workers_never_hurt() {
    for_cases(32, |rng| {
        let costs = random_costs(rng, 80, 10_000);
        let workers = rng.range_usize(1, 6);
        let a = model(&costs, workers, 8);
        let b = model(&costs, workers + 1, 8);
        assert!(b <= a + 1e-12, "w={workers}: {a} -> {b}");
    });
}

#[test]
fn single_worker_makespan_is_exactly_serial() {
    for_cases(32, |rng| {
        let costs = random_costs(rng, 60, 10_000);
        let total: u64 = costs.iter().sum();
        let ms = model(&costs, 1, 4);
        assert!((ms - total as f64 * 1e-9).abs() < 1e-12);
    });
}

#[test]
fn shared_capacity_one_resource_serializes() {
    for_cases(32, |rng| {
        // Every item needs the same capacity-1 server: makespan == Σ costs
        // regardless of worker count.
        let costs = random_costs(rng, 60, 5_000);
        let workers = rng.range_usize(1, 6);
        let total: u64 = costs.iter().sum();
        let durs: Vec<SimDuration> = costs.iter().map(|&c| SimDuration::from_nanos(c)).collect();
        let n = durs.len();
        let mut m = PipeModel::new(n, |_| SimDuration::ZERO);
        let srv = m.add_server("r", 1);
        let ms = m
            .stage("s", workers, move |i| {
                vec![Phase::Resource {
                    server: srv,
                    dur: durs[i],
                }]
            })
            .run()
            .makespan;
        assert_eq!(ms.as_nanos(), total);
    });
}

#[test]
fn two_stage_pipeline_bounded_by_bottleneck_and_serial() {
    for_cases(32, |rng| {
        let costs_a = random_costs(rng, 50, 5_000);
        let scale_b = rng.range_u64(1, 4);
        let n = costs_a.len();
        let costs_b: Vec<u64> = costs_a.iter().map(|&c| c * scale_b).collect();
        let (ta, tb): (u64, u64) = (costs_a.iter().sum(), costs_b.iter().sum());
        let da: Vec<SimDuration> = costs_a
            .iter()
            .map(|&c| SimDuration::from_nanos(c))
            .collect();
        let db: Vec<SimDuration> = costs_b
            .iter()
            .map(|&c| SimDuration::from_nanos(c))
            .collect();
        let ms = PipeModel::new(n, |_| SimDuration::ZERO)
            .stage("a", 1, move |i| vec![Phase::Cpu(da[i])])
            .stage("b", 1, move |i| vec![Phase::Cpu(db[i])])
            .run()
            .makespan
            .as_nanos();
        assert!(ms >= ta.max(tb), "below bottleneck: {ms} < {}", ta.max(tb));
        assert!(ms <= ta + tb, "above serial: {ms} > {}", ta + tb);
    });
}
