//! Property tests for the queueing-network model: makespans must respect
//! the classic bounds for any workload.
//!
//! For a single replicated stage with per-item costs `c_i` and `w` workers:
//!   max(Σc_i / w, max c_i)  ≤  makespan  ≤  Σc_i
//! and adding workers or removing work can never lengthen the makespan.

use perfmodel::pipe::{Phase, PipeModel};
use proptest::collection::vec;
use proptest::prelude::*;
use simtime::SimDuration;

fn model(costs: &[u64], workers: usize, cap: usize) -> f64 {
    let costs: Vec<SimDuration> = costs.iter().map(|&c| SimDuration::from_nanos(c)).collect();
    let n = costs.len();
    PipeModel::new(n, |_| SimDuration::ZERO)
        .buffer_cap(cap)
        .stage("work", workers, move |i| vec![Phase::Cpu(costs[i])])
        .run()
        .makespan
        .as_secs_f64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn makespan_respects_classic_bounds(
        costs in vec(1u64..10_000, 1..100),
        workers in 1usize..8,
        cap in 1usize..16,
    ) {
        let total: u64 = costs.iter().sum();
        let longest = *costs.iter().max().expect("non-empty");
        let ms = model(&costs, workers, cap);
        let lower = (total as f64 / workers as f64).max(longest as f64) * 1e-9;
        let upper = total as f64 * 1e-9;
        prop_assert!(ms + 1e-12 >= lower, "makespan {ms} below lower bound {lower}");
        prop_assert!(ms <= upper + 1e-12, "makespan {ms} above serial bound {upper}");
    }

    #[test]
    fn more_workers_never_hurt(
        costs in vec(1u64..10_000, 1..80),
        workers in 1usize..6,
    ) {
        let a = model(&costs, workers, 8);
        let b = model(&costs, workers + 1, 8);
        prop_assert!(b <= a + 1e-12, "w={workers}: {a} -> {b}");
    }

    #[test]
    fn single_worker_makespan_is_exactly_serial(costs in vec(1u64..10_000, 1..60)) {
        let total: u64 = costs.iter().sum();
        let ms = model(&costs, 1, 4);
        prop_assert!((ms - total as f64 * 1e-9).abs() < 1e-12);
    }

    #[test]
    fn shared_capacity_one_resource_serializes(
        costs in vec(1u64..5_000, 1..60),
        workers in 1usize..6,
    ) {
        // Every item needs the same capacity-1 server: makespan == Σ costs
        // regardless of worker count.
        let total: u64 = costs.iter().sum();
        let durs: Vec<SimDuration> = costs.iter().map(|&c| SimDuration::from_nanos(c)).collect();
        let n = durs.len();
        let mut m = PipeModel::new(n, |_| SimDuration::ZERO);
        let srv = m.add_server("r", 1);
        let ms = m
            .stage("s", workers, move |i| {
                vec![Phase::Resource { server: srv, dur: durs[i] }]
            })
            .run()
            .makespan;
        prop_assert_eq!(ms.as_nanos(), total);
    }

    #[test]
    fn two_stage_pipeline_bounded_by_bottleneck_and_serial(
        costs_a in vec(1u64..5_000, 1..50),
        scale_b in 1u64..4,
    ) {
        let n = costs_a.len();
        let costs_b: Vec<u64> = costs_a.iter().map(|&c| c * scale_b).collect();
        let (ta, tb): (u64, u64) = (costs_a.iter().sum(), costs_b.iter().sum());
        let da: Vec<SimDuration> = costs_a.iter().map(|&c| SimDuration::from_nanos(c)).collect();
        let db: Vec<SimDuration> = costs_b.iter().map(|&c| SimDuration::from_nanos(c)).collect();
        let ms = PipeModel::new(n, |_| SimDuration::ZERO)
            .stage("a", 1, move |i| vec![Phase::Cpu(da[i])])
            .stage("b", 1, move |i| vec![Phase::Cpu(db[i])])
            .run()
            .makespan
            .as_nanos();
        prop_assert!(ms >= ta.max(tb), "below bottleneck: {ms} < {}", ta.max(tb));
        prop_assert!(ms <= ta + tb, "above serial: {ms} > {}", ta + tb);
    }
}
