//! A generic queueing-network model of a stream pipeline.
//!
//! Stages are chains of *phases* per item: CPU work (occupies the stage
//! worker) and shared-resource work (occupies a [`Server`] — a GPU engine,
//! a disk — while the worker waits). Replicated stages have several
//! workers pulling from a bounded input buffer, which is how the FastFlow/
//! TBB back-pressure appears in the model. The makespan of a run is the
//! virtual time at which the last item leaves the last stage.

use std::cell::RefCell;
use std::rc::Rc;

use simtime::{BoundedBuffer, Server, Sim, SimDuration, SimTime, TimeWeighted};

/// One unit of work an item needs at a stage.
#[derive(Clone, Copy, Debug)]
pub enum Phase {
    /// Occupies the stage worker itself.
    Cpu(SimDuration),
    /// Occupies shared server `id` (by index into the model's server list)
    /// while the worker waits for completion.
    Resource {
        /// Index into [`PipeModel::add_server`]'s return values.
        server: usize,
        /// Service time on that server.
        dur: SimDuration,
    },
}

/// Per-stage specification.
pub struct StageSpec {
    /// Name for diagnostics.
    pub name: &'static str,
    /// Worker replica count (1 = serial stage).
    pub replicas: usize,
    /// Phase list for item `i`.
    pub phases: Box<dyn Fn(usize) -> Vec<Phase>>,
}

/// A pipeline model: source → stages → (implicit) sink.
pub struct PipeModel {
    n_items: usize,
    /// Source emission cost per item (the stage-1 service time).
    source_cost: Box<dyn Fn(usize) -> SimDuration>,
    stages: Vec<StageSpec>,
    servers: Vec<(&'static str, usize)>, // (name, capacity)
    buffer_cap: usize,
}

/// Result of a model run.
#[derive(Debug, Clone)]
pub struct PipeRun {
    /// Virtual time when the last item left the last stage.
    pub makespan: SimDuration,
    /// Utilization of each shared server over the makespan.
    pub server_utilization: Vec<f64>,
    /// Per-stage worker utilization over the makespan, in `[0, 1]`
    /// (mean busy workers / replicas) — ~1.0 marks the bottleneck stage.
    pub stage_utilization: Vec<(&'static str, f64)>,
}

impl PipeModel {
    /// A model streaming `n_items` items with per-item source cost.
    pub fn new(n_items: usize, source_cost: impl Fn(usize) -> SimDuration + 'static) -> Self {
        PipeModel {
            n_items,
            source_cost: Box::new(source_cost),
            stages: Vec::new(),
            servers: Vec::new(),
            buffer_cap: 64,
        }
    }

    /// Set the inter-stage buffer capacity (the runtimes' queue size /
    /// TBB's live-token throttle).
    pub fn buffer_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1);
        self.buffer_cap = cap;
        self
    }

    /// Register a shared server (e.g. one GPU compute engine); returns its
    /// index for [`Phase::Resource`].
    pub fn add_server(&mut self, name: &'static str, capacity: usize) -> usize {
        self.servers.push((name, capacity));
        self.servers.len() - 1
    }

    /// Append a stage.
    pub fn stage(
        mut self,
        name: &'static str,
        replicas: usize,
        phases: impl Fn(usize) -> Vec<Phase> + 'static,
    ) -> Self {
        assert!(replicas >= 1);
        self.stages.push(StageSpec {
            name,
            replicas,
            phases: Box::new(phases),
        });
        self
    }

    /// Run the model to completion.
    pub fn run(self) -> PipeRun {
        let mut sim = Sim::new();
        let servers: Vec<Server> = self
            .servers
            .iter()
            .map(|&(name, cap)| Server::new(name, cap))
            .collect();

        // Buffers between source -> s0 -> s1 -> ... -> sink(absorbed).
        let mut buffers: Vec<BoundedBuffer<usize>> = Vec::new();
        for (i, _s) in self.stages.iter().enumerate() {
            let _ = i;
            buffers.push(BoundedBuffer::new("stage-in", self.buffer_cap));
        }
        // Terminal buffer absorbs finished items (unbounded consumption).
        let done = Rc::new(RefCell::new(0usize));

        // Source process.
        {
            let out = buffers
                .first()
                .cloned()
                .expect("pipeline needs at least one stage");
            let n = self.n_items;
            let cost = self.source_cost;
            fn emit(
                sim: &mut Sim,
                i: usize,
                n: usize,
                cost: &Rc<Box<dyn Fn(usize) -> SimDuration>>,
                out: &BoundedBuffer<usize>,
            ) {
                if i >= n {
                    out.close(sim);
                    return;
                }
                let out2 = out.clone();
                let cost2 = Rc::clone(cost);
                sim.schedule(cost(i), move |sim| {
                    let out3 = out2.clone();
                    let cost3 = Rc::clone(&cost2);
                    out2.put(sim, i, move |sim| emit(sim, i + 1, n, &cost3, &out3));
                });
            }
            let cost = Rc::new(cost);
            sim.schedule(SimDuration::ZERO, move |sim| emit(sim, 0, n, &cost, &out));
        }

        // Stage workers.
        let stage_specs: Vec<Rc<StageSpec>> = self.stages.into_iter().map(Rc::new).collect();
        let mut busy_meters: Vec<Rc<RefCell<TimeWeighted>>> = Vec::new();
        for (s, spec) in stage_specs.iter().enumerate() {
            let in_buf = buffers[s].clone();
            let out_buf = buffers.get(s + 1).cloned();
            let alive = Rc::new(RefCell::new(spec.replicas));
            let busy = Rc::new(RefCell::new(TimeWeighted::new()));
            busy_meters.push(Rc::clone(&busy));
            for _worker in 0..spec.replicas {
                let ctx = WorkerCtx {
                    spec: Rc::clone(spec),
                    in_buf: in_buf.clone(),
                    out_buf: out_buf.clone(),
                    servers: servers.clone(),
                    alive: Rc::clone(&alive),
                    done: Rc::clone(&done),
                    busy: Rc::clone(&busy),
                };
                sim.schedule(SimDuration::ZERO, move |sim| worker_loop(sim, ctx));
            }
        }

        let end = sim.run();
        assert_eq!(*done.borrow(), self.n_items, "model lost items");
        let makespan = end.since(SimTime::ZERO);
        let server_utilization = servers.iter().map(|s| s.utilization(end)).collect();
        let stage_utilization = stage_specs
            .iter()
            .zip(&busy_meters)
            .map(|(spec, busy)| (spec.name, busy.borrow().mean(end) / spec.replicas as f64))
            .collect();
        PipeRun {
            makespan,
            server_utilization,
            stage_utilization,
        }
    }
}

struct WorkerCtx {
    spec: Rc<StageSpec>,
    in_buf: BoundedBuffer<usize>,
    out_buf: Option<BoundedBuffer<usize>>,
    servers: Vec<Server>,
    alive: Rc<RefCell<usize>>,
    done: Rc<RefCell<usize>>,
    busy: Rc<RefCell<TimeWeighted>>,
}

impl WorkerCtx {
    fn dup(&self) -> WorkerCtx {
        WorkerCtx {
            spec: Rc::clone(&self.spec),
            in_buf: self.in_buf.clone(),
            out_buf: self.out_buf.clone(),
            servers: self.servers.clone(),
            alive: Rc::clone(&self.alive),
            done: Rc::clone(&self.done),
            busy: Rc::clone(&self.busy),
        }
    }
}

fn worker_loop(sim: &mut Sim, ctx: WorkerCtx) {
    let ctx2 = ctx.dup();
    ctx.in_buf.clone().get(sim, move |sim, item| match item {
        None => {
            // EOS: last worker out closes downstream.
            let mut alive = ctx2.alive.borrow_mut();
            *alive -= 1;
            if *alive == 0 {
                if let Some(out) = &ctx2.out_buf {
                    out.close(sim);
                }
            }
        }
        Some(i) => {
            ctx2.busy.borrow_mut().add(sim.now(), 1.0);
            let phases = (ctx2.spec.phases)(i);
            run_phases(sim, ctx2, i, phases, 0);
        }
    });
}

fn run_phases(sim: &mut Sim, ctx: WorkerCtx, item: usize, phases: Vec<Phase>, idx: usize) {
    if idx >= phases.len() {
        // Item leaves this stage.
        ctx.busy.borrow_mut().add(sim.now(), -1.0);
        match &ctx.out_buf {
            Some(out) => {
                let out = out.clone();
                let ctx2 = ctx.dup();
                out.put(sim, item, move |sim| worker_loop(sim, ctx2));
            }
            None => {
                *ctx.done.borrow_mut() += 1;
                worker_loop(sim, ctx);
            }
        }
        return;
    }
    match phases[idx] {
        Phase::Cpu(dur) => {
            sim.schedule(dur, move |sim| run_phases(sim, ctx, item, phases, idx + 1));
        }
        Phase::Resource { server, dur } => {
            let srv = ctx.servers[server].clone();
            srv.submit(sim, dur, move |sim| {
                run_phases(sim, ctx, item, phases, idx + 1)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn serial_pipeline_is_bottleneck_bound() {
        // source 1us, stage 10us, 100 items: makespan ≈ 100 * 10us.
        let run = PipeModel::new(100, |_| us(1))
            .stage("slow", 1, |_| vec![Phase::Cpu(us(10))])
            .run();
        let ms = run.makespan.as_secs_f64() * 1e6;
        assert!((1000.0..1100.0).contains(&ms), "makespan {ms}us");
    }

    #[test]
    fn replication_scales_the_bottleneck() {
        let serial = PipeModel::new(200, |_| us(1))
            .stage("work", 1, |_| vec![Phase::Cpu(us(10))])
            .run();
        let farmed = PipeModel::new(200, |_| us(1))
            .stage("work", 5, |_| vec![Phase::Cpu(us(10))])
            .run();
        let speedup = serial.makespan.as_secs_f64() / farmed.makespan.as_secs_f64();
        assert!(speedup > 4.0, "speedup {speedup}");
    }

    #[test]
    fn replication_cannot_beat_the_source() {
        // Source at 10us/item: even 50 workers can't beat 200*10us.
        let run = PipeModel::new(200, |_| us(10))
            .stage("work", 50, |_| vec![Phase::Cpu(us(10))])
            .run();
        let floor = 200.0 * 10e-6;
        assert!(run.makespan.as_secs_f64() >= floor * 0.99);
        assert!(run.makespan.as_secs_f64() <= floor * 1.2);
    }

    #[test]
    fn shared_server_serializes_replicas() {
        // 4 workers all needing a capacity-1 resource for 10us: the
        // resource is the bottleneck, replicas don't help.
        let mut m = PipeModel::new(100, |_| SimDuration::ZERO);
        let gpu = m.add_server("gpu", 1);
        let run = m
            .stage("offload", 4, move |_| {
                vec![Phase::Resource {
                    server: gpu,
                    dur: us(10),
                }]
            })
            .run();
        let ms = run.makespan.as_secs_f64() * 1e6;
        assert!(ms >= 1000.0, "resource-bound makespan {ms}us");
        assert!(run.server_utilization[0] > 0.9);
    }

    #[test]
    fn two_servers_double_resource_throughput() {
        let t = |cap: usize| {
            let mut m = PipeModel::new(100, |_| SimDuration::ZERO);
            let gpu = m.add_server("gpu", cap);
            m.stage("offload", 8, move |_| {
                vec![Phase::Resource {
                    server: gpu,
                    dur: us(10),
                }]
            })
            .run()
            .makespan
        };
        let one = t(1);
        let two = t(2);
        let ratio = one.as_secs_f64() / two.as_secs_f64();
        assert!(ratio > 1.8, "ratio {ratio}");
    }

    #[test]
    fn cpu_and_resource_phases_pipeline_within_a_worker_chain() {
        // One worker, phases 5us CPU + 5us resource per item: 10us/item.
        // Two workers: CPU of item b overlaps resource of item a when the
        // resource has capacity 2 — near 5us/item.
        let mk = |workers: usize, cap: usize| {
            let mut m = PipeModel::new(100, |_| SimDuration::ZERO);
            let r = m.add_server("r", cap);
            m.stage("s", workers, move |_| {
                vec![
                    Phase::Cpu(us(5)),
                    Phase::Resource {
                        server: r,
                        dur: us(5),
                    },
                ]
            })
            .run()
            .makespan
        };
        let one = mk(1, 1);
        let two = mk(2, 2);
        assert!(one.as_secs_f64() / two.as_secs_f64() > 1.6);
    }

    #[test]
    fn multi_stage_bottleneck_dominates() {
        let run = PipeModel::new(100, |_| us(1))
            .stage("fast", 1, |_| vec![Phase::Cpu(us(2))])
            .stage("slow", 1, |_| vec![Phase::Cpu(us(20))])
            .stage("fast2", 1, |_| vec![Phase::Cpu(us(1))])
            .run();
        let ms = run.makespan.as_secs_f64() * 1e6;
        assert!((2000.0..2200.0).contains(&ms), "makespan {ms}us");
    }

    #[test]
    fn bottleneck_stage_shows_full_utilization() {
        let run = PipeModel::new(200, |_| us(1))
            .stage("fast", 1, |_| vec![Phase::Cpu(us(2))])
            .stage("slow", 1, |_| vec![Phase::Cpu(us(20))])
            .run();
        let get = |name: &str| {
            run.stage_utilization
                .iter()
                .find(|(n, _)| *n == name)
                .expect("stage present")
                .1
        };
        assert!(
            get("slow") > 0.95,
            "bottleneck must be ~fully busy: {}",
            get("slow")
        );
        assert!(
            get("fast") < 0.25,
            "upstream must be mostly idle: {}",
            get("fast")
        );
    }

    #[test]
    fn zero_items_complete_immediately() {
        let run = PipeModel::new(0, |_| us(1))
            .stage("s", 2, |_| vec![Phase::Cpu(us(10))])
            .run();
        assert_eq!(run.makespan, SimDuration::ZERO);
    }

    #[test]
    fn per_item_costs_are_respected() {
        // Items with alternating 1us/19us costs on a serial stage:
        // 100 items => 50*1 + 50*19 = 1000us.
        let run = PipeModel::new(100, |_| SimDuration::ZERO)
            .stage("s", 1, |i| {
                vec![Phase::Cpu(us(if i % 2 == 0 { 1 } else { 19 }))]
            })
            .run();
        let ms = run.makespan.as_secs_f64() * 1e6;
        assert!((1000.0..1050.0).contains(&ms), "makespan {ms}us");
    }
}
