//! The paper's testbed, as model parameters (§V): Intel i9-7900X
//! (10 cores / 20 threads @ 3.3 GHz), 32 GB RAM, 2× NVIDIA Titan XP.

use gpusim::DeviceProps;
use simtime::SimDuration;

/// CPU-side parameters of the testbed.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads (the paper runs 19-20 workers).
    pub threads: u32,
    /// Nanoseconds per Mandelbrot iteration on one thread.
    ///
    /// Calibrated against the paper's 400 s sequential baseline using the
    /// *sampled* iteration count of the paper's view
    /// (`perfmodel::paper::sample_workload`: ≈ 1.35 × 10¹¹ executed
    /// iterations at 2000² × 200 000) ⇒ ≈ 2.96 ns, i.e. ~12 cycles per
    /// 5-op dependent DP chain at the i9-7900X's ~4 GHz all-core turbo.
    pub mandel_ns_per_iter: f64,
    /// SMT efficiency: the marginal throughput of a hyperthread relative
    /// to a full core (the paper's 17× on 20 threads ⇒ ≈ 0.7).
    pub smt_factor: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            cores: 10,
            threads: 20,
            mandel_ns_per_iter: 2.96,
            smt_factor: 0.7,
        }
    }
}

impl CpuModel {
    /// Effective parallel capacity of `workers` pipeline workers: full
    /// cores first, hyperthreads at [`CpuModel::smt_factor`].
    pub fn effective_capacity(&self, workers: usize) -> f64 {
        let w = workers as f64;
        let cores = self.cores as f64;
        if w <= cores {
            w
        } else {
            cores + (w.min(self.threads as f64) - cores) * self.smt_factor
        }
    }

    /// Per-worker slowdown factor when `workers` share the socket: with
    /// SMT oversubscription each worker runs slower than a dedicated core.
    pub fn worker_slowdown(&self, workers: usize) -> f64 {
        workers as f64 / self.effective_capacity(workers)
    }

    /// CPU time of `iters` Mandelbrot iterations on one dedicated thread.
    pub fn mandel_time(&self, iters: u64) -> SimDuration {
        SimDuration::from_secs_f64(iters as f64 * self.mandel_ns_per_iter * 1e-9)
    }
}

/// Per-item runtime overheads of the three programming models, calibrated
/// from the micro-benchmarks in `cargo bench -p bench` (queue push/pop and
/// farm traversal costs) scaled to the testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuRuntime {
    /// SPar (compiles to FastFlow; same runtime costs).
    Spar,
    /// FastFlow.
    FastFlow,
    /// TBB: task spawning and token accounting cost a little more per item
    /// than FastFlow's SPSC queues.
    Tbb,
}

impl CpuRuntime {
    /// Per-item scheduling/communication overhead on the testbed.
    pub fn per_item_overhead(&self) -> SimDuration {
        match self {
            CpuRuntime::Spar | CpuRuntime::FastFlow => SimDuration::from_nanos(300),
            CpuRuntime::Tbb => SimDuration::from_nanos(900),
        }
    }

    /// In-flight item cap (queue capacity / live tokens). The paper uses
    /// 2× workers tokens for TBB CPU runs and 5× for GPU runs.
    pub fn in_flight_cap(&self, workers: usize, gpu: bool) -> usize {
        match self {
            CpuRuntime::Spar | CpuRuntime::FastFlow => 64,
            CpuRuntime::Tbb => {
                if gpu {
                    5 * workers
                } else {
                    2 * workers
                }
            }
        }
    }
}

/// The full testbed.
#[derive(Clone, Debug)]
pub struct Testbed {
    /// CPU model.
    pub cpu: CpuModel,
    /// GPU properties (each of the two boards).
    pub gpu: DeviceProps,
    /// Number of GPUs installed.
    pub gpus: usize,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            cpu: CpuModel::default(),
            gpu: DeviceProps::titan_xp(),
            gpus: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_threads_give_about_seventeen_x() {
        // The paper's CPU version reaches 17× with 20 threads.
        let cpu = CpuModel::default();
        let cap = cpu.effective_capacity(20);
        assert!((16.0..18.5).contains(&cap), "capacity {cap}");
    }

    #[test]
    fn capacity_is_monotone_and_bounded() {
        let cpu = CpuModel::default();
        let mut last = 0.0;
        for w in 1..=24 {
            let c = cpu.effective_capacity(w);
            assert!(c >= last);
            last = c;
        }
        assert!(last <= cpu.threads as f64);
    }

    #[test]
    fn slowdown_is_one_until_cores_saturate() {
        let cpu = CpuModel::default();
        assert!((cpu.worker_slowdown(10) - 1.0).abs() < 1e-9);
        assert!(cpu.worker_slowdown(20) > 1.0);
    }

    #[test]
    fn tbb_token_rule_matches_the_paper() {
        // §V-A: 38 tokens for CPU (2×19), 50 for GPU (5×10).
        assert_eq!(CpuRuntime::Tbb.in_flight_cap(19, false), 38);
        assert_eq!(CpuRuntime::Tbb.in_flight_cap(10, true), 50);
    }
}
