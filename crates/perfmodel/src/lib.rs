//! `perfmodel` — discrete-event performance models of the paper's testbed.
//!
//! The reproduction machine (1 CPU core, no GPU) cannot measure the
//! paper's speedups directly, so the figures are regenerated on a model of
//! the original testbed (i9-7900X + 2× Titan XP):
//!
//! * [`machine`] — the testbed parameters and per-runtime overheads;
//! * [`pipe`] — a generic queueing-network model of stream pipelines
//!   (bounded buffers, replicated stages, shared GPU engines);
//! * [`mandelmodel`] — Figs. 1 & 4: sequential / CPU pipelines / hybrid
//!   CPU+GPU versions of Mandelbrot Streaming;
//! * [`dedupmodel`] — Fig. 5: the Dedup pipeline versions, driven by a
//!   functional profiling pass over real (synthetic) datasets.
//!
//! Service times come from *measured work counts* of functional runs
//! (Mandelbrot iteration counts, SHA-1 bytes, LZSS probes) multiplied by
//! calibrated per-unit costs; GPU phases reuse the same cost model the
//! simulated devices run on (`gpusim::model`).

pub mod dedupmodel;
pub mod machine;
pub mod mandelmodel;
pub mod paper;
pub mod pipe;

pub use machine::{CpuModel, CpuRuntime, Testbed};
pub use pipe::{Phase, PipeModel, PipeRun};
