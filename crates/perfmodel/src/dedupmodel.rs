//! Performance model for Dedup (Fig. 5).
//!
//! A single functional *profiling pass* over a dataset records, per 1 MB
//! batch, everything the timing model needs: bytes, block structure,
//! duplicate ratio, CPU match-search probes, and warp-aggregated work for
//! the SHA-1 and `FindMatchKernel` launches (batched and per-block).
//! Model functions then time each of Fig. 5's versions:
//!
//! * `SPar` (CPU-only pipeline),
//! * `SPar + CUDA` / `SPar + OpenCL` (replicated GPU stages contending for
//!   device engines),
//! * with and without the batch-kernel optimization.
//!
//! The standalone single-threaded `CUDA` / `OpenCL` bars are *measured*
//! directly on the simulated devices (`dedup::single`), not modeled here.

use dedup::lzss::find_match;
use dedup::{make_batches, DedupConfig, HostCosts};
use gpusim::kernel::LaunchDims;
use gpusim::model::{kernel_duration_from_units, transfer_duration};
use gpusim::DeviceProps;
use simtime::SimDuration;

use crate::machine::CpuModel;
use crate::pipe::{Phase, PipeModel};

const BLOCK_1D: u32 = 256;
/// Cost-model constants mirroring `dedup::kernels`.
const SHA1_CYCLES_PER_BYTE: f64 = 18.0;
const LZSS_CYCLES_PER_PROBE: f64 = 3.0;
/// Extra host-side cost per OpenCL enqueue relative to CUDA (driver
/// dispatch + event bookkeeping) — the main reason the paper's SPar+CUDA
/// edges out SPar+OpenCL.
const OPENCL_ENQUEUE_EXTRA: SimDuration = SimDuration::from_micros(12);

/// Which GPU API a modeled version uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuApi {
    /// CUDA (pageable host buffers in Dedup — see §V-B).
    Cuda,
    /// OpenCL.
    OpenCl,
}

/// Per-batch workload statistics.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Batch payload bytes.
    pub bytes: u64,
    /// Blocks in the batch.
    pub blocks: u64,
    /// Bytes belonging to unique (first-seen) blocks.
    pub unique_bytes: u64,
    /// Warp-aggregated SHA-1 work: (sum of warp maxima, max warp).
    pub sha1_warp: (u64, u64),
    /// Warp-aggregated FindMatch work over all positions.
    pub fm_warp: (u64, u64),
    /// Probes along the greedy encode path of unique blocks (CPU stage 4).
    pub cpu_path_probes: u64,
    /// Σ per-block kernel durations for the unbatched SHA-1 variant.
    pub nobatch_sha1: SimDuration,
    /// Σ per-block kernel durations for the unbatched FindMatch variant.
    pub nobatch_fm: SimDuration,
}

/// Whole-dataset profile.
pub struct DedupProfile {
    /// Per-batch statistics.
    pub batches: Vec<BatchStats>,
    /// Total input bytes.
    pub total_bytes: u64,
    /// Approximate output (compressed) bytes — unique bytes as a proxy.
    pub output_bytes: u64,
}

/// Run the functional profiling pass.
pub fn profile(input: &[u8], cfg: &DedupConfig, props: &DeviceProps) -> DedupProfile {
    let mut cache = dedup::DedupCache::new();
    let mut batches = Vec::new();
    let mut output_bytes = 0u64;
    for batch in make_batches(input, cfg.batch_size, &cfg.rabin) {
        let n = batch.block_count();
        let bytes = batch.data.len() as u64;

        // Classify blocks (duplicates found exactly as stage 3 would).
        let mut unique_bytes = 0u64;
        let mut unique = vec![false; n];
        for (b, flag) in unique.iter_mut().enumerate() {
            let block = batch.block(b);
            if matches!(
                cache.classify(dedup::sha1(block)),
                dedup::BlockClass::Unique { .. }
            ) {
                *flag = true;
                unique_bytes += block.len() as u64;
            }
        }
        output_bytes += unique_bytes;

        // SHA-1 kernel: one lane per block, warps of 32 blocks; warp work
        // is the biggest block in the warp.
        let block_sizes: Vec<u64> = (0..n).map(|b| batch.block(b).len() as u64).collect();
        let mut sha1_sum = 0u64;
        let mut sha1_max = 0u64;
        for chunk in block_sizes.chunks(32) {
            let w = chunk.iter().copied().max().unwrap_or(1);
            sha1_sum += w;
            sha1_max = sha1_max.max(w);
        }

        // FindMatch kernel: one lane per byte; probes per position.
        let scan_extra = (n as u64) / 4 + 1; // the startPos linear scan
        let mut probes = vec![0u64; batch.data.len()];
        let mut matches = vec![dedup::Match::default(); batch.data.len()];
        for b in 0..n {
            let r = batch.block_range(b);
            for pos in r.clone() {
                let (m, p) = find_match(&batch.data, r.start, r.end, pos, &cfg.lzss);
                probes[pos] = p + scan_extra;
                matches[pos] = m;
            }
        }
        let mut fm_sum = 0u64;
        let mut fm_max = 0u64;
        for chunk in probes.chunks(32) {
            let w = chunk.iter().copied().max().unwrap_or(1);
            fm_sum += w;
            fm_max = fm_max.max(w);
        }

        // CPU greedy encode path over unique blocks.
        let mut cpu_path_probes = 0u64;
        for (b, &is_unique) in unique.iter().enumerate() {
            if !is_unique {
                continue;
            }
            let r = batch.block_range(b);
            let mut pos = r.start;
            while pos < r.end {
                cpu_path_probes += probes[pos].saturating_sub(scan_extra);
                let m = matches[pos];
                pos += if m.len as usize >= cfg.lzss.min_coded {
                    m.len as usize
                } else {
                    1
                };
            }
        }

        // Unbatched kernel services: one launch per block.
        let mut nobatch_sha1 = SimDuration::ZERO;
        let mut nobatch_fm = SimDuration::ZERO;
        for b in 0..n {
            let r = batch.block_range(b);
            let len = (r.end - r.start) as u64;
            // SHA-1: a single lane does all the work (1 warp of 32).
            nobatch_sha1 += kernel_duration_from_units(
                props,
                &LaunchDims::linear(1, 32),
                48,
                0,
                SHA1_CYCLES_PER_BYTE,
                len,
                len,
            );
            // FindMatch over just this block.
            let mut s = 0u64;
            let mut mx = 0u64;
            for chunk in probes[r.clone()].chunks(32) {
                let w = chunk
                    .iter()
                    .map(|p| p.saturating_sub(scan_extra) + 1)
                    .max()
                    .unwrap_or(1);
                s += w;
                mx = mx.max(w);
            }
            nobatch_fm += kernel_duration_from_units(
                props,
                &LaunchDims::cover(len, BLOCK_1D),
                32,
                0,
                LZSS_CYCLES_PER_PROBE,
                s,
                mx,
            );
        }

        batches.push(BatchStats {
            bytes,
            blocks: n as u64,
            unique_bytes,
            sha1_warp: (sha1_sum, sha1_max),
            fm_warp: (fm_sum, fm_max),
            cpu_path_probes,
            nobatch_sha1,
            nobatch_fm,
        });
    }
    DedupProfile {
        batches,
        total_bytes: input.len() as u64,
        output_bytes,
    }
}

/// Result of one modeled Dedup run.
#[derive(Debug, Clone)]
pub struct DedupRun {
    /// End-to-end modeled time.
    pub makespan: SimDuration,
    /// Throughput in MB/s of input.
    pub throughput_mbps: f64,
    /// Per-stage worker utilization (Fig. 3's activity graph, quantified):
    /// the stage nearest 1.0 is the pipeline's bottleneck.
    pub stage_utilization: Vec<(&'static str, f64)>,
}

impl DedupRun {
    /// The busiest stage (name, utilization).
    pub fn bottleneck(&self) -> (&'static str, f64) {
        self.stage_utilization
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or(("-", 0.0))
    }
}

fn finish(profile: &DedupProfile, run: crate::pipe::PipeRun) -> DedupRun {
    DedupRun {
        makespan: run.makespan,
        throughput_mbps: profile.total_bytes as f64 / 1e6 / run.makespan.as_secs_f64(),
        stage_utilization: run.stage_utilization,
    }
}

/// Fig. 5's `SPar` bar: the CPU-only 3-stage-equivalent pipeline with
/// `workers` replicas on hashing and compression.
pub fn spar_cpu(
    profile: &DedupProfile,
    cpu: &CpuModel,
    costs: &HostCosts,
    workers: usize,
) -> DedupRun {
    let slow = cpu.worker_slowdown(2 * workers + 3);
    let scale = move |d: SimDuration| SimDuration::from_secs_f64(d.as_secs_f64() * slow);
    let stats = profile.batches.clone();
    let src: Vec<SimDuration> = stats.iter().map(|b| scale(costs.rabin(b.bytes))).collect();
    let hash: Vec<SimDuration> = stats.iter().map(|b| scale(costs.sha1(b.bytes))).collect();
    let classify: Vec<SimDuration> = stats
        .iter()
        .map(|b| scale(costs.classify(b.blocks)))
        .collect();
    let compress: Vec<SimDuration> = stats
        .iter()
        .map(|b| scale(costs.lzss_probes(b.cpu_path_probes) + costs.encode(b.unique_bytes)))
        .collect();
    let write: Vec<SimDuration> = stats
        .iter()
        .map(|b| scale(costs.write(b.unique_bytes)))
        .collect();
    let run = PipeModel::new(stats.len(), move |i| src[i])
        .stage("sha1", workers, move |i| vec![Phase::Cpu(hash[i])])
        .stage("classify", 1, move |i| vec![Phase::Cpu(classify[i])])
        .stage("compress", workers, move |i| vec![Phase::Cpu(compress[i])])
        .stage("write", 1, move |i| vec![Phase::Cpu(write[i])])
        .run();
    finish(profile, run)
}

/// Fig. 5's `SPar + CUDA` / `SPar + OpenCL` bars.
#[allow(clippy::too_many_arguments)]
pub fn spar_gpu(
    profile: &DedupProfile,
    cpu: &CpuModel,
    props: &DeviceProps,
    costs: &HostCosts,
    workers: usize,
    n_gpus: usize,
    api: GpuApi,
    batched: bool,
) -> DedupRun {
    assert!(n_gpus >= 1);
    let slow = cpu.worker_slowdown(2 * workers + 3);
    let scale = move |d: SimDuration| SimDuration::from_secs_f64(d.as_secs_f64() * slow);
    // CUDA copies run from Dedup's pageable (realloc'd) buffers.
    let pinned = matches!(api, GpuApi::OpenCl);
    let enqueue_extra = match api {
        GpuApi::Cuda => SimDuration::ZERO,
        GpuApi::OpenCl => OPENCL_ENQUEUE_EXTRA,
    };

    struct GpuServices {
        h2d: SimDuration,
        sha1: SimDuration,
        d2h_digests: SimDuration,
        fm: SimDuration,
        d2h_matches: SimDuration,
    }
    let services: Vec<GpuServices> = profile
        .batches
        .iter()
        .map(|b| {
            let avg_block = (b.bytes / b.blocks.max(1)).max(1);
            let sha1 = if batched {
                kernel_duration_from_units(
                    props,
                    &LaunchDims::cover(b.blocks, 64),
                    48,
                    0,
                    SHA1_CYCLES_PER_BYTE,
                    b.sha1_warp.0,
                    b.sha1_warp.1,
                )
            } else {
                // Naive integration: a kernel AND a digest read per block.
                b.nobatch_sha1 + transfer_duration(props, 20, pinned) * b.blocks
            };
            let fm = if batched {
                kernel_duration_from_units(
                    props,
                    &LaunchDims::cover(b.bytes, BLOCK_1D),
                    32,
                    0,
                    LZSS_CYCLES_PER_PROBE,
                    b.fm_warp.0,
                    b.fm_warp.1,
                )
            } else {
                // Naive integration: a kernel and two match-array reads per
                // block.
                b.nobatch_fm + transfer_duration(props, 4 * avg_block, pinned) * (2 * b.blocks)
            };
            GpuServices {
                h2d: transfer_duration(props, b.bytes + 4 * b.blocks, pinned) + enqueue_extra,
                sha1: sha1 + enqueue_extra,
                d2h_digests: transfer_duration(props, 20 * b.blocks, pinned) + enqueue_extra,
                fm,
                d2h_matches: transfer_duration(props, 8 * b.bytes, pinned) + enqueue_extra,
            }
        })
        .collect();

    let stats = profile.batches.clone();
    let src: Vec<SimDuration> = stats.iter().map(|b| scale(costs.rabin(b.bytes))).collect();
    let classify: Vec<SimDuration> = stats
        .iter()
        .map(|b| scale(costs.classify(b.blocks)))
        .collect();
    let encode: Vec<SimDuration> = stats.iter().map(|b| scale(costs.encode(b.bytes))).collect();
    let write: Vec<SimDuration> = stats
        .iter()
        .map(|b| scale(costs.write(b.unique_bytes)))
        .collect();

    let mut m = PipeModel::new(stats.len(), move |i| src[i]).buffer_cap(64);
    let mut compute = Vec::new();
    let mut h2d_eng = Vec::new();
    let mut d2h_eng = Vec::new();
    for _ in 0..n_gpus {
        compute.push(m.add_server("gpu-compute", 1));
        h2d_eng.push(m.add_server("gpu-h2d", 1));
        d2h_eng.push(m.add_server("gpu-d2h", 1));
    }
    let services = std::rc::Rc::new(services);
    let services2 = std::rc::Rc::clone(&services);
    let (c2, h2, d2) = (compute.clone(), h2d_eng.clone(), d2h_eng.clone());
    let run = m
        .stage("sha1-gpu", workers, move |i| {
            let dev = i % n_gpus;
            let s = &services[i];
            vec![
                Phase::Resource {
                    server: h2[dev],
                    dur: s.h2d,
                },
                Phase::Resource {
                    server: c2[dev],
                    dur: s.sha1,
                },
                Phase::Resource {
                    server: d2[dev],
                    dur: s.d2h_digests,
                },
            ]
        })
        .stage("classify", 1, move |i| vec![Phase::Cpu(classify[i])])
        .stage("compress-gpu", workers, move |i| {
            let dev = i % n_gpus;
            let s = &services2[i];
            vec![
                Phase::Resource {
                    server: compute[dev],
                    dur: s.fm,
                },
                Phase::Resource {
                    server: d2h_eng[dev],
                    dur: s.d2h_matches,
                },
                Phase::Cpu(encode[i]),
            ]
        })
        .stage("write", 1, move |i| vec![Phase::Cpu(write[i])])
        .run();
    finish(profile, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedup::datasets;
    use dedup::{LzssConfig, RabinParams};

    fn cfg() -> DedupConfig {
        DedupConfig {
            batch_size: 32 * 1024,
            rabin: RabinParams {
                window: 16,
                mask: (1 << 9) - 1,
                magic: 0x5c,
                min_chunk: 512,
                max_chunk: 8192,
            },
            lzss: LzssConfig {
                window: 256,
                min_coded: 3,
            },
        }
    }

    fn profile_small() -> DedupProfile {
        let data = datasets::parsec_like(150_000, 31).data;
        profile(&data, &cfg(), &DeviceProps::titan_xp())
    }

    #[test]
    fn profile_accounts_every_byte() {
        let p = profile_small();
        let total: u64 = p.batches.iter().map(|b| b.bytes).sum();
        assert_eq!(total, p.total_bytes);
        assert!(
            p.output_bytes < p.total_bytes,
            "duplicates must shrink output"
        );
        for b in &p.batches {
            assert!(b.blocks > 0);
            assert!(b.fm_warp.0 >= b.fm_warp.1);
            assert!(b.sha1_warp.0 >= b.sha1_warp.1);
        }
    }

    #[test]
    fn spar_cpu_scales_with_workers() {
        let p = profile_small();
        let cpu = CpuModel::default();
        let costs = HostCosts::default();
        let t1 = spar_cpu(&p, &cpu, &costs, 1);
        let t4 = spar_cpu(&p, &cpu, &costs, 4);
        assert!(
            t4.throughput_mbps > 1.5 * t1.throughput_mbps,
            "1w={:.1} 4w={:.1} MB/s",
            t1.throughput_mbps,
            t4.throughput_mbps
        );
    }

    #[test]
    fn batch_optimization_dominates() {
        let p = profile_small();
        let cpu = CpuModel::default();
        let costs = HostCosts::default();
        let props = DeviceProps::titan_xp();
        let with = spar_gpu(&p, &cpu, &props, &costs, 4, 1, GpuApi::Cuda, true);
        let without = spar_gpu(&p, &cpu, &props, &costs, 4, 1, GpuApi::Cuda, false);
        let gain = with.throughput_mbps / without.throughput_mbps;
        assert!(gain > 3.0, "batching must dominate: {gain:.2}x");
    }

    #[test]
    fn spar_cuda_beats_spar_opencl() {
        let p = profile_small();
        let cpu = CpuModel::default();
        let costs = HostCosts::default();
        let props = DeviceProps::titan_xp();
        let cuda = spar_gpu(&p, &cpu, &props, &costs, 4, 1, GpuApi::Cuda, true);
        let ocl = spar_gpu(&p, &cpu, &props, &costs, 4, 1, GpuApi::OpenCl, true);
        assert!(
            cuda.throughput_mbps >= ocl.throughput_mbps * 0.98,
            "cuda={:.1} ocl={:.1}",
            cuda.throughput_mbps,
            ocl.throughput_mbps
        );
    }

    #[test]
    fn second_gpu_does_not_hurt() {
        let p = profile_small();
        let cpu = CpuModel::default();
        let costs = HostCosts::default();
        let props = DeviceProps::titan_xp();
        let one = spar_gpu(&p, &cpu, &props, &costs, 4, 1, GpuApi::Cuda, true);
        let two = spar_gpu(&p, &cpu, &props, &costs, 4, 2, GpuApi::Cuda, true);
        assert!(two.throughput_mbps >= one.throughput_mbps * 0.95);
    }
}
