//! Paper-scale predictions for Fig. 1 — absolute seconds, comparable to
//! the paper's measurements.
//!
//! Rendering 2000 × 2000 at 200 000 iterations functionally costs ~10¹¹
//! iterations — infeasible here — but the *model* only needs warp-level
//! statistics, and those scale: the escape-iteration field is resolution-
//! independent, so a `sample_dim × sample_dim` rendering at the full
//! 200 000 iterations characterizes the workload, and counts scale by
//! `(2000 / sample_dim)²` (warps per row scale linearly; per-warp work is
//! locally constant).
//!
//! The ladder is then evaluated analytically with the same cost model the
//! simulated devices use. `cargo run --release -p bench --bin fig1 --
//! --paper-model` prints the prediction next to the paper's numbers.

use gpusim::kernel::LaunchDims;
use gpusim::model::{kernel_duration_from_units, transfer_duration};
use gpusim::DeviceProps;
use mandel::core::FractalParams;
use mandel::kernels::{CYCLES_PER_ITER, MANDEL_REGS};
use simtime::SimDuration;

use crate::machine::CpuModel;
use crate::mandelmodel::{characterize, MandelWorkload};

/// The paper's experiment geometry.
pub const PAPER_DIM: usize = 2000;
/// The paper's iteration budget.
pub const PAPER_NITER: u32 = 200_000;

/// One ladder rung: name, predicted paper-scale time.
pub type Rung = (&'static str, SimDuration);

/// Characterize the paper-scale workload via a reduced-resolution sample
/// at the full iteration budget.
pub fn sample_workload(sample_dim: usize) -> MandelWorkload {
    characterize(&FractalParams::view(sample_dim, PAPER_NITER))
}

struct Scaled {
    /// Total iterations at 2000².
    total_iters: u64,
    /// Per-full-image-row (2000 rows): (warp_units, max_warp) scaled to
    /// 2000 columns.
    row_warps: Vec<(u64, u64)>,
}

fn scale(w: &MandelWorkload) -> Scaled {
    let s = PAPER_DIM / w.params.dim; // row and column scale factor
    assert!(
        s >= 1 && PAPER_DIM.is_multiple_of(w.params.dim),
        "sample_dim must divide 2000"
    );
    let mut row_warps = Vec::with_capacity(PAPER_DIM);
    for full_row in 0..PAPER_DIM {
        let sample_row = full_row / s;
        let (sum, max) = w.batch_warp_units(sample_row, 1);
        // A full row has s× the warps of a sample row with locally similar
        // per-warp work.
        row_warps.push((sum * s as u64, max));
    }
    Scaled {
        total_iters: w.total_iters * (s * s) as u64,
        row_warps,
    }
}

/// Predict every rung of Fig. 1 at paper scale.
pub fn predict_fig1(sample_dim: usize, cpu: &CpuModel, props: &DeviceProps) -> Vec<Rung> {
    let w = sample_workload(sample_dim);
    let sc = scale(&w);
    let mut out: Vec<Rung> = Vec::new();

    // Sequential and CPU-20 (analytic: capacity model).
    let seq = cpu.mandel_time(sc.total_iters);
    out.push(("sequential", seq));
    let cpu20 = SimDuration::from_secs_f64(seq.as_secs_f64() / cpu.effective_capacity(19));
    out.push(("CPU 20 threads", cpu20));

    let api = SimDuration::from_secs_f64(props.api_call_s);
    let staging_line = SimDuration::from_secs_f64(PAPER_DIM as f64 * 0.25e-9);

    // Naive per-line (1-D): 2000 kernels + synchronous pageable line reads.
    let mut naive = SimDuration::ZERO;
    for &(sum, max) in &sc.row_warps {
        let dims = LaunchDims::cover(PAPER_DIM as u64, 256);
        let kernel =
            kernel_duration_from_units(props, &dims, MANDEL_REGS, 0, CYCLES_PER_ITER, sum, max);
        let d2h = transfer_duration(props, PAPER_DIM as u64, false);
        naive = naive + kernel + d2h + staging_line + api * 2;
    }
    out.push(("GPU naive 1D", naive));

    // 2-D grid: same work in 16×16 blocks — 16× the lanes (idle rows),
    // 16× the warps, and many more scheduled blocks.
    let mut grid2d = SimDuration::ZERO;
    for &(sum, max) in &sc.row_warps {
        let blocks = (PAPER_DIM as u32).div_ceil(16);
        let dims = LaunchDims {
            grid: gpusim::Dim3::x(blocks),
            block: gpusim::Dim3::xy(16, 16),
        };
        // Idle-row warps add ~1-unit work each: negligible sum change; the
        // cost is the extra block dispatch, exactly as in the simulator.
        let kernel =
            kernel_duration_from_units(props, &dims, MANDEL_REGS, 0, CYCLES_PER_ITER, sum, max);
        let d2h = transfer_duration(props, PAPER_DIM as u64, false);
        grid2d = grid2d + kernel + d2h + staging_line + api * 2;
    }
    out.push(("GPU 2D grid", grid2d));

    // Batched rungs share per-batch kernel/transfer services.
    let batch_size = 32usize;
    let n_batches = PAPER_DIM.div_ceil(batch_size);
    let mut kernels = Vec::with_capacity(n_batches);
    let bytes = (batch_size * PAPER_DIM) as u64;
    for b in 0..n_batches {
        let end = ((b + 1) * batch_size).min(PAPER_DIM);
        let rows = &sc.row_warps[b * batch_size..end];
        let sum: u64 = rows.iter().map(|r| r.0).sum();
        let max: u64 = rows.iter().map(|r| r.1).max().unwrap_or(1);
        let dims = LaunchDims::cover(bytes, 256);
        kernels.push(kernel_duration_from_units(
            props,
            &dims,
            MANDEL_REGS,
            0,
            CYCLES_PER_ITER,
            sum,
            max,
        ));
    }
    let staging_batch = SimDuration::from_secs_f64(bytes as f64 * 0.25e-9);
    let d2h_sync = transfer_duration(props, bytes, false);
    let d2h_pinned = transfer_duration(props, bytes, true);

    // Plain batch: kernel → synchronous read → staging, serialized.
    let batch: SimDuration = kernels
        .iter()
        .map(|&k| k + d2h_sync + staging_batch + api * 2)
        .sum();
    out.push(("GPU batch 32", batch));

    // Overlapped (k memory spaces): compute engine saturated; copies and
    // staging hide behind kernels except pipeline fill/drain. More spaces
    // hide more of the per-batch host work.
    let total_kernel: SimDuration = kernels.iter().copied().sum();
    let host_per_batch = staging_batch + api * 2;
    let overlap = |spaces: usize, gpus: usize| -> SimDuration {
        let per_gpu_kernel = total_kernel / gpus as u64;
        let exposed_host = if spaces / gpus >= 2 {
            // double buffering per device: host work fully hidden except
            // the drain of one batch per space
            host_per_batch * (spaces as u64) + d2h_pinned * (gpus as u64)
        } else {
            // single space per device: host staging is on the critical path
            (host_per_batch + d2h_pinned) * (n_batches as u64) / gpus as u64
        };
        per_gpu_kernel + exposed_host + d2h_pinned
    };
    out.push(("GPU batch + 2x mem", overlap(2, 1)));
    out.push(("GPU batch + 4x mem", overlap(4, 1)));
    out.push(("2 GPUs, 1x mem each", overlap(2, 2)));
    out.push(("2 GPUs, 2x mem each", overlap(4, 2)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predict() -> Vec<Rung> {
        // dim 100 at full 200k iterations: ~2e8 executed iterations — fast
        // enough for a unit test in release, acceptable in debug.
        predict_fig1(100, &CpuModel::default(), &DeviceProps::titan_xp())
    }

    #[test]
    fn paper_scale_prediction_matches_the_measured_ladder() {
        let rungs = predict();
        let get = |name: &str| -> f64 {
            rungs
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
                .as_secs_f64()
        };
        // Paper numbers: 400 / 23.5 / 129 / 250 / 8.9 / 5.98 / 5.4 / 4.48 / 3.02 s.
        let seq = get("sequential");
        assert!((200.0..800.0).contains(&seq), "seq {seq}");
        let cpu = get("CPU 20 threads");
        assert!((10.0..50.0).contains(&cpu), "cpu {cpu}");
        let naive = get("GPU naive 1D");
        assert!(naive > cpu, "naive must lose to CPU-20: {naive} vs {cpu}");
        let batch = get("GPU batch 32");
        assert!((3.0..20.0).contains(&batch), "batch {batch}");
        let two_gpu_2x = get("2 GPUs, 2x mem each");
        assert!(
            two_gpu_2x < get("GPU batch + 2x mem"),
            "multi-GPU must be fastest"
        );
        // Factor-level agreement with the paper's batched result (8.9 s).
        assert!(
            (0.3..3.0).contains(&(batch / 8.9)),
            "batch prediction {batch}s vs paper 8.9s"
        );
    }

    #[test]
    fn ladder_ordering_is_preserved_at_paper_scale() {
        let rungs = predict();
        let t: Vec<f64> = rungs.iter().map(|(_, d)| d.as_secs_f64()).collect();
        // seq > naive ordering relations of Fig. 1.
        assert!(t[2] < t[3], "1D beats 2D");
        assert!(t[4] < t[1], "batch beats CPU");
        assert!(t[5] <= t[4], "2x mem helps");
        assert!(t[7] < t[5], "2 GPUs help");
        assert!(t[8] <= t[7], "2 GPUs 2x is fastest");
    }
}
