//! Performance model for Mandelbrot Streaming (Figs. 1 and 4).
//!
//! The workload is characterized by per-pixel iteration counts from one
//! functional rendering; everything else is model:
//!
//! * sequential and CPU-pipeline times from [`CpuModel`]
//!   (worker capacity, SMT, runtime per-item overheads);
//! * GPU kernel/transfer times from `gpusim::model` (the same cost model
//!   the simulated devices use);
//! * combined versions as a queueing network ([`PipeModel`]) where stage
//!   replicas contend for per-device compute and copy engines.

use gpusim::kernel::LaunchDims;
use gpusim::model::{kernel_duration_from_units, transfer_duration};
use gpusim::DeviceProps;
use mandel::core::{compute_line, FractalParams};
use mandel::kernels::{CYCLES_PER_ITER, MANDEL_REGS};
use simtime::SimDuration;

use crate::machine::{CpuModel, CpuRuntime};
use crate::pipe::{Phase, PipeModel};

/// Threads per block assumed by the batch kernel.
const BLOCK_1D: u32 = 256;

/// Iteration counts of one rendering, the model's workload description.
pub struct MandelWorkload {
    /// Geometry the counts were computed for.
    pub params: FractalParams,
    /// `iters[row][col]`: escape iterations per pixel.
    pub iters: Vec<Vec<u32>>,
    /// Total iterations (the sequential CPU work).
    pub total_iters: u64,
}

/// Render the workload functionally (once) to obtain iteration counts.
pub fn characterize(params: &FractalParams) -> MandelWorkload {
    let mut iters = Vec::with_capacity(params.dim);
    let mut total = 0u64;
    for row in 0..params.dim {
        let line = compute_line(params, row);
        total += line.iters.iter().map(|&k| k.max(1) as u64).sum::<u64>();
        iters.push(line.iters);
    }
    MandelWorkload {
        params: *params,
        iters,
        total_iters: total,
    }
}

impl MandelWorkload {
    /// Iterations of one line (clamped to ≥1 per pixel, like the meter).
    pub fn line_iters(&self, row: usize) -> u64 {
        self.iters[row].iter().map(|&k| k.max(1) as u64).sum()
    }

    /// Warp-aggregated units of a batch kernel over rows
    /// `[first, first+batch_size)`: lanes are row-major, warps are 32
    /// consecutive columns, warp work is the max lane (divergence).
    pub fn batch_warp_units(&self, first: usize, batch_size: usize) -> (u64, u64) {
        let dim = self.params.dim;
        let mut sum = 0u64;
        let mut max = 0u64;
        for r in first..(first + batch_size).min(dim) {
            let row = &self.iters[r];
            // Rows are multiples of 32 columns plus a tail warp; lanes of
            // different rows share a warp only if dim % 32 != 0 — the model
            // ignores that sliver and warps per row.
            for chunk in row.chunks(32) {
                let w = chunk.iter().map(|&k| k.max(1) as u64).max().unwrap_or(1);
                sum += w;
                max = max.max(w);
            }
        }
        (sum, max)
    }
}

/// Modeled sequential time (the 400 s bar of Fig. 1 at paper scale).
pub fn seq_time(w: &MandelWorkload, cpu: &CpuModel) -> SimDuration {
    cpu.mandel_time(w.total_iters)
}

/// Modeled CPU-only pipeline (SPar / FastFlow / TBB with `workers`
/// replicas on the middle stage).
pub fn cpu_pipeline_time(
    w: &MandelWorkload,
    cpu: &CpuModel,
    rt: CpuRuntime,
    workers: usize,
) -> SimDuration {
    let dim = w.params.dim;
    let slowdown = cpu.worker_slowdown(workers + 2); // + source and sink threads
    let per_line: Vec<SimDuration> = (0..dim)
        .map(|r| {
            let t = cpu.mandel_time(w.line_iters(r));
            SimDuration::from_secs_f64(t.as_secs_f64() * slowdown) + rt.per_item_overhead()
        })
        .collect();
    let overhead = rt.per_item_overhead();
    PipeModel::new(dim, move |_| overhead)
        .buffer_cap(rt.in_flight_cap(workers, false))
        .stage("compute", workers, move |i| vec![Phase::Cpu(per_line[i])])
        .run()
        .makespan
}

/// Modeled service times of one batch on the GPU: (kernel, d2h transfer).
pub fn batch_gpu_service(
    w: &MandelWorkload,
    props: &DeviceProps,
    first: usize,
    batch_size: usize,
    pinned: bool,
) -> (SimDuration, SimDuration) {
    let dim = w.params.dim;
    let lanes = (batch_size * dim) as u64;
    let dims = LaunchDims::cover(lanes, BLOCK_1D);
    let (sum, max) = w.batch_warp_units(first, batch_size);
    let kernel =
        kernel_duration_from_units(props, &dims, MANDEL_REGS, 0, CYCLES_PER_ITER, sum, max);
    let d2h = transfer_duration(props, lanes, pinned);
    (kernel, d2h)
}

/// Modeled combined version: CPU pipeline (`rt`) whose `workers` replicas
/// offload batches to `n_gpus` devices round-robin (Fig. 4's
/// `<model> + CUDA/OpenCL` bars).
pub fn hybrid_pipeline_time(
    w: &MandelWorkload,
    cpu: &CpuModel,
    props: &DeviceProps,
    rt: CpuRuntime,
    workers: usize,
    batch_size: usize,
    n_gpus: usize,
) -> SimDuration {
    let dim = w.params.dim;
    let n_batches = dim.div_ceil(batch_size);
    // Per-batch device service times.
    let services: Vec<(SimDuration, SimDuration)> = (0..n_batches)
        .map(|b| batch_gpu_service(w, props, b * batch_size, batch_size, true))
        .collect();
    let overhead = rt.per_item_overhead();
    // Host-side per-batch work: staging the results into the image.
    let host_copy = SimDuration::from_secs_f64(
        (batch_size * dim) as f64 * 0.25e-9 * cpu.worker_slowdown(workers),
    );

    let mut m =
        PipeModel::new(n_batches, move |_| overhead).buffer_cap(rt.in_flight_cap(workers, true));
    let mut compute_engines = Vec::new();
    let mut copy_engines = Vec::new();
    for _ in 0..n_gpus {
        compute_engines.push(m.add_server("gpu-compute", 1));
        copy_engines.push(m.add_server("gpu-d2h", 1));
    }

    m.stage("offload", workers, move |b| {
        let dev = b % n_gpus;
        let (kernel, d2h) = services[b];
        vec![
            Phase::Cpu(overhead),
            Phase::Resource {
                server: compute_engines[dev],
                dur: kernel,
            },
            Phase::Resource {
                server: copy_engines[dev],
                dur: d2h,
            },
            Phase::Cpu(host_copy),
        ]
    })
    .run()
    .makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> MandelWorkload {
        characterize(&FractalParams::view(128, 2000))
    }

    #[test]
    fn characterize_counts_everything() {
        let w = workload();
        assert_eq!(w.iters.len(), 128);
        let recount: u64 = (0..128).map(|r| w.line_iters(r)).sum();
        assert_eq!(recount, w.total_iters);
        assert!(w.total_iters >= 128 * 128);
    }

    #[test]
    fn cpu_pipeline_scales_toward_core_count() {
        let w = workload();
        let cpu = CpuModel::default();
        let seq = seq_time(&w, &cpu);
        let par = cpu_pipeline_time(&w, &cpu, CpuRuntime::Spar, 8);
        let speedup = seq.as_secs_f64() / par.as_secs_f64();
        assert!(speedup > 4.0, "8 workers must give > 4x, got {speedup:.2}");
        assert!(
            speedup < 8.5,
            "cannot exceed worker count, got {speedup:.2}"
        );
    }

    #[test]
    fn twenty_thread_speedup_matches_the_paper_ballpark() {
        let w = workload();
        let cpu = CpuModel::default();
        let seq = seq_time(&w, &cpu);
        let par = cpu_pipeline_time(&w, &cpu, CpuRuntime::Spar, 19);
        let speedup = seq.as_secs_f64() / par.as_secs_f64();
        // Paper: ~17x with 19 workers + source/sink on 20 threads.
        assert!((12.0..18.5).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn runtimes_are_close_but_tbb_pays_more_overhead() {
        let w = workload();
        let cpu = CpuModel::default();
        let ff = cpu_pipeline_time(&w, &cpu, CpuRuntime::FastFlow, 8);
        let tbb = cpu_pipeline_time(&w, &cpu, CpuRuntime::Tbb, 8);
        assert!(tbb >= ff);
        let ratio = tbb.as_secs_f64() / ff.as_secs_f64();
        assert!(ratio < 1.25, "models must stay close: {ratio:.3}");
    }

    #[test]
    fn batch_service_reflects_divergence() {
        let w = workload();
        let props = DeviceProps::titan_xp();
        let (k, _) = batch_gpu_service(&w, &props, 0, 32, true);
        assert!(k > SimDuration::ZERO);
        // A batch through the set's interior carries more warp-level work
        // than the edge batch (durations may reorder: a sparse in-set edge
        // batch is latency-starved, which the model prices in).
        let (sum_edge, _) = w.batch_warp_units(0, 32);
        let (sum_mid, _) = w.batch_warp_units(48, 32);
        assert!(sum_mid >= sum_edge, "mid {sum_mid} vs edge {sum_edge}");
    }

    #[test]
    fn second_gpu_speeds_up_the_hybrid_model() {
        let w = workload();
        let cpu = CpuModel::default();
        let props = DeviceProps::titan_xp();
        let one = hybrid_pipeline_time(&w, &cpu, &props, CpuRuntime::Spar, 10, 8, 1);
        let two = hybrid_pipeline_time(&w, &cpu, &props, CpuRuntime::Spar, 10, 8, 2);
        assert!(two < one, "1 GPU {one} vs 2 GPUs {two}");
    }

    #[test]
    fn hybrid_beats_cpu_only_at_paper_like_intensity() {
        // Needs enough per-pixel work that GPU compute, not per-batch
        // overhead, dominates — like the paper's 200k-iteration runs.
        let w = characterize(&FractalParams::view(256, 4000));
        let cpu = CpuModel::default();
        let props = DeviceProps::titan_xp();
        let cpu_only = cpu_pipeline_time(&w, &cpu, CpuRuntime::Spar, 19);
        let hybrid = hybrid_pipeline_time(&w, &cpu, &props, CpuRuntime::Spar, 10, 32, 1);
        assert!(
            hybrid < cpu_only,
            "GPU offload must win: cpu={cpu_only} hybrid={hybrid}"
        );
    }
}
