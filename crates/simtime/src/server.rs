//! A FIFO multi-server resource.
//!
//! Models anything that serves jobs one-at-a-time per unit of capacity: a
//! pool of CPU worker threads, a GPU compute engine (capacity 1), a PCIe copy
//! engine, a disk. Jobs submitted while all units are busy wait in FIFO
//! order.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::Sim;
use crate::stats::{Counter, TimeWeighted};
use crate::time::{SimDuration, SimTime};

type Callback = Box<dyn FnOnce(&mut Sim)>;

struct Pending {
    service: SimDuration,
    enqueued: SimTime,
    done: Callback,
}

struct State {
    capacity: usize,
    busy: usize,
    queue: VecDeque<Pending>,
    busy_time: SimDuration, // summed across units
    last_busy_change: SimTime,
    waits: Counter,
    queue_len: TimeWeighted,
    completed: u64,
}

impl State {
    fn note_busy_change(&mut self, now: SimTime, delta: isize) {
        self.busy_time += now.since(self.last_busy_change) * self.busy as u64;
        self.last_busy_change = now;
        self.busy = (self.busy as isize + delta) as usize;
    }
}

/// A shared handle to a FIFO multi-server resource. Cheap to clone.
pub struct Server {
    name: &'static str,
    state: Rc<RefCell<State>>,
}

impl Clone for Server {
    fn clone(&self) -> Self {
        Server {
            name: self.name,
            state: Rc::clone(&self.state),
        }
    }
}

impl Server {
    /// A server with `capacity` identical units.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "server {name:?} needs capacity >= 1");
        Server {
            name,
            state: Rc::new(RefCell::new(State {
                capacity,
                busy: 0,
                queue: VecDeque::new(),
                busy_time: SimDuration::ZERO,
                last_busy_change: SimTime::ZERO,
                waits: Counter::new(),
                queue_len: TimeWeighted::new(),
                completed: 0,
            })),
        }
    }

    /// Submit a job needing `service` time; `done` fires at completion.
    ///
    /// If a unit is free the job starts immediately, otherwise it queues.
    pub fn submit<F: FnOnce(&mut Sim) + 'static>(
        &self,
        sim: &mut Sim,
        service: SimDuration,
        done: F,
    ) {
        let now = sim.now();
        let done: Callback = Box::new(done);
        let start = {
            let mut st = self.state.borrow_mut();
            if st.busy < st.capacity {
                st.note_busy_change(now, 1);
                st.waits.record(SimDuration::ZERO);
                Some(done)
            } else {
                st.queue.push_back(Pending {
                    service,
                    enqueued: now,
                    done,
                });
                let qlen = st.queue.len() as f64;
                st.queue_len.set(now, qlen);
                None
            }
        };
        if let Some(done) = start {
            self.start(sim, service, done);
        }
    }

    fn start(&self, sim: &mut Sim, service: SimDuration, done: Callback) {
        let this = self.clone();
        sim.schedule(service, move |sim| {
            done(sim);
            this.complete_one(sim);
        });
    }

    fn complete_one(&self, sim: &mut Sim) {
        let now = sim.now();
        let next = {
            let mut st = self.state.borrow_mut();
            st.completed += 1;
            match st.queue.pop_front() {
                Some(p) => {
                    // Unit stays busy, handed straight to the next job.
                    let qlen = st.queue.len() as f64;
                    st.queue_len.set(now, qlen);
                    st.waits.record(now.since(p.enqueued));
                    Some(p)
                }
                None => {
                    st.note_busy_change(now, -1);
                    None
                }
            }
        };
        if let Some(p) = next {
            self.start(sim, p.service, p.done);
        }
    }

    /// Units currently busy.
    pub fn busy(&self) -> usize {
        self.state.borrow().busy
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.state.borrow().completed
    }

    /// Mean utilization over `[0, now]`, in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let st = self.state.borrow();
        let total = now.as_secs_f64() * st.capacity as f64;
        if total == 0.0 {
            return 0.0;
        }
        let busy = st.busy_time.as_secs_f64()
            + now.since(st.last_busy_change).as_secs_f64() * st.busy as f64;
        busy / total
    }

    /// Mean time jobs spent waiting in queue before service.
    pub fn mean_wait(&self) -> SimDuration {
        self.state.borrow().waits.mean()
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn nanos(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn single_server_serializes_jobs() {
        let mut sim = Sim::new();
        let srv = Server::new("s", 1);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let ends = Rc::clone(&ends);
            srv.submit(&mut sim, nanos(10), move |sim| {
                ends.borrow_mut().push(sim.now().as_nanos());
            });
        }
        sim.run();
        assert_eq!(*ends.borrow(), vec![10, 20, 30]);
        assert_eq!(srv.completed(), 3);
    }

    #[test]
    fn capacity_allows_parallel_service() {
        let mut sim = Sim::new();
        let srv = Server::new("s", 2);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let ends = Rc::clone(&ends);
            srv.submit(&mut sim, nanos(10), move |sim| {
                ends.borrow_mut().push(sim.now().as_nanos());
            });
        }
        sim.run();
        // Two waves of two.
        assert_eq!(*ends.borrow(), vec![10, 10, 20, 20]);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut sim = Sim::new();
        let srv = Server::new("s", 1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let order = Rc::clone(&order);
            srv.submit(&mut sim, nanos(1), move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn utilization_and_wait_stats() {
        let mut sim = Sim::new();
        let srv = Server::new("s", 1);
        // Two 10ns jobs back to back: busy 20ns. Run 40ns of idle tail via a
        // dummy event so utilization = 0.5.
        srv.submit(&mut sim, nanos(10), |_| {});
        srv.submit(&mut sim, nanos(10), |_| {});
        sim.schedule(nanos(40), |_| {});
        sim.run();
        let u = srv.utilization(sim.now());
        assert!((u - 0.5).abs() < 1e-9, "utilization={u}");
        // Second job waited 10ns; first 0 => mean 5ns.
        assert_eq!(srv.mean_wait().as_nanos(), 5);
    }

    #[test]
    fn submissions_from_callbacks_work() {
        let mut sim = Sim::new();
        let srv = Server::new("s", 1);
        let done = Rc::new(RefCell::new(0u64));
        let d2 = Rc::clone(&done);
        let srv2 = srv.clone();
        srv.submit(&mut sim, nanos(5), move |sim| {
            let d3 = Rc::clone(&d2);
            srv2.submit(sim, nanos(5), move |sim| {
                *d3.borrow_mut() = sim.now().as_nanos();
            });
        });
        sim.run();
        assert_eq!(*done.borrow(), 10);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_panics() {
        let _ = Server::new("bad", 0);
    }
}
