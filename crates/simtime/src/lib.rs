//! `simtime` — a small deterministic discrete-event simulation (DES) core.
//!
//! This crate is the timing substrate of the `hetstream` reproduction. The
//! reproduction machine has a single CPU core and no GPU, so the paper's
//! performance figures are regenerated on a *model* of the paper's testbed
//! (i9-7900X + 2× Titan XP). `simtime` provides the pieces every such model
//! needs:
//!
//! * a virtual clock with nanosecond resolution ([`SimTime`], [`SimDuration`]),
//! * an event queue driven by closures ([`Sim`]),
//! * a FIFO multi-server resource ([`Server`]) for modelling CPU worker pools
//!   and GPU engines,
//! * a bounded blocking buffer ([`BoundedBuffer`]) for modelling the
//!   FastFlow/TBB inter-stage queues.
//!
//! Everything is single-threaded and fully deterministic: two runs of the
//! same model produce identical traces. There is intentionally no access to
//! wall-clock time or ambient randomness.
//!
//! # Example
//!
//! ```
//! use simtime::{Sim, SimDuration};
//!
//! let mut sim = Sim::new();
//! sim.schedule(SimDuration::from_micros(5), |sim| {
//!     assert_eq!(sim.now().as_nanos(), 5_000);
//! });
//! let end = sim.run();
//! assert_eq!(end.as_nanos(), 5_000);
//! ```

mod buffer;
mod engine;
pub mod rng;
mod server;
mod stats;
mod time;

pub use buffer::BoundedBuffer;
pub use engine::{Sim, SimHandle};
pub use rng::XorShift64;
pub use server::Server;
pub use stats::{Counter, TimeWeighted};
pub use time::{SimDuration, SimTime};
