//! The event-queue engine.
//!
//! Events are closures scheduled at virtual instants. Ties are broken by
//! insertion order (FIFO), which keeps models deterministic and makes
//! same-instant causality intuitive: an event scheduled from within another
//! event at zero delay runs after every event already queued for that
//! instant.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

type Action = Box<dyn FnOnce(&mut Sim)>;

struct Event {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap and we need earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulation: a virtual clock plus an event queue.
///
/// Models are built out of closures that receive `&mut Sim` and schedule
/// further events. Shared model state lives in `Rc<RefCell<_>>` captured by
/// those closures (see [`Server`](crate::Server) and
/// [`BoundedBuffer`](crate::BoundedBuffer) for canonical examples).
pub struct Sim {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Event>,
    executed: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// A fresh simulation at t = 0 with an empty event queue.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostic).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `action` to run after `delay`.
    pub fn schedule<F: FnOnce(&mut Sim) + 'static>(&mut self, delay: SimDuration, action: F) {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedule `action` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the virtual past — that is always a model bug.
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, action: F) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Run until the event queue drains; returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run events with `at <= limit`. The clock ends at
    /// `min(limit, time of last executed event)`; pending later events remain.
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        while let Some(ev) = self.heap.peek() {
            if ev.at > limit {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Execute the single earliest pending event. Returns false if none.
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.executed += 1;
                (ev.action)(self);
                true
            }
            None => false,
        }
    }
}

/// A cloneable handle to shared model state.
///
/// Thin convenience wrapper over `Rc<RefCell<T>>` so model components don't
/// repeat the borrow boilerplate.
pub struct SimHandle<T>(Rc<RefCell<T>>);

impl<T> SimHandle<T> {
    /// Wrap a value in a shared handle.
    pub fn new(value: T) -> Self {
        SimHandle(Rc::new(RefCell::new(value)))
    }

    /// Run `f` with a shared borrow of the value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Run `f` with a mutable borrow of the value.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl<T> Clone for SimHandle<T> {
    fn clone(&self) -> Self {
        SimHandle(Rc::clone(&self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for &(delay, tag) in &[(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let order = Rc::clone(&order);
            sim.schedule(SimDuration::from_nanos(delay), move |_| {
                order.borrow_mut().push(tag)
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for tag in 0..5 {
            let order = Rc::clone(&order);
            sim.schedule(SimDuration::from_nanos(7), move |_| {
                order.borrow_mut().push(tag)
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Sim::new();
        sim.schedule(SimDuration::from_nanos(5), |sim| {
            assert_eq!(sim.now().as_nanos(), 5);
            sim.schedule(SimDuration::from_nanos(5), |sim| {
                assert_eq!(sim.now().as_nanos(), 10);
            });
        });
        let end = sim.run();
        assert_eq!(end.as_nanos(), 10);
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn zero_delay_event_runs_after_already_queued_same_instant() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        {
            let order = Rc::clone(&order);
            sim.schedule(SimDuration::from_nanos(1), move |sim| {
                let order2 = Rc::clone(&order);
                order.borrow_mut().push("first");
                sim.schedule(SimDuration::ZERO, move |_| {
                    order2.borrow_mut().push("spawned");
                });
            });
        }
        {
            let order = Rc::clone(&order);
            sim.schedule(SimDuration::from_nanos(1), move |_| {
                order.borrow_mut().push("second");
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "spawned"]);
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut sim = Sim::new();
        sim.schedule(SimDuration::from_nanos(5), |_| {});
        sim.schedule(SimDuration::from_nanos(50), |_| {});
        sim.run_until(SimTime::from_nanos(10));
        assert_eq!(sim.now().as_nanos(), 5);
        assert_eq!(sim.events_pending(), 1);
        sim.run();
        assert_eq!(sim.now().as_nanos(), 50);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule(SimDuration::from_nanos(10), |sim| {
            sim.schedule_at(SimTime::from_nanos(3), |_| {});
        });
        sim.run();
    }

    #[test]
    fn handle_with_and_with_mut() {
        let h = SimHandle::new(41);
        h.with_mut(|v| *v += 1);
        assert_eq!(h.with(|v| *v), 42);
        let h2 = h.clone();
        h2.with_mut(|v| *v *= 2);
        assert_eq!(h.with(|v| *v), 84);
    }
}
