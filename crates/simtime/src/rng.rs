//! A small seeded PRNG for deterministic workload generation.
//!
//! Simulation inputs must be reproducible bit-for-bit across runs and
//! machines, and the build must work with no registry access, so the
//! workspace carries its own generator instead of an external `rand`:
//! an xorshift64* core seeded through SplitMix64 (so consecutive or
//! zero seeds still yield well-mixed streams). Not cryptographic — for
//! synthetic datasets and test-case generation only.

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator; any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scrambles the seed so that nearby seeds diverge.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: z.max(1), // xorshift state must be non-zero
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // 128-bit multiply-shift keeps the modulo bias negligible.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`. `lo < hi` required.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`. `lo < hi` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`. `lo < hi` required.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fill a byte slice with uniform bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A vector of `n` uniform bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge_even_when_adjacent() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_works() {
        let mut r = XorShift64::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let v = r.range_usize(10, 20);
            assert!((10..20).contains(&v));
            assert!(r.below(3) < 3);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = XorShift64::new(123);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail_chunks() {
        let mut r = XorShift64::new(9);
        let v = r.bytes(13);
        assert_eq!(v.len(), 13);
        assert!(v.iter().any(|&b| b != 0));
    }
}
