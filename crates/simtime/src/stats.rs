//! Lightweight statistics collectors for model instrumentation.

use crate::time::{SimDuration, SimTime};

/// A running tally with count / sum / min / max, for durations.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    count: u64,
    sum: SimDuration,
    min: Option<SimDuration>,
    max: SimDuration,
}

impl Counter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, d: SimDuration) {
        self.count += 1;
        self.sum += d;
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = self.max.max(d);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> SimDuration {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<SimDuration> {
        self.min
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.sum / self.count
        }
    }
}

/// A time-weighted value tracker: integrates `value · dt` so that e.g. mean
/// queue length or utilization can be reported at the end of a run.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64, // value-seconds
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Start tracking at value 0 from t = 0.
    pub fn new() -> Self {
        TimeWeighted {
            value: 0.0,
            last_change: SimTime::ZERO,
            integral: 0.0,
            max: 0.0,
        }
    }

    /// Set a new value at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.integral += self.value * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Maximum value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[0, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.as_secs_f64();
        if total == 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * now.since(self.last_change).as_secs_f64();
        integral / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_tracks_min_max_mean() {
        let mut c = Counter::new();
        for ns in [10u64, 20, 30] {
            c.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(c.count(), 3);
        assert_eq!(c.sum().as_nanos(), 60);
        assert_eq!(c.min().unwrap().as_nanos(), 10);
        assert_eq!(c.max().as_nanos(), 30);
        assert_eq!(c.mean().as_nanos(), 20);
    }

    #[test]
    fn counter_empty_is_safe() {
        let c = Counter::new();
        assert_eq!(c.count(), 0);
        assert_eq!(c.mean(), SimDuration::ZERO);
        assert!(c.min().is_none());
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        // value 2 over [0, 10s), value 4 over [10s, 20s) => mean 3
        tw.set(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_nanos(10_000_000_000), 4.0);
        let mean = tw.mean(SimTime::from_nanos(20_000_000_000));
        assert!((mean - 3.0).abs() < 1e-9, "mean={mean}");
        assert_eq!(tw.max(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new();
        tw.add(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_nanos(5), 1.0);
        assert_eq!(tw.value(), 2.0);
        tw.add(SimTime::from_nanos(9), -2.0);
        assert_eq!(tw.value(), 0.0);
        assert_eq!(tw.max(), 2.0);
    }
}
