//! Virtual time types.
//!
//! Virtual time is measured in integer nanoseconds so that event ordering is
//! exact and runs are bit-reproducible. Durations derived from floating-point
//! cost models are rounded to the nearest nanosecond at the boundary.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (for reporting only; never for ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and NaN inputs clamp to zero (cost models occasionally
    /// produce tiny negative values from subtraction of estimates).
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!(((t + d) - t).as_nanos(), 2_000);
        assert_eq!((d * 3).as_nanos(), 6_000);
        assert_eq!((d / 2).as_nanos(), 1_000);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(-1.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(0.5e-9).as_nanos(), 1); // rounds
        assert_eq!(SimDuration::from_secs_f64(0.4e-9).as_nanos(), 0);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.since(a).as_nanos(), 4);
        assert_eq!(a.since(b).as_nanos(), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
