//! A bounded blocking buffer — the model analogue of the FastFlow/TBB
//! inter-stage queues.
//!
//! Producers "block" by having their continuation deferred until space is
//! available; consumers likewise until an item (or end-of-stream) is
//! available. Both sides are FIFO, which mirrors the SPSC/ordered queues of
//! the real runtimes.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::Sim;
use crate::stats::TimeWeighted;
use crate::time::SimTime;

type PutCb = Box<dyn FnOnce(&mut Sim)>;
type GetCb<T> = Box<dyn FnOnce(&mut Sim, Option<T>)>;

struct State<T> {
    capacity: usize,
    items: VecDeque<T>,
    waiting_puts: VecDeque<(T, PutCb)>,
    waiting_gets: VecDeque<GetCb<T>>,
    closed: bool,
    occupancy: TimeWeighted,
    total_in: u64,
    total_out: u64,
}

/// A shared handle to a bounded buffer. Cheap to clone.
pub struct BoundedBuffer<T> {
    name: &'static str,
    state: Rc<RefCell<State<T>>>,
}

impl<T> Clone for BoundedBuffer<T> {
    fn clone(&self) -> Self {
        BoundedBuffer {
            name: self.name,
            state: Rc::clone(&self.state),
        }
    }
}

impl<T: 'static> BoundedBuffer<T> {
    /// A buffer holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer {name:?} needs capacity >= 1");
        BoundedBuffer {
            name,
            state: Rc::new(RefCell::new(State {
                capacity,
                items: VecDeque::with_capacity(capacity),
                waiting_puts: VecDeque::new(),
                waiting_gets: VecDeque::new(),
                closed: false,
                occupancy: TimeWeighted::new(),
                total_in: 0,
                total_out: 0,
            })),
        }
    }

    /// Offer `item`; `accepted` runs once the item has entered the buffer
    /// (immediately if there is space, otherwise when a consumer frees some).
    ///
    /// # Panics
    /// Panics if the buffer has been closed — producing after close is a
    /// model bug.
    pub fn put<F: FnOnce(&mut Sim) + 'static>(&self, sim: &mut Sim, item: T, accepted: F) {
        let now = sim.now();
        enum Outcome<T> {
            DeliveredTo(GetCb<T>, T),
            Stored,
        }
        let outcome = {
            let mut st = self.state.borrow_mut();
            assert!(!st.closed, "put on closed buffer {:?}", self.name);
            if let Some(getter) = st.waiting_gets.pop_front() {
                st.total_in += 1;
                st.total_out += 1;
                Outcome::DeliveredTo(getter, item)
            } else if st.items.len() < st.capacity {
                st.items.push_back(item);
                st.total_in += 1;
                let len = st.items.len() as f64;
                st.occupancy.set(now, len);
                Outcome::Stored
            } else {
                st.waiting_puts.push_back((item, Box::new(accepted)));
                return; // callback deferred until space frees
            }
        };
        match outcome {
            Outcome::DeliveredTo(getter, item) => {
                accepted(sim);
                getter(sim, Some(item));
            }
            Outcome::Stored => accepted(sim),
        }
    }

    /// Request an item; `on_item` runs with `Some(item)` when one is
    /// available, or `None` if the buffer is closed and drained.
    pub fn get<F: FnOnce(&mut Sim, Option<T>) + 'static>(&self, sim: &mut Sim, on_item: F) {
        let now = sim.now();
        let on_item: GetCb<T> = Box::new(on_item);
        enum Outcome<T> {
            Item(T, Option<PutCb>),
            Eos,
        }
        let outcome = {
            let mut st = self.state.borrow_mut();
            if let Some(item) = st.items.pop_front() {
                st.total_out += 1;
                // Space freed: admit one waiting producer, if any.
                let admitted = st.waiting_puts.pop_front().map(|(p_item, cb)| {
                    st.items.push_back(p_item);
                    st.total_in += 1;
                    cb
                });
                let len = st.items.len() as f64;
                st.occupancy.set(now, len);
                Outcome::Item(item, admitted)
            } else if st.closed && st.waiting_puts.is_empty() {
                Outcome::Eos
            } else if let Some((p_item, cb)) = st.waiting_puts.pop_front() {
                // A producer may be waiting while `items` is empty only if a
                // burst of getters drained everything at this instant; hand
                // its item straight through.
                st.total_in += 1;
                st.total_out += 1;
                Outcome::Item(p_item, Some(cb))
            } else {
                st.waiting_gets.push_back(on_item);
                return;
            }
        };
        match outcome {
            Outcome::Item(item, admitted) => {
                if let Some(cb) = admitted {
                    cb(sim);
                }
                on_item(sim, Some(item));
            }
            Outcome::Eos => on_item(sim, None),
        }
    }

    /// Close the buffer: no further puts are allowed; once drained, waiting
    /// and future getters receive `None`.
    pub fn close(&self, sim: &mut Sim) {
        let getters = {
            let mut st = self.state.borrow_mut();
            st.closed = true;
            assert!(
                st.waiting_puts.is_empty(),
                "close with blocked producers on {:?}",
                self.name
            );
            if st.items.is_empty() {
                std::mem::take(&mut st.waiting_gets)
            } else {
                VecDeque::new()
            }
        };
        for g in getters {
            g(sim, None);
        }
    }

    /// Items currently stored.
    pub fn len(&self) -> usize {
        self.state.borrow().items.len()
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total items that have passed through.
    pub fn total_out(&self) -> u64 {
        self.state.borrow().total_out
    }

    /// Time-weighted mean occupancy over `[0, now]`.
    pub fn mean_occupancy(&self, now: SimTime) -> f64 {
        self.state.borrow().occupancy.mean(now)
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn put_then_get_delivers_fifo() {
        let mut sim = Sim::new();
        let buf: BoundedBuffer<u32> = BoundedBuffer::new("b", 4);
        for v in [1, 2, 3] {
            buf.put(&mut sim, v, |_| {});
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let seen = Rc::clone(&seen);
            buf.get(&mut sim, move |_, item| {
                seen.borrow_mut().push(item.unwrap())
            });
        }
        sim.run();
        assert_eq!(*seen.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn get_blocks_until_put() {
        let mut sim = Sim::new();
        let buf: BoundedBuffer<u32> = BoundedBuffer::new("b", 1);
        let seen = Rc::new(RefCell::new(None));
        {
            let seen = Rc::clone(&seen);
            buf.get(&mut sim, move |sim, item| {
                *seen.borrow_mut() = Some((sim.now().as_nanos(), item.unwrap()));
            });
        }
        let buf2 = buf.clone();
        sim.schedule(SimDuration::from_nanos(7), move |sim| {
            buf2.put(sim, 9, |_| {});
        });
        sim.run();
        assert_eq!(*seen.borrow(), Some((7, 9)));
    }

    #[test]
    fn put_blocks_when_full_until_space() {
        let mut sim = Sim::new();
        let buf: BoundedBuffer<u32> = BoundedBuffer::new("b", 1);
        buf.put(&mut sim, 1, |_| {});
        let accepted_at = Rc::new(RefCell::new(None));
        {
            let accepted_at = Rc::clone(&accepted_at);
            buf.put(&mut sim, 2, move |sim| {
                *accepted_at.borrow_mut() = Some(sim.now().as_nanos());
            });
        }
        assert!(accepted_at.borrow().is_none(), "producer must block");
        let buf2 = buf.clone();
        sim.schedule(SimDuration::from_nanos(5), move |sim| {
            buf2.get(sim, |_, item| assert_eq!(item, Some(1)));
        });
        sim.run();
        assert_eq!(*accepted_at.borrow(), Some(5));
        assert_eq!(buf.len(), 1); // item 2 admitted
    }

    #[test]
    fn close_sends_eos_to_waiting_and_future_getters() {
        let mut sim = Sim::new();
        let buf: BoundedBuffer<u32> = BoundedBuffer::new("b", 2);
        let eos = Rc::new(RefCell::new(0));
        {
            let eos = Rc::clone(&eos);
            buf.get(&mut sim, move |_, item| {
                assert!(item.is_none());
                *eos.borrow_mut() += 1;
            });
        }
        buf.close(&mut sim);
        {
            let eos = Rc::clone(&eos);
            buf.get(&mut sim, move |_, item| {
                assert!(item.is_none());
                *eos.borrow_mut() += 1;
            });
        }
        sim.run();
        assert_eq!(*eos.borrow(), 2);
    }

    #[test]
    fn close_with_remaining_items_drains_before_eos() {
        let mut sim = Sim::new();
        let buf: BoundedBuffer<u32> = BoundedBuffer::new("b", 2);
        buf.put(&mut sim, 42, |_| {});
        buf.close(&mut sim);
        let log = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let log = Rc::clone(&log);
            buf.get(&mut sim, move |_, item| log.borrow_mut().push(item));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![Some(42), None]);
    }

    #[test]
    #[should_panic(expected = "put on closed buffer")]
    fn put_after_close_panics() {
        let mut sim = Sim::new();
        let buf: BoundedBuffer<u32> = BoundedBuffer::new("b", 1);
        buf.close(&mut sim);
        buf.put(&mut sim, 1, |_| {});
    }

    #[test]
    fn totals_and_occupancy() {
        let mut sim = Sim::new();
        let buf: BoundedBuffer<u32> = BoundedBuffer::new("b", 8);
        for v in 0..5 {
            buf.put(&mut sim, v, |_| {});
        }
        for _ in 0..5 {
            buf.get(&mut sim, |_, _| {});
        }
        sim.run();
        assert_eq!(buf.total_out(), 5);
        assert!(buf.is_empty());
    }
}
