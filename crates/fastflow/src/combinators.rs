//! par-stream-style combinators: the one-line public face of the farm and
//! pipeline builders.
//!
//! Most streaming programs want one of four shapes — map in order, map in
//! any order, split a stream into substreams, or merge substreams back —
//! and should not have to spell out a pipeline builder to get them. These
//! adapters wrap the existing skeletons ([`Pipeline`]
//! farms and [`mod@crate::channel`] SPSC channels) without adding any new
//! runtime machinery.
#![deny(clippy::unwrap_used)]

use crate::channel::{channel, Receiver, SendError};
use crate::node;
use crate::pipeline::Pipeline;
use crate::wait::WaitStrategy;

/// Capacity of each per-part channel used by [`scatter`].
const SCATTER_CAPACITY: usize = 64;

/// Map `items` through `replicas` parallel workers, preserving input order
/// in the output (FastFlow's ordered farm).
///
/// ```
/// use fastflow::par_map_ordered;
///
/// let out = par_map_ordered(0..100u64, 4, |x| x * x);
/// assert_eq!(out[99], 99 * 99);
/// ```
pub fn par_map_ordered<I, U, F>(items: I, replicas: usize, f: F) -> Vec<U>
where
    I: IntoIterator + Send + 'static,
    I::Item: Send + 'static,
    U: Send + 'static,
    F: FnMut(I::Item) -> U + Clone + Send + 'static,
{
    Pipeline::builder()
        .from_iter(items)
        .farm_ordered(replicas, |_replica| node::map(f.clone()))
        .collect()
}

/// Map `items` through `replicas` parallel workers, emitting results as
/// they finish (no reordering buffer — lower latency, arbitrary order).
///
/// ```
/// use fastflow::par_map_unordered;
///
/// let mut out = par_map_unordered(0..100u64, 4, |x| x * 2);
/// out.sort();
/// assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
/// ```
pub fn par_map_unordered<I, U, F>(items: I, replicas: usize, f: F) -> Vec<U>
where
    I: IntoIterator + Send + 'static,
    I::Item: Send + 'static,
    U: Send + 'static,
    F: FnMut(I::Item) -> U + Clone + Send + 'static,
{
    Pipeline::builder()
        .from_iter(items)
        .farm(replicas, |_replica| node::map(f.clone()))
        .collect()
}

/// Split a stream into `parts` substreams, dealt round-robin from a feeder
/// thread. Each [`Receiver`] can be moved to its own consumer thread;
/// dropping one skips its share without stalling the rest.
///
/// ```
/// use fastflow::{gather, scatter};
///
/// let parts = scatter(0..10u32, 2);
/// let mut all = gather(parts);
/// all.sort();
/// assert_eq!(all, (0..10).collect::<Vec<_>>());
/// ```
pub fn scatter<I>(items: I, parts: usize) -> Vec<Receiver<I::Item>>
where
    I: IntoIterator + Send + 'static,
    I::Item: Send + 'static,
{
    assert!(parts >= 1, "scatter needs at least one part");
    let mut senders = Vec::with_capacity(parts);
    let mut receivers = Vec::with_capacity(parts);
    for _ in 0..parts {
        let (tx, rx) = channel(SCATTER_CAPACITY, WaitStrategy::default());
        senders.push(Some(tx));
        receivers.push(rx);
    }
    std::thread::Builder::new()
        .name("scatter-feeder".into())
        .spawn(move || {
            let mut next = 0usize;
            for item in items {
                // Deal to the next live part; a dropped receiver closes its
                // branch and the item moves on to the following one.
                let mut item = Some(item);
                for _ in 0..senders.len() {
                    let slot = next % senders.len();
                    next += 1;
                    if let Some(tx) = &senders[slot] {
                        match tx.send(item.take().expect("undelivered item")) {
                            Ok(()) => break,
                            Err(SendError(v)) => {
                                senders[slot] = None;
                                item = Some(v);
                            }
                        }
                    }
                }
                if senders.iter().all(Option::is_none) {
                    break; // every consumer hung up
                }
            }
        })
        .expect("spawn scatter feeder");
    receivers
}

/// Merge substreams (e.g. from [`scatter`]) into one `Vec`, polling each
/// part fairly until all have reached end-of-stream. Order interleaves
/// across parts; within one part, order is preserved.
///
/// ```
/// use fastflow::{gather, scatter};
///
/// let parts = scatter(0..6u32, 3);
/// assert_eq!(gather(parts).len(), 6);
/// ```
pub fn gather<T: Send>(parts: Vec<Receiver<T>>) -> Vec<T> {
    let mut out = Vec::new();
    let mut live: Vec<Receiver<T>> = parts;
    while !live.is_empty() {
        let mut progressed = false;
        live.retain(|rx| {
            while let Some(item) = rx.try_recv() {
                out.push(item);
                progressed = true;
            }
            !rx.is_eos()
        });
        if !progressed && !live.is_empty() {
            std::thread::yield_now();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_ordered_keeps_order_under_contention() {
        let out = par_map_ordered(0..1000u64, 8, |x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_unordered_covers_all_items() {
        let mut out = par_map_unordered(0..1000u64, 8, |x| x);
        out.sort();
        assert_eq!(out, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn scatter_deals_round_robin() {
        let parts = scatter(0..8u32, 2);
        let a: Vec<u32> = std::iter::from_fn(|| parts[0].recv()).collect();
        let b: Vec<u32> = std::iter::from_fn(|| parts[1].recv()).collect();
        assert_eq!(a, vec![0, 2, 4, 6]);
        assert_eq!(b, vec![1, 3, 5, 7]);
    }

    #[test]
    fn scatter_skips_dropped_parts() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // Hold the feeder until the middle part is dropped, so no item can
        // land in its buffer (and be lost) before the drop happens.
        let dropped = Arc::new(AtomicBool::new(false));
        let gate = Arc::clone(&dropped);
        let items = (0..9u32).inspect(move |_| {
            while !gate.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        let mut parts = scatter(items, 3);
        drop(parts.remove(1));
        dropped.store(true, Ordering::Release);
        let survivors = gather(parts);
        assert_eq!(survivors.len(), 9, "dropped part's share is redealt");
    }

    #[test]
    fn scatter_gather_roundtrip_with_threaded_consumers() {
        let parts = scatter(0..100u32, 4);
        let handles: Vec<_> = parts
            .into_iter()
            .map(|rx| {
                std::thread::spawn(move || std::iter::from_fn(|| rx.recv()).collect::<Vec<u32>>())
            })
            .collect();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("consumer thread"))
            .collect();
        all.sort();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }
}
