//! Blocking SPSC channel: the [`crate::spsc`] ring plus wait-strategy
//! driven send/recv and end-of-stream propagation.
//!
//! A channel is created with an explicit capacity and [`WaitStrategy`];
//! `send` blocks (per the strategy) while the ring is full, `recv` while it
//! is empty. Dropping the [`Sender`] closes the channel: once drained,
//! `recv` returns `None`, which is how EOS flows through every pipeline in
//! this crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::spsc::{self, Consumer, Producer};
use crate::wait::{Signal, WaitStrategy};

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Ring is full; the item is handed back.
    Full(T),
    /// Receiver dropped; the item is handed back.
    Disconnected(T),
}

struct Shared {
    closed: AtomicBool,
    /// Receiver waits here; sender notifies after each push (Block mode).
    items: Arc<Signal>,
    /// Sender waits here; receiver notifies after each pop (Block mode).
    space: Signal,
}

/// Sending half of a channel. Single producer: not cloneable.
pub struct Sender<T> {
    prod: Producer<T>,
    shared: Arc<Shared>,
    wait: WaitStrategy,
}

/// Receiving half of a channel. Single consumer: not cloneable.
pub struct Receiver<T> {
    cons: Consumer<T>,
    shared: Arc<Shared>,
    wait: WaitStrategy,
}

/// Create a bounded channel with the given capacity and wait strategy.
pub fn channel<T: Send>(capacity: usize, wait: WaitStrategy) -> (Sender<T>, Receiver<T>) {
    channel_with_recv_signal(capacity, wait, Arc::new(Signal::new()))
}

/// Like [`channel`], but the receive-side signal is supplied by the caller so
/// that one consumer can block on several channels at once (the farm
/// collector does this: every worker's sender notifies the same signal).
pub fn channel_with_recv_signal<T: Send>(
    capacity: usize,
    wait: WaitStrategy,
    items_signal: Arc<Signal>,
) -> (Sender<T>, Receiver<T>) {
    let (prod, cons) = spsc::ring(capacity);
    let shared = Arc::new(Shared {
        closed: AtomicBool::new(false),
        items: items_signal,
        space: Signal::new(),
    });
    (
        Sender {
            prod,
            shared: Arc::clone(&shared),
            wait,
        },
        Receiver { cons, shared, wait },
    )
}

impl<T: Send> Sender<T> {
    /// Enqueue `item`, blocking per the wait strategy while the ring is full.
    /// Fails only if the receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut item = Some(item);
        loop {
            match self.try_send(item.take().expect("item present")) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    item = Some(v);
                    let prod = &self.prod;
                    self.wait.wait_until(&self.shared.space, || {
                        prod.free_slots() > 0 || prod.consumer_gone()
                    });
                }
            }
        }
    }

    /// Non-blocking enqueue.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        if self.prod.consumer_gone() {
            return Err(TrySendError::Disconnected(item));
        }
        match self.prod.try_push(item) {
            Ok(()) => {
                if self.wait.needs_notify() {
                    self.shared.items.notify();
                }
                Ok(())
            }
            Err(v) => Err(TrySendError::Full(v)),
        }
    }

    /// Enqueue every item yielded by `items`, blocking per the wait strategy
    /// whenever the ring fills. Each contiguous run of items is published
    /// with a single index store and (in `Block` mode) a single wakeup, so
    /// `k` queued items cost one acquire/release pair instead of `k`.
    ///
    /// Returns the number of items delivered. If the receiver disappears
    /// mid-batch, `Err(SendError(sent))` reports how many made it; the
    /// undelivered remainder of the iterator is dropped (exactly what
    /// happens to in-flight items when a stream is torn down early).
    pub fn send_batch<I>(&self, items: I) -> Result<usize, SendError<usize>>
    where
        I: IntoIterator<Item = T>,
    {
        let mut iter = items.into_iter().peekable();
        let mut sent = 0usize;
        while iter.peek().is_some() {
            if self.prod.consumer_gone() {
                return Err(SendError(sent));
            }
            let n = self.prod.try_push_n(&mut iter, usize::MAX);
            if n > 0 {
                sent += n;
                if self.wait.needs_notify() {
                    self.shared.items.notify();
                }
            } else {
                let prod = &self.prod;
                self.wait.wait_until(&self.shared.space, || {
                    prod.free_slots() > 0 || prod.consumer_gone()
                });
            }
        }
        Ok(sent)
    }

    /// Non-blocking batched enqueue: push as many items as currently fit,
    /// publishing once. Returns how many were taken from the iterator; the
    /// remainder stays in `items` (pass `&mut`, so nothing is lost).
    pub fn try_send_batch<I>(&self, items: &mut I) -> Result<usize, TrySendError<()>>
    where
        I: Iterator<Item = T>,
    {
        if self.prod.consumer_gone() {
            return Err(TrySendError::Disconnected(()));
        }
        let n = self.prod.try_push_n(items, usize::MAX);
        if n > 0 && self.wait.needs_notify() {
            self.shared.items.notify();
        }
        Ok(n)
    }

    /// Advisory free-slot count.
    pub fn free_slots(&self) -> usize {
        self.prod.free_slots()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.prod.capacity()
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        // Wake a receiver parked on an empty ring so it can observe EOS.
        self.shared.items.notify();
    }
}

impl<T: Send> Receiver<T> {
    /// Dequeue the next item, blocking per the wait strategy while empty.
    /// Returns `None` once the sender is dropped and the ring drained.
    pub fn recv(&self) -> Option<T> {
        loop {
            if let Some(v) = self.cons.try_pop() {
                if self.wait.needs_notify() {
                    self.shared.space.notify();
                }
                return Some(v);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Re-check: the sender may have pushed right before closing.
                return match self.cons.try_pop() {
                    Some(v) => {
                        if self.wait.needs_notify() {
                            self.shared.space.notify();
                        }
                        Some(v)
                    }
                    None => None,
                };
            }
            let cons = &self.cons;
            let closed = &self.shared.closed;
            self.wait.wait_until(&self.shared.items, || {
                !cons.is_empty() || closed.load(Ordering::Acquire)
            });
        }
    }

    /// Blocking batched dequeue: wait (per the strategy) until at least one
    /// item is available or the stream ends, then drain up to `max` items
    /// into `out` with a single index publication. Returns the number of
    /// items appended; `0` means end-of-stream.
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        loop {
            let n = self.cons.try_pop_n(out, max);
            if n > 0 {
                if self.wait.needs_notify() {
                    self.shared.space.notify();
                }
                return n;
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Re-check: the sender may have pushed right before closing.
                let n = self.cons.try_pop_n(out, max);
                if n > 0 && self.wait.needs_notify() {
                    self.shared.space.notify();
                }
                return n;
            }
            let cons = &self.cons;
            let closed = &self.shared.closed;
            self.wait.wait_until(&self.shared.items, || {
                !cons.is_empty() || closed.load(Ordering::Acquire)
            });
        }
    }

    /// Non-blocking batched dequeue: drain up to `max` currently queued
    /// items into `out` with one index publication. Returns how many were
    /// appended; `0` means "currently empty", not EOS.
    pub fn try_recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.cons.try_pop_n(out, max);
        if n > 0 && self.wait.needs_notify() {
            self.shared.space.notify();
        }
        n
    }

    /// Non-blocking dequeue; `None` means "currently empty", not EOS.
    pub fn try_recv(&self) -> Option<T> {
        let v = self.cons.try_pop();
        if v.is_some() && self.wait.needs_notify() {
            self.shared.space.notify();
        }
        v
    }

    /// True when the sender is dropped and the ring is drained.
    pub fn is_eos(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire) && self.cons.is_empty()
    }

    /// True when the sender has been dropped (items may remain).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Advisory queued-item count.
    pub fn len(&self) -> usize {
        self.cons.len()
    }

    /// Advisory emptiness.
    pub fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }

    /// The shared item-arrival signal (for multi-channel waiting).
    pub fn items_signal(&self) -> &Arc<Signal> {
        &self.shared.items
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Wake a sender parked on a full ring so it can observe disconnect.
        self.shared.space.notify();
    }
}

/// Iterate over received items until EOS.
impl<T: Send> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = RecvIter<T>;
    fn into_iter(self) -> RecvIter<T> {
        RecvIter { rx: self }
    }
}

/// Blocking iterator over a [`Receiver`].
pub struct RecvIter<T> {
    rx: Receiver<T>,
}

impl<T: Send> Iterator for RecvIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn all_strategies() -> [WaitStrategy; 3] {
        [WaitStrategy::Spin, WaitStrategy::Yield, WaitStrategy::Block]
    }

    #[test]
    fn send_recv_in_order_across_threads() {
        for ws in all_strategies() {
            const N: u64 = 20_000;
            let (tx, rx) = channel::<u64>(16, ws);
            let producer = thread::spawn(move || {
                for i in 0..N {
                    tx.send(i).unwrap();
                }
            });
            let mut expected = 0;
            while let Some(v) = rx.recv() {
                assert_eq!(v, expected);
                expected += 1;
            }
            assert_eq!(expected, N, "strategy {ws:?}");
            producer.join().unwrap();
        }
    }

    #[test]
    fn recv_returns_none_after_sender_drop() {
        let (tx, rx) = channel::<u32>(4, WaitStrategy::Block);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
        assert!(rx.is_eos());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>(2, WaitStrategy::Yield);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel::<u32>(1, WaitStrategy::Spin);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn blocked_sender_wakes_when_receiver_drains() {
        let (tx, rx) = channel::<u32>(1, WaitStrategy::Block);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || tx.send(2).unwrap());
        // Give the sender a chance to park.
        thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        sender.join().unwrap();
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = channel::<u32>(1, WaitStrategy::Block);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || {
            assert_eq!(tx.send(2), Err(SendError(2)));
        });
        thread::sleep(std::time::Duration::from_millis(10));
        drop(rx);
        sender.join().unwrap();
    }

    #[test]
    fn iterator_drains_until_eos() {
        let (tx, rx) = channel::<u32>(8, WaitStrategy::Block);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let collected: Vec<u32> = rx.into_iter().collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_batch_recv_batch_roundtrip_across_threads() {
        for ws in all_strategies() {
            const N: u64 = 50_000;
            let (tx, rx) = channel::<u64>(32, ws);
            let producer = thread::spawn(move || {
                let mut next = 0u64;
                while next < N {
                    let hi = (next + 13).min(N);
                    assert_eq!(tx.send_batch(next..hi), Ok((hi - next) as usize));
                    next = hi;
                }
            });
            let mut expected = 0u64;
            let mut buf = Vec::new();
            loop {
                let n = rx.recv_batch(&mut buf, 29);
                if n == 0 {
                    break;
                }
                for v in buf.drain(..) {
                    assert_eq!(v, expected);
                    expected += 1;
                }
            }
            assert_eq!(expected, N, "strategy {ws:?}");
            producer.join().unwrap();
        }
    }

    #[test]
    fn send_batch_reports_disconnect_with_delivered_count() {
        let (tx, rx) = channel::<u32>(4, WaitStrategy::Yield);
        drop(rx);
        assert_eq!(tx.send_batch(0..10), Err(SendError(0)));
    }

    #[test]
    fn recv_batch_returns_zero_at_eos_after_draining() {
        let (tx, rx) = channel::<u32>(8, WaitStrategy::Block);
        assert_eq!(tx.send_batch(0..5u32), Ok(5));
        drop(tx);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_batch(&mut buf, 3), 3);
        assert_eq!(rx.recv_batch(&mut buf, 3), 2);
        assert_eq!(rx.recv_batch(&mut buf, 3), 0);
        assert!(rx.is_eos());
        assert_eq!(buf, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_send_batch_keeps_remainder_in_iterator() {
        let (tx, rx) = channel::<u32>(3, WaitStrategy::Spin);
        let mut iter = 0..10u32;
        assert_eq!(tx.try_send_batch(&mut iter), Ok(3));
        assert_eq!(iter.next(), Some(3));
        let mut buf = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut buf, 8), 3);
        assert_eq!(buf, vec![0, 1, 2]);
        assert_eq!(rx.try_recv_batch(&mut buf, 8), 0);
    }

    #[test]
    fn batched_sender_wakes_blocked_receiver() {
        let (tx, rx) = channel::<u32>(16, WaitStrategy::Block);
        let consumer = thread::spawn(move || {
            let mut buf = Vec::new();
            let mut got = 0;
            loop {
                let n = rx.recv_batch(&mut buf, 16);
                if n == 0 {
                    break;
                }
                got += n;
                buf.clear();
            }
            got
        });
        thread::sleep(std::time::Duration::from_millis(10));
        tx.send_batch(0..40u32).unwrap();
        drop(tx);
        assert_eq!(consumer.join().unwrap(), 40);
    }

    #[test]
    fn shared_recv_signal_wakes_collector() {
        // Two channels sharing one item signal; a consumer parks on both.
        let sig = Arc::new(Signal::new());
        let (tx_a, rx_a) =
            channel_with_recv_signal::<u32>(4, WaitStrategy::Block, Arc::clone(&sig));
        let (tx_b, rx_b) =
            channel_with_recv_signal::<u32>(4, WaitStrategy::Block, Arc::clone(&sig));
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            let mut open = 2;
            while open > 0 {
                let mut progressed = false;
                for rx in [&rx_a, &rx_b] {
                    while let Some(v) = rx.try_recv() {
                        got.push(v);
                        progressed = true;
                    }
                }
                if rx_a.is_eos() && rx_b.is_eos() {
                    open = 0;
                } else if !progressed {
                    let e = sig.epoch();
                    if rx_a.is_empty() && rx_b.is_empty() && !rx_a.is_eos() && !rx_b.is_eos() {
                        sig.wait_if(e);
                    }
                }
            }
            got.sort_unstable();
            got
        });
        thread::sleep(std::time::Duration::from_millis(5));
        tx_a.send(1).unwrap();
        tx_b.send(2).unwrap();
        drop(tx_a);
        drop(tx_b);
        assert_eq!(consumer.join().unwrap(), vec![1, 2]);
    }
}
