//! The farm skeleton: emitter → N worker replicas → collector.
//!
//! Reproduces FastFlow's `ff_farm`/`ff_ofarm`: an emitter thread distributes
//! stream items to worker replicas (round-robin or on-demand), each worker
//! runs its own [`Node`] instance, and a collector merges results —
//! optionally restoring the input order (the *ordered farm* the paper's
//! last pipeline stages rely on for Mandelbrot lines and Dedup batches).

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use telemetry::{Recorder, StageHandle};

use crate::channel::{channel, channel_with_recv_signal, Receiver, Sender};
use crate::node::{Emitter, Node};
use crate::pipeline::{send_batch_accounted, traced_recv_batch};
use crate::stamp::Stamped;
use crate::wait::{Signal, WaitStrategy};

/// How the emitter assigns items to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Cyclic assignment — FastFlow's default. Predictable and fair for
    /// uniform item costs.
    #[default]
    RoundRobin,
    /// First worker with queue space gets the item — better for skewed item
    /// costs (e.g. Mandelbrot lines crossing the set).
    OnDemand,
}

/// Shared queue/wait configuration for farm internals.
#[derive(Clone, Copy, Debug)]
pub struct FarmConfig {
    /// Capacity of every internal SPSC queue.
    pub capacity: usize,
    /// Wait strategy for every internal queue.
    pub wait: WaitStrategy,
    /// Emitter scheduling policy.
    pub policy: SchedPolicy,
    /// Restore input order at the collector.
    pub ordered: bool,
    /// Maximum batched-transfer run length on every internal queue (see
    /// [`crate::PipeConfig::burst`]). `1` disables batching.
    pub burst: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            capacity: 64,
            wait: WaitStrategy::default(),
            policy: SchedPolicy::default(),
            ordered: false,
            burst: 32,
        }
    }
}

enum WorkerMsg<O> {
    /// Outputs produced for the input with this sequence number, plus the
    /// input's emit stamp (forwarded to the outputs).
    Item(u64, u64, Vec<O>),
    /// Outputs flushed by `on_eos` (untimed).
    Final(Vec<O>),
}

struct OrderedEntry<O> {
    seq: u64,
    emit_ns: u64,
    outs: Vec<O>,
}

impl<O> PartialEq for OrderedEntry<O> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<O> Eq for OrderedEntry<O> {}
impl<O> PartialOrd for OrderedEntry<O> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<O> Ord for OrderedEntry<O> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.seq.cmp(&self.seq) // min-heap by seq
    }
}

/// Spawn a farm consuming `rx`; returns the merged output receiver plus the
/// handles of all spawned threads (emitter + workers + collector).
pub fn spawn_farm<N, F>(
    rx: Receiver<Stamped<N::In>>,
    replicas: usize,
    factory: F,
    cfg: FarmConfig,
) -> (Receiver<Stamped<N::Out>>, Vec<JoinHandle<()>>)
where
    N: Node,
    F: FnMut(usize) -> N,
{
    spawn_farm_traced(rx, replicas, factory, cfg, &Recorder::default(), "farm")
}

/// [`spawn_farm`] with telemetry: every worker replica registers a
/// [`telemetry::StageMetrics`] named `stage_name` under `rec`. With a
/// disabled recorder this is exactly `spawn_farm`.
pub fn spawn_farm_traced<N, F>(
    rx: Receiver<Stamped<N::In>>,
    replicas: usize,
    factory: F,
    cfg: FarmConfig,
    rec: &Recorder,
    stage_name: &str,
) -> (Receiver<Stamped<N::Out>>, Vec<JoinHandle<()>>)
where
    N: Node,
    F: FnMut(usize) -> N,
{
    spawn_farm_inner(rx, replicas, factory, cfg, rec, stage_name, None)
}

/// A worker-selection function for [`spawn_farm_routed`]: given an
/// item's farm sequence number (assigned serially by the emitter, 0, 1,
/// 2, …) and the item itself, returns the worker replica that must run
/// it. Values `>= replicas` wrap modulo the replica count.
pub type Router<I> = Box<dyn FnMut(u64, &I) -> usize + Send>;

/// [`spawn_farm_traced`] with explicit worker selection: the emitter
/// asks `router` — not a fixed policy — which replica gets each item.
/// This is the graph-node adapter a placement scheduler drives: with
/// one replica pinned per device, routing an item *is* placing its
/// batch on a device, and because the emitter calls the router serially
/// in stream order, placement decisions form a deterministic log even
/// though the workers themselves run concurrently.
pub fn spawn_farm_routed<N, F>(
    rx: Receiver<Stamped<N::In>>,
    replicas: usize,
    factory: F,
    mut router: Router<N::In>,
    cfg: FarmConfig,
    rec: &Recorder,
    stage_name: &str,
) -> (Receiver<Stamped<N::Out>>, Vec<JoinHandle<()>>)
where
    N: Node,
    F: FnMut(usize) -> N,
{
    let route: Router<Stamped<N::In>> = Box::new(move |seq, s| router(seq, &s.item));
    spawn_farm_inner(rx, replicas, factory, cfg, rec, stage_name, Some(route))
}

fn spawn_farm_inner<N, F>(
    rx: Receiver<Stamped<N::In>>,
    replicas: usize,
    mut factory: F,
    cfg: FarmConfig,
    rec: &Recorder,
    stage_name: &str,
    route: Option<Router<Stamped<N::In>>>,
) -> (Receiver<Stamped<N::Out>>, Vec<JoinHandle<()>>)
where
    N: Node,
    F: FnMut(usize) -> N,
{
    assert!(replicas > 0, "farm needs at least one worker replica");
    let mut handles = Vec::with_capacity(replicas + 2);

    // Emitter -> workers.
    let mut to_workers = Vec::with_capacity(replicas);
    let mut worker_rxs = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let (tx, rx) = channel::<(u64, Stamped<N::In>)>(cfg.capacity, cfg.wait);
        to_workers.push(tx);
        worker_rxs.push(rx);
    }

    // Workers -> collector, sharing one item-arrival signal so the collector
    // can block on "any worker produced something".
    let collector_signal = Arc::new(Signal::new());
    let mut from_workers = Vec::with_capacity(replicas);
    let mut worker_txs = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let (tx, rx) = channel_with_recv_signal::<WorkerMsg<N::Out>>(
            cfg.capacity,
            cfg.wait,
            Arc::clone(&collector_signal),
        );
        worker_txs.push(tx);
        from_workers.push(rx);
    }

    // Emitter thread.
    {
        let policy = cfg.policy;
        let burst = cfg.burst;
        handles.push(
            thread::Builder::new()
                .name("ff-emitter".into())
                .spawn(move || match route {
                    Some(router) => run_emitter_routed(rx, to_workers, router, burst),
                    None => run_emitter(rx, to_workers, policy, burst),
                })
                .expect("spawn emitter"),
        );
    }

    // Worker threads.
    for (idx, (w_rx, w_tx)) in worker_rxs.into_iter().zip(worker_txs).enumerate() {
        let mut node = factory(idx);
        let stage = rec.stage(stage_name, idx);
        let burst = cfg.burst;
        handles.push(
            thread::Builder::new()
                .name(format!("ff-worker-{idx}"))
                .spawn(move || run_worker(&mut node, w_rx, w_tx, stage, burst))
                .expect("spawn worker"),
        );
    }

    // Collector thread.
    let (out_tx, out_rx) = channel::<Stamped<N::Out>>(cfg.capacity, cfg.wait);
    {
        let wait = cfg.wait;
        let ordered = cfg.ordered;
        let burst = cfg.burst;
        handles.push(
            thread::Builder::new()
                .name("ff-collector".into())
                .spawn(move || {
                    run_collector(from_workers, out_tx, collector_signal, wait, ordered, burst)
                })
                .expect("spawn collector"),
        );
    }

    (out_rx, handles)
}

fn run_emitter<I: Send + 'static>(
    rx: Receiver<I>,
    to_workers: Vec<Sender<(u64, I)>>,
    policy: SchedPolicy,
    burst: usize,
) {
    let n = to_workers.len();
    let mut seq: u64 = 0;
    let mut in_buf: Vec<I> = Vec::with_capacity(burst);
    // Per-worker scratch for the round-robin multi-push: one input burst is
    // partitioned by destination, then delivered with one `send_batch` per
    // worker touched.
    let mut scratch: Vec<Vec<(u64, I)>> = (0..n).map(|_| Vec::with_capacity(burst)).collect();
    'stream: while rx.recv_batch(&mut in_buf, burst) > 0 {
        match policy {
            SchedPolicy::RoundRobin => {
                for item in in_buf.drain(..) {
                    scratch[(seq as usize) % n].push((seq, item));
                    seq += 1;
                }
                for (w, buf) in scratch.iter_mut().enumerate() {
                    if !buf.is_empty() && to_workers[w].send_batch(buf.drain(..)).is_err() {
                        break 'stream; // worker died; stop the stream
                    }
                }
            }
            SchedPolicy::OnDemand => {
                for item in in_buf.drain(..) {
                    let mut msg = Some((seq, item));
                    let mut spins = 0u32;
                    loop {
                        let mut all_dead = true;
                        for tx in &to_workers {
                            match tx.try_send(msg.take().expect("message present")) {
                                Ok(()) => break,
                                Err(crate::channel::TrySendError::Full(m)) => {
                                    all_dead = false;
                                    msg = Some(m);
                                }
                                Err(crate::channel::TrySendError::Disconnected(m)) => {
                                    msg = Some(m);
                                }
                            }
                        }
                        if msg.is_none() {
                            break; // placed on some worker
                        }
                        if all_dead {
                            break 'stream;
                        }
                        spins += 1;
                        if spins < 64 {
                            std::hint::spin_loop();
                        } else {
                            thread::yield_now();
                        }
                    }
                    seq += 1;
                }
            }
        }
    }
    // Senders drop here => EOS to every worker.
}

fn run_emitter_routed<I: Send + 'static>(
    rx: Receiver<I>,
    to_workers: Vec<Sender<(u64, I)>>,
    mut router: Router<I>,
    burst: usize,
) {
    let n = to_workers.len();
    let mut seq: u64 = 0;
    let mut in_buf: Vec<I> = Vec::with_capacity(burst);
    // Same burst-partitioned delivery as the round-robin emitter, with
    // the destination chosen per item by the router. The router runs on
    // this single emitter thread, in seq order — the property placement
    // determinism rests on.
    let mut scratch: Vec<Vec<(u64, I)>> = (0..n).map(|_| Vec::with_capacity(burst)).collect();
    'stream: while rx.recv_batch(&mut in_buf, burst) > 0 {
        for item in in_buf.drain(..) {
            let w = router(seq, &item) % n;
            scratch[w].push((seq, item));
            seq += 1;
        }
        for (w, buf) in scratch.iter_mut().enumerate() {
            if !buf.is_empty() && to_workers[w].send_batch(buf.drain(..)).is_err() {
                break 'stream; // worker died; stop the stream
            }
        }
    }
    // Senders drop here => EOS to every worker.
}

fn run_worker<N: Node>(
    node: &mut N,
    rx: Receiver<(u64, Stamped<N::In>)>,
    tx: Sender<WorkerMsg<N::Out>>,
    stage: StageHandle,
    burst: usize,
) {
    node.on_init();
    let mut in_buf: Vec<(u64, Stamped<N::In>)> = Vec::with_capacity(burst);
    let mut msg_buf: Vec<WorkerMsg<N::Out>> = Vec::with_capacity(burst);
    while traced_recv_batch(&rx, &stage, &mut in_buf, burst) > 0 {
        for (seq, Stamped { item, emit_ns }) in in_buf.drain(..) {
            stage.item_in(rx.len());
            let mut outs = Vec::new();
            {
                let mut sink = |v: N::Out| {
                    outs.push(v);
                    true
                };
                let mut em = Emitter::new(&mut sink);
                let span = stage.begin();
                node.svc(item, &mut em);
                stage.end(span);
            }
            msg_buf.push(WorkerMsg::Item(seq, emit_ns, outs));
        }
        // One batched hand-off per input burst, flushed before the recv
        // above can block again. `items_out` is recorded at hand-off, not
        // at svc time (see `send_batch_accounted`).
        let delivered = send_batch_accounted(&tx, &mut msg_buf, &stage, |m| match m {
            WorkerMsg::Item(_, _, outs) => outs.len() as u64,
            WorkerMsg::Final(_) => 0,
        });
        if !delivered {
            return; // collector gone
        }
    }
    let mut finals = Vec::new();
    {
        let mut sink = |v: N::Out| {
            finals.push(v);
            true
        };
        let mut em = Emitter::new(&mut sink);
        node.on_eos(&mut em);
    }
    if !finals.is_empty() {
        let _ = tx.send(WorkerMsg::Final(finals));
    }
}

/// Deliver everything in `buf` downstream; `Err` means the consumer is gone.
fn flush_out<O: Send + 'static>(
    out_tx: &Sender<Stamped<O>>,
    buf: &mut Vec<Stamped<O>>,
) -> Result<(), ()> {
    if buf.is_empty() {
        return Ok(());
    }
    match out_tx.send_batch(buf.drain(..)) {
        Ok(_) => Ok(()),
        Err(_) => Err(()),
    }
}

fn run_collector<O: Send + 'static>(
    from_workers: Vec<Receiver<WorkerMsg<O>>>,
    out_tx: Sender<Stamped<O>>,
    signal: Arc<Signal>,
    wait: WaitStrategy,
    ordered: bool,
    burst: usize,
) {
    let n = from_workers.len();
    let mut eos = vec![false; n];
    let mut eos_count = 0usize;
    let mut heap: BinaryHeap<OrderedEntry<O>> = BinaryHeap::new();
    let mut next_seq: u64 = 0;
    let mut finals: Vec<O> = Vec::new();
    let mut msg_buf: Vec<WorkerMsg<O>> = Vec::with_capacity(burst);
    // Outputs accumulate here and leave via one `send_batch` per run —
    // flushed at the burst size and always before blocking, so downstream
    // never waits on items the collector already holds.
    let mut out_buf: Vec<Stamped<O>> = Vec::with_capacity(burst);

    'outer: while eos_count < n {
        let mut progressed = false;
        for (i, rx) in from_workers.iter().enumerate() {
            if eos[i] {
                continue;
            }
            while rx.try_recv_batch(&mut msg_buf, burst) > 0 {
                progressed = true;
                for msg in msg_buf.drain(..) {
                    match msg {
                        WorkerMsg::Item(seq, emit_ns, outs) => {
                            if ordered {
                                heap.push(OrderedEntry { seq, emit_ns, outs });
                                while heap.peek().is_some_and(|e| e.seq == next_seq) {
                                    let entry = heap.pop().expect("peeked");
                                    next_seq += 1;
                                    for v in entry.outs {
                                        out_buf.push(Stamped::at(v, entry.emit_ns));
                                    }
                                    if out_buf.len() >= burst
                                        && flush_out(&out_tx, &mut out_buf).is_err()
                                    {
                                        break 'outer;
                                    }
                                }
                            } else {
                                for v in outs {
                                    out_buf.push(Stamped::at(v, emit_ns));
                                }
                                if out_buf.len() >= burst
                                    && flush_out(&out_tx, &mut out_buf).is_err()
                                {
                                    break 'outer;
                                }
                            }
                        }
                        WorkerMsg::Final(outs) => finals.extend(outs),
                    }
                }
            }
            if rx.is_eos() {
                eos[i] = true;
                eos_count += 1;
                progressed = true;
            }
        }
        if eos_count >= n {
            break;
        }
        if !progressed {
            if flush_out(&out_tx, &mut out_buf).is_err() {
                return;
            }
            let epoch = signal.epoch();
            let any_ready = from_workers
                .iter()
                .enumerate()
                .any(|(i, rx)| !eos[i] && (!rx.is_empty() || rx.is_eos()));
            if !any_ready {
                match wait {
                    WaitStrategy::Block => signal.wait_if(epoch),
                    WaitStrategy::Spin => std::hint::spin_loop(),
                    WaitStrategy::Yield => thread::yield_now(),
                }
            }
        }
    }

    // In-order items buffered above must leave before the stragglers.
    if flush_out(&out_tx, &mut out_buf).is_err() {
        return;
    }
    // Drain any ordered stragglers (all workers done, heap must be complete).
    while let Some(entry) = heap.pop() {
        debug_assert_eq!(entry.seq, next_seq, "ordered farm missing sequence");
        next_seq += 1;
        for v in entry.outs {
            out_buf.push(Stamped::at(v, entry.emit_ns));
        }
        if out_buf.len() >= burst && flush_out(&out_tx, &mut out_buf).is_err() {
            return;
        }
    }
    for v in finals {
        out_buf.push(Stamped::bare(v));
    }
    let _ = flush_out(&out_tx, &mut out_buf);
    // out_tx drops here => EOS downstream.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node;

    fn feed(values: Vec<u64>, cfg: FarmConfig, replicas: usize) -> Vec<u64> {
        let (tx, rx) = channel::<Stamped<u64>>(cfg.capacity, cfg.wait);
        let producer = thread::spawn(move || {
            for v in values {
                tx.send(Stamped::bare(v)).unwrap();
            }
        });
        let (out_rx, handles) =
            spawn_farm::<_, _>(rx, replicas, |_| node::map(|x: u64| x * 10), cfg);
        let collected: Vec<u64> = out_rx.into_iter().map(Stamped::into_inner).collect();
        producer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        collected
    }

    #[test]
    fn unordered_farm_processes_everything() {
        let cfg = FarmConfig::default();
        let mut got = feed((0..500).collect(), cfg, 4);
        got.sort_unstable();
        let expected: Vec<u64> = (0..500).map(|x| x * 10).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn ordered_farm_preserves_input_order() {
        let cfg = FarmConfig {
            ordered: true,
            ..FarmConfig::default()
        };
        let got = feed((0..500).collect(), cfg, 4);
        let expected: Vec<u64> = (0..500).map(|x| x * 10).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn ordered_farm_on_demand_preserves_order() {
        let cfg = FarmConfig {
            ordered: true,
            policy: SchedPolicy::OnDemand,
            capacity: 4,
            ..FarmConfig::default()
        };
        let got = feed((0..300).collect(), cfg, 3);
        let expected: Vec<u64> = (0..300).map(|x| x * 10).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn single_replica_farm_is_a_pipeline_stage() {
        let cfg = FarmConfig {
            ordered: true,
            ..FarmConfig::default()
        };
        let got = feed(vec![5, 6, 7], cfg, 1);
        assert_eq!(got, vec![50, 60, 70]);
    }

    #[test]
    fn eos_flush_outputs_arrive_after_stream() {
        struct Counting {
            seen: u64,
        }
        impl Node for Counting {
            type In = u64;
            type Out = u64;
            fn svc(&mut self, input: u64, out: &mut Emitter<'_, u64>) {
                self.seen += 1;
                out.send(input);
            }
            fn on_eos(&mut self, out: &mut Emitter<'_, u64>) {
                out.send(1_000_000 + self.seen);
            }
        }
        let cfg = FarmConfig {
            ordered: true,
            ..FarmConfig::default()
        };
        let (tx, rx) = channel::<Stamped<u64>>(16, cfg.wait);
        let producer = thread::spawn(move || {
            for v in 0..10u64 {
                tx.send(Stamped::bare(v)).unwrap();
            }
        });
        let (out_rx, handles) = spawn_farm::<_, _>(rx, 2, |_| Counting { seen: 0 }, cfg);
        let got: Vec<u64> = out_rx.into_iter().map(Stamped::into_inner).collect();
        producer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        // First 10 items in order, then 2 per-worker flush totals (5 each).
        assert_eq!(&got[..10], &(0..10).collect::<Vec<u64>>()[..]);
        let mut tails: Vec<u64> = got[10..].to_vec();
        tails.sort_unstable();
        assert_eq!(tails, vec![1_000_005, 1_000_005]);
    }

    #[test]
    fn multi_output_nodes_keep_group_order_when_ordered() {
        let cfg = FarmConfig {
            ordered: true,
            ..FarmConfig::default()
        };
        let (tx, rx) = channel::<Stamped<u64>>(16, cfg.wait);
        let producer = thread::spawn(move || {
            for v in 0..20u64 {
                tx.send(Stamped::bare(v)).unwrap();
            }
        });
        let (out_rx, handles) = spawn_farm::<_, _>(
            rx,
            3,
            |_| node::flat_map(|x: u64| vec![x * 2, x * 2 + 1]),
            cfg,
        );
        let got: Vec<u64> = out_rx.into_iter().map(Stamped::into_inner).collect();
        producer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn routed_farm_honors_the_router_and_keeps_order() {
        struct Tagged {
            replica: u64,
        }
        impl Node for Tagged {
            type In = u64;
            type Out = (u64, u64);
            fn svc(&mut self, input: u64, out: &mut Emitter<'_, (u64, u64)>) {
                out.send((self.replica, input));
            }
        }
        use crate::node::Emitter;
        let cfg = FarmConfig {
            ordered: true,
            ..FarmConfig::default()
        };
        let (tx, rx) = channel::<Stamped<u64>>(cfg.capacity, cfg.wait);
        let producer = thread::spawn(move || {
            for v in 0..200u64 {
                tx.send(Stamped::bare(v)).unwrap();
            }
        });
        let (out_rx, handles) = spawn_farm_routed::<Tagged, _>(
            rx,
            3,
            |idx| Tagged {
                replica: idx as u64,
            },
            Box::new(|_seq, item: &u64| (*item % 3) as usize),
            cfg,
            &Recorder::default(),
            "routed",
        );
        let got: Vec<(u64, u64)> = out_rx.into_iter().map(Stamped::into_inner).collect();
        producer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        // Every item ran on the replica the router named, and the
        // ordered collector restored stream order.
        assert_eq!(got.len(), 200);
        for (i, (replica, item)) in got.iter().enumerate() {
            assert_eq!(*item, i as u64);
            assert_eq!(*replica, item % 3, "item {item} ran on replica {replica}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_replicas_panics() {
        let cfg = FarmConfig::default();
        let (_tx, rx) = channel::<Stamped<u64>>(4, cfg.wait);
        let _ = spawn_farm::<_, _>(rx, 0, |_| node::map(|x: u64| x), cfg);
    }
}
