//! Buffer recycling: the allocation-side half of FastFlow's zero-copy
//! discipline.
//!
//! The FastFlow runtime gets its throughput from never heap-allocating on
//! the item path — stream items are pointers into buffers that circulate
//! between producers and consumers. The paper's GPU ladder leans on the
//! same idea: Fig. 1/Fig. 4 allocate a fixed set of memory spaces (2× for
//! the synchronous rungs, 4× with copy/compute overlap) once per run and
//! cycle them round-robin. This module supplies the two primitives that
//! make our pipelines do the same:
//!
//! * [`BufPool`] — a size-classed slab pool handing out [`PooledBuf`] RAII
//!   handles. Buffers live in per-class lock-free MPMC rings (the classes
//!   are powers of two of the element count), so any stage replica can
//!   acquire and any replica — typically the sink — can release. A hit
//!   recycles cached storage with `clear()` + `resize()`, which touches no
//!   allocator because every pooled vector carries its full class
//!   capacity.
//! * [`Recycler`] — a feedback-style return channel: sinks `give` spent
//!   item payloads back and upstream workers `take` them, mirroring the
//!   wrap-around farm in [`crate::feedback`] but for raw buffers rather
//!   than stream items.
//!
//! Both report hit/miss/outstanding gauges through
//! [`telemetry::PoolCounters`] so a run's report shows whether the steady
//! state actually recycles (hit rate ≈ 1 after warmup).
//!
//! The rings are bounded Vyukov-style MPMC queues (sequence number per
//! slot, CAS on the head/tail tickets — the same design as `tbbx`'s task
//! injector). Bounded is a feature: a full class sheds the returned buffer
//! to the allocator instead of growing, so the pool's footprint is capped
//! at `classes × per_class × class_size`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use telemetry::{PoolCounters, PoolStats};

/// One slot of the MPMC ring: a sequence ticket plus uninitialised value
/// storage. See Vyukov's bounded MPMC queue: a slot whose sequence equals
/// the push ticket is writable; one past the pop ticket is readable.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free multi-producer/multi-consumer ring.
struct MpmcRing<T> {
    mask: usize,
    slots: Box<[Slot<T>]>,
    /// Push ticket counter.
    tail: AtomicUsize,
    /// Pop ticket counter.
    head: AtomicUsize,
}

// SAFETY: slots hand values across threads by value; the sequence protocol
// ensures exactly one thread reads or writes a slot at a time.
unsafe impl<T: Send> Send for MpmcRing<T> {}
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MpmcRing {
            mask: cap - 1,
            slots,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Push `value`, or hand it back if the ring is full.
    fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the ticket CAS gives us exclusive
                        // write access until we publish seq below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return Err(value); // full
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop one value, or `None` when empty.
    fn try_pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the ticket CAS gives us exclusive
                        // read access; the slot was published by a push.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

/// Number of size classes: class `c` holds vectors of capacity `2^c`
/// elements, so 33 classes cover every length a `usize` index can reach.
const N_CLASSES: usize = 33;

/// Default cached buffers per size class.
const DEFAULT_PER_CLASS: usize = 32;

/// Size class that can satisfy a request for `len` elements.
#[inline]
fn class_for_len(len: usize) -> usize {
    len.max(1).next_power_of_two().trailing_zeros() as usize
}

/// Largest size class a buffer of `capacity` elements can serve.
#[inline]
fn class_for_capacity(capacity: usize) -> usize {
    debug_assert!(capacity > 0);
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

/// Hook letting an external allocator observe pool slab lifetimes.
///
/// The motivating implementor lives in the `workload` crate: it registers
/// every slab the pool allocates with the GPU simulator's pinned-memory
/// registry, so pooled buffers are page-locked for their whole cached
/// lifetime and `h2d_pinned`/`d2h_pinned` transfers touching them never
/// bounce through staging memory. `register` fires once per allocator
/// miss; `unregister` fires when a slab permanently leaves the pool
/// (shed, [`PooledBuf::detach`], or pool drop) — never on the recycle
/// path, so the steady state stays free of registry churn.
pub trait SlabRegistrar: Send + Sync {
    /// A slab of `bytes` bytes at address `ptr` now belongs to the pool.
    fn register(&self, ptr: usize, bytes: usize);
    /// The slab previously registered at `(ptr, bytes)` is leaving the
    /// pool and is about to be freed (or handed to an outside owner).
    fn unregister(&self, ptr: usize, bytes: usize);
}

struct PoolCore<T> {
    classes: Box<[MpmcRing<Vec<T>>]>,
    counters: Arc<PoolCounters>,
    registrar: Option<Arc<dyn SlabRegistrar>>,
}

/// Address and byte extent of a vector's full backing allocation.
#[inline]
fn slab_extent<T>(vec: &Vec<T>) -> (usize, usize) {
    (
        vec.as_ptr() as usize,
        vec.capacity() * std::mem::size_of::<T>(),
    )
}

impl<T> PoolCore<T> {
    fn unregister_slab(&self, vec: &Vec<T>) {
        if let Some(reg) = &self.registrar {
            let (ptr, bytes) = slab_extent(vec);
            if bytes > 0 {
                reg.unregister(ptr, bytes);
            }
        }
    }

    /// Return `vec` to the class its capacity can serve; shed when full.
    fn give_back(&self, vec: Vec<T>) {
        if vec.capacity() == 0 {
            return; // nothing worth caching
        }
        let class = class_for_capacity(vec.capacity());
        if let Err(vec) = self.classes[class].try_push(vec) {
            self.unregister_slab(&vec);
            self.counters.shed_one();
        }
    }
}

impl<T> Drop for PoolCore<T> {
    fn drop(&mut self) {
        // Unpin every cached slab before the rings free them.
        if self.registrar.is_some() {
            for class in self.classes.iter() {
                while let Some(vec) = class.try_pop() {
                    self.unregister_slab(&vec);
                }
            }
        }
    }
}

/// Size-classed MPMC buffer pool. Cloning shares the pool.
pub struct BufPool<T> {
    core: Arc<PoolCore<T>>,
}

impl<T> Clone for BufPool<T> {
    fn clone(&self) -> Self {
        BufPool {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: Default + Clone + Send + 'static> Default for BufPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default + Clone + Send + 'static> BufPool<T> {
    /// Pool with the default per-class capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_PER_CLASS)
    }

    /// Pool caching up to `per_class` buffers in each size class.
    pub fn with_capacity(per_class: usize) -> Self {
        Self::build(per_class, None)
    }

    /// Pool whose slabs are announced to `registrar` for their whole
    /// pooled lifetime (see [`SlabRegistrar`]). Uses the default
    /// per-class capacity.
    pub fn with_registrar(registrar: Arc<dyn SlabRegistrar>) -> Self {
        Self::build(DEFAULT_PER_CLASS, Some(registrar))
    }

    fn build(per_class: usize, registrar: Option<Arc<dyn SlabRegistrar>>) -> Self {
        let classes = (0..N_CLASSES)
            .map(|_| MpmcRing::new(per_class))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BufPool {
            core: Arc::new(PoolCore {
                classes,
                counters: PoolCounters::new(),
                registrar,
            }),
        }
    }

    /// Acquire a zeroed (`T::default()`-filled) buffer of exactly `len`
    /// elements. Served from the pool when the size class has a cached
    /// buffer — in that case no allocator call happens, because cached
    /// buffers always carry their full class capacity.
    pub fn acquire(&self, len: usize) -> PooledBuf<T> {
        let class = class_for_len(len);
        let mut vec = match self.core.classes[class].try_pop() {
            Some(v) => {
                self.core.counters.hit();
                v
            }
            None => {
                self.core.counters.miss();
                let vec = Vec::with_capacity(1usize << class);
                if let Some(reg) = &self.core.registrar {
                    let (ptr, bytes) = slab_extent(&vec);
                    if bytes > 0 {
                        reg.register(ptr, bytes);
                    }
                }
                vec
            }
        };
        debug_assert!(vec.capacity() >= len);
        vec.clear();
        vec.resize(len, T::default());
        self.core.counters.lease();
        PooledBuf {
            vec: Some(vec),
            core: Arc::clone(&self.core),
        }
    }

    /// Shared gauges, for [`telemetry::Recorder::register_pool`].
    pub fn counters(&self) -> &Arc<PoolCounters> {
        &self.core.counters
    }

    /// Current gauge snapshot.
    pub fn stats(&self) -> PoolStats {
        self.core.counters.snapshot()
    }
}

/// RAII handle to a pooled buffer; returns to the pool on drop.
pub struct PooledBuf<T> {
    vec: Option<Vec<T>>,
    core: Arc<PoolCore<T>>,
}

impl<T> PooledBuf<T> {
    /// Detach the storage from the pool (it will not be recycled).
    pub fn detach(mut self) -> Vec<T> {
        self.core.counters.release();
        let vec = self.vec.take().expect("pooled buffer present until drop");
        self.core.unregister_slab(&vec);
        vec
    }
}

impl<T> Deref for PooledBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.vec.as_deref().expect("pooled buffer present")
    }
}

impl<T> DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.vec.as_deref_mut().expect("pooled buffer present")
    }
}

impl<T> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        if let Some(vec) = self.vec.take() {
            self.core.counters.release();
            self.core.give_back(vec);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Feedback-style recycle channel: sinks [`give`](Recycler::give) spent
/// payloads back, upstream workers [`take`](Recycler::take) them instead
/// of allocating. Cloning shares the channel. Bounded: `give` onto a full
/// ring drops the payload (sheds to the allocator) rather than blocking —
/// the sink must never stall behind its own recycling.
pub struct Recycler<T> {
    ring: Arc<MpmcRing<T>>,
    counters: Arc<PoolCounters>,
}

impl<T> Clone for Recycler<T> {
    fn clone(&self) -> Self {
        Recycler {
            ring: Arc::clone(&self.ring),
            counters: Arc::clone(&self.counters),
        }
    }
}

/// A recycle channel holding at most `capacity` spent payloads.
pub fn recycler<T: Send + 'static>(capacity: usize) -> Recycler<T> {
    Recycler {
        ring: Arc::new(MpmcRing::new(capacity)),
        counters: PoolCounters::new(),
    }
}

impl<T: Send + 'static> Recycler<T> {
    /// Return a spent payload upstream. Never blocks; sheds when full.
    pub fn give(&self, item: T) {
        if self.ring.try_push(item).is_err() {
            self.counters.shed_one();
        }
    }

    /// Take a recycled payload, if one is waiting.
    pub fn take(&self) -> Option<T> {
        match self.ring.try_pop() {
            Some(item) => {
                self.counters.hit();
                Some(item)
            }
            None => {
                self.counters.miss();
                None
            }
        }
    }

    /// Shared gauges, for [`telemetry::Recorder::register_pool`].
    pub fn counters(&self) -> &Arc<PoolCounters> {
        &self.counters
    }

    /// Current gauge snapshot.
    pub fn stats(&self) -> PoolStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_zeroes_and_sizes_exactly() {
        let pool: BufPool<u32> = BufPool::new();
        let mut b = pool.acquire(10);
        assert_eq!(&*b, &[0u32; 10]);
        b.iter_mut().for_each(|x| *x = 7);
        drop(b);
        // Recycled buffer must come back zeroed even though we dirtied it.
        let b2 = pool.acquire(10);
        assert_eq!(&*b2, &[0u32; 10]);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn same_class_reuse_is_a_hit_without_realloc() {
        let pool: BufPool<u8> = BufPool::new();
        drop(pool.acquire(100)); // class 7 (128)
        let b = pool.acquire(128); // same class, larger len
        assert_eq!(b.len(), 128);
        assert!(b.vec.as_ref().unwrap().capacity() >= 128);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn distinct_classes_do_not_alias() {
        let pool: BufPool<u8> = BufPool::new();
        drop(pool.acquire(8));
        // 1024 is a different class; the cached 8-capacity vec can't serve it.
        let b = pool.acquire(1024);
        assert_eq!(b.len(), 1024);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn outstanding_tracks_leases() {
        let pool: BufPool<u8> = BufPool::new();
        let a = pool.acquire(4);
        let b = pool.acquire(4);
        assert_eq!(pool.stats().outstanding, 2);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn full_class_sheds_instead_of_growing() {
        let pool: BufPool<u8> = BufPool::with_capacity(2);
        let bufs: Vec<_> = (0..5).map(|_| pool.acquire(16)).collect();
        drop(bufs);
        assert!(pool.stats().shed >= 1, "{:?}", pool.stats());
    }

    #[test]
    fn detach_removes_from_pool() {
        let pool: BufPool<u8> = BufPool::new();
        let v = pool.acquire(8).detach();
        assert_eq!(v.len(), 8);
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.acquire(8).len(), 8); // miss: nothing was returned
        assert_eq!(pool.stats().misses, 2);
    }

    /// Registrar that mirrors the pool's announcements into a set, so
    /// tests can assert the register/unregister pairing is exact.
    #[derive(Default)]
    struct LedgerRegistrar {
        live: std::sync::Mutex<Vec<(usize, usize)>>,
        registers: AtomicUsize,
        unregisters: AtomicUsize,
    }

    impl SlabRegistrar for LedgerRegistrar {
        fn register(&self, ptr: usize, bytes: usize) {
            self.registers.fetch_add(1, Ordering::Relaxed);
            self.live.lock().unwrap().push((ptr, bytes));
        }
        fn unregister(&self, ptr: usize, bytes: usize) {
            self.unregisters.fetch_add(1, Ordering::Relaxed);
            let mut live = self.live.lock().unwrap();
            let i = live
                .iter()
                .position(|&e| e == (ptr, bytes))
                .expect("unregister matches a live registration");
            live.swap_remove(i);
        }
    }

    #[test]
    fn registrar_sees_slabs_for_their_whole_pooled_lifetime() {
        let ledger = Arc::new(LedgerRegistrar::default());
        let pool: BufPool<u32> = BufPool::with_registrar(ledger.clone());

        // Miss: allocation announced once, with full-class byte extent.
        let b = pool.acquire(100);
        assert_eq!(ledger.registers.load(Ordering::Relaxed), 1);
        assert_eq!(
            ledger.live.lock().unwrap()[0].1,
            128 * std::mem::size_of::<u32>()
        );

        // Recycle + hit: no registry churn on the steady-state path.
        drop(b);
        let b = pool.acquire(128);
        assert_eq!(ledger.registers.load(Ordering::Relaxed), 1);
        assert_eq!(ledger.unregisters.load(Ordering::Relaxed), 0);

        // Detach hands the slab to an outside owner: unregistered.
        let v = b.detach();
        assert_eq!(ledger.unregisters.load(Ordering::Relaxed), 1);
        assert!(ledger.live.lock().unwrap().is_empty());
        drop(v);

        // Pool drop unpins everything still cached.
        let c = pool.acquire(8);
        drop(c);
        assert_eq!(ledger.registers.load(Ordering::Relaxed), 2);
        drop(pool);
        assert_eq!(ledger.unregisters.load(Ordering::Relaxed), 2);
        assert!(ledger.live.lock().unwrap().is_empty());
    }

    #[test]
    fn shed_slabs_are_unregistered() {
        let ledger = Arc::new(LedgerRegistrar::default());
        let pool: BufPool<u8> = BufPool::with_registrar(ledger.clone());
        // Default per-class capacity is 32; hold 40 live so at least 8
        // returns find a full ring and shed to the allocator.
        let bufs: Vec<_> = (0..40).map(|_| pool.acquire(16)).collect();
        assert_eq!(ledger.registers.load(Ordering::Relaxed), 40);
        drop(bufs);
        let shed = pool.stats().shed as usize;
        assert!(shed >= 8, "expected sheds, got {shed}");
        assert_eq!(ledger.unregisters.load(Ordering::Relaxed), shed);
        drop(pool);
        // Cached + shed together must unpin everything exactly once.
        assert_eq!(ledger.unregisters.load(Ordering::Relaxed), 40);
        assert!(ledger.live.lock().unwrap().is_empty());
    }

    #[test]
    fn recycler_roundtrip() {
        let r = recycler::<Vec<u8>>(4);
        assert!(r.take().is_none());
        r.give(vec![1, 2, 3]);
        assert_eq!(r.take().unwrap(), vec![1, 2, 3]);
        let s = r.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn recycler_sheds_when_full() {
        let r = recycler::<u64>(2);
        for i in 0..10 {
            r.give(i);
        }
        assert!(r.stats().shed >= 1);
    }

    #[test]
    fn mpmc_ring_transfers_everything_once() {
        let ring = Arc::new(MpmcRing::<usize>::new(64));
        let n_threads = 4;
        let per_thread = 10_000;
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let mut v = t * per_thread + i;
                    loop {
                        match ring.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let total = n_threads * per_thread;
        let pop_count = Arc::new(AtomicUsize::new(0));
        for _ in 0..n_threads {
            let ring = Arc::clone(&ring);
            let popped = Arc::clone(&popped);
            let pop_count = Arc::clone(&pop_count);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while pop_count.load(Ordering::Relaxed) < total {
                    match ring.try_pop() {
                        Some(v) => {
                            got.push(v);
                            pop_count.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
                popped.lock().unwrap().push(got);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = popped.lock().unwrap().concat();
        all.sort_unstable();
        // Every pushed value must come out exactly once.
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
