//! Buffer recycling: the allocation-side half of FastFlow's zero-copy
//! discipline.
//!
//! The FastFlow runtime gets its throughput from never heap-allocating on
//! the item path — stream items are pointers into buffers that circulate
//! between producers and consumers. The paper's GPU ladder leans on the
//! same idea: Fig. 1/Fig. 4 allocate a fixed set of memory spaces (2× for
//! the synchronous rungs, 4× with copy/compute overlap) once per run and
//! cycle them round-robin. This module supplies the two primitives that
//! make our pipelines do the same:
//!
//! * [`BufPool`] — a size-classed slab pool handing out [`PooledBuf`] RAII
//!   handles. Buffers live in per-class lock-free MPMC rings (the classes
//!   are powers of two of the element count), so any stage replica can
//!   acquire and any replica — typically the sink — can release. A hit
//!   recycles cached storage with `clear()` + `resize()`, which touches no
//!   allocator because every pooled vector carries its full class
//!   capacity.
//! * [`Recycler`] — a feedback-style return channel: sinks `give` spent
//!   item payloads back and upstream workers `take` them, mirroring the
//!   wrap-around farm in [`crate::feedback`] but for raw buffers rather
//!   than stream items.
//!
//! Both report hit/miss/outstanding gauges through
//! [`telemetry::PoolCounters`] so a run's report shows whether the steady
//! state actually recycles (hit rate ≈ 1 after warmup).
//!
//! The rings are bounded Vyukov-style MPMC queues (sequence number per
//! slot, CAS on the head/tail tickets — the same design as `tbbx`'s task
//! injector). Bounded is a feature: a full class sheds the returned buffer
//! to the allocator instead of growing, so the pool's footprint is capped
//! at `classes × per_class × class_size`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use telemetry::{PoolCounters, PoolStats};

/// One slot of the MPMC ring: a sequence ticket plus uninitialised value
/// storage. See Vyukov's bounded MPMC queue: a slot whose sequence equals
/// the push ticket is writable; one past the pop ticket is readable.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free multi-producer/multi-consumer ring.
struct MpmcRing<T> {
    mask: usize,
    slots: Box<[Slot<T>]>,
    /// Push ticket counter.
    tail: AtomicUsize,
    /// Pop ticket counter.
    head: AtomicUsize,
}

// SAFETY: slots hand values across threads by value; the sequence protocol
// ensures exactly one thread reads or writes a slot at a time.
unsafe impl<T: Send> Send for MpmcRing<T> {}
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MpmcRing {
            mask: cap - 1,
            slots,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Push `value`, or hand it back if the ring is full.
    fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the ticket CAS gives us exclusive
                        // write access until we publish seq below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return Err(value); // full
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop one value, or `None` when empty.
    fn try_pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the ticket CAS gives us exclusive
                        // read access; the slot was published by a push.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

/// Number of size classes: class `c` holds vectors of capacity `2^c`
/// elements, so 33 classes cover every length a `usize` index can reach.
const N_CLASSES: usize = 33;

/// Default cached buffers per size class.
const DEFAULT_PER_CLASS: usize = 32;

/// Size class that can satisfy a request for `len` elements.
#[inline]
fn class_for_len(len: usize) -> usize {
    len.max(1).next_power_of_two().trailing_zeros() as usize
}

/// Largest size class a buffer of `capacity` elements can serve.
#[inline]
fn class_for_capacity(capacity: usize) -> usize {
    debug_assert!(capacity > 0);
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

struct PoolCore<T> {
    classes: Box<[MpmcRing<Vec<T>>]>,
    counters: Arc<PoolCounters>,
}

impl<T> PoolCore<T> {
    /// Return `vec` to the class its capacity can serve; shed when full.
    fn give_back(&self, vec: Vec<T>) {
        if vec.capacity() == 0 {
            return; // nothing worth caching
        }
        let class = class_for_capacity(vec.capacity());
        if self.classes[class].try_push(vec).is_err() {
            self.counters.shed_one();
        }
    }
}

/// Size-classed MPMC buffer pool. Cloning shares the pool.
pub struct BufPool<T> {
    core: Arc<PoolCore<T>>,
}

impl<T> Clone for BufPool<T> {
    fn clone(&self) -> Self {
        BufPool {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: Default + Clone + Send + 'static> Default for BufPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default + Clone + Send + 'static> BufPool<T> {
    /// Pool with the default per-class capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_PER_CLASS)
    }

    /// Pool caching up to `per_class` buffers in each size class.
    pub fn with_capacity(per_class: usize) -> Self {
        let classes = (0..N_CLASSES)
            .map(|_| MpmcRing::new(per_class))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BufPool {
            core: Arc::new(PoolCore {
                classes,
                counters: PoolCounters::new(),
            }),
        }
    }

    /// Acquire a zeroed (`T::default()`-filled) buffer of exactly `len`
    /// elements. Served from the pool when the size class has a cached
    /// buffer — in that case no allocator call happens, because cached
    /// buffers always carry their full class capacity.
    pub fn acquire(&self, len: usize) -> PooledBuf<T> {
        let class = class_for_len(len);
        let mut vec = match self.core.classes[class].try_pop() {
            Some(v) => {
                self.core.counters.hit();
                v
            }
            None => {
                self.core.counters.miss();
                Vec::with_capacity(1usize << class)
            }
        };
        debug_assert!(vec.capacity() >= len);
        vec.clear();
        vec.resize(len, T::default());
        self.core.counters.lease();
        PooledBuf {
            vec: Some(vec),
            core: Arc::clone(&self.core),
        }
    }

    /// Shared gauges, for [`telemetry::Recorder::register_pool`].
    pub fn counters(&self) -> &Arc<PoolCounters> {
        &self.core.counters
    }

    /// Current gauge snapshot.
    pub fn stats(&self) -> PoolStats {
        self.core.counters.snapshot()
    }
}

/// RAII handle to a pooled buffer; returns to the pool on drop.
pub struct PooledBuf<T> {
    vec: Option<Vec<T>>,
    core: Arc<PoolCore<T>>,
}

impl<T> PooledBuf<T> {
    /// Detach the storage from the pool (it will not be recycled).
    pub fn detach(mut self) -> Vec<T> {
        self.core.counters.release();
        self.vec.take().expect("pooled buffer present until drop")
    }
}

impl<T> Deref for PooledBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.vec.as_deref().expect("pooled buffer present")
    }
}

impl<T> DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.vec.as_deref_mut().expect("pooled buffer present")
    }
}

impl<T> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        if let Some(vec) = self.vec.take() {
            self.core.counters.release();
            self.core.give_back(vec);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Feedback-style recycle channel: sinks [`give`](Recycler::give) spent
/// payloads back, upstream workers [`take`](Recycler::take) them instead
/// of allocating. Cloning shares the channel. Bounded: `give` onto a full
/// ring drops the payload (sheds to the allocator) rather than blocking —
/// the sink must never stall behind its own recycling.
pub struct Recycler<T> {
    ring: Arc<MpmcRing<T>>,
    counters: Arc<PoolCounters>,
}

impl<T> Clone for Recycler<T> {
    fn clone(&self) -> Self {
        Recycler {
            ring: Arc::clone(&self.ring),
            counters: Arc::clone(&self.counters),
        }
    }
}

/// A recycle channel holding at most `capacity` spent payloads.
pub fn recycler<T: Send + 'static>(capacity: usize) -> Recycler<T> {
    Recycler {
        ring: Arc::new(MpmcRing::new(capacity)),
        counters: PoolCounters::new(),
    }
}

impl<T: Send + 'static> Recycler<T> {
    /// Return a spent payload upstream. Never blocks; sheds when full.
    pub fn give(&self, item: T) {
        if self.ring.try_push(item).is_err() {
            self.counters.shed_one();
        }
    }

    /// Take a recycled payload, if one is waiting.
    pub fn take(&self) -> Option<T> {
        match self.ring.try_pop() {
            Some(item) => {
                self.counters.hit();
                Some(item)
            }
            None => {
                self.counters.miss();
                None
            }
        }
    }

    /// Shared gauges, for [`telemetry::Recorder::register_pool`].
    pub fn counters(&self) -> &Arc<PoolCounters> {
        &self.counters
    }

    /// Current gauge snapshot.
    pub fn stats(&self) -> PoolStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_zeroes_and_sizes_exactly() {
        let pool: BufPool<u32> = BufPool::new();
        let mut b = pool.acquire(10);
        assert_eq!(&*b, &[0u32; 10]);
        b.iter_mut().for_each(|x| *x = 7);
        drop(b);
        // Recycled buffer must come back zeroed even though we dirtied it.
        let b2 = pool.acquire(10);
        assert_eq!(&*b2, &[0u32; 10]);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn same_class_reuse_is_a_hit_without_realloc() {
        let pool: BufPool<u8> = BufPool::new();
        drop(pool.acquire(100)); // class 7 (128)
        let b = pool.acquire(128); // same class, larger len
        assert_eq!(b.len(), 128);
        assert!(b.vec.as_ref().unwrap().capacity() >= 128);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn distinct_classes_do_not_alias() {
        let pool: BufPool<u8> = BufPool::new();
        drop(pool.acquire(8));
        // 1024 is a different class; the cached 8-capacity vec can't serve it.
        let b = pool.acquire(1024);
        assert_eq!(b.len(), 1024);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn outstanding_tracks_leases() {
        let pool: BufPool<u8> = BufPool::new();
        let a = pool.acquire(4);
        let b = pool.acquire(4);
        assert_eq!(pool.stats().outstanding, 2);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn full_class_sheds_instead_of_growing() {
        let pool: BufPool<u8> = BufPool::with_capacity(2);
        let bufs: Vec<_> = (0..5).map(|_| pool.acquire(16)).collect();
        drop(bufs);
        assert!(pool.stats().shed >= 1, "{:?}", pool.stats());
    }

    #[test]
    fn detach_removes_from_pool() {
        let pool: BufPool<u8> = BufPool::new();
        let v = pool.acquire(8).detach();
        assert_eq!(v.len(), 8);
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.acquire(8).len(), 8); // miss: nothing was returned
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn recycler_roundtrip() {
        let r = recycler::<Vec<u8>>(4);
        assert!(r.take().is_none());
        r.give(vec![1, 2, 3]);
        assert_eq!(r.take().unwrap(), vec![1, 2, 3]);
        let s = r.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn recycler_sheds_when_full() {
        let r = recycler::<u64>(2);
        for i in 0..10 {
            r.give(i);
        }
        assert!(r.stats().shed >= 1);
    }

    #[test]
    fn mpmc_ring_transfers_everything_once() {
        let ring = Arc::new(MpmcRing::<usize>::new(64));
        let n_threads = 4;
        let per_thread = 10_000;
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let mut v = t * per_thread + i;
                    loop {
                        match ring.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let total = n_threads * per_thread;
        let pop_count = Arc::new(AtomicUsize::new(0));
        for _ in 0..n_threads {
            let ring = Arc::clone(&ring);
            let popped = Arc::clone(&popped);
            let pop_count = Arc::clone(&pop_count);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while pop_count.load(Ordering::Relaxed) < total {
                    match ring.try_pop() {
                        Some(v) => {
                            got.push(v);
                            pop_count.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
                popped.lock().unwrap().push(got);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = popped.lock().unwrap().concat();
        all.sort_unstable();
        // Every pushed value must come out exactly once.
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
