//! Fail-soft building blocks: typed stage errors, retry policies and
//! Result-carrying nodes.
//!
//! The skeletons in this crate historically had exactly one failure mode —
//! a stage panic, which [`PipelineThreads::join`](crate::pipeline::PipelineThreads::join)
//! re-raises on the caller thread after tearing the whole graph down. That
//! is the right default for programmer errors, but the paper's workloads
//! also hit *operational* faults (device out-of-memory, transient kernel
//! failures) that a streaming runtime should absorb, not amplify.
//!
//! This module adds the absorbing path without changing any existing API:
//!
//! * [`StageError`] — a typed, `Send` description of a stage failure that
//!   travels *downstream as data* (`Result<T, StageError>` items) instead of
//!   unwinding the stage thread. Queues keep draining, EOS still
//!   propagates, and the sink decides what a failed item means.
//! * [`FaultPolicy`] — bounded retry-with-backoff, applied inside the
//!   stage before the error is given up on and emitted.
//! * [`try_map`] / [`TryMapNode`] — a 1:1 mapping node over `Result`
//!   items: `Ok` inputs run the fallible closure (with retries per
//!   policy), `Err` inputs pass through untouched so one failure upstream
//!   doesn't have to be handled in every later stage.
//! * [`RunReport`] — what
//!   [`PipelineThreads::join_report`](crate::pipeline::PipelineThreads::join_report)
//!   returns: which stage threads panicked and with what message, instead
//!   of resuming the unwind on the caller.
#![deny(clippy::unwrap_used)]

use std::error::Error;
use std::fmt;
use std::time::Duration;

use crate::node::{Emitter, Node};

/// A typed description of one stage failure, carried downstream as the
/// `Err` arm of a `Result` stream item.
///
/// `StageError` is deliberately message-based rather than generic over a
/// payload: it must cross channel and thread boundaries in pipelines whose
/// item types the runtime picked, so it keeps only what every consumer can
/// use — where it happened, how hard the stage tried, and why it failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageError {
    /// Stage name (as registered with telemetry, e.g. `"stage2"`).
    pub stage: String,
    /// Farm replica index (0 for sequential stages).
    pub replica: usize,
    /// Number of service attempts made before giving up (>= 1).
    pub attempts: u32,
    /// Human-readable cause.
    pub message: String,
}

impl StageError {
    /// A fresh single-attempt error.
    pub fn new(stage: impl Into<String>, message: impl Into<String>) -> Self {
        StageError {
            stage: stage.into(),
            replica: 0,
            attempts: 1,
            message: message.into(),
        }
    }

    /// Same error, attributed to a farm replica.
    pub fn at_replica(mut self, replica: usize) -> Self {
        self.replica = replica;
        self
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {} (replica {}) failed after {} attempt{}: {}",
            self.stage,
            self.replica,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl Error for StageError {}

/// Bounded retry-with-backoff applied inside a fallible stage before the
/// error is emitted downstream.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Retries after the first failed attempt (so `max_retries + 1` total
    /// attempts). `0` disables retrying.
    pub max_retries: u32,
    /// Sleep between attempts. Keep this far below the stall watchdog's
    /// threshold or retries will read as stalls.
    pub backoff: Duration,
}

impl FaultPolicy {
    /// No retries: first failure is emitted immediately.
    pub const NONE: FaultPolicy = FaultPolicy {
        max_retries: 0,
        backoff: Duration::ZERO,
    };

    /// `max_retries` attempts with a fixed `backoff` between them.
    pub fn retries(max_retries: u32, backoff: Duration) -> Self {
        FaultPolicy {
            max_retries,
            backoff,
        }
    }
}

impl Default for FaultPolicy {
    /// Two retries, 50 µs apart — enough to ride out a transient injected
    /// fault without tripping a millisecond-scale watchdog.
    fn default() -> Self {
        FaultPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(50),
        }
    }
}

/// A 1:1 mapping node over `Result` stream items with per-item retry.
///
/// `Ok(input)` runs the closure; on failure the closure hands the input
/// back (`Err((input, error))`) so the node can retry it without requiring
/// `Clone`, and after the policy is exhausted the final [`StageError`]
/// (with `attempts` filled in) is emitted downstream. `Err` inputs pass
/// through untouched, so a chain of `try_map` stages propagates the first
/// failure to the sink without re-wrapping it at every hop.
///
/// Works anywhere a [`Node`] does: `.node(..)`, `.farm(..)`,
/// `.farm_ordered(..)`.
pub struct TryMapNode<I, O, F> {
    f: F,
    policy: FaultPolicy,
    replica: usize,
    _marker: std::marker::PhantomData<fn(I) -> O>,
}

/// Build a [`TryMapNode`] with the default [`FaultPolicy`].
pub fn try_map<I, O, F>(f: F) -> TryMapNode<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> Result<O, (I, StageError)> + Send + 'static,
{
    try_map_with(f, FaultPolicy::default())
}

/// Build a [`TryMapNode`] with an explicit [`FaultPolicy`].
pub fn try_map_with<I, O, F>(f: F, policy: FaultPolicy) -> TryMapNode<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> Result<O, (I, StageError)> + Send + 'static,
{
    TryMapNode {
        f,
        policy,
        replica: 0,
        _marker: std::marker::PhantomData,
    }
}

impl<I, O, F> TryMapNode<I, O, F> {
    /// Tag emitted errors with a farm replica index (pass the factory's
    /// replica argument through).
    pub fn replica(mut self, replica: usize) -> Self {
        self.replica = replica;
        self
    }
}

impl<I, O, F> Node for TryMapNode<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> Result<O, (I, StageError)> + Send + 'static,
{
    type In = Result<I, StageError>;
    type Out = Result<O, StageError>;

    fn svc(&mut self, input: Self::In, out: &mut Emitter<'_, Self::Out>) {
        let mut item = match input {
            Ok(item) => item,
            Err(e) => {
                // Upstream already failed this item: pass it through.
                out.send(Err(e));
                return;
            }
        };
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match (self.f)(item) {
                Ok(output) => {
                    out.send(Ok(output));
                    return;
                }
                Err((returned, mut e)) => {
                    if attempts <= self.policy.max_retries {
                        item = returned;
                        if !self.policy.backoff.is_zero() {
                            std::thread::sleep(self.policy.backoff);
                        }
                    } else {
                        e.attempts = attempts;
                        e.replica = self.replica;
                        out.send(Err(e));
                        return;
                    }
                }
            }
        }
    }
}

/// Outcome of joining a pipeline without re-raising stage panics: one
/// entry per stage thread that panicked, in join order.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Panic messages recovered from stage threads (`"<non-string panic
    /// payload>"` when the payload was neither `String` nor `&str`).
    pub panics: Vec<String>,
}

impl RunReport {
    /// True when every stage thread exited normally.
    pub fn is_clean(&self) -> bool {
        self.panics.is_empty()
    }

    pub(crate) fn absorb(&mut self, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        self.panics.push(msg);
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.panics.is_empty() {
            write!(f, "all stage threads exited normally")
        } else {
            write!(f, "{} stage thread(s) panicked: ", self.panics.len())?;
            for (i, m) in self.panics.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{m}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    #[test]
    fn stage_error_display_mentions_stage_and_attempts() {
        let e = StageError::new("stage2", "device OOM").at_replica(3);
        let s = e.to_string();
        assert!(s.contains("stage2"), "{s}");
        assert!(s.contains("replica 3"), "{s}");
        assert!(s.contains("device OOM"), "{s}");
    }

    #[test]
    fn try_map_passes_ok_items_through_the_closure() {
        let out: Vec<Result<u32, StageError>> = Pipeline::builder()
            .from_iter((0..10u32).map(Ok))
            .node(try_map(|x: u32| Ok(x * 2)))
            .collect();
        let vals: Vec<u32> = out.into_iter().map(|r| r.expect("all ok")).collect();
        assert_eq!(vals, (0..10).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn try_map_retries_transient_failures() {
        // Item 5 fails twice then succeeds; default policy allows 2 retries.
        let mut failures_left = 2;
        let out: Vec<Result<u32, StageError>> = Pipeline::builder()
            .from_iter((0..10u32).map(Ok))
            .node(try_map_with(
                move |x: u32| {
                    if x == 5 && failures_left > 0 {
                        failures_left -= 1;
                        Err((x, StageError::new("stage1", "transient")))
                    } else {
                        Ok(x)
                    }
                },
                FaultPolicy::retries(2, Duration::ZERO),
            ))
            .collect();
        let vals: Vec<u32> = out.into_iter().map(|r| r.expect("all ok")).collect();
        assert_eq!(vals, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn try_map_emits_typed_error_after_retries_exhaust() {
        let out: Vec<Result<u32, StageError>> = Pipeline::builder()
            .from_iter((0..4u32).map(Ok))
            .node(try_map_with(
                |x: u32| {
                    if x == 2 {
                        Err((x, StageError::new("stage1", "permanent")))
                    } else {
                        Ok(x)
                    }
                },
                FaultPolicy::retries(1, Duration::ZERO),
            ))
            .collect();
        assert_eq!(out.len(), 4);
        let errs: Vec<&StageError> = out.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].attempts, 2); // 1 try + 1 retry
        assert_eq!(errs[0].message, "permanent");
    }

    #[test]
    fn err_items_pass_through_later_try_map_stages_unchanged() {
        let failing = try_map_with(
            |x: u32| {
                if x.is_multiple_of(2) {
                    Err((x, StageError::new("stage1", "even")))
                } else {
                    Ok(x)
                }
            },
            FaultPolicy::NONE,
        );
        let mut downstream_ran_on = Vec::new();
        let out: Vec<Result<u32, StageError>> = {
            let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let log2 = log.clone();
            let r = Pipeline::builder()
                .from_iter((0..6u32).map(Ok))
                .node(failing)
                .node(try_map(move |x: u32| {
                    log2.lock().expect("log lock").push(x);
                    Ok(x + 100)
                }))
                .collect();
            downstream_ran_on.extend(log.lock().expect("log lock").iter().copied());
            r
        };
        // Downstream closure only ever saw the odd (Ok) items.
        assert_eq!(downstream_ran_on, vec![1, 3, 5]);
        // Errors kept their original attribution.
        for r in &out {
            if let Err(e) = r {
                assert_eq!(e.stage, "stage1");
                assert_eq!(e.message, "even");
            }
        }
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 3);
    }

    #[test]
    fn try_map_works_inside_an_ordered_farm() {
        let out: Vec<Result<u32, StageError>> = Pipeline::builder()
            .from_iter((0..50u32).map(Ok))
            .farm_ordered(3, |r| {
                try_map(move |x: u32| {
                    if x == 7 {
                        Err((x, StageError::new("stage1", "seven")))
                    } else {
                        Ok(x * 10)
                    }
                })
                .replica(r)
            })
            .collect();
        assert_eq!(out.len(), 50);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let e = r.as_ref().expect_err("item 7 fails");
                assert_eq!(e.message, "seven");
                assert_eq!(e.attempts, 3); // default policy: 1 try + 2 retries
            } else {
                assert_eq!(*r, Ok(i as u32 * 10));
            }
        }
    }
}
