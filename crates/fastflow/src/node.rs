//! The processing-node abstraction: FastFlow's `ff_node` analogue.

/// Output port handed to a node's service method.
///
/// Backed by a closure so the same node code runs inside a plain pipeline
/// stage (emitting straight into the next channel) or inside a farm worker
/// (emitting into a tagged per-item batch).
pub struct Emitter<'a, T> {
    sink: &'a mut dyn FnMut(T) -> bool,
    alive: bool,
}

impl<'a, T> Emitter<'a, T> {
    /// Wrap a sink closure; the closure returns false when downstream is gone.
    pub fn new(sink: &'a mut dyn FnMut(T) -> bool) -> Self {
        Emitter { sink, alive: true }
    }

    /// Emit one item downstream. Returns false (and keeps returning false)
    /// once the downstream consumer has disappeared, letting producers stop
    /// early.
    pub fn send(&mut self, item: T) -> bool {
        if self.alive {
            self.alive = (self.sink)(item);
        }
        self.alive
    }

    /// True while downstream is still accepting items.
    pub fn is_open(&self) -> bool {
        self.alive
    }
}

/// A stream-processing node: receives items of type `In`, emits zero or more
/// items of type `Out` per input.
///
/// Mirrors FastFlow's `ff_node::svc` with `svc_init`/`svc_end` hooks. A node
/// is owned by exactly one runtime thread, so `&mut self` state needs no
/// synchronization — replication (the `Replicate` attribute of SPar, the
/// farm of FastFlow) builds one node instance per worker via a factory.
pub trait Node: Send + 'static {
    /// Input item type.
    type In: Send + 'static;
    /// Output item type.
    type Out: Send + 'static;

    /// Called once on the runtime thread before the first item.
    fn on_init(&mut self) {}

    /// Process one item, emitting any number of outputs.
    fn svc(&mut self, input: Self::In, out: &mut Emitter<'_, Self::Out>);

    /// Called once after the upstream reaches end-of-stream; may flush
    /// buffered state downstream.
    fn on_eos(&mut self, out: &mut Emitter<'_, Self::Out>) {
        let _ = out;
    }
}

/// A node built from a 1:1 function (the common case).
pub struct MapNode<F, I, O> {
    f: F,
    _marker: std::marker::PhantomData<fn(I) -> O>,
}

/// Build a node applying `f` to every item.
pub fn map<I, O, F>(f: F) -> MapNode<F, I, O>
where
    F: FnMut(I) -> O + Send + 'static,
    I: Send + 'static,
    O: Send + 'static,
{
    MapNode {
        f,
        _marker: std::marker::PhantomData,
    }
}

impl<F, I, O> Node for MapNode<F, I, O>
where
    F: FnMut(I) -> O + Send + 'static,
    I: Send + 'static,
    O: Send + 'static,
{
    type In = I;
    type Out = O;
    fn svc(&mut self, input: I, out: &mut Emitter<'_, O>) {
        out.send((self.f)(input));
    }
}

/// A node built from a function returning `Option` (filter + map).
pub struct FilterMapNode<F, I, O> {
    f: F,
    _marker: std::marker::PhantomData<fn(I) -> O>,
}

/// Build a node keeping only `Some` results of `f`.
pub fn filter_map<I, O, F>(f: F) -> FilterMapNode<F, I, O>
where
    F: FnMut(I) -> Option<O> + Send + 'static,
    I: Send + 'static,
    O: Send + 'static,
{
    FilterMapNode {
        f,
        _marker: std::marker::PhantomData,
    }
}

impl<F, I, O> Node for FilterMapNode<F, I, O>
where
    F: FnMut(I) -> Option<O> + Send + 'static,
    I: Send + 'static,
    O: Send + 'static,
{
    type In = I;
    type Out = O;
    fn svc(&mut self, input: I, out: &mut Emitter<'_, O>) {
        if let Some(v) = (self.f)(input) {
            out.send(v);
        }
    }
}

/// A node built from a flat-mapping function over an iterator of outputs.
pub struct FlatMapNode<F, I, O, It> {
    f: F,
    _marker: std::marker::PhantomData<fn(I) -> (O, It)>,
}

/// Build a node emitting every item yielded by `f(input)`.
pub fn flat_map<I, O, It, F>(f: F) -> FlatMapNode<F, I, O, It>
where
    F: FnMut(I) -> It + Send + 'static,
    It: IntoIterator<Item = O>,
    I: Send + 'static,
    O: Send + 'static,
{
    FlatMapNode {
        f,
        _marker: std::marker::PhantomData,
    }
}

impl<F, I, O, It> Node for FlatMapNode<F, I, O, It>
where
    F: FnMut(I) -> It + Send + 'static,
    It: IntoIterator<Item = O> + 'static,
    I: Send + 'static,
    O: Send + 'static,
{
    type In = I;
    type Out = O;
    fn svc(&mut self, input: I, out: &mut Emitter<'_, O>) {
        for v in (self.f)(input) {
            if !out.send(v) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_node<N: Node>(node: &mut N, inputs: Vec<N::In>) -> Vec<N::Out> {
        let mut outputs = Vec::new();
        let mut sink = |v: N::Out| {
            outputs.push(v);
            true
        };
        node.on_init();
        for i in inputs {
            let mut em = Emitter::new(&mut sink);
            node.svc(i, &mut em);
        }
        let mut em = Emitter::new(&mut sink);
        node.on_eos(&mut em);
        outputs
    }

    #[test]
    fn map_node_applies_function() {
        let mut n = map(|x: u32| x * 2);
        assert_eq!(run_node(&mut n, vec![1, 2, 3]), vec![2, 4, 6]);
    }

    #[test]
    fn filter_map_drops_none() {
        let mut n = filter_map(|x: u32| if x.is_multiple_of(2) { Some(x) } else { None });
        assert_eq!(run_node(&mut n, vec![1, 2, 3, 4]), vec![2, 4]);
    }

    #[test]
    fn flat_map_expands() {
        let mut n = flat_map(|x: u32| vec![x; x as usize]);
        assert_eq!(run_node(&mut n, vec![1, 2, 3]), vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn stateful_node_with_eos_flush() {
        struct SumEvery2 {
            acc: u64,
            n: u32,
        }
        impl Node for SumEvery2 {
            type In = u64;
            type Out = u64;
            fn svc(&mut self, input: u64, out: &mut Emitter<'_, u64>) {
                self.acc += input;
                self.n += 1;
                if self.n == 2 {
                    out.send(self.acc);
                    self.acc = 0;
                    self.n = 0;
                }
            }
            fn on_eos(&mut self, out: &mut Emitter<'_, u64>) {
                if self.n > 0 {
                    out.send(self.acc);
                }
            }
        }
        let mut n = SumEvery2 { acc: 0, n: 0 };
        assert_eq!(run_node(&mut n, vec![1, 2, 3, 4, 5]), vec![3, 7, 5]);
    }

    #[test]
    fn emitter_stops_after_downstream_closes() {
        let mut calls = 0;
        let mut sink = |_: u32| {
            calls += 1;
            calls < 2 // downstream vanishes after accepting 2 items
        };
        let mut em = Emitter::new(&mut sink);
        assert!(em.send(1));
        assert!(!em.send(2));
        assert!(!em.send(3)); // sink must not be called again
        assert!(!em.is_open());
        let _ = em; // release the borrow of `calls`
        assert_eq!(calls, 2);
    }
}
