//! Item envelope carrying the emit timestamp for end-to-end latency.
//!
//! Every internal pipeline channel transports [`Stamped<T>`] instead of a
//! bare `T`: the source stamps each fresh item with
//! `StageHandle::stamp_ns()` (0 when telemetry is disabled) and every
//! downstream stage forwards the stamp alongside its outputs, so the
//! collector can record the item's full source→sink journey with
//! `Recorder::record_e2e`. The envelope is two machine words; with
//! telemetry disabled the stamp is the constant 0 and no clock is read.

/// An item plus the ns-since-run-start instant its ancestor left the
/// source (`0` = untimed, i.e. telemetry disabled or synthetic input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<T> {
    /// The payload.
    pub item: T,
    /// Emit instant in ns since the recorder epoch; 0 means unstamped.
    pub emit_ns: u64,
}

impl<T> Stamped<T> {
    /// Wrap an item with no timing information.
    #[inline]
    pub fn bare(item: T) -> Self {
        Stamped { item, emit_ns: 0 }
    }

    /// Wrap an item stamped at `emit_ns`.
    #[inline]
    pub fn at(item: T, emit_ns: u64) -> Self {
        Stamped { item, emit_ns }
    }

    /// Unwrap the payload, dropping the stamp.
    #[inline]
    pub fn into_inner(self) -> T {
        self.item
    }
}
