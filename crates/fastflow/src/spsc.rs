//! Bounded lock-free single-producer/single-consumer ring buffer.
//!
//! This is the communication primitive underneath every `fastflow` channel,
//! mirroring the fine-grained lock-free SPSC queues FastFlow is built on.
//! The implementation is a classic Lamport ring with cached indices:
//!
//! * `head` is written only by the consumer, `tail` only by the producer;
//! * each side keeps a *cached* copy of the other side's index and only
//!   re-reads the shared atomic when the cache says the queue looks
//!   full/empty, which removes most cross-core cache-line traffic;
//! * indices are monotonically increasing `usize` values taken modulo the
//!   capacity, so full/empty are distinguished without wasting a slot;
//! * `head`/`tail` live on separate cache lines to avoid false sharing.
//!
//! Safety argument: a slot is written by the producer strictly before the
//! `tail` release-store that publishes it, and read by the consumer strictly
//! after the acquire-load of `tail` that observes it (and vice versa for
//! reuse after `head` advances). Each slot therefore has exactly one owner at
//! any time.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to a cache line to prevent false sharing.
#[repr(align(128))]
struct CachePadded<T>(T);

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    head: CachePadded<AtomicUsize>, // next index to pop (consumer-owned)
    tail: CachePadded<AtomicUsize>, // next index to push (producer-owned)
}

unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    #[inline]
    fn slot(&self, idx: usize) -> *mut MaybeUninit<T> {
        self.buf[idx % self.cap].get()
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Only one side still holds indices; drop the unconsumed range.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for idx in head..tail {
            unsafe { (*self.slot(idx)).assume_init_drop() };
        }
    }
}

/// Producer half of an SPSC ring. Not cloneable; exactly one producer.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    cached_head: Cell<usize>,
    tail: Cell<usize>, // local mirror of ring.tail
}

/// Consumer half of an SPSC ring. Not cloneable; exactly one consumer.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    cached_tail: Cell<usize>,
    head: Cell<usize>, // local mirror of ring.head
}

// The halves move between threads but are used from one thread at a time.
unsafe impl<T: Send> Send for Producer<T> {}
unsafe impl<T: Send> Send for Consumer<T> {}

/// Create a bounded SPSC ring with room for `capacity` items.
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "spsc ring needs capacity >= 1");
    let buf = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        buf,
        cap: capacity,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            cached_head: Cell::new(0),
            tail: Cell::new(0),
        },
        Consumer {
            ring,
            cached_tail: Cell::new(0),
            head: Cell::new(0),
        },
    )
}

impl<T> Producer<T> {
    /// Attempt to enqueue; returns `Err(item)` if the ring is full.
    #[inline]
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let tail = self.tail.get();
        if tail - self.cached_head.get() == self.ring.cap {
            // Looks full through the cache; refresh from the shared index.
            self.cached_head
                .set(self.ring.head.0.load(Ordering::Acquire));
            if tail - self.cached_head.get() == self.ring.cap {
                return Err(item);
            }
        }
        unsafe { (*self.ring.slot(tail)).write(item) };
        self.tail.set(tail + 1);
        self.ring.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Enqueue up to `max` items taken from `iter`, publishing `tail` once
    /// for the whole run. Returns the number of items enqueued (0 when the
    /// ring is full or the iterator is exhausted); items not enqueued stay
    /// in the iterator.
    ///
    /// This is the batched fast path: `k` items cost one release store and
    /// (at most) one acquire load instead of `k` of each, which is what
    /// makes fine-grained streaming scale on multi-cores (the FastFlow
    /// multi-push optimization).
    pub fn try_push_n<I: Iterator<Item = T>>(&self, iter: &mut I, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let tail = self.tail.get();
        let mut free = self.ring.cap - (tail - self.cached_head.get());
        if free < max.min(self.ring.cap) {
            // The cache can't satisfy the whole run; refresh once so the
            // burst is as long as the consumer actually allows.
            self.cached_head
                .set(self.ring.head.0.load(Ordering::Acquire));
            free = self.ring.cap - (tail - self.cached_head.get());
        }
        let n = free.min(max);
        let mut written = 0;
        while written < n {
            // A panicking iterator leaks the items already written to the
            // unpublished slots (they are overwritten later) — never UB.
            match iter.next() {
                Some(item) => {
                    unsafe { (*self.ring.slot(tail + written)).write(item) };
                    written += 1;
                }
                None => break,
            }
        }
        if written > 0 {
            self.tail.set(tail + written);
            self.ring.tail.0.store(tail + written, Ordering::Release);
        }
        written
    }

    /// Enqueue as many items of `slice` as fit, starting at its front.
    /// Returns how many were copied in; one `tail` publication.
    pub fn try_push_slice(&self, slice: &[T]) -> usize
    where
        T: Copy,
    {
        let mut iter = slice.iter().copied();
        self.try_push_n(&mut iter, slice.len())
    }

    /// Number of free slots as last observed (may race; advisory only).
    pub fn free_slots(&self) -> usize {
        let head = self.ring.head.0.load(Ordering::Acquire);
        self.ring.cap - (self.tail.get() - head)
    }

    /// True when the consumer half has been dropped.
    pub fn consumer_gone(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.cap
    }
}

impl<T> Consumer<T> {
    /// Attempt to dequeue; returns `None` if the ring is empty.
    #[inline]
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.get();
        if head == self.cached_tail.get() {
            self.cached_tail
                .set(self.ring.tail.0.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        let item = unsafe { (*self.ring.slot(head)).assume_init_read() };
        self.head.set(head + 1);
        self.ring.head.0.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Dequeue up to `max` items into `out`, publishing `head` once for the
    /// whole run. Returns the number of items appended (0 when the ring is
    /// empty). The consumer-side counterpart of
    /// [`Producer::try_push_n`]: `k` queued items cost one acquire load and
    /// one release store instead of `k` of each.
    pub fn try_pop_n(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let head = self.head.get();
        let mut avail = self.cached_tail.get() - head;
        if avail < max {
            // Refresh once so the drain run covers everything published.
            self.cached_tail
                .set(self.ring.tail.0.load(Ordering::Acquire));
            avail = self.cached_tail.get() - head;
        }
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for i in 0..n {
            out.push(unsafe { (*self.ring.slot(head + i)).assume_init_read() });
        }
        self.head.set(head + n);
        self.ring.head.0.store(head + n, Ordering::Release);
        n
    }

    /// Items currently queued as last observed (advisory only).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.0.load(Ordering::Acquire);
        tail - self.head.get()
    }

    /// True if no items are observed queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the producer half has been dropped.
    pub fn producer_gone(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn push_pop_roundtrip() {
        let (p, c) = ring::<u32>(4);
        assert!(c.try_pop().is_none());
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        assert_eq!(c.try_pop(), Some(1));
        assert_eq!(c.try_pop(), Some(2));
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn full_ring_rejects() {
        let (p, c) = ring::<u32>(2);
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(c.try_pop(), Some(1));
        p.try_push(3).unwrap();
        assert_eq!(c.try_pop(), Some(2));
        assert_eq!(c.try_pop(), Some(3));
    }

    #[test]
    fn capacity_one_alternates() {
        let (p, c) = ring::<u8>(1);
        for i in 0..10 {
            p.try_push(i).unwrap();
            assert_eq!(p.try_push(99), Err(99));
            assert_eq!(c.try_pop(), Some(i));
        }
    }

    #[test]
    fn wraparound_preserves_order() {
        let (p, c) = ring::<usize>(3);
        let mut next_out = 0;
        for i in 0..100 {
            // Make room if full, checking FIFO order as we drain.
            while let Err(v) = p.try_push(i) {
                assert_eq!(v, i);
                assert_eq!(c.try_pop(), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(v) = c.try_pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 100);
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (p, c) = ring::<D>(8);
        for _ in 0..5 {
            p.try_push(D).unwrap();
        }
        drop(c.try_pop()); // one dropped by hand
        drop(p);
        drop(c); // four remaining dropped by the ring
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn disconnection_is_observable() {
        let (p, c) = ring::<u32>(2);
        assert!(!p.consumer_gone());
        drop(c);
        assert!(p.consumer_gone());

        let (p, c) = ring::<u32>(2);
        assert!(!c.producer_gone());
        drop(p);
        assert!(c.producer_gone());
    }

    #[test]
    fn cross_thread_transfers_everything_in_order() {
        const N: usize = 100_000;
        let (p, c) = ring::<usize>(64);
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            match c.try_pop() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(c.try_pop().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_panics() {
        let _ = ring::<u8>(0);
    }

    #[test]
    fn push_n_pop_n_roundtrip() {
        let (p, c) = ring::<u32>(8);
        let mut src = 0..5u32;
        assert_eq!(p.try_push_n(&mut src, 16), 5);
        let mut out = Vec::new();
        assert_eq!(c.try_pop_n(&mut out, 16), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.try_pop_n(&mut out, 16), 0);
    }

    #[test]
    fn push_n_partial_on_nearly_full_ring() {
        let (p, c) = ring::<u32>(4);
        p.try_push(100).unwrap();
        p.try_push(101).unwrap();
        let mut src = 0..10u32;
        // Only two slots free: the run must stop there, leaving the rest
        // in the iterator.
        assert_eq!(p.try_push_n(&mut src, 10), 2);
        assert_eq!(src.next(), Some(2));
        let mut out = Vec::new();
        assert_eq!(c.try_pop_n(&mut out, 10), 4);
        assert_eq!(out, vec![100, 101, 0, 1]);
    }

    #[test]
    fn pop_n_respects_max() {
        let (p, c) = ring::<u32>(8);
        let mut src = 0..8u32;
        assert_eq!(p.try_push_n(&mut src, 8), 8);
        let mut out = Vec::new();
        assert_eq!(c.try_pop_n(&mut out, 3), 3);
        assert_eq!(c.try_pop_n(&mut out, 3), 3);
        assert_eq!(c.try_pop_n(&mut out, 3), 2);
        assert_eq!(out, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn push_slice_copies_prefix() {
        let (p, c) = ring::<u8>(3);
        assert_eq!(p.try_push_slice(&[1, 2, 3, 4, 5]), 3);
        assert_eq!(c.try_pop(), Some(1));
        assert_eq!(p.try_push_slice(&[9]), 1);
        let mut out = Vec::new();
        assert_eq!(c.try_pop_n(&mut out, 8), 3);
        assert_eq!(out, vec![2, 3, 9]);
    }

    #[test]
    fn batched_ops_wrap_around_the_ring_boundary() {
        let (p, c) = ring::<usize>(5);
        let mut next_in = 0usize;
        let mut next_out = 0usize;
        let mut out = Vec::new();
        // Mixed-size bursts cycle the indices far past several wraps.
        for round in 0..200 {
            let want = 1 + (round % 5);
            let mut src = next_in..usize::MAX;
            let pushed = p.try_push_n(&mut src, want);
            next_in += pushed;
            let popped = c.try_pop_n(&mut out, 1 + (round % 4));
            for v in out.drain(..) {
                assert_eq!(v, next_out);
                next_out += 1;
            }
            assert!(popped <= 4);
        }
        while c.try_pop_n(&mut out, 3) > 0 {
            for v in out.drain(..) {
                assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        assert_eq!(next_out, next_in);
    }

    #[test]
    fn batched_and_single_ops_interleave() {
        let (p, c) = ring::<u32>(4);
        p.try_push(7).unwrap();
        let mut src = 8..10u32;
        assert_eq!(p.try_push_n(&mut src, 2), 2);
        assert_eq!(c.try_pop(), Some(7));
        let mut out = Vec::new();
        assert_eq!(c.try_pop_n(&mut out, 1), 1);
        assert_eq!(out, vec![8]);
        assert_eq!(c.try_pop(), Some(9));
    }

    #[test]
    fn drop_releases_unconsumed_batched_items() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (p, c) = ring::<D>(8);
        let mut src = std::iter::repeat_with(|| D);
        assert_eq!(p.try_push_n(&mut src, 6), 6);
        let mut out = Vec::new();
        assert_eq!(c.try_pop_n(&mut out, 2), 2);
        drop(out); // 2 dropped by the caller
        drop(p);
        drop(c); // 4 unconsumed dropped by the ring
        assert_eq!(DROPS.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn cross_thread_batched_transfer_is_lossless_and_ordered() {
        const N: usize = 200_000;
        let (p, c) = ring::<usize>(64);
        let producer = thread::spawn(move || {
            let mut src = 0..N;
            let mut sent = 0;
            while sent < N {
                let pushed = p.try_push_n(&mut src, 17);
                if pushed == 0 {
                    thread::yield_now();
                }
                sent += pushed;
            }
        });
        let mut expected = 0;
        let mut out = Vec::new();
        while expected < N {
            if c.try_pop_n(&mut out, 23) == 0 {
                thread::yield_now();
            }
            for v in out.drain(..) {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
        assert!(c.try_pop().is_none());
    }
}
