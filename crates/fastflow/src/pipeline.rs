//! The pipeline skeleton: a typed, thread-per-stage stream graph builder.
//!
//! `Pipeline::builder().source(..).node(..).farm(..).for_each(..)` spawns one
//! thread per sequential stage, SPSC-connected, exactly like a FastFlow
//! `ff_pipeline`; `farm(..)` nests a [farm](crate::farm) as a stage. Every
//! stage sees EOS when its upstream channel closes and propagates it by
//! dropping its own sender.

use std::thread::{self, JoinHandle};

use telemetry::{Recorder, StageHandle};

use crate::channel::{channel, Receiver, Sender};
use crate::farm::{spawn_farm_routed, spawn_farm_traced, FarmConfig, Router, SchedPolicy};
use crate::node::{map, Emitter, Node};
use crate::stamp::Stamped;
use crate::wait::WaitStrategy;

/// Batching output sink shared by every stage loop: outputs accumulate in a
/// local buffer and are delivered with [`Sender::send_batch`] — one index
/// publication and one wakeup per run instead of one per item.
///
/// Two flush points keep the pipe live and the memory bounded: the buffer
/// flushes itself when it reaches `burst` items, and every stage loop
/// flushes explicitly before blocking for more input (so no item can sit
/// buffered while the stage sleeps — the batched path never adds a
/// deadlock or an unbounded latency tail).
pub(crate) struct BatchSink<T: Send> {
    tx: Sender<Stamped<T>>,
    buf: Vec<Stamped<T>>,
    burst: usize,
    stage: StageHandle,
    alive: bool,
}

impl<T: Send> BatchSink<T> {
    pub(crate) fn new(tx: Sender<Stamped<T>>, stage: StageHandle, burst: usize) -> Self {
        BatchSink {
            tx,
            buf: Vec::with_capacity(burst),
            burst,
            stage,
            alive: true,
        }
    }

    /// Buffer one output carrying `emit_ns`; auto-flushes at the burst
    /// size. Returns false once downstream is gone.
    #[inline]
    pub(crate) fn push(&mut self, item: T, emit_ns: u64) -> bool {
        if !self.alive {
            return false;
        }
        self.buf.push(Stamped::at(item, emit_ns));
        if self.buf.len() >= self.burst {
            self.flush();
        }
        self.alive
    }

    /// Buffer one *fresh* output stamped now (source stages).
    #[inline]
    pub(crate) fn push_fresh(&mut self, item: T) -> bool {
        let ns = self.stage.stamp_ns();
        self.push(item, ns)
    }

    /// Deliver everything buffered. Each item still counts individually in
    /// `items_out`; a run that cannot be placed without waiting counts one
    /// push stall. Returns false once downstream is gone.
    pub(crate) fn flush(&mut self) -> bool {
        if self.alive && !send_batch_accounted(&self.tx, &mut self.buf, &self.stage, |_| 1) {
            self.alive = false;
        }
        self.alive
    }
}

/// Deliver `buf` downstream, recording `items_out` only as messages are
/// actually handed off — never at service time, so the stall watchdog (which
/// blames a stage by comparing its progress against its upstream's) can
/// neither see phantom undelivered items during a long `svc` call nor lose
/// sight of progress while a full ring blocks the rest of the run: delivery
/// happens in sub-runs with incremental accounting. `count` maps one queued
/// message to the number of stream items it carries (1 for plain items;
/// farm worker messages carry a whole `svc` output set). A run that cannot
/// be placed without waiting counts one push stall. Returns false once the
/// consumer is gone (the undeliverable remainder is discarded).
pub(crate) fn send_batch_accounted<T: Send>(
    tx: &Sender<T>,
    buf: &mut Vec<T>,
    stage: &StageHandle,
    count: impl Fn(&T) -> u64,
) -> bool {
    if buf.is_empty() {
        return true;
    }
    if !stage.enabled() {
        return tx.send_batch(buf.drain(..)).is_ok();
    }
    if tx.free_slots() < buf.len() {
        stage.push_stall();
    }
    let counts: Vec<u64> = buf.iter().map(&count).collect();
    let mut delivered = 0usize;
    let mut ok = true;
    let mut iter = buf.drain(..);
    loop {
        match tx.try_send_batch(&mut iter) {
            Ok(n) => {
                if n > 0 {
                    stage.items_out(counts[delivered..delivered + n].iter().sum());
                    delivered += n;
                }
                match iter.next() {
                    None => break,
                    Some(msg) => {
                        let c = counts[delivered];
                        match tx.send(msg) {
                            Ok(()) => {
                                stage.items_out(c);
                                delivered += 1;
                            }
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
            }
            Err(_) => {
                ok = false;
                break;
            }
        }
    }
    drop(iter); // discards the remainder once downstream is gone
    ok
}

/// Burst-drain up to `max` items into `out`, counting a pop wait when the
/// queue is empty on arrival. Returns the number appended; 0 = EOS. A
/// stage that finds `k` items queued takes all of them with one
/// acquire/release pair instead of `k`.
pub(crate) fn traced_recv_batch<T: Send>(
    rx: &Receiver<T>,
    handle: &StageHandle,
    out: &mut Vec<T>,
    max: usize,
) -> usize {
    if !handle.enabled() {
        return rx.recv_batch(out, max);
    }
    let n = rx.try_recv_batch(out, max);
    if n > 0 {
        return n;
    }
    if rx.is_eos() {
        return 0;
    }
    handle.pop_wait();
    rx.recv_batch(out, max)
}

/// Queue configuration shared by all stages of one pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PipeConfig {
    /// Capacity of every inter-stage queue.
    pub capacity: usize,
    /// Wait strategy of every inter-stage queue.
    pub wait: WaitStrategy,
    /// Maximum run length of the batched queue operations: a stage drains
    /// up to this many queued items per acquire/release pair and buffers at
    /// most this many outputs before publishing them in one go. `1`
    /// reproduces the pre-batching item-at-a-time data path.
    pub burst: usize,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig {
            capacity: 64,
            wait: WaitStrategy::default(),
            burst: 32,
        }
    }
}

/// Entry point for building pipelines.
pub struct Pipeline;

impl Pipeline {
    /// Start building with default configuration.
    pub fn builder() -> PipelineStart {
        PipelineStart {
            cfg: PipeConfig::default(),
            rec: Recorder::default(),
        }
    }
}

/// Builder state before the source is attached.
pub struct PipelineStart {
    cfg: PipeConfig,
    rec: Recorder,
}

impl PipelineStart {
    /// Set the inter-stage queue capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be >= 1");
        self.cfg.capacity = capacity;
        self
    }

    /// Set the wait strategy for all queues.
    pub fn wait(mut self, wait: WaitStrategy) -> Self {
        self.cfg.wait = wait;
        self
    }

    /// Set the maximum batched-transfer run length (see
    /// [`PipeConfig::burst`]). `1` disables batching.
    pub fn burst(mut self, burst: usize) -> Self {
        assert!(burst > 0, "burst must be >= 1");
        self.cfg.burst = burst;
        self
    }

    /// Attach a telemetry recorder: every stage and farm replica of this
    /// pipeline registers a [`telemetry::StageMetrics`] under it. A
    /// disabled recorder (the default) makes every probe a no-op branch.
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Attach a source closure run on its own thread; it pushes items via
    /// the [`Emitter`] and the stream ends when it returns.
    pub fn source<T, F>(self, f: F) -> PipelineBuilder<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Emitter<'_, T>) + Send + 'static,
    {
        let (tx, rx) = channel::<Stamped<T>>(self.cfg.capacity, self.cfg.wait);
        let stage = self.rec.stage("source", 0);
        let burst = self.cfg.burst;
        let handle = thread::Builder::new()
            .name("ff-source".into())
            .spawn(move || {
                let mut bsink = BatchSink::new(tx, stage, burst);
                {
                    let mut push = |item: T| bsink.push_fresh(item);
                    let mut em = Emitter::new(&mut push);
                    f(&mut em);
                }
                bsink.flush();
            })
            .expect("spawn source");
        PipelineBuilder {
            cfg: self.cfg,
            rec: self.rec,
            stage_no: 0,
            rx,
            handles: vec![handle],
        }
    }

    /// Attach an iterator as the source.
    pub fn from_iter<I>(self, iter: I) -> PipelineBuilder<I::Item>
    where
        I: IntoIterator + Send + 'static,
        I::Item: Send + 'static,
    {
        self.source(move |em| {
            for item in iter {
                if !em.send(item) {
                    break;
                }
            }
        })
    }
}

/// Builder state carrying the output end of the graph built so far.
///
/// Internally every inter-stage channel transports [`Stamped<T>`] so the
/// emit instant travels with each item; the public stage closures only
/// ever see the bare `T`.
pub struct PipelineBuilder<T: Send + 'static> {
    cfg: PipeConfig,
    rec: Recorder,
    /// Stages appended so far (for auto-generated stage names).
    stage_no: usize,
    rx: Receiver<Stamped<T>>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> PipelineBuilder<T> {
    fn next_stage_name(&mut self) -> String {
        self.stage_no += 1;
        format!("stage{}", self.stage_no)
    }

    /// Append a sequential stage running `node` on its own thread.
    pub fn node<N>(mut self, mut node: N) -> PipelineBuilder<N::Out>
    where
        N: Node<In = T>,
    {
        let (tx, out_rx) = channel::<Stamped<N::Out>>(self.cfg.capacity, self.cfg.wait);
        let name = self.next_stage_name();
        let stage = self.rec.stage(&name, 0);
        let rx = self.rx;
        let burst = self.cfg.burst;
        let handle = thread::Builder::new()
            .name("ff-stage".into())
            .spawn(move || {
                node.on_init();
                let mut bsink = BatchSink::new(tx, stage.clone(), burst);
                let mut in_buf: Vec<Stamped<T>> = Vec::with_capacity(burst);
                loop {
                    let n = traced_recv_batch(&rx, &stage, &mut in_buf, burst);
                    if n == 0 {
                        break;
                    }
                    // Outputs inherit the emit stamp of the input being
                    // serviced; `on_eos` flushes are untimed.
                    for Stamped { item, emit_ns } in in_buf.drain(..) {
                        stage.item_in(rx.len());
                        let mut push = |out: N::Out| bsink.push(out, emit_ns);
                        let mut em = Emitter::new(&mut push);
                        let span = stage.begin();
                        node.svc(item, &mut em);
                        stage.end(span);
                        if !em.is_open() {
                            return;
                        }
                    }
                    // Flush before the recv above can block again.
                    if !bsink.flush() {
                        return;
                    }
                }
                {
                    let mut push = |out: N::Out| bsink.push(out, 0);
                    let mut em = Emitter::new(&mut push);
                    node.on_eos(&mut em);
                }
                bsink.flush();
            })
            .expect("spawn stage");
        self.handles.push(handle);
        PipelineBuilder {
            cfg: self.cfg,
            rec: self.rec,
            stage_no: self.stage_no,
            rx: out_rx,
            handles: self.handles,
        }
    }

    /// Append a sequential 1:1 mapping stage.
    pub fn map<U, F>(self, f: F) -> PipelineBuilder<U>
    where
        U: Send + 'static,
        F: FnMut(T) -> U + Send + 'static,
    {
        self.node(map(f))
    }

    /// Append an unordered farm stage with `replicas` copies of the node
    /// built by `factory` (round-robin scheduling).
    pub fn farm<N, F>(self, replicas: usize, factory: F) -> PipelineBuilder<N::Out>
    where
        N: Node<In = T>,
        F: FnMut(usize) -> N,
    {
        self.farm_with(replicas, factory, SchedPolicy::RoundRobin, false)
    }

    /// Append an order-preserving farm stage (FastFlow's `ff_ofarm`).
    pub fn farm_ordered<N, F>(self, replicas: usize, factory: F) -> PipelineBuilder<N::Out>
    where
        N: Node<In = T>,
        F: FnMut(usize) -> N,
    {
        self.farm_with(replicas, factory, SchedPolicy::RoundRobin, true)
    }

    /// Append an order-preserving farm whose worker selection is driven
    /// by `router` instead of a fixed policy (see
    /// [`spawn_farm_routed`]). The router runs serially on the emitter
    /// thread in stream order — the hook a placement scheduler uses to
    /// pin each item to a device-owning replica deterministically.
    pub fn farm_routed<N, F>(
        mut self,
        replicas: usize,
        factory: F,
        router: Router<T>,
    ) -> PipelineBuilder<N::Out>
    where
        N: Node<In = T>,
        F: FnMut(usize) -> N,
    {
        let cfg = FarmConfig {
            capacity: self.cfg.capacity,
            wait: self.cfg.wait,
            policy: SchedPolicy::RoundRobin,
            ordered: true,
            // burst 1: deliver each item before routing the next. A
            // routing policy may block a decision on feedback from items
            // it already routed (a placement scheduler's lookahead
            // window); with a larger burst those items could still sit
            // unsent in emitter scratch — a deadlock.
            burst: 1,
        };
        let name = self.next_stage_name();
        let (out_rx, mut farm_handles) =
            spawn_farm_routed::<N, F>(self.rx, replicas, factory, router, cfg, &self.rec, &name);
        self.handles.append(&mut farm_handles);
        PipelineBuilder {
            cfg: self.cfg,
            rec: self.rec,
            stage_no: self.stage_no,
            rx: out_rx,
            handles: self.handles,
        }
    }

    /// Append a farm stage with full control over scheduling and ordering.
    pub fn farm_with<N, F>(
        mut self,
        replicas: usize,
        factory: F,
        policy: SchedPolicy,
        ordered: bool,
    ) -> PipelineBuilder<N::Out>
    where
        N: Node<In = T>,
        F: FnMut(usize) -> N,
    {
        let cfg = FarmConfig {
            capacity: self.cfg.capacity,
            wait: self.cfg.wait,
            policy,
            ordered,
            burst: self.cfg.burst,
        };
        let name = self.next_stage_name();
        let (out_rx, mut farm_handles) =
            spawn_farm_traced::<N, F>(self.rx, replicas, factory, cfg, &self.rec, &name);
        self.handles.append(&mut farm_handles);
        PipelineBuilder {
            cfg: self.cfg,
            rec: self.rec,
            stage_no: self.stage_no,
            rx: out_rx,
            handles: self.handles,
        }
    }

    /// Append a feedback (wrap-around) farm stage: each item circulates
    /// through the workers until one returns
    /// [`Loop::Emit`](crate::feedback::Loop). Results are unordered.
    pub fn feedback_farm<O, W, G>(mut self, replicas: usize, factory: G) -> PipelineBuilder<O>
    where
        O: Send + 'static,
        W: FnMut(T) -> crate::feedback::Loop<T, O> + Send + 'static,
        G: FnMut(usize) -> W,
    {
        let name = self.next_stage_name();
        let (out_rx, mut fb_handles) = crate::feedback::spawn_feedback_farm_traced(
            self.rx,
            replicas,
            factory,
            self.cfg.capacity,
            self.cfg.wait,
            self.cfg.burst,
            &self.rec,
            &name,
        );
        self.handles.append(&mut fb_handles);
        PipelineBuilder {
            cfg: self.cfg,
            rec: self.rec,
            stage_no: self.stage_no,
            rx: out_rx,
            handles: self.handles,
        }
    }

    /// Terminate with a sink run on the *calling* thread; returns when the
    /// stream ends and all stage threads have been joined.
    ///
    /// # Panics
    /// Re-raises any panic that occurred on a stage thread.
    pub fn for_each<F>(self, mut f: F)
    where
        F: FnMut(T),
    {
        let stage = self.rec.stage("sink", 0);
        let mut buf: Vec<Stamped<T>> = Vec::with_capacity(self.cfg.burst);
        while traced_recv_batch(&self.rx, &stage, &mut buf, self.cfg.burst) > 0 {
            for Stamped { item, emit_ns } in buf.drain(..) {
                stage.item_in(self.rx.len());
                let span = stage.begin();
                f(item);
                stage.end(span);
                self.rec.record_e2e(emit_ns);
            }
        }
        join_all(self.handles);
    }

    /// Terminate by collecting all items into a `Vec` (joins all threads).
    pub fn collect(self) -> Vec<T> {
        let stage = self.rec.stage("sink", 0);
        let mut out = Vec::new();
        let mut buf: Vec<Stamped<T>> = Vec::with_capacity(self.cfg.burst);
        while traced_recv_batch(&self.rx, &stage, &mut buf, self.cfg.burst) > 0 {
            for Stamped { item, emit_ns } in buf.drain(..) {
                stage.item_in(self.rx.len());
                self.rec.record_e2e(emit_ns);
                out.push(item);
            }
        }
        join_all(self.handles);
        out
    }

    /// Hand the output stream to the caller; the returned guard joins the
    /// stage threads when dropped (after the receiver is drained). Items
    /// arrive wrapped in [`Stamped`] — the caller owns the sink, so it
    /// also owns end-to-end accounting (`Recorder::record_e2e`).
    pub fn into_receiver(self) -> (Receiver<Stamped<T>>, PipelineThreads) {
        (self.rx, PipelineThreads(self.handles))
    }
}

/// Guard owning the stage threads of a running pipeline.
pub struct PipelineThreads(Vec<JoinHandle<()>>);

impl PipelineThreads {
    /// Join all stage threads, propagating panics.
    pub fn join(mut self) {
        join_all(std::mem::take(&mut self.0));
    }

    /// Join all stage threads *without* re-raising panics: each panicking
    /// thread contributes one entry to the returned
    /// [`RunReport`](crate::error::RunReport) instead. Joining is
    /// unconditional — even after a mid-pipeline failure every thread is
    /// waited for, so a clean report really means the graph drained.
    pub fn join_report(mut self) -> crate::error::RunReport {
        let mut report = crate::error::RunReport::default();
        for h in std::mem::take(&mut self.0) {
            if let Err(payload) = h.join() {
                report.absorb(payload);
            }
        }
        report
    }
}

impl Drop for PipelineThreads {
    fn drop(&mut self) {
        for h in std::mem::take(&mut self.0) {
            // Don't double-panic while unwinding.
            let res = h.join();
            if !thread::panicking() {
                if let Err(e) = res {
                    std::panic::resume_unwind(e);
                }
            }
        }
    }
}

fn join_all(handles: Vec<JoinHandle<()>>) {
    for h in handles {
        if let Err(e) = h.join() {
            std::panic::resume_unwind(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node;

    #[test]
    fn three_stage_pipeline_preserves_order() {
        let out = Pipeline::builder()
            .from_iter(0..100u64)
            .map(|x| x + 1)
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..100).map(|x| (x + 1) * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn source_closure_and_for_each() {
        let mut sum = 0u64;
        Pipeline::builder()
            .source(|em| {
                for i in 1..=10u64 {
                    em.send(i);
                }
            })
            .map(|x| x * x)
            .for_each(|x| sum += x);
        assert_eq!(sum, 385);
    }

    #[test]
    fn farm_stage_unordered_is_complete() {
        let mut out = Pipeline::builder()
            .from_iter(0..200u32)
            .farm(4, |_| node::map(|x: u32| x ^ 1))
            .collect();
        out.sort_unstable();
        let mut expected: Vec<u32> = (0..200).map(|x| x ^ 1).collect();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn farm_stage_ordered_matches_sequential() {
        let out = Pipeline::builder()
            .capacity(8)
            .from_iter(0..200u32)
            .farm_ordered(5, |_| node::map(|x: u32| x * 3))
            .collect();
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<u32>>());
    }

    #[test]
    fn pipeline_with_farm_then_stage() {
        let out = Pipeline::builder()
            .from_iter(1..=50u64)
            .farm_ordered(3, |_| node::map(|x: u64| x * 2))
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, (1..=50).map(|x| x * 2 + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn stateful_filter_stage() {
        // Deduplicate consecutive equal items — a stateful sequential stage.
        struct Dedup {
            last: Option<u32>,
        }
        impl Node for Dedup {
            type In = u32;
            type Out = u32;
            fn svc(&mut self, input: u32, out: &mut Emitter<'_, u32>) {
                if self.last != Some(input) {
                    self.last = Some(input);
                    out.send(input);
                }
            }
        }
        let out = Pipeline::builder()
            .from_iter(vec![1u32, 1, 2, 2, 2, 3, 1])
            .node(Dedup { last: None })
            .collect();
        assert_eq!(out, vec![1, 2, 3, 1]);
    }

    #[test]
    fn early_sink_drop_stops_the_stream() {
        // Receiver dropped after 5 items; upstream must terminate cleanly.
        let (rx, threads) = Pipeline::builder()
            .capacity(2)
            .from_iter(0..1_000_000u64)
            .map(|x| x)
            .into_receiver();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(rx.recv().unwrap().item);
        }
        drop(rx);
        threads.join(); // must not hang
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn spin_and_yield_strategies_complete() {
        for ws in [WaitStrategy::Spin, WaitStrategy::Yield] {
            let out = Pipeline::builder()
                .wait(ws)
                .from_iter(0..100u64)
                .farm_ordered(2, |_| node::map(|x: u64| x + 7))
                .collect();
            assert_eq!(out, (0..100).map(|x| x + 7).collect::<Vec<u64>>());
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn stage_panic_propagates() {
        Pipeline::builder()
            .from_iter(0..10u32)
            .map(|x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
            .for_each(|_| {});
    }
}
