//! `fastflow` — a FastFlow-style stream-parallel runtime in safe-by-API Rust.
//!
//! This crate reproduces, from scratch, the runtime layer the paper's SPar
//! DSL compiles to: algorithmic skeletons (pipeline, farm, ordered farm)
//! built on fine-grained lock-free SPSC queues with selectable blocking /
//! non-blocking wait strategies.
//!
//! Layering, bottom-up:
//!
//! * [`spsc`] — bounded lock-free single-producer/single-consumer ring;
//! * [`wait`] — spin / yield / block wait strategies ([`WaitStrategy`]);
//! * [`mod@channel`] — SPSC ring + wait strategy + end-of-stream propagation;
//! * [`node`] — the [`Node`] processing abstraction (`ff_node` analogue);
//! * [`farm`] — emitter → replicated workers → (ordered) collector;
//! * [`feedback`] — the wrap-around farm: items circulate until done;
//! * [`pipeline`] — typed thread-per-stage pipeline builder;
//! * [`pool`] — size-classed buffer pool + recycle channel (zero-copy
//!   payload discipline for the hot paths).
//!
//! # Example
//!
//! ```
//! use fastflow::{node, Pipeline};
//!
//! let out = Pipeline::builder()
//!     .from_iter(0..100u64)
//!     .farm_ordered(4, |_worker| node::map(|x: u64| x * x))
//!     .collect();
//! assert_eq!(out[99], 99 * 99);
//! ```

pub mod channel;
pub mod combinators;
pub mod error;
pub mod farm;
pub mod feedback;
pub mod node;
pub mod pipeline;
pub mod pool;
pub mod spsc;
pub mod stamp;
pub mod wait;

pub use channel::{channel, Receiver, SendError, Sender, TrySendError};
pub use combinators::{gather, par_map_ordered, par_map_unordered, scatter};
pub use error::{try_map, try_map_with, FaultPolicy, RunReport, StageError, TryMapNode};
pub use farm::{spawn_farm, spawn_farm_routed, spawn_farm_traced, FarmConfig, Router, SchedPolicy};
pub use feedback::{spawn_feedback_farm, spawn_feedback_farm_traced, Loop};
pub use node::{Emitter, Node};
pub use pipeline::{PipeConfig, Pipeline, PipelineBuilder, PipelineStart, PipelineThreads};
pub use pool::{recycler, BufPool, PooledBuf, Recycler, SlabRegistrar};
pub use stamp::Stamped;
pub use wait::{Signal, WaitStrategy};

/// Alias kept for prelude ergonomics: a farm is configured via [`FarmConfig`].
#[deprecated(
    since = "0.1.0",
    note = "use `FarmConfig` (or the `par_map_*` combinators)"
)]
pub type Farm = FarmConfig;
