//! The feedback (wrap-around) farm: workers can send items *back* to the
//! emitter for another round — FastFlow's signature "complex communication
//! topology" (§III-A credits it with freedom TBB's fixed pipeline lacks).
//!
//! Each item circulates until its worker returns [`Loop::Emit`]; the
//! emitter merges fresh input with recycled items and terminates only when
//! the input stream is closed *and* no items are still circulating
//! (tracked with an in-flight counter, the classic FastFlow wrap-around
//! termination protocol).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

use telemetry::Recorder;

use crate::channel::{channel, channel_with_recv_signal, Receiver};
use crate::pipeline::{send_batch_accounted, traced_recv_batch};
use crate::stamp::Stamped;
use crate::wait::{Signal, WaitStrategy};

/// A feedback worker's verdict on one item.
pub enum Loop<T, U> {
    /// Send the item around again (another pass through a worker).
    Recycle(T),
    /// The item is done: emit downstream.
    Emit(U),
}

/// Spawn a feedback farm consuming `rx`. Each item is processed by worker
/// replicas until one returns [`Loop::Emit`]; results are unordered.
/// Returns the output receiver and the spawned thread handles.
pub fn spawn_feedback_farm<I, O, W, G>(
    rx: Receiver<Stamped<I>>,
    replicas: usize,
    factory: G,
    capacity: usize,
    wait: WaitStrategy,
) -> (Receiver<Stamped<O>>, Vec<JoinHandle<()>>)
where
    I: Send + 'static,
    O: Send + 'static,
    W: FnMut(I) -> Loop<I, O> + Send + 'static,
    G: FnMut(usize) -> W,
{
    spawn_feedback_farm_traced(
        rx,
        replicas,
        factory,
        capacity,
        wait,
        32,
        &Recorder::default(),
        "feedback",
    )
}

/// [`spawn_feedback_farm`] with telemetry: each worker replica registers a
/// [`telemetry::StageMetrics`] named `stage_name` under `rec`. `items_in`
/// counts every pass through a worker (recycles included); `items_out`
/// counts only emitted results, so `items_in - items_out` is the total
/// number of feedback trips.
#[allow(clippy::too_many_arguments)]
pub fn spawn_feedback_farm_traced<I, O, W, G>(
    rx: Receiver<Stamped<I>>,
    replicas: usize,
    mut factory: G,
    capacity: usize,
    wait: WaitStrategy,
    burst: usize,
    rec: &Recorder,
    stage_name: &str,
) -> (Receiver<Stamped<O>>, Vec<JoinHandle<()>>)
where
    I: Send + 'static,
    O: Send + 'static,
    W: FnMut(I) -> Loop<I, O> + Send + 'static,
    G: FnMut(usize) -> W,
{
    assert!(replicas > 0, "feedback farm needs at least one worker");
    let mut handles = Vec::with_capacity(replicas + 2);
    let in_flight = Arc::new(AtomicUsize::new(0));

    // Emitter -> workers.
    let mut to_workers = Vec::with_capacity(replicas);
    let mut worker_rxs = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let (tx, w_rx) = channel::<Stamped<I>>(capacity, wait);
        to_workers.push(tx);
        worker_rxs.push(w_rx);
    }
    // Workers -> emitter (feedback) — a shared std::mpsc, since the
    // emitter is a single consumer and feedback volume is modest.
    // Recycled items keep their original emit stamp across trips.
    let (fb_tx, fb_rx) = mpsc::channel::<Stamped<I>>();
    // Workers -> collector.
    let collector_signal = Arc::new(Signal::new());
    let mut from_workers = Vec::with_capacity(replicas);
    let mut worker_txs = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let (tx, c_rx) =
            channel_with_recv_signal::<Stamped<O>>(capacity, wait, Arc::clone(&collector_signal));
        worker_txs.push(tx);
        from_workers.push(c_rx);
    }

    // Emitter.
    {
        let in_flight = Arc::clone(&in_flight);
        handles.push(
            thread::Builder::new()
                .name("ff-fb-emitter".into())
                .spawn(move || {
                    let n = to_workers.len();
                    let mut next = 0usize;
                    let mut input_open = true;
                    let mut in_buf: Vec<Stamped<I>> = Vec::with_capacity(burst);
                    // Per-worker scratch: each round's items (recycled +
                    // fresh) are partitioned by destination, then delivered
                    // non-blockingly; whatever a full worker queue rejects
                    // stays in scratch for the next round. The emitter must
                    // never block toward a worker — a blocked worker may be
                    // draining only once recycled items come *back* through
                    // us, so blocking here can wedge the cycle.
                    let mut scratch: Vec<Vec<Stamped<I>>> =
                        (0..n).map(|_| Vec::with_capacity(burst)).collect();
                    loop {
                        // Drain feedback first, even while worker queues are
                        // full: recycled items have priority (they hold
                        // in-flight slots), and accepting them is what keeps
                        // the cycle live. Bounded per round so fresh input
                        // cannot be starved indefinitely; scratch growth is
                        // bounded by the in-flight count.
                        let mut fb_got = 0usize;
                        while fb_got < burst {
                            match fb_rx.try_recv() {
                                Ok(item) => {
                                    scratch[next % n].push(item);
                                    next += 1;
                                    fb_got += 1;
                                }
                                Err(_) => break,
                            }
                        }
                        // Admit fresh input only once the previous round was
                        // fully delivered — undelivered scratch means some
                        // worker queue is full, and piling on more fresh
                        // items would only raise in-flight pressure.
                        let mut in_got = 0usize;
                        if input_open && scratch.iter().all(|b| b.is_empty()) {
                            in_got = rx.try_recv_batch(&mut in_buf, burst);
                            if in_got == 0 && rx.is_eos() {
                                input_open = false;
                            }
                            for item in in_buf.drain(..) {
                                in_flight.fetch_add(1, Ordering::AcqRel);
                                scratch[next % n].push(item);
                                next += 1;
                            }
                        }
                        let mut delivered = 0usize;
                        for (w, buf) in scratch.iter_mut().enumerate() {
                            if buf.is_empty() {
                                continue;
                            }
                            let mut iter = std::mem::take(buf).into_iter();
                            match to_workers[w].try_send_batch(&mut iter) {
                                Ok(sent) => {
                                    delivered += sent;
                                    // Remainder (queue full) waits its turn.
                                    buf.extend(iter);
                                }
                                Err(_) => return, // worker gone
                            }
                        }
                        if !input_open && in_flight.load(Ordering::Acquire) == 0 {
                            return; // drops worker senders => EOS
                        }
                        if fb_got == 0 && in_got == 0 && delivered == 0 {
                            thread::yield_now();
                        }
                    }
                })
                .expect("spawn feedback emitter"),
        );
    }

    // Workers.
    for (idx, (w_rx, c_tx)) in worker_rxs.into_iter().zip(worker_txs).enumerate() {
        let mut f = factory(idx);
        let fb = fb_tx.clone();
        let in_flight = Arc::clone(&in_flight);
        let stage = rec.stage(stage_name, idx);
        handles.push(
            thread::Builder::new()
                .name(format!("ff-fb-worker-{idx}"))
                .spawn(move || {
                    let mut in_buf: Vec<Stamped<I>> = Vec::with_capacity(burst);
                    let mut out_buf: Vec<Stamped<O>> = Vec::with_capacity(burst);
                    while traced_recv_batch(&w_rx, &stage, &mut in_buf, burst) > 0 {
                        for Stamped { item, emit_ns } in in_buf.drain(..) {
                            stage.item_in(w_rx.len());
                            let span = stage.begin();
                            let verdict = f(item);
                            stage.end(span);
                            match verdict {
                                Loop::Recycle(back) => {
                                    if fb.send(Stamped::at(back, emit_ns)).is_err() {
                                        return;
                                    }
                                }
                                Loop::Emit(out) => {
                                    in_flight.fetch_sub(1, Ordering::AcqRel);
                                    out_buf.push(Stamped::at(out, emit_ns));
                                }
                            }
                        }
                        // Flush emitted results before the recv above can
                        // block again — the collector must never wait on
                        // items this worker already holds. `items_out` is
                        // recorded at hand-off (see `send_batch_accounted`).
                        if !send_batch_accounted(&c_tx, &mut out_buf, &stage, |_| 1) {
                            return;
                        }
                    }
                })
                .expect("spawn feedback worker"),
        );
    }
    drop(fb_tx); // emitter's rx closes when all workers are done

    // Collector: merge unordered.
    let (out_tx, out_rx) = channel::<Stamped<O>>(capacity, wait);
    handles.push(
        thread::Builder::new()
            .name("ff-fb-collector".into())
            .spawn(move || {
                let mut open: Vec<bool> = vec![true; from_workers.len()];
                let mut remaining = from_workers.len();
                let mut buf: Vec<Stamped<O>> = Vec::with_capacity(burst);
                while remaining > 0 {
                    let mut progressed = false;
                    for (i, rx) in from_workers.iter().enumerate() {
                        if !open[i] {
                            continue;
                        }
                        while rx.try_recv_batch(&mut buf, burst) > 0 {
                            progressed = true;
                            if out_tx.send_batch(buf.drain(..)).is_err() {
                                return;
                            }
                        }
                        if rx.is_eos() {
                            open[i] = false;
                            remaining -= 1;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        let epoch = collector_signal.epoch();
                        let any = from_workers
                            .iter()
                            .enumerate()
                            .any(|(i, rx)| open[i] && (!rx.is_empty() || rx.is_eos()));
                        if !any {
                            match wait {
                                WaitStrategy::Block => collector_signal.wait_if(epoch),
                                _ => thread::yield_now(),
                            }
                        }
                    }
                }
            })
            .expect("spawn feedback collector"),
    );

    (out_rx, handles)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper: run a feedback farm over `items`.
    fn run<I, O, W, G>(items: Vec<I>, replicas: usize, factory: G) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        W: FnMut(I) -> Loop<I, O> + Send + 'static,
        G: FnMut(usize) -> W,
    {
        let (tx, rx) = channel::<Stamped<I>>(16, WaitStrategy::Block);
        let producer = thread::spawn(move || {
            for item in items {
                if tx.send(Stamped::bare(item)).is_err() {
                    panic!("receiver dropped early");
                }
            }
        });
        let (out_rx, handles) = spawn_feedback_farm(rx, replicas, factory, 16, WaitStrategy::Block);
        let out: Vec<O> = out_rx.into_iter().map(Stamped::into_inner).collect();
        producer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        out
    }

    #[test]
    fn collatz_items_circulate_until_done() {
        // Each item is (start, steps); recycle until the value hits 1.
        let out: Vec<(u64, u32)> = run((1..=50u64).map(|v| (v, v, 0u32)).collect(), 4, |_| {
            |(orig, v, steps): (u64, u64, u32)| {
                if v == 1 {
                    Loop::Emit((orig, steps))
                } else if v % 2 == 0 {
                    Loop::Recycle((orig, v / 2, steps + 1))
                } else {
                    Loop::Recycle((orig, 3 * v + 1, steps + 1))
                }
            }
        });
        assert_eq!(out.len(), 50);
        let steps_of = |n: u64| out.iter().find(|(o, _)| *o == n).expect("present").1;
        // Known Collatz step counts.
        assert_eq!(steps_of(1), 0);
        assert_eq!(steps_of(2), 1);
        assert_eq!(steps_of(27), 111);
    }

    #[test]
    fn zero_recycle_items_pass_straight_through() {
        let mut out: Vec<u64> = run((0..100u64).collect(), 3, |_| {
            |v: u64| Loop::Emit::<u64, u64>(v * 2)
        });
        out.sort_unstable();
        assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_stream_terminates() {
        let out: Vec<u64> = run(Vec::<u64>::new(), 2, |_| |v: u64| Loop::Emit::<u64, u64>(v));
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_capacity_heavy_recycling_terminates() {
        // Stress the non-blocking emitter: capacity-2 worker queues fill
        // constantly, so most rounds leave a remainder in scratch, and the
        // emitter must keep draining feedback (never block toward a full
        // worker) for the farm to terminate.
        let (tx, rx) = channel::<Stamped<(u64, u64)>>(2, WaitStrategy::Block);
        let producer = thread::spawn(move || {
            for v in 0..200u64 {
                if tx.send(Stamped::bare((v, 0))).is_err() {
                    panic!("receiver dropped early");
                }
            }
        });
        let (out_rx, handles) = spawn_feedback_farm_traced(
            rx,
            4,
            |_| {
                |(v, trips): (u64, u64)| {
                    if trips == v % 17 {
                        Loop::Emit(v)
                    } else {
                        Loop::Recycle((v, trips + 1))
                    }
                }
            },
            2,
            WaitStrategy::Block,
            32,
            &Recorder::default(),
            "feedback",
        );
        let mut out: Vec<u64> = out_rx.into_iter().map(Stamped::into_inner).collect();
        producer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        out.sort_unstable();
        assert_eq!(out, (0..200u64).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_feedback() {
        // Count down from v to 0, one pass per decrement.
        let out: Vec<u64> = run(vec![5u64, 3, 0], 1, |_| {
            |v: u64| {
                if v == 0 {
                    Loop::Emit(0u64)
                } else {
                    Loop::Recycle(v - 1)
                }
            }
        });
        assert_eq!(out, vec![0, 0, 0]);
    }
}
