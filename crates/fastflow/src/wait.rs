//! Wait strategies and the notification primitive behind the blocking mode.
//!
//! FastFlow's runtime can run its queues in non-blocking (spinning) or
//! blocking mode; this module reproduces that choice. All strategies spin
//! briefly first — the common case in a busy pipeline is that the peer makes
//! progress within a few hundred cycles — and differ in how they escalate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How a channel endpoint waits for its peer when it cannot make progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WaitStrategy {
    /// Busy-spin with `spin_loop` hints, periodically yielding to the OS so
    /// oversubscribed machines (more threads than cores) still progress.
    Spin,
    /// Spin briefly, then `thread::yield_now` in a loop.
    Yield,
    /// Spin briefly, then park on a condition variable until notified.
    /// This is FastFlow's blocking mode; it is the default because it is the
    /// only strategy that wastes no CPU on oversubscribed hosts.
    #[default]
    Block,
}

const SPIN_LIMIT: u32 = 64;
const YIELD_LIMIT: u32 = 128;

/// An epoch-counting wakeup signal.
///
/// The epoch counter makes the classic "missed wakeup" race benign: a waiter
/// snapshots the epoch, re-checks its condition, and only parks if the epoch
/// is unchanged — any notification between snapshot and park bumps the epoch
/// and the park is skipped.
#[derive(Default)]
pub struct Signal {
    epoch: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Signal {
    /// New signal with epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the current epoch (pair with [`Signal::wait_if`]).
    #[inline]
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Wake all current waiters.
    #[inline]
    pub fn notify(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        // Lock/unlock orders the epoch bump before any waiter's re-check
        // under the same mutex, then wake everyone.
        drop(self.lock.lock().unwrap());
        self.cond.notify_all();
    }

    /// Park until the epoch moves past `observed` (returns immediately if it
    /// already has).
    pub fn wait_if(&self, observed: usize) {
        let mut guard = self.lock.lock().unwrap();
        while self.epoch.load(Ordering::Acquire) == observed {
            guard = self.cond.wait(guard).unwrap();
        }
    }
}

impl WaitStrategy {
    /// Wait until `ready()` returns true. `signal` is only consulted by the
    /// `Block` strategy; spinning strategies ignore it.
    pub fn wait_until(&self, signal: &Signal, mut ready: impl FnMut() -> bool) {
        let mut spins: u32 = 0;
        loop {
            if ready() {
                return;
            }
            spins += 1;
            match self {
                WaitStrategy::Spin => {
                    if spins.is_multiple_of(1024) {
                        // Keep single-core hosts live even in "spin" mode.
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                WaitStrategy::Yield => {
                    if spins < SPIN_LIMIT {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
                WaitStrategy::Block => {
                    if spins < SPIN_LIMIT {
                        std::hint::spin_loop();
                    } else if spins < YIELD_LIMIT {
                        std::thread::yield_now();
                    } else {
                        let epoch = signal.epoch();
                        if ready() {
                            return;
                        }
                        signal.wait_if(epoch);
                    }
                }
            }
        }
    }

    /// True if this strategy needs peers to call [`Signal::notify`].
    #[inline]
    pub fn needs_notify(&self) -> bool {
        matches!(self, WaitStrategy::Block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn ready_immediately_returns() {
        let sig = Signal::new();
        for ws in [WaitStrategy::Spin, WaitStrategy::Yield, WaitStrategy::Block] {
            ws.wait_until(&sig, || true);
        }
    }

    #[test]
    fn notify_bumps_epoch() {
        let sig = Signal::new();
        let e = sig.epoch();
        sig.notify();
        assert!(sig.epoch() > e);
    }

    #[test]
    fn wait_if_returns_when_epoch_already_moved() {
        let sig = Signal::new();
        let e = sig.epoch();
        sig.notify();
        sig.wait_if(e); // must not hang
    }

    #[test]
    fn block_strategy_wakes_on_notify() {
        let sig = Arc::new(Signal::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (sig2, flag2) = (Arc::clone(&sig), Arc::clone(&flag));
        let waiter = thread::spawn(move || {
            WaitStrategy::Block.wait_until(&sig2, || flag2.load(Ordering::Acquire));
        });
        thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        sig.notify();
        waiter.join().unwrap();
    }

    #[test]
    fn spin_and_yield_progress_on_flag() {
        for ws in [WaitStrategy::Spin, WaitStrategy::Yield] {
            let sig = Arc::new(Signal::new());
            let flag = Arc::new(AtomicBool::new(false));
            let (sig2, flag2) = (Arc::clone(&sig), Arc::clone(&flag));
            let waiter = thread::spawn(move || {
                ws.wait_until(&sig2, || flag2.load(Ordering::Acquire));
            });
            thread::sleep(Duration::from_millis(5));
            flag.store(true, Ordering::Release);
            waiter.join().unwrap();
        }
    }

    #[test]
    fn only_block_needs_notify() {
        assert!(!WaitStrategy::Spin.needs_notify());
        assert!(!WaitStrategy::Yield.needs_notify());
        assert!(WaitStrategy::Block.needs_notify());
    }
}
