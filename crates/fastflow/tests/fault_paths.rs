//! Integration tests for the fail-soft error path: typed stage errors must
//! flow through *full* bounded queues to the sink, retries must not stall
//! the graph (or trip the telemetry watchdog), and
//! `PipelineThreads::join_report` must always join — absorbing stage
//! panics instead of re-raising them.

use std::collections::HashSet;
use std::time::Duration;

use fastflow::{try_map, try_map_with, FaultPolicy, Pipeline, StageError};
use telemetry::Recorder;

/// Many more items than the queue capacity, a stage that permanently
/// rejects some of them: the errors must arrive at the sink as data and
/// the whole graph must drain and join cleanly — no unwinding, no hang.
#[test]
fn typed_stage_errors_drain_full_bounded_queues_and_join() {
    let (rx, threads) = Pipeline::builder()
        .capacity(2)
        .from_iter(0..500u64)
        .map(Ok::<u64, StageError>)
        .node(try_map_with(
            |x: u64| {
                if x.is_multiple_of(50) {
                    Err((x, StageError::new("flaky", format!("rejecting {x}"))))
                } else {
                    Ok(x * 2)
                }
            },
            FaultPolicy::NONE,
        ))
        .node(try_map(|x: u64| Ok::<u64, (u64, StageError)>(x + 1)))
        .into_receiver();

    let mut oks = 0usize;
    let mut errs: Vec<StageError> = Vec::new();
    while let Some(stamped) = rx.recv() {
        match stamped.item {
            Ok(_) => oks += 1,
            Err(e) => errs.push(e),
        }
    }
    let report = threads.join_report();
    assert!(report.is_clean(), "unexpected stage panics: {report}");
    assert_eq!(oks, 490);
    assert_eq!(errs.len(), 10);
    assert!(errs.iter().all(|e| e.stage == "flaky" && e.attempts == 1));
}

/// Every item fails once and succeeds on retry; with backoff sleeps inside
/// the stage the bounded queues upstream are full for most of the run. All
/// items must still come out, and an armed watchdog must not report
/// phantom stalls for the retry/backoff pauses.
#[test]
fn retries_with_backoff_do_not_trip_the_stall_watchdog() {
    let rec = Recorder::enabled();
    let watchdog = rec.watchdog(Duration::from_millis(200), 3);
    let out = Pipeline::builder()
        .recorder(rec.clone())
        .capacity(2)
        .from_iter(0..100u64)
        .map(Ok::<u64, StageError>)
        .node(try_map_with(
            {
                let mut seen = HashSet::new();
                move |x: u64| {
                    if seen.insert(x) {
                        Err((x, StageError::new("transient", "first attempt fails")))
                    } else {
                        Ok(x)
                    }
                }
            },
            FaultPolicy::retries(2, Duration::from_micros(200)),
        ))
        .collect();
    let _ = watchdog.stop();
    assert_eq!(out.len(), 100);
    assert!(out.iter().all(|r| r.is_ok()));
    let report = rec.report();
    assert!(
        report.stalls.is_empty(),
        "watchdog flagged retry backoff as a stall: {:?}",
        report.stalls
    );
}

/// A stage that *does* panic mid-stream must not wedge `join_report`: the
/// panic is absorbed into the run report and every other thread is still
/// joined.
#[test]
fn join_report_absorbs_stage_panics_without_reraising() {
    let (rx, threads) = Pipeline::builder()
        .capacity(8)
        .from_iter(0..4u64)
        .map(|x: u64| {
            assert!(x != 2, "boom at item 2");
            x
        })
        .into_receiver();
    let mut received = Vec::new();
    while let Some(stamped) = rx.recv() {
        received.push(stamped.item);
    }
    let report = threads.join_report();
    assert!(!report.is_clean());
    assert_eq!(report.panics.len(), 1, "exactly one stage panicked");
    assert!(
        report.panics[0].contains("boom at item 2"),
        "payload preserved: {report}"
    );
    // Items buffered in the panicking stage's batch sink are lost with the
    // unwind — only items 0 and 1 can ever come out, and possibly fewer.
    // (This data loss is exactly why error.rs prefers typed errors.)
    assert!(received.iter().all(|&x| x < 2), "got {received:?}");
}
