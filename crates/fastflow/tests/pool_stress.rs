//! Stress tests for the buffer pool layer: MPMC acquire/release from many
//! threads with no double-hand-out, bounded per-class capacity under
//! flooding (the fault-injected-OOM shape: a burst of releases when a
//! halved retry ladder unwinds), and the feedback recycle channel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fastflow::{recycler, BufPool};

/// Many threads acquire, tag, re-check and release concurrently. If the
/// pool ever handed the same buffer to two threads at once, a thread
/// would observe another thread's tag inside its "exclusively owned"
/// buffer.
#[test]
fn concurrent_acquire_release_never_double_hands_out() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 2_000;
    let pool: BufPool<u64> = BufPool::new();
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = pool.clone();
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let tag = t as u64 + 1;
                barrier.wait();
                for round in 0..ROUNDS {
                    // Vary the length so different size classes mix.
                    let len = 1 + (round % 300);
                    let mut buf = pool.acquire(len);
                    assert_eq!(buf.len(), len, "acquire must honour the request");
                    assert!(
                        buf.iter().all(|&v| v == 0),
                        "acquired buffer must arrive zeroed"
                    );
                    buf.fill(tag);
                    std::thread::yield_now();
                    assert!(
                        buf.iter().all(|&v| v == tag),
                        "buffer mutated while exclusively owned: double hand-out"
                    );
                    // Dropping returns it to the pool for the other threads.
                }
            });
        }
    });
    let stats = pool.stats();
    assert_eq!(
        stats.outstanding, 0,
        "every buffer must be back in the pool"
    );
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * ROUNDS) as u64,
        "every acquire is either a hit or a miss"
    );
    assert!(
        stats.hits > 0,
        "recycling must kick in under sustained traffic: {stats:?}"
    );
}

/// Flooding one size class with more buffers than the ring holds — the
/// release burst an OOM-halving retry ladder produces when it unwinds —
/// must shed the surplus instead of growing without bound.
#[test]
fn per_class_capacity_is_respected_under_release_floods() {
    let per_class = 4;
    let pool: BufPool<u8> = BufPool::with_capacity(per_class);
    // Hold more buffers of one class than the ring can take back.
    let held: Vec<_> = (0..per_class * 4).map(|_| pool.acquire(100)).collect();
    let stats = pool.stats();
    assert_eq!(stats.outstanding, (per_class * 4) as u64);
    drop(held);
    let stats = pool.stats();
    assert_eq!(stats.outstanding, 0);
    assert!(
        stats.shed >= (per_class * 2) as u64,
        "the surplus must be shed, not hoarded: {stats:?}"
    );
    // The survivors are still served from the ring.
    let before = pool.stats().hits;
    drop(pool.acquire(100));
    assert_eq!(pool.stats().hits, before + 1);
}

/// `detach` removes a buffer from the cycle: the pool must not see it
/// again (no aliased hand-outs of storage the caller now owns outright).
#[test]
fn detached_buffers_leave_the_pool() {
    let pool: BufPool<u32> = BufPool::new();
    let buf = pool.acquire(64);
    let owned: Vec<u32> = buf.detach();
    assert_eq!(owned.len(), 64);
    assert_eq!(pool.stats().outstanding, 0);
    // The next acquire cannot be a hit: the only buffer ever created left.
    drop(pool.acquire(64));
    assert_eq!(pool.stats().hits, 0);
}

/// The sink→source recycle channel under contention: every buffer that a
/// "sink" thread gives back is observed by exactly one "worker".
#[test]
fn recycle_channel_cycles_buffers_across_threads() {
    const WORKERS: usize = 4;
    const ITEMS: usize = 5_000;
    let chan = recycler::<Vec<u8>>(WORKERS * 2);
    let produced = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        // Bounded, like a real pipeline: workers block when the sink lags,
        // so the feedback loop actually gets a chance to cycle.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(WORKERS);
        for _ in 0..WORKERS {
            let chan = chan.clone();
            let tx = tx.clone();
            let produced = Arc::clone(&produced);
            s.spawn(move || loop {
                let n = produced.fetch_add(1, Ordering::Relaxed);
                if n >= ITEMS {
                    break;
                }
                let mut buf = chan.take().unwrap_or_default();
                buf.clear();
                buf.resize(256, n as u8);
                tx.send(buf).unwrap();
            });
        }
        drop(tx);
        let sink_chan = chan.clone();
        s.spawn(move || {
            // The sink: consume and feed buffers back upstream.
            for buf in rx {
                sink_chan.give(buf);
            }
        });
    });
    let stats = chan.stats();
    assert_eq!(
        stats.hits + stats.misses,
        ITEMS as u64,
        "every worker take is a hit or a miss"
    );
    assert!(stats.hits > 0, "the feedback loop must recycle: {stats:?}");
}
