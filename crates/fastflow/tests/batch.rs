//! Integration coverage for the batched data path: `send_batch` /
//! `recv_batch` under real two-thread contention, and the pipeline/farm
//! burst loops at degenerate burst sizes (1 = the old item-at-a-time path,
//! huge = one flush per stream).

use std::thread;

use fastflow::{Pipeline, WaitStrategy};

/// Two threads, batched producer vs batched consumer, capacities far below
/// the stream length: every item must arrive exactly once, in order.
#[test]
fn send_batch_recv_batch_no_lost_dup_or_reordered() {
    const N: u64 = 200_000;
    for (cap, burst) in [(8usize, 3usize), (64, 64), (16, 97)] {
        let (tx, rx) = fastflow::channel::<u64>(cap, WaitStrategy::Block);
        let producer = thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                let hi = (next + burst as u64).min(N);
                tx.send_batch(next..hi).expect("receiver alive");
                next = hi;
            }
        });
        let mut expected = 0u64;
        let mut buf = Vec::with_capacity(burst);
        loop {
            let n = rx.recv_batch(&mut buf, burst);
            if n == 0 {
                break;
            }
            for v in buf.drain(..) {
                assert_eq!(v, expected, "cap={cap} burst={burst}");
                expected += 1;
            }
        }
        assert_eq!(expected, N, "cap={cap} burst={burst}");
        producer.join().unwrap();
    }
}

/// Mixed single-item and batched operations on the same channel interleave
/// without corrupting the order.
#[test]
fn mixed_single_and_batched_ops_interleave() {
    let (tx, rx) = fastflow::channel::<u32>(32, WaitStrategy::Yield);
    let producer = thread::spawn(move || {
        for base in 0..1000u32 {
            if base % 3 == 0 {
                tx.send(base * 10).unwrap();
            } else {
                tx.send_batch((base * 10)..(base * 10 + 3)).unwrap();
            }
        }
    });
    let mut got = Vec::new();
    let mut buf = Vec::new();
    loop {
        if got.len() % 2 == 0 {
            match rx.recv() {
                Some(v) => got.push(v),
                None => break,
            }
        } else if rx.recv_batch(&mut buf, 7) == 0 {
            break;
        } else {
            got.append(&mut buf);
        }
    }
    producer.join().unwrap();
    let mut expected = Vec::new();
    for base in 0..1000u32 {
        if base % 3 == 0 {
            expected.push(base * 10);
        } else {
            expected.extend((base * 10)..(base * 10 + 3));
        }
    }
    assert_eq!(got, expected);
}

/// The pipeline burst loops must produce identical results at burst=1
/// (pre-batching behaviour), the default, and a burst larger than both the
/// stream and every queue capacity.
#[test]
fn pipeline_results_are_burst_invariant() {
    let expected: Vec<u64> = (0..5_000).map(|x| x * 2 + 1).collect();
    for burst in [1usize, 32, 100_000] {
        let out = Pipeline::builder()
            .capacity(16)
            .burst(burst)
            .from_iter(0..5_000u64)
            .map(|x| x * 2)
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, expected, "burst={burst}");
    }
}

/// Ordered farms must keep exact input order through the emitter multi-push
/// and the collector's batched merge, at every burst size.
#[test]
fn ordered_farm_is_burst_invariant() {
    let expected: Vec<u64> = (0..3_000).map(|x| x * 7).collect();
    for burst in [1usize, 5, 64, 4096] {
        let out = Pipeline::builder()
            .capacity(8)
            .burst(burst)
            .from_iter(0..3_000u64)
            .farm_ordered(4, |_| fastflow::node::map(|x: u64| x * 7))
            .collect();
        assert_eq!(out, expected, "burst={burst}");
    }
}

/// Unordered farm + multi-output nodes: conservation (every item exactly
/// once) under batching.
#[test]
fn unordered_farm_conserves_items_under_batching() {
    let mut out = Pipeline::builder()
        .capacity(4)
        .burst(16)
        .from_iter(0..2_000u32)
        .farm(3, |_| {
            fastflow::node::flat_map(|x: u32| vec![x * 2, x * 2 + 1])
        })
        .collect();
    out.sort_unstable();
    assert_eq!(out, (0..4_000).collect::<Vec<u32>>());
}

/// Feedback farm under batching: items circulate and terminate; results
/// complete at several burst sizes.
#[test]
fn feedback_farm_is_burst_invariant() {
    for burst in [1usize, 8, 256] {
        let mut out: Vec<u64> = Pipeline::builder()
            .burst(burst)
            .from_iter((0..200u64).map(|v| (v, v % 17)))
            .feedback_farm(3, |_| {
                |(v, rounds): (u64, u64)| {
                    if rounds == 0 {
                        fastflow::Loop::Emit(v)
                    } else {
                        fastflow::Loop::Recycle((v, rounds - 1))
                    }
                }
            })
            .collect();
        out.sort_unstable();
        assert_eq!(out, (0..200).collect::<Vec<u64>>(), "burst={burst}");
    }
}

/// Dropping the receiver mid-stream with batched senders must terminate
/// every stage thread (no deadlock, no panic).
#[test]
fn early_receiver_drop_with_batching_terminates() {
    let (rx, threads) = Pipeline::builder()
        .capacity(4)
        .burst(64)
        .from_iter(0..1_000_000u64)
        .map(|x| x + 1)
        .into_receiver();
    let mut got = 0;
    while got < 10 {
        if rx.recv().is_some() {
            got += 1;
        }
    }
    drop(rx);
    threads.join(); // must not hang
}
