//! Stress and interaction tests for the runtime: deep pipelines, farms in
//! sequence, tiny queues, every wait strategy — the configurations where
//! ordering and EOS bugs hide.

use fastflow::{node, Emitter, Node, Pipeline, SchedPolicy, WaitStrategy};

#[test]
fn deep_pipeline_with_two_farms_preserves_order() {
    for ws in [WaitStrategy::Block, WaitStrategy::Yield] {
        let out = Pipeline::builder()
            .wait(ws)
            .capacity(4) // tiny queues force backpressure
            .from_iter(0..2_000u64)
            .map(|x| x + 1)
            .farm_ordered(3, |_| node::map(|x: u64| x * 2))
            .map(|x| x - 1)
            .farm_ordered(2, |_| node::map(|x: u64| x ^ 0xAB))
            .collect();
        let expected: Vec<u64> = (0..2_000u64).map(|x| (((x + 1) * 2) - 1) ^ 0xAB).collect();
        assert_eq!(out, expected, "strategy {ws:?}");
    }
}

#[test]
fn on_demand_farm_with_skewed_work_is_complete_and_correct() {
    let mut out = Pipeline::builder()
        .capacity(2)
        .from_iter(0..500u64)
        .farm_with(
            4,
            |_| {
                node::map(|x: u64| {
                    // Skewed work: every 16th item is "expensive".
                    if x.is_multiple_of(16) {
                        std::thread::yield_now();
                    }
                    x * 3
                })
            },
            SchedPolicy::OnDemand,
            false,
        )
        .collect();
    out.sort_unstable();
    let mut expected: Vec<u64> = (0..500).map(|x| x * 3).collect();
    expected.sort_unstable();
    assert_eq!(out, expected);
}

#[test]
fn multi_output_stage_feeding_a_farm() {
    // Stage 1 fans each item into 3; the farm then processes 3N items.
    let out = Pipeline::builder()
        .from_iter(0..100u32)
        .node(node::flat_map(|x: u32| vec![x, x + 1000, x + 2000]))
        .farm_ordered(3, |_| node::map(|x: u32| x as u64))
        .collect();
    assert_eq!(out.len(), 300);
    for (i, chunk) in out.chunks(3).enumerate() {
        let base = i as u64;
        assert_eq!(chunk, &[base, base + 1000, base + 2000]);
    }
}

#[test]
fn stateful_reducer_after_a_farm_sees_all_items() {
    struct Sum {
        acc: u64,
    }
    impl Node for Sum {
        type In = u64;
        type Out = u64;
        fn svc(&mut self, input: u64, _out: &mut Emitter<'_, u64>) {
            self.acc += input;
        }
        fn on_eos(&mut self, out: &mut Emitter<'_, u64>) {
            out.send(self.acc);
        }
    }
    let out = Pipeline::builder()
        .from_iter(1..=1_000u64)
        .farm(4, |_| node::map(|x: u64| x))
        .node(Sum { acc: 0 })
        .collect();
    assert_eq!(out, vec![500_500]);
}

#[test]
fn empty_stream_closes_every_stage_cleanly() {
    let out = Pipeline::builder()
        .from_iter(std::iter::empty::<u64>())
        .farm_ordered(4, |_| node::map(|x: u64| x))
        .map(|x| x)
        .collect();
    assert!(out.is_empty());
}

#[test]
fn single_item_stream() {
    let out = Pipeline::builder()
        .from_iter(std::iter::once(42u64))
        .farm_ordered(8, |_| node::map(|x: u64| x + 1))
        .collect();
    assert_eq!(out, vec![43]);
}

#[test]
fn capacity_one_everywhere_still_completes() {
    let out = Pipeline::builder()
        .capacity(1)
        .from_iter(0..300u64)
        .farm_ordered(2, |_| node::map(|x: u64| x))
        .map(|x| x)
        .collect();
    assert_eq!(out, (0..300).collect::<Vec<u64>>());
}

#[test]
fn many_replicas_more_than_items() {
    let out = Pipeline::builder()
        .from_iter(0..5u64)
        .farm_ordered(16, |_| node::map(|x: u64| x * 7))
        .collect();
    assert_eq!(out, vec![0, 7, 14, 21, 28]);
}
