//! Dedup's GPU kernels: SHA-1 (one thread per block) and LZSS `FindMatch`
//! (one thread per input byte), in batched and per-block variants.
//!
//! The batched [`FindMatchKernel`] is Listing 3: a single launch covers the
//! whole 1 MB batch, each lane locating its block via a linear scan of the
//! `startPos` array and bounding its window search to that block. The
//! per-block variants reproduce the paper's *first* (slow) integration —
//! "the GPU kernel function has been invoked for too many times without
//! using efficiently the GPU resources" — and power the no-batch bars of
//! Fig. 5.

use gpusim::{DeviceMemory, DevicePtr, KernelFn, LaunchDims, WorkMeter};

use crate::lzss::{find_match, LzssConfig};
use crate::sha1::Sha1;

/// Cycles per byte hashed by a single GPU thread (scalar SHA-1 is
/// register-bound; one thread per block is latency-, not throughput-,
/// friendly — which is why the batch must carry many blocks).
const SHA1_CYCLES_PER_BYTE: f64 = 18.0;

/// Cycles per window probe of the match search.
const LZSS_CYCLES_PER_PROBE: f64 = 3.0;

/// SHA-1 of every block in a batch; lane `b` hashes block `b` (§IV-B
/// stage 2: "each GPU thread calculates the SHA-1 of one block").
pub struct Sha1Kernel {
    /// Batch bytes on device.
    pub data: DevicePtr<u8>,
    /// Block start offsets (Fig. 2's `startPos`).
    pub starts: DevicePtr<u32>,
    /// Valid bytes in `data` (tail batches are shorter than the buffer).
    pub data_len: usize,
    /// Valid entries in `starts`.
    pub n_blocks: usize,
    /// Output digests, 20 bytes per block.
    pub out: DevicePtr<u8>,
}

impl KernelFn for Sha1Kernel {
    fn name(&self) -> &'static str {
        "sha1_blocks"
    }
    fn regs_per_thread(&self) -> u32 {
        48 // SHA-1 state + schedule window
    }
    fn cycles_per_unit(&self) -> f64 {
        SHA1_CYCLES_PER_BYTE
    }
    fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
        let data = mem.borrow(self.data);
        let starts = mem.borrow(self.starts);
        let mut out = mem.borrow_mut(self.out);
        for lane in dims.lanes() {
            let b = lane as usize;
            if b < self.n_blocks {
                let start = starts[b] as usize;
                let end = if b + 1 < self.n_blocks {
                    starts[b + 1] as usize
                } else {
                    self.data_len
                };
                let mut h = Sha1::new();
                h.update(&data[start..end]);
                let digest = h.finalize();
                out[b * 20..b * 20 + 20].copy_from_slice(&digest.0);
                meter.record(lane, (end - start) as u64);
            } else {
                meter.record(lane, 1);
            }
        }
    }
}

/// SHA-1 of a single block — the unbatched variant (one launch per block,
/// one *warp-wide* stripe of lanes but only lane 0 does the work: the GPU
/// is starved, exactly the pathology the batch redesign fixes).
pub struct Sha1BlockKernel {
    /// Batch bytes on device.
    pub data: DevicePtr<u8>,
    /// Block byte range.
    pub start: usize,
    /// End of the block range.
    pub end: usize,
    /// Output digest, 20 bytes, at `block_ordinal * 20`.
    pub out: DevicePtr<u8>,
    /// Which output slot to fill.
    pub slot: usize,
}

impl KernelFn for Sha1BlockKernel {
    fn name(&self) -> &'static str {
        "sha1_one_block"
    }
    fn regs_per_thread(&self) -> u32 {
        48
    }
    fn cycles_per_unit(&self) -> f64 {
        SHA1_CYCLES_PER_BYTE
    }
    fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
        let data = mem.borrow(self.data);
        let mut out = mem.borrow_mut(self.out);
        for lane in dims.lanes() {
            if lane == 0 {
                let mut h = Sha1::new();
                h.update(&data[self.start..self.end]);
                out[self.slot * 20..self.slot * 20 + 20].copy_from_slice(&h.finalize().0);
                meter.record(lane, (self.end - self.start) as u64);
            } else {
                meter.record(lane, 1);
            }
        }
    }
}

/// Listing 3: the batched `FindMatchKernel`. One lane per byte of the
/// batch; each lane scans `startPoss` linearly to find its block, then
/// searches its block-bounded window for the longest match.
pub struct FindMatchKernel {
    /// Batch bytes on device (`input`).
    pub data: DevicePtr<u8>,
    /// Valid bytes (`sizeInput`).
    pub data_len: usize,
    /// Block starts (`startPoss`).
    pub starts: DevicePtr<u32>,
    /// Valid entries (`startPosSize`).
    pub n_blocks: usize,
    /// Output match lengths (`matchesLength`).
    pub matches_len: DevicePtr<u32>,
    /// Output match offsets (`matchesOffset`).
    pub matches_off: DevicePtr<u32>,
    /// Codec parameters (`WINDOW_SIZE` / `MAX_CODED`).
    pub cfg: LzssConfig,
}

impl KernelFn for FindMatchKernel {
    fn name(&self) -> &'static str {
        "FindMatchKernel"
    }
    fn regs_per_thread(&self) -> u32 {
        32
    }
    fn cycles_per_unit(&self) -> f64 {
        LZSS_CYCLES_PER_PROBE
    }
    fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
        let data = mem.borrow(self.data);
        let starts = mem.borrow(self.starts);
        let mut m_len = mem.borrow_mut(self.matches_len);
        let mut m_off = mem.borrow_mut(self.matches_off);
        for lane in dims.lanes() {
            let idx = lane as usize; // idX
            if idx >= self.data_len {
                meter.record(lane, 1);
                continue;
            }
            // Lines 4-10: locate the block containing idx (linear scan).
            let mut block = 0usize;
            for k in 0..self.n_blocks {
                if (starts[k] as usize) < idx + 1 {
                    block = k;
                }
            }
            let start = starts[block] as usize;
            let last = if block + 1 < self.n_blocks {
                starts[block + 1] as usize
            } else {
                self.data_len
            };
            let (m, probes) = find_match(&data, start, last, idx, &self.cfg);
            m_len[idx] = m.len;
            m_off[idx] = m.dist;
            // Work: the startPos scan plus the window probes.
            meter.record(lane, probes + (self.n_blocks as u64) / 4 + 1);
        }
    }
}

/// Per-block `FindMatch` — the unbatched variant (one launch per block).
pub struct FindMatchBlockKernel {
    /// Batch bytes on device.
    pub data: DevicePtr<u8>,
    /// Block byte range start.
    pub start: usize,
    /// Block byte range end.
    pub end: usize,
    /// Output match lengths (indexed by absolute batch position).
    pub matches_len: DevicePtr<u32>,
    /// Output match offsets.
    pub matches_off: DevicePtr<u32>,
    /// Codec parameters.
    pub cfg: LzssConfig,
}

impl KernelFn for FindMatchBlockKernel {
    fn name(&self) -> &'static str {
        "FindMatchBlock"
    }
    fn regs_per_thread(&self) -> u32 {
        32
    }
    fn cycles_per_unit(&self) -> f64 {
        LZSS_CYCLES_PER_PROBE
    }
    fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
        let data = mem.borrow(self.data);
        let mut m_len = mem.borrow_mut(self.matches_len);
        let mut m_off = mem.borrow_mut(self.matches_off);
        let n = self.end - self.start;
        for lane in dims.lanes() {
            let i = lane as usize;
            if i < n {
                let idx = self.start + i;
                let (m, probes) = find_match(&data, self.start, self.end, idx, &self.cfg);
                m_len[idx] = m.len;
                m_off[idx] = m.dist;
                meter.record(lane, probes + 1);
            } else {
                meter.record(lane, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::make_batches;
    use crate::lzss::Match;
    use crate::rabin::RabinParams;
    use crate::sha1::sha1;
    use gpusim::{DeviceProps, GpuSystem, StreamId};
    use simtime::SimTime;

    fn rabin_small() -> RabinParams {
        RabinParams {
            window: 16,
            mask: (1 << 8) - 1,
            magic: 0x21,
            min_chunk: 64,
            max_chunk: 2048,
        }
    }

    fn sample_batch() -> crate::batch::Batch {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        make_batches(&data, 8192, &rabin_small()).remove(0)
    }

    #[test]
    fn sha1_kernel_matches_cpu_digests() {
        let b = sample_batch();
        let sys = GpuSystem::new(1, DeviceProps::titan_xp());
        let dev = sys.device(0);
        let d_data = dev.alloc::<u8>(b.data.len()).unwrap();
        let d_starts = dev.alloc::<u32>(b.block_count()).unwrap();
        let d_out = dev.alloc::<u8>(b.block_count() * 20).unwrap();
        let starts: Vec<u32> = b.starts.iter().map(|&s| s as u32).collect();
        dev.copy_h2d(StreamId::DEFAULT, &b.data, d_data, 0, false, SimTime::ZERO);
        dev.copy_h2d(
            StreamId::DEFAULT,
            &starts,
            d_starts,
            0,
            false,
            SimTime::ZERO,
        );
        let k = Sha1Kernel {
            data: d_data,
            starts: d_starts,
            data_len: b.data.len(),
            n_blocks: b.block_count(),
            out: d_out,
        };
        dev.launch(
            StreamId::DEFAULT,
            LaunchDims::cover(b.block_count() as u64, 64),
            &k,
            SimTime::ZERO,
        );
        let mut out = vec![0u8; b.block_count() * 20];
        dev.copy_d2h(StreamId::DEFAULT, d_out, 0, &mut out, false, SimTime::ZERO);
        for blk in 0..b.block_count() {
            let expected = sha1(b.block(blk));
            assert_eq!(
                &out[blk * 20..blk * 20 + 20],
                &expected.0[..],
                "block {blk}"
            );
        }
    }

    #[test]
    fn find_match_kernel_matches_cpu_search() {
        let b = sample_batch();
        let cfg = LzssConfig {
            window: 256,
            min_coded: 3,
        };
        let sys = GpuSystem::new(1, DeviceProps::titan_xp());
        let dev = sys.device(0);
        let d_data = dev.alloc::<u8>(b.data.len()).unwrap();
        let d_starts = dev.alloc::<u32>(b.block_count()).unwrap();
        let d_len = dev.alloc::<u32>(b.data.len()).unwrap();
        let d_off = dev.alloc::<u32>(b.data.len()).unwrap();
        let starts: Vec<u32> = b.starts.iter().map(|&s| s as u32).collect();
        dev.copy_h2d(StreamId::DEFAULT, &b.data, d_data, 0, false, SimTime::ZERO);
        dev.copy_h2d(
            StreamId::DEFAULT,
            &starts,
            d_starts,
            0,
            false,
            SimTime::ZERO,
        );
        let k = FindMatchKernel {
            data: d_data,
            data_len: b.data.len(),
            starts: d_starts,
            n_blocks: b.block_count(),
            matches_len: d_len,
            matches_off: d_off,
            cfg,
        };
        dev.launch(
            StreamId::DEFAULT,
            LaunchDims::cover(b.data.len() as u64, 256),
            &k,
            SimTime::ZERO,
        );
        let mut lens = vec![0u32; b.data.len()];
        let mut offs = vec![0u32; b.data.len()];
        dev.copy_d2h(StreamId::DEFAULT, d_len, 0, &mut lens, false, SimTime::ZERO);
        dev.copy_d2h(StreamId::DEFAULT, d_off, 0, &mut offs, false, SimTime::ZERO);
        // Spot-check every 37th position against the CPU search.
        for blk in 0..b.block_count() {
            let r = b.block_range(blk);
            for pos in r.clone().step_by(37) {
                let (m, _) = find_match(&b.data, r.start, r.end, pos, &cfg);
                assert_eq!(
                    Match {
                        dist: offs[pos],
                        len: lens[pos]
                    },
                    m,
                    "pos {pos}"
                );
            }
        }
    }

    #[test]
    fn per_block_kernels_agree_with_batched() {
        let b = sample_batch();
        let cfg = LzssConfig {
            window: 128,
            min_coded: 3,
        };
        let sys = GpuSystem::new(1, DeviceProps::titan_xp());
        let dev = sys.device(0);
        let d_data = dev.alloc::<u8>(b.data.len()).unwrap();
        dev.copy_h2d(StreamId::DEFAULT, &b.data, d_data, 0, false, SimTime::ZERO);
        let d_len_a = dev.alloc::<u32>(b.data.len()).unwrap();
        let d_off_a = dev.alloc::<u32>(b.data.len()).unwrap();
        for blk in 0..b.block_count() {
            let r = b.block_range(blk);
            let k = FindMatchBlockKernel {
                data: d_data,
                start: r.start,
                end: r.end,
                matches_len: d_len_a,
                matches_off: d_off_a,
                cfg,
            };
            dev.launch(
                StreamId::DEFAULT,
                LaunchDims::cover((r.end - r.start) as u64, 128),
                &k,
                SimTime::ZERO,
            );
        }
        let mut lens = vec![0u32; b.data.len()];
        dev.copy_d2h(
            StreamId::DEFAULT,
            d_len_a,
            0,
            &mut lens,
            false,
            SimTime::ZERO,
        );
        // CPU reference.
        for blk in 0..b.block_count() {
            let r = b.block_range(blk);
            for pos in r.clone().step_by(53) {
                let (m, _) = find_match(&b.data, r.start, r.end, pos, &cfg);
                assert_eq!(lens[pos], m.len, "pos {pos}");
            }
        }
    }
}
