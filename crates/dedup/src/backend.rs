//! Stage backends: CPU, CUDA and OpenCL implementations of the hashing
//! (stage 2) and compression (stage 4) work.
//!
//! GPU backends keep the batch resident on the device between stages by
//! attaching the device buffers to the stream item ("this stage reuses
//! data already on GPU to prevent unnecessary data transfers", §IV-B) —
//! stage 4 targets whatever device stage 2 uploaded to. Buffer ownership
//! is encoded in the stream item *type* ([`DedupBackend::Gpu`]): a CUDA
//! stage 4 can only ever receive CUDA buffers, so the old "wrong buffer
//! flavour" panics are unrepresentable.
//!
//! Every GPU path fails soft. Device OOM and injected kernel faults are
//! caught, recorded as [`telemetry`] fault events, retried per the
//! [`FaultPolicy`] (the hash stage additionally retries OOM with halved
//! sub-batches), and finally degrade to the CPU implementation for that
//! batch — which is byte-identical, so a faulty run still produces the
//! exact sequential archive. `gpu: None` on a stream item means "this
//! batch is not device-resident; compress it on the host".
//!
//! `batched = false` reproduces the paper's first, slow integration: one
//! kernel launch per block instead of per batch.

use std::sync::Arc;

use fastflow::{BufPool, FaultPolicy, PooledBuf};
use gpusim::cuda::{Cuda, CudaBuffer};
use gpusim::opencl::{ClBuffer, ClKernel, CommandQueue, Context, Platform};
use gpusim::{DeviceFault, GpuSystem, HostRing, Offload, OutOfMemory};
use telemetry::{FaultKind, Recorder};

use crate::archive::BlockEntry;
use crate::batch::Batch;
use crate::dedupe::BlockClass;
use crate::kernels::{FindMatchBlockKernel, FindMatchKernel, Sha1BlockKernel, Sha1Kernel};
use crate::lzss::{encode_block_from_matches, LzssConfig, Match};
use crate::sha1::{sha1, Digest};

const BLOCK_1D: u32 = 256;

/// Stage labels used for fault events (matching the Fig. 3 pipeline's
/// telemetry stage names, so trace viewers pin them to the right row).
const HASH_STAGE: &str = "stage1 (hash)";
const COMPRESS_STAGE: &str = "stage3 (compress)";

/// Configuration shared by all backends of one pipeline run.
#[derive(Clone)]
pub struct BackendCtx {
    /// The simulated GPU system (absent for the CPU backend).
    pub system: Option<Arc<GpuSystem>>,
    /// Devices to spread batches over.
    pub n_gpus: usize,
    /// Use the batched kernels (the optimization) or per-block launches.
    pub batched: bool,
    /// Codec parameters.
    pub lzss: LzssConfig,
    /// Sink for fault / retry / fallback events (disabled ⇒ every record
    /// is a no-op branch).
    pub rec: Recorder,
    /// Retry budget applied before a failing GPU stage degrades to the
    /// CPU implementation for that batch.
    pub policy: FaultPolicy,
    /// Shared digest buffer pool: every stage-2 replica acquires its
    /// per-batch digest array here and the sink's drop returns it, so the
    /// steady state recycles a handful of arrays instead of allocating
    /// one per batch.
    pub digests: BufPool<Digest>,
}

impl BackendCtx {
    /// CPU-only context.
    pub fn cpu(lzss: LzssConfig) -> Self {
        BackendCtx {
            system: None,
            n_gpus: 0,
            batched: true,
            lzss,
            rec: Recorder::default(),
            policy: FaultPolicy::default(),
            digests: BufPool::new(),
        }
    }

    /// GPU context over `n_gpus` devices of `system`.
    pub fn gpu(system: Arc<GpuSystem>, n_gpus: usize, batched: bool, lzss: LzssConfig) -> Self {
        assert!(n_gpus >= 1 && n_gpus <= system.device_count());
        BackendCtx {
            system: Some(system),
            n_gpus,
            batched,
            lzss,
            rec: Recorder::default(),
            policy: FaultPolicy::default(),
            digests: BufPool::new(),
        }
    }

    /// Attach a telemetry recorder for fault events and pool gauges.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        rec.register_pool("dedup.digests", self.digests.counters());
        self.rec = rec;
        self
    }

    /// Override the GPU-failure retry budget.
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Why a GPU stage attempt failed: the two operational fault classes the
/// backends can recover from.
enum GpuFail {
    /// A device allocation was refused.
    Oom(OutOfMemory),
    /// A kernel launch was refused (fault injection / device error).
    Kernel(DeviceFault),
}

impl GpuFail {
    fn kind(&self) -> FaultKind {
        match self {
            GpuFail::Oom(_) => FaultKind::DeviceOom,
            GpuFail::Kernel(_) => FaultKind::KernelFault,
        }
    }

    fn detail(&self) -> String {
        match self {
            GpuFail::Oom(e) => e.to_string(),
            GpuFail::Kernel(e) => e.to_string(),
        }
    }
}

impl From<OutOfMemory> for GpuFail {
    fn from(e: OutOfMemory) -> Self {
        GpuFail::Oom(e)
    }
}

impl From<DeviceFault> for GpuFail {
    fn from(e: DeviceFault) -> Self {
        GpuFail::Kernel(e)
    }
}

/// Item emitted by stage 2. `G` is the backend's device-resident buffer
/// type ([`DedupBackend::Gpu`]); `gpu: None` means the batch is host-only
/// (CPU backend, or a GPU backend that fell back for this batch).
pub struct HashedBatch<G = ()> {
    /// The batch (host copy).
    pub batch: Batch,
    /// SHA-1 per block, in a pooled buffer that returns to
    /// [`BackendCtx::digests`] when the consumer drops it.
    pub digests: PooledBuf<Digest>,
    /// Device-resident data, if this batch made it onto a device.
    pub gpu: Option<G>,
}

/// Item emitted by stage 3.
pub struct ClassifiedBatch<G = ()> {
    /// The batch (host copy).
    pub batch: Batch,
    /// Unique/dup class per block.
    pub classes: Vec<BlockClass>,
    /// Device-resident data, forwarded from stage 2.
    pub gpu: Option<G>,
}

/// Item emitted by stage 4.
pub struct CompressedBatch {
    /// Stream position (reorder key).
    pub index: usize,
    /// Output records for this batch, in block order.
    pub entries: Vec<BlockEntry>,
}

/// A stage-2/stage-4 implementation. One instance per stage replica,
/// constructed on the replica's own thread (GPU state is thread-bound).
pub trait DedupBackend: Send + 'static {
    /// Device-resident data handed from stage 2 to stage 4. Each backend
    /// names its own buffer flavour here, so a mismatched handoff is a
    /// type error instead of a runtime panic. `()` for host-only backends.
    type Gpu: Send + 'static;

    /// Build a replica backend. `replica` picks the device
    /// (`replica % n_gpus`).
    fn new(ctx: &BackendCtx, replica: usize) -> Self;

    /// Stage 2: hash every block of the batch.
    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<Self::Gpu>;

    /// Stage 4: compress every unique block.
    fn compress_stage(&mut self, item: ClassifiedBatch<Self::Gpu>) -> CompressedBatch;
}

/// Host implementation of stage 2 (also the GPU backends' fallback path).
fn cpu_digests(pool: &BufPool<Digest>, batch: &Batch) -> PooledBuf<Digest> {
    let mut out = pool.acquire(batch.block_count());
    for (b, slot) in out.iter_mut().enumerate() {
        *slot = sha1(batch.block(b));
    }
    out
}

/// Host implementation of stage 4 (also the GPU backends' fallback path).
/// Byte-identical to the GPU match-kernel encoding, so a fallen-back batch
/// still reproduces the sequential archive exactly.
fn cpu_entries(batch: &Batch, classes: &[BlockClass], lzss: &LzssConfig) -> Vec<BlockEntry> {
    classes
        .iter()
        .enumerate()
        .map(|(b, class)| match class {
            BlockClass::Unique { .. } => BlockEntry::compress_unique(batch.block(b), lzss),
            BlockClass::Dup { of } => BlockEntry::Dup(*of),
        })
        .collect()
}

/// Pure-CPU backend (the paper's SPar CPU-only version).
pub struct CpuBackend {
    lzss: LzssConfig,
    pool: BufPool<Digest>,
}

impl DedupBackend for CpuBackend {
    type Gpu = ();

    fn new(ctx: &BackendCtx, _replica: usize) -> Self {
        CpuBackend {
            lzss: ctx.lzss,
            pool: ctx.digests.clone(),
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch {
        let digests = cpu_digests(&self.pool, &batch);
        HashedBatch {
            batch,
            digests,
            gpu: None,
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch) -> CompressedBatch {
        let entries = cpu_entries(&item.batch, &item.classes, &self.lzss);
        CompressedBatch {
            index: item.batch.index,
            entries,
        }
    }
}

fn starts_u32(batch: &Batch) -> Vec<u32> {
    batch.starts.iter().map(|&s| s as u32).collect()
}

/// Walk the classes and encode unique blocks from per-position matches.
fn entries_from_matches(
    batch: &Batch,
    classes: &[BlockClass],
    lens: &[u32],
    offs: &[u32],
    lzss: &LzssConfig,
) -> Vec<BlockEntry> {
    classes
        .iter()
        .enumerate()
        .map(|(b, class)| match class {
            BlockClass::Unique { .. } => {
                let r = batch.block_range(b);
                let block = &batch.data[r.clone()];
                let matches: Vec<Match> = (r.start..r.end)
                    .map(|i| Match {
                        dist: offs[i],
                        len: lens[i],
                    })
                    .collect();
                let encoded = encode_block_from_matches(block, &matches, lzss);
                BlockEntry::from_encoded(block, encoded)
            }
            BlockClass::Dup { of } => BlockEntry::Dup(*of),
        })
        .collect()
}

/// Device-resident batch data produced by [`CudaBackend`]'s stage 2.
pub struct CudaResident {
    device: usize,
    d_data: CudaBuffer<u8>,
    d_starts: CudaBuffer<u32>,
}

/// CUDA backend. Host buffers are *pageable* (Dedup `realloc`s its buffers,
/// §V-B), so all copies are synchronous — faithful to the paper's CUDA
/// behaviour. On any device fault the failing batch degrades straight to
/// the host implementation (the raw façade exposes no retry machinery —
/// the paper's hand-written integrations did not have any either).
pub struct CudaBackend {
    cuda: Cuda,
    device: usize,
    batched: bool,
    lzss: LzssConfig,
    rec: Recorder,
    pool: BufPool<Digest>,
}

impl CudaBackend {
    fn hash_on_device(
        &mut self,
        batch: &Batch,
    ) -> Result<(PooledBuf<Digest>, CudaResident), GpuFail> {
        self.cuda.set_device(self.device);
        let stream = self.cuda.stream_create();
        let n = batch.block_count();
        let d_data: CudaBuffer<u8> = self.cuda.malloc(batch.data.len())?;
        let d_starts: CudaBuffer<u32> = self.cuda.malloc(n.max(1))?;
        let d_out: CudaBuffer<u8> = self.cuda.malloc(n * 20)?;
        self.cuda
            .memcpy_h2d_pageable(&d_data, 0, &batch.data, &stream);
        self.cuda
            .memcpy_h2d_pageable(&d_starts, 0, &starts_u32(batch), &stream);
        let mut raw: Vec<u8>;
        if self.batched {
            let k = Sha1Kernel {
                data: d_data.ptr(),
                starts: d_starts.ptr(),
                data_len: batch.data.len(),
                n_blocks: n,
                out: d_out.ptr(),
            };
            let blocks = (n as u64).div_ceil(64) as u32;
            self.cuda.try_launch(&k, blocks.max(1), 64u32, &stream)?;
            // One read for the whole digest array.
            let mut all = vec![0u8; n * 20];
            self.cuda.memcpy_d2h_pageable(&mut all, &d_out, 0, &stream);
            self.cuda.stream_synchronize(&stream);
            raw = all;
        } else {
            // The naive integration: one launch per block — "the GPU
            // kernel function has been invoked too many times without
            // using efficiently the GPU resources" (§IV-B). The read-back
            // is still coalesced into one bulk copy after the launch loop
            // and sliced on the host: n tiny D2H transfers cost n fixed
            // latencies for the same bytes.
            raw = vec![0u8; n * 20];
            for b in 0..n {
                let r = batch.block_range(b);
                let k = Sha1BlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    out: d_out.ptr(),
                    slot: b,
                };
                self.cuda.try_launch(&k, 1u32, 32u32, &stream)?;
            }
            self.cuda.memcpy_d2h_pageable(&mut raw, &d_out, 0, &stream);
            self.cuda.stream_synchronize(&stream);
        }
        let mut digests = self.pool.acquire(n);
        for (slot, c) in digests.iter_mut().zip(raw.chunks_exact(20)) {
            *slot = Digest(c.try_into().expect("20 bytes"));
        }
        Ok((
            digests,
            CudaResident {
                device: self.device,
                d_data,
                d_starts,
            },
        ))
    }

    fn compress_on_device(
        &mut self,
        batch: &Batch,
        classes: &[BlockClass],
        res: &CudaResident,
    ) -> Result<(Vec<u32>, Vec<u32>), GpuFail> {
        // The data lives on whatever device stage 2 used.
        self.cuda.set_device(res.device);
        let stream = self.cuda.stream_create();
        let len = batch.data.len();
        let d_len: CudaBuffer<u32> = self.cuda.malloc(len)?;
        let d_off: CudaBuffer<u32> = self.cuda.malloc(len)?;
        let mut lens = vec![0u32; len];
        let mut offs = vec![0u32; len];
        if self.batched {
            let k = FindMatchKernel {
                data: res.d_data.ptr(),
                data_len: len,
                starts: res.d_starts.ptr(),
                n_blocks: batch.block_count(),
                matches_len: d_len.ptr(),
                matches_off: d_off.ptr(),
                cfg: self.lzss,
            };
            let blocks = (len as u64).div_ceil(BLOCK_1D as u64) as u32;
            self.cuda.try_launch(&k, blocks.max(1), BLOCK_1D, &stream)?;
            self.cuda.memcpy_d2h_pageable(&mut lens, &d_len, 0, &stream);
            self.cuda.memcpy_d2h_pageable(&mut offs, &d_off, 0, &stream);
        } else {
            // Naive integration: launch per block, but read back once.
            // The skipped Dup ranges stay zero on both sides (device
            // buffers are allocated zeroed), so the bulk copy is
            // bit-identical to the old per-range reads.
            for (b, class) in classes.iter().enumerate() {
                if matches!(class, BlockClass::Dup { .. }) {
                    continue; // per-block mode can skip duplicate blocks
                }
                let r = batch.block_range(b);
                let k = FindMatchBlockKernel {
                    data: res.d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    matches_len: d_len.ptr(),
                    matches_off: d_off.ptr(),
                    cfg: self.lzss,
                };
                let lanes = (r.end - r.start) as u64;
                let blocks = lanes.div_ceil(BLOCK_1D as u64) as u32;
                self.cuda.try_launch(&k, blocks.max(1), BLOCK_1D, &stream)?;
            }
            self.cuda.memcpy_d2h_pageable(&mut lens, &d_len, 0, &stream);
            self.cuda.memcpy_d2h_pageable(&mut offs, &d_off, 0, &stream);
        }
        self.cuda.stream_synchronize(&stream);
        Ok((lens, offs))
    }
}

impl DedupBackend for CudaBackend {
    type Gpu = CudaResident;

    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx.system.as_ref().expect("CUDA backend needs a GpuSystem");
        let cuda = Cuda::new(Arc::clone(system));
        let device = replica % ctx.n_gpus;
        cuda.set_device(device); // per-thread, as §IV-A requires
        CudaBackend {
            cuda,
            device,
            batched: ctx.batched,
            lzss: ctx.lzss,
            rec: ctx.rec.clone(),
            pool: ctx.digests.clone(),
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<CudaResident> {
        match self.hash_on_device(&batch) {
            Ok((digests, res)) => HashedBatch {
                batch,
                digests,
                gpu: Some(res),
            },
            Err(fail) => {
                self.rec.fault(HASH_STAGE, fail.kind(), fail.detail());
                self.rec.fault(
                    HASH_STAGE,
                    FaultKind::CpuFallback,
                    format!("batch {}: hashing on the host", batch.index),
                );
                let digests = cpu_digests(&self.pool, &batch);
                HashedBatch {
                    batch,
                    digests,
                    gpu: None,
                }
            }
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch<CudaResident>) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let entries = match &gpu {
            Some(res) => match self.compress_on_device(&batch, &classes, res) {
                Ok((lens, offs)) => {
                    entries_from_matches(&batch, &classes, &lens, &offs, &self.lzss)
                }
                Err(fail) => {
                    self.rec.fault(COMPRESS_STAGE, fail.kind(), fail.detail());
                    self.rec.fault(
                        COMPRESS_STAGE,
                        FaultKind::CpuFallback,
                        format!("batch {}: compressing on the host", batch.index),
                    );
                    cpu_entries(&batch, &classes, &self.lzss)
                }
            },
            // Stage 2 already fell back: the batch never reached a device.
            None => cpu_entries(&batch, &classes, &self.lzss),
        };
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}

/// Device-resident batch data produced by [`OffloadBackend`]'s stage 2.
/// Owning the concrete `O::Buffer` types (instead of the old type-erased
/// `Box<dyn Any>`) means stage 4 cannot receive buffers from a different
/// offload implementation — the downcast-and-panic path is gone.
pub struct OffloadResident<O: Offload> {
    device: usize,
    d_data: O::Buffer<u8>,
    d_starts: O::Buffer<u32>,
}

/// Backend written once against the unified [`Offload`] trait and
/// instantiated per front end (`OffloadBackend<CudaOffload>` /
/// `OffloadBackend<OclOffload>`), or selected by value through
/// `gpusim::OffloadApi` in a harness.
///
/// Always uses the batched kernels: the deliberately-naive per-block
/// integration (§IV-B's first attempt) needs offset reads the common
/// surface does not expose, so that ladder rung stays raw-façade-only
/// ([`CudaBackend`] / [`OclBackend`] with `batched = false`).
///
/// Recovery ladder on device faults: transient kernel faults retry per
/// the [`FaultPolicy`]; a device OOM retries stage 2 with recursively
/// halved sub-batches (per-block kernels are split-safe); anything that
/// still fails degrades to the host implementation for that batch.
pub struct OffloadBackend<O: Offload> {
    system: Arc<GpuSystem>,
    device: usize,
    /// One lane per device, attached lazily: stage 4 must target
    /// whatever device stage 2 uploaded to.
    lanes: Vec<Option<Lane<O>>>,
    /// Shared digest pool (see [`BackendCtx::digests`]).
    pool: BufPool<Digest>,
    /// Reused `usize → u32` starts-conversion scratch.
    starts_scratch: Vec<u32>,
    lzss: LzssConfig,
    rec: Recorder,
    policy: FaultPolicy,
}

/// Per-device state an [`OffloadBackend`] replica keeps across batches:
/// the offloader plus every staging and scratch buffer the stages
/// recycle. Host rings hold two slots — the paper's "2× memory spaces"
/// idiom — so a buffer a later pipeline step still reads from is not the
/// one the next batch stages into.
struct Lane<O: Offload> {
    off: O,
    /// H2D staging for batch bytes and block starts.
    stage_data: HostRing<O, u8>,
    stage_starts: HostRing<O, u32>,
    /// D2H staging for digests and per-position match arrays.
    out_digests: HostRing<O, u8>,
    out_lens: HostRing<O, u32>,
    out_offs: HostRing<O, u32>,
    /// Recycled device scratch for stage outputs. Unlike `d_data` /
    /// `d_starts` (which travel downstream inside [`OffloadResident`]
    /// and are churned through the device-side allocation cache), these
    /// never leave the lane, so they are kept and grown in place.
    d_out: Option<O::Buffer<u8>>,
    d_len: Option<O::Buffer<u32>>,
    d_off: Option<O::Buffer<u32>>,
}

impl<O: Offload> Lane<O> {
    fn new(system: &Arc<GpuSystem>, device: usize) -> Self {
        Lane {
            off: O::attach(system, device),
            stage_data: HostRing::new(2),
            stage_starts: HostRing::new(2),
            out_digests: HostRing::new(2),
            out_lens: HostRing::new(2),
            out_offs: HostRing::new(2),
            d_out: None,
            d_len: None,
            d_off: None,
        }
    }
}

/// The lazily-attached lane for `device`. A free function over the split
/// fields (not a method) so callers keep disjoint borrows of the other
/// backend fields while the lane is held.
fn lane_mut<'a, O: Offload>(
    lanes: &'a mut [Option<Lane<O>>],
    system: &Arc<GpuSystem>,
    device: usize,
) -> &'a mut Lane<O> {
    lanes[device].get_or_insert_with(|| Lane::new(system, device))
}

/// Grow-only device scratch: reallocate `slot` only when it cannot hold
/// `len` elements, freeing the old buffer first (its storage returns to
/// the device allocation cache). Sizes round up to powers of two so a
/// lane's scratch stabilizes after warmup.
fn ensure_dev<O: Offload, T: Default + Clone + Send + 'static>(
    off: &mut O,
    slot: &mut Option<O::Buffer<T>>,
    len: usize,
) -> Result<(), OutOfMemory> {
    let have = slot.as_ref().map_or(0, |b| O::buffer_len(b));
    if have < len.max(1) {
        *slot = None;
        *slot = Some(off.try_alloc(len.max(1).next_power_of_two())?);
    }
    Ok(())
}

impl<O: Offload> OffloadBackend<O> {
    /// One full-batch hashing attempt that keeps the batch device-resident
    /// for stage 4. Host staging comes from the lane's rings and the
    /// digest array from the shared pool; only `d_data` / `d_starts` are
    /// per-batch device allocations (they travel downstream in the stream
    /// item), and those are device-cache hits after warmup.
    fn hash_full(
        &mut self,
        batch: &Batch,
    ) -> Result<(PooledBuf<Digest>, OffloadResident<O>), GpuFail> {
        let device = self.device;
        let n = batch.block_count();
        let data_len = batch.data.len();
        self.starts_scratch.clear();
        self.starts_scratch
            .extend(batch.starts.iter().map(|&s| s as u32));
        let lane = lane_mut(&mut self.lanes, &self.system, device);
        let d_data: O::Buffer<u8> = lane.off.try_alloc(data_len)?;
        let d_starts: O::Buffer<u32> = lane.off.try_alloc(n.max(1))?;
        ensure_dev(&mut lane.off, &mut lane.d_out, n * 20)?;
        lane.stage_data.next(&mut lane.off, data_len)[..data_len].clone_from_slice(&batch.data);
        lane.off.h2d_n(&d_data, lane.stage_data.current(), data_len);
        lane.stage_starts.next(&mut lane.off, n)[..n].clone_from_slice(&self.starts_scratch);
        lane.off.h2d_n(&d_starts, lane.stage_starts.current(), n);
        lane.off.try_launch(
            Sha1Kernel {
                data: O::buffer_ptr(&d_data),
                starts: O::buffer_ptr(&d_starts),
                data_len,
                n_blocks: n,
                out: O::buffer_ptr(lane.d_out.as_ref().expect("ensured above")),
            },
            n as u64,
            64,
        )?;
        let h_out = lane.out_digests.next(&mut lane.off, n * 20);
        lane.off
            .d2h_n(lane.d_out.as_ref().expect("ensured above"), h_out, n * 20);
        lane.off.sync();
        let mut digests = self.pool.acquire(n);
        for (slot, c) in digests
            .iter_mut()
            .zip(lane.out_digests.current()[..n * 20].chunks_exact(20))
        {
            *slot = Digest(c.try_into().expect("20 bytes"));
        }
        Ok((
            digests,
            OffloadResident {
                device,
                d_data,
                d_starts,
            },
        ))
    }

    /// Hash blocks `lo..hi` as a standalone sub-batch (own upload, no
    /// residency), writing the digests into `out`: the smaller-allocation
    /// retry path after an OOM. Writing into the caller's slice lets the
    /// whole halving recursion share one pooled digest buffer.
    fn hash_range(
        &mut self,
        batch: &Batch,
        lo: usize,
        hi: usize,
        out: &mut [Digest],
    ) -> Result<(), GpuFail> {
        let base = batch.block_range(lo).start;
        let end = batch.block_range(hi - 1).end;
        let data = &batch.data[base..end];
        let n = hi - lo;
        self.starts_scratch.clear();
        self.starts_scratch
            .extend(batch.starts[lo..hi].iter().map(|&s| (s - base) as u32));
        let lane = lane_mut(&mut self.lanes, &self.system, self.device);
        let d_data: O::Buffer<u8> = lane.off.try_alloc(data.len())?;
        let d_starts: O::Buffer<u32> = lane.off.try_alloc(n)?;
        ensure_dev(&mut lane.off, &mut lane.d_out, n * 20)?;
        lane.stage_data.next(&mut lane.off, data.len())[..data.len()].clone_from_slice(data);
        lane.off
            .h2d_n(&d_data, lane.stage_data.current(), data.len());
        lane.stage_starts.next(&mut lane.off, n)[..n].clone_from_slice(&self.starts_scratch);
        lane.off.h2d_n(&d_starts, lane.stage_starts.current(), n);
        lane.off.try_launch(
            Sha1Kernel {
                data: O::buffer_ptr(&d_data),
                starts: O::buffer_ptr(&d_starts),
                data_len: data.len(),
                n_blocks: n,
                out: O::buffer_ptr(lane.d_out.as_ref().expect("ensured above")),
            },
            n as u64,
            64,
        )?;
        let h_out = lane.out_digests.next(&mut lane.off, n * 20);
        lane.off
            .d2h_n(lane.d_out.as_ref().expect("ensured above"), h_out, n * 20);
        lane.off.sync();
        for (slot, c) in out
            .iter_mut()
            .zip(lane.out_digests.current()[..n * 20].chunks_exact(20))
        {
            *slot = Digest(c.try_into().expect("20 bytes"));
        }
        Ok(())
    }

    /// Recursively halve `lo..hi` until the sub-batches fit on the
    /// device, splitting `out` alongside the block range. `false` means
    /// even the split path failed (single-block OOM or a kernel fault) —
    /// the caller falls back to the host.
    fn hash_split(&mut self, batch: &Batch, lo: usize, hi: usize, out: &mut [Digest]) -> bool {
        match self.hash_range(batch, lo, hi, out) {
            Ok(()) => true,
            Err(fail) => {
                self.rec.fault(HASH_STAGE, fail.kind(), fail.detail());
                if matches!(fail, GpuFail::Oom(_)) && hi - lo > 1 {
                    self.rec.fault(
                        HASH_STAGE,
                        FaultKind::Retry,
                        format!("batch {}: halving blocks {lo}..{hi}", batch.index),
                    );
                    let mid = lo + (hi - lo) / 2;
                    let (left, right) = out.split_at_mut(mid - lo);
                    self.hash_split(batch, lo, mid, left) && self.hash_split(batch, mid, hi, right)
                } else {
                    false
                }
            }
        }
    }

    /// Stage-4 match kernel over a device-resident batch. On `Ok(())`
    /// the per-position match arrays sit in the lane's `out_lens` /
    /// `out_offs` staging rings ([`HostRing::current`]) instead of
    /// freshly allocated vectors; the device scratch is recycled via
    /// [`ensure_dev`]. The batched kernel writes every position below
    /// `data_len`, so recycled (non-zeroed) scratch cannot leak stale
    /// matches.
    fn compress_on_device(
        &mut self,
        batch: &Batch,
        res: &OffloadResident<O>,
    ) -> Result<(), GpuFail> {
        let len = batch.data.len();
        let lzss = self.lzss;
        // The data lives on whatever device stage 2 used.
        let lane = lane_mut(&mut self.lanes, &self.system, res.device);
        ensure_dev(&mut lane.off, &mut lane.d_len, len)?;
        ensure_dev(&mut lane.off, &mut lane.d_off, len)?;
        lane.off.try_launch(
            FindMatchKernel {
                data: O::buffer_ptr(&res.d_data),
                data_len: len,
                starts: O::buffer_ptr(&res.d_starts),
                n_blocks: batch.block_count(),
                matches_len: O::buffer_ptr(lane.d_len.as_ref().expect("ensured above")),
                matches_off: O::buffer_ptr(lane.d_off.as_ref().expect("ensured above")),
                cfg: lzss,
            },
            len as u64,
            BLOCK_1D,
        )?;
        let h_len = lane.out_lens.next(&mut lane.off, len);
        lane.off
            .d2h_n(lane.d_len.as_ref().expect("ensured above"), h_len, len);
        let h_off = lane.out_offs.next(&mut lane.off, len);
        lane.off
            .d2h_n(lane.d_off.as_ref().expect("ensured above"), h_off, len);
        lane.off.sync();
        Ok(())
    }
}

impl<O: Offload> DedupBackend for OffloadBackend<O> {
    type Gpu = OffloadResident<O>;

    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx
            .system
            .as_ref()
            .expect("offload backend needs a GpuSystem");
        OffloadBackend {
            system: Arc::clone(system),
            device: replica % ctx.n_gpus,
            lanes: (0..ctx.n_gpus).map(|_| None).collect(),
            pool: ctx.digests.clone(),
            starts_scratch: Vec::new(),
            lzss: ctx.lzss,
            rec: ctx.rec.clone(),
            policy: ctx.policy,
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<OffloadResident<O>> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.hash_full(&batch) {
                Ok((digests, res)) => {
                    return HashedBatch {
                        batch,
                        digests,
                        gpu: Some(res),
                    }
                }
                Err(fail) => {
                    self.rec.fault(HASH_STAGE, fail.kind(), fail.detail());
                    match fail {
                        GpuFail::Oom(_) => {
                            // Smaller allocations may still fit: retry the
                            // batch as recursively halved sub-batches
                            // (residency is lost, stage 4 goes host-side).
                            self.rec.fault(
                                HASH_STAGE,
                                FaultKind::Retry,
                                format!("batch {}: retrying with halved sub-batches", batch.index),
                            );
                            let mut digests = self.pool.acquire(batch.block_count());
                            if self.hash_split(&batch, 0, batch.block_count(), &mut digests) {
                                return HashedBatch {
                                    batch,
                                    digests,
                                    gpu: None,
                                };
                            }
                            break;
                        }
                        GpuFail::Kernel(_) => {
                            if attempts <= self.policy.max_retries {
                                self.rec.fault(
                                    HASH_STAGE,
                                    FaultKind::Retry,
                                    format!("batch {}: attempt {}", batch.index, attempts + 1),
                                );
                                if !self.policy.backoff.is_zero() {
                                    std::thread::sleep(self.policy.backoff);
                                }
                                continue;
                            }
                            break;
                        }
                    }
                }
            }
        }
        self.rec.fault(
            HASH_STAGE,
            FaultKind::CpuFallback,
            format!("batch {}: hashing on the host", batch.index),
        );
        let digests = cpu_digests(&self.pool, &batch);
        HashedBatch {
            batch,
            digests,
            gpu: None,
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch<OffloadResident<O>>) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let entries = match &gpu {
            Some(res) => {
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    match self.compress_on_device(&batch, res) {
                        Ok(()) => {
                            let lane = self.lanes[res.device]
                                .as_ref()
                                .expect("lane exists after compress_on_device");
                            let len = batch.data.len();
                            break entries_from_matches(
                                &batch,
                                &classes,
                                &lane.out_lens.current()[..len],
                                &lane.out_offs.current()[..len],
                                &self.lzss,
                            );
                        }
                        Err(fail) => {
                            self.rec.fault(COMPRESS_STAGE, fail.kind(), fail.detail());
                            if attempts <= self.policy.max_retries {
                                self.rec.fault(
                                    COMPRESS_STAGE,
                                    FaultKind::Retry,
                                    format!("batch {}: attempt {}", batch.index, attempts + 1),
                                );
                                if !self.policy.backoff.is_zero() {
                                    std::thread::sleep(self.policy.backoff);
                                }
                                continue;
                            }
                            self.rec.fault(
                                COMPRESS_STAGE,
                                FaultKind::CpuFallback,
                                format!("batch {}: compressing on the host", batch.index),
                            );
                            break cpu_entries(&batch, &classes, &self.lzss);
                        }
                    }
                }
            }
            // Stage 2 already fell back: the batch never reached a device.
            None => cpu_entries(&batch, &classes, &self.lzss),
        };
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}

/// Device-resident batch data produced by [`OclBackend`]'s stage 2.
pub struct OclResident {
    device: usize,
    d_data: ClBuffer<u8>,
    d_starts: ClBuffer<u32>,
}

/// OpenCL backend. Queues and kernel objects are per replica (they are not
/// thread-safe); events order the enqueues. Like [`CudaBackend`], any
/// device fault degrades the batch straight to the host implementation.
pub struct OclBackend {
    ctx: Context,
    queues: Vec<CommandQueue>, // one per device, created lazily
    device: usize,
    batched: bool,
    lzss: LzssConfig,
    rec: Recorder,
    pool: BufPool<Digest>,
}

impl OclBackend {
    fn queue(&self, device: usize) -> &CommandQueue {
        &self.queues[device]
    }

    fn hash_on_device(
        &mut self,
        batch: &Batch,
    ) -> Result<(PooledBuf<Digest>, OclResident), GpuFail> {
        let dev = self.ctx.devices()[self.device];
        let n = batch.block_count();
        let d_data: ClBuffer<u8> = self.ctx.create_buffer(dev, batch.data.len())?;
        let d_starts: ClBuffer<u32> = self.ctx.create_buffer(dev, n.max(1))?;
        let d_out: ClBuffer<u8> = self.ctx.create_buffer(dev, n * 20)?;
        let q = self.queue(self.device);
        let w1 = q.enqueue_write_buffer(&d_data, false, 0, &batch.data, &[]);
        let w2 = q.enqueue_write_buffer(&d_starts, false, 0, &starts_u32(batch), &[]);
        let mut raw = vec![0u8; n * 20];
        if self.batched {
            let kernel = ClKernel::create(Sha1Kernel {
                data: d_data.ptr(),
                starts: d_starts.ptr(),
                data_len: batch.data.len(),
                n_blocks: n,
                out: d_out.ptr(),
            });
            let k_ev = q.try_enqueue_nd_range(
                &kernel,
                (n as u64).next_multiple_of(64).max(64),
                64,
                &[w1, w2],
            )?;
            let r_ev = q.enqueue_read_buffer(&d_out, false, 0, &mut raw, &[k_ev]);
            self.ctx.wait_for_events(&[r_ev]);
        } else {
            // Naive integration: one launch per block. The read-back is
            // coalesced into a single blocking read after the launch loop
            // (the in-order queue means waiting on the last kernel event
            // covers every earlier one) and sliced on the host.
            let mut last = None;
            for b in 0..n {
                let r = batch.block_range(b);
                let kernel = ClKernel::create(Sha1BlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    out: d_out.ptr(),
                    slot: b,
                });
                last = Some(q.try_enqueue_nd_range(&kernel, 32, 32, &[w1, w2])?);
            }
            if let Some(k_ev) = last {
                q.enqueue_read_buffer(&d_out, true, 0, &mut raw, &[k_ev]);
            }
        }
        let mut digests = self.pool.acquire(n);
        for (slot, c) in digests.iter_mut().zip(raw.chunks_exact(20)) {
            *slot = Digest(c.try_into().expect("20 bytes"));
        }
        Ok((
            digests,
            OclResident {
                device: self.device,
                d_data,
                d_starts,
            },
        ))
    }

    fn compress_on_device(
        &mut self,
        batch: &Batch,
        classes: &[BlockClass],
        res: &OclResident,
    ) -> Result<(Vec<u32>, Vec<u32>), GpuFail> {
        let dev = self.ctx.devices()[res.device];
        let len = batch.data.len();
        let d_len: ClBuffer<u32> = self.ctx.create_buffer(dev, len)?;
        let d_off: ClBuffer<u32> = self.ctx.create_buffer(dev, len)?;
        let q = self.queue(res.device);
        let mut lens = vec![0u32; len];
        let mut offs = vec![0u32; len];
        if self.batched {
            let kernel = ClKernel::create(FindMatchKernel {
                data: res.d_data.ptr(),
                data_len: len,
                starts: res.d_starts.ptr(),
                n_blocks: batch.block_count(),
                matches_len: d_len.ptr(),
                matches_off: d_off.ptr(),
                cfg: self.lzss,
            });
            let global = (len as u64)
                .next_multiple_of(BLOCK_1D as u64)
                .max(BLOCK_1D as u64);
            let k_ev = q.try_enqueue_nd_range(&kernel, global, BLOCK_1D, &[])?;
            let r1 = q.enqueue_read_buffer(&d_len, false, 0, &mut lens, &[k_ev]);
            let r2 = q.enqueue_read_buffer(&d_off, false, 0, &mut offs, &[k_ev]);
            self.ctx.wait_for_events(&[r1, r2]);
        } else {
            // Naive integration: launch per block, one coalesced read pair
            // after the loop. Skipped Dup ranges are zero on both sides
            // (buffers are created zeroed), so the bulk reads are
            // bit-identical to the old per-range ones.
            let mut last = None;
            for (b, class) in classes.iter().enumerate() {
                if matches!(class, BlockClass::Dup { .. }) {
                    continue;
                }
                let r = batch.block_range(b);
                let kernel = ClKernel::create(FindMatchBlockKernel {
                    data: res.d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    matches_len: d_len.ptr(),
                    matches_off: d_off.ptr(),
                    cfg: self.lzss,
                });
                let lanes = ((r.end - r.start) as u64)
                    .next_multiple_of(BLOCK_1D as u64)
                    .max(BLOCK_1D as u64);
                last = Some(q.try_enqueue_nd_range(&kernel, lanes, BLOCK_1D, &[])?);
            }
            if let Some(k_ev) = last {
                let r1 = q.enqueue_read_buffer(&d_len, false, 0, &mut lens, &[k_ev]);
                let r2 = q.enqueue_read_buffer(&d_off, false, 0, &mut offs, &[k_ev]);
                self.ctx.wait_for_events(&[r1, r2]);
            }
        }
        Ok((lens, offs))
    }
}

impl DedupBackend for OclBackend {
    type Gpu = OclResident;

    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx
            .system
            .as_ref()
            .expect("OpenCL backend needs a GpuSystem");
        let platform = Platform::new(Arc::clone(system));
        let ids = platform.device_ids();
        let cl_ctx = Context::create(&platform, &ids[..ctx.n_gpus]);
        let queues = cl_ctx
            .devices()
            .iter()
            .map(|&d| cl_ctx.create_queue(d))
            .collect();
        OclBackend {
            ctx: cl_ctx,
            queues,
            device: replica % ctx.n_gpus,
            batched: ctx.batched,
            lzss: ctx.lzss,
            rec: ctx.rec.clone(),
            pool: ctx.digests.clone(),
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<OclResident> {
        match self.hash_on_device(&batch) {
            Ok((digests, res)) => HashedBatch {
                batch,
                digests,
                gpu: Some(res),
            },
            Err(fail) => {
                self.rec.fault(HASH_STAGE, fail.kind(), fail.detail());
                self.rec.fault(
                    HASH_STAGE,
                    FaultKind::CpuFallback,
                    format!("batch {}: hashing on the host", batch.index),
                );
                let digests = cpu_digests(&self.pool, &batch);
                HashedBatch {
                    batch,
                    digests,
                    gpu: None,
                }
            }
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch<OclResident>) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let entries = match &gpu {
            Some(res) => match self.compress_on_device(&batch, &classes, res) {
                Ok((lens, offs)) => {
                    entries_from_matches(&batch, &classes, &lens, &offs, &self.lzss)
                }
                Err(fail) => {
                    self.rec.fault(COMPRESS_STAGE, fail.kind(), fail.detail());
                    self.rec.fault(
                        COMPRESS_STAGE,
                        FaultKind::CpuFallback,
                        format!("batch {}: compressing on the host", batch.index),
                    );
                    cpu_entries(&batch, &classes, &self.lzss)
                }
            },
            // Stage 2 already fell back: the batch never reached a device.
            None => cpu_entries(&batch, &classes, &self.lzss),
        };
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}
