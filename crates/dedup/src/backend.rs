//! Stage backends: CPU, CUDA and OpenCL implementations of the hashing
//! (stage 2) and compression (stage 4) work.
//!
//! GPU backends keep the batch resident on the device between stages by
//! attaching the device buffers to the stream item ("this stage reuses
//! data already on GPU to prevent unnecessary data transfers", §IV-B) —
//! stage 4 targets whatever device stage 2 uploaded to. Buffer ownership
//! is encoded in the stream item *type* ([`DedupBackend::Gpu`]): a CUDA
//! stage 4 can only ever receive CUDA buffers, so the old "wrong buffer
//! flavour" panics are unrepresentable.
//!
//! Every GPU path fails soft. For the trait-generic [`OffloadBackend`],
//! the recovery ladder (retry per [`FaultPolicy`], OOM halving, CPU
//! fallback) is *not implemented here*: the stages are declared as
//! [`Workload`] impls ([`HashWork`], [`CompressWork`]) and the generic
//! [`workload::WorkloadDriver`] owns every rung. The raw [`CudaBackend`]
//! and [`OclBackend`] keep their single-shot CPU fallback — faithful to
//! the paper's hand-written integrations, which had no retry machinery.
//! Either way the fallback is byte-identical, so a faulty run still
//! produces the exact sequential archive. `gpu: None` on a stream item
//! means "this batch is not device-resident; compress it on the host".
//!
//! `batched = false` reproduces the paper's first, slow integration: one
//! kernel launch per block instead of per batch.

use std::marker::PhantomData;
use std::sync::Arc;

use fastflow::{BufPool, FaultPolicy, PooledBuf};
use gpusim::cuda::{Cuda, CudaBuffer};
use gpusim::opencl::{ClBuffer, ClKernel, CommandQueue, Context, Platform};
use gpusim::{GpuSystem, Offload, OutOfMemory, PinnedSlab};
use telemetry::{FaultKind, Recorder};
use workload::{Workload, WorkloadDriver, WorkloadFault};

use crate::archive::BlockEntry;
use crate::batch::Batch;
use crate::dedupe::BlockClass;
use crate::kernels::{FindMatchBlockKernel, FindMatchKernel, Sha1BlockKernel, Sha1Kernel};
use crate::lzss::{encode_block_from_matches, LzssConfig, Match};
use crate::sha1::{sha1, Digest};

const BLOCK_1D: u32 = 256;

/// Stage labels used for fault events (matching the Fig. 3 pipeline's
/// telemetry stage names, so trace viewers pin them to the right row).
const HASH_STAGE: &str = "stage1 (hash)";
const COMPRESS_STAGE: &str = "stage3 (compress)";

/// Configuration shared by all backends of one pipeline run.
#[derive(Clone)]
pub struct BackendCtx {
    /// The simulated GPU system (absent for the CPU backend).
    pub system: Option<Arc<GpuSystem>>,
    /// Devices to spread batches over.
    pub n_gpus: usize,
    /// Use the batched kernels (the optimization) or per-block launches.
    pub batched: bool,
    /// Codec parameters.
    pub lzss: LzssConfig,
    /// Sink for fault / retry / fallback events (disabled ⇒ every record
    /// is a no-op branch).
    pub rec: Recorder,
    /// Retry budget applied before a failing GPU stage degrades to the
    /// CPU implementation for that batch.
    pub policy: FaultPolicy,
    /// Shared digest buffer pool: every stage-2 replica acquires its
    /// per-batch digest array here and the sink's drop returns it, so the
    /// steady state recycles a handful of arrays instead of allocating
    /// one per batch. Slabs are page-locked for their pooled lifetime
    /// ([`workload::pinned_pool`]), so digests DMA straight into them.
    pub digests: BufPool<Digest>,
    /// Shared pool for stage-4 per-position match arrays (lens/offs),
    /// likewise pinned so the match kernel's read-backs are zero-copy.
    pub matches: BufPool<u32>,
}

impl BackendCtx {
    /// CPU-only context.
    pub fn cpu(lzss: LzssConfig) -> Self {
        BackendCtx {
            system: None,
            n_gpus: 0,
            batched: true,
            lzss,
            rec: Recorder::default(),
            policy: FaultPolicy::default(),
            digests: workload::pinned_pool(),
            matches: workload::pinned_pool(),
        }
    }

    /// GPU context over `n_gpus` devices of `system`.
    pub fn gpu(system: Arc<GpuSystem>, n_gpus: usize, batched: bool, lzss: LzssConfig) -> Self {
        assert!(n_gpus >= 1 && n_gpus <= system.device_count());
        BackendCtx {
            system: Some(system),
            n_gpus,
            batched,
            lzss,
            rec: Recorder::default(),
            policy: FaultPolicy::default(),
            digests: workload::pinned_pool(),
            matches: workload::pinned_pool(),
        }
    }

    /// Attach a telemetry recorder for fault events and pool gauges.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        rec.register_pool("dedup.digests", self.digests.counters());
        rec.register_pool("dedup.matches", self.matches.counters());
        self.rec = rec;
        self
    }

    /// Override the GPU-failure retry budget.
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Item emitted by stage 2. `G` is the backend's device-resident buffer
/// type ([`DedupBackend::Gpu`]); `gpu: None` means the batch is host-only
/// (CPU backend, or a GPU backend that fell back for this batch).
pub struct HashedBatch<G = ()> {
    /// The batch (host copy).
    pub batch: Batch,
    /// SHA-1 per block, in a pooled buffer that returns to
    /// [`BackendCtx::digests`] when the consumer drops it.
    pub digests: PooledBuf<Digest>,
    /// Device-resident data, if this batch made it onto a device.
    pub gpu: Option<G>,
}

/// Item emitted by stage 3.
pub struct ClassifiedBatch<G = ()> {
    /// The batch (host copy).
    pub batch: Batch,
    /// Unique/dup class per block.
    pub classes: Vec<BlockClass>,
    /// Device-resident data, forwarded from stage 2.
    pub gpu: Option<G>,
}

/// Item emitted by stage 4.
pub struct CompressedBatch {
    /// Stream position (reorder key).
    pub index: usize,
    /// Output records for this batch, in block order.
    pub entries: Vec<BlockEntry>,
}

/// A stage-2/stage-4 implementation. One instance per stage replica,
/// constructed on the replica's own thread (GPU state is thread-bound).
pub trait DedupBackend: Send + 'static {
    /// Device-resident data handed from stage 2 to stage 4. Each backend
    /// names its own buffer flavour here, so a mismatched handoff is a
    /// type error instead of a runtime panic. `()` for host-only backends.
    type Gpu: Send + 'static;

    /// Build a replica backend. `replica` picks the device
    /// (`replica % n_gpus`).
    fn new(ctx: &BackendCtx, replica: usize) -> Self;

    /// Stage 2: hash every block of the batch.
    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<Self::Gpu>;

    /// Stage 4: compress every unique block.
    fn compress_stage(&mut self, item: ClassifiedBatch<Self::Gpu>) -> CompressedBatch;
}

/// Host implementation of stage 2 (also the GPU backends' fallback path).
fn cpu_digests(pool: &BufPool<Digest>, batch: &Batch) -> PooledBuf<Digest> {
    let mut out = pool.acquire(batch.block_count());
    for (b, slot) in out.iter_mut().enumerate() {
        *slot = sha1(batch.block(b));
    }
    out
}

/// Host implementation of stage 4 (also the GPU backends' fallback path).
/// Byte-identical to the GPU match-kernel encoding, so a fallen-back batch
/// still reproduces the sequential archive exactly.
fn cpu_entries(batch: &Batch, classes: &[BlockClass], lzss: &LzssConfig) -> Vec<BlockEntry> {
    classes
        .iter()
        .enumerate()
        .map(|(b, class)| match class {
            BlockClass::Unique { .. } => BlockEntry::compress_unique(batch.block(b), lzss),
            BlockClass::Dup { of } => BlockEntry::Dup(*of),
        })
        .collect()
}

/// Pure-CPU backend (the paper's SPar CPU-only version).
pub struct CpuBackend {
    lzss: LzssConfig,
    pool: BufPool<Digest>,
}

impl DedupBackend for CpuBackend {
    type Gpu = ();

    fn new(ctx: &BackendCtx, _replica: usize) -> Self {
        CpuBackend {
            lzss: ctx.lzss,
            pool: ctx.digests.clone(),
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch {
        let digests = cpu_digests(&self.pool, &batch);
        HashedBatch {
            batch,
            digests,
            gpu: None,
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch) -> CompressedBatch {
        let entries = cpu_entries(&item.batch, &item.classes, &self.lzss);
        CompressedBatch {
            index: item.batch.index,
            entries,
        }
    }
}

fn starts_u32(batch: &Batch) -> Vec<u32> {
    batch.starts.iter().map(|&s| s as u32).collect()
}

/// Walk the classes and encode unique blocks from per-position matches.
fn entries_from_matches(
    batch: &Batch,
    classes: &[BlockClass],
    lens: &[u32],
    offs: &[u32],
    lzss: &LzssConfig,
) -> Vec<BlockEntry> {
    classes
        .iter()
        .enumerate()
        .map(|(b, class)| match class {
            BlockClass::Unique { .. } => {
                let r = batch.block_range(b);
                let block = &batch.data[r.clone()];
                let matches: Vec<Match> = (r.start..r.end)
                    .map(|i| Match {
                        dist: offs[i],
                        len: lens[i],
                    })
                    .collect();
                let encoded = encode_block_from_matches(block, &matches, lzss);
                BlockEntry::from_encoded(block, encoded)
            }
            BlockClass::Dup { of } => BlockEntry::Dup(*of),
        })
        .collect()
}

/// Device-resident batch data produced by [`CudaBackend`]'s stage 2.
pub struct CudaResident {
    device: usize,
    d_data: CudaBuffer<u8>,
    d_starts: CudaBuffer<u32>,
}

/// CUDA backend. Host buffers are *pageable* (Dedup `realloc`s its buffers,
/// §V-B), so all copies are synchronous — faithful to the paper's CUDA
/// behaviour. On any device fault the failing batch degrades straight to
/// the host implementation (the raw façade exposes no retry machinery —
/// the paper's hand-written integrations did not have any either).
pub struct CudaBackend {
    cuda: Cuda,
    device: usize,
    batched: bool,
    lzss: LzssConfig,
    rec: Recorder,
    pool: BufPool<Digest>,
}

impl CudaBackend {
    fn hash_on_device(
        &mut self,
        batch: &Batch,
    ) -> Result<(PooledBuf<Digest>, CudaResident), WorkloadFault> {
        self.cuda.set_device(self.device);
        let stream = self.cuda.stream_create();
        let n = batch.block_count();
        let d_data: CudaBuffer<u8> = self.cuda.malloc(batch.data.len())?;
        let d_starts: CudaBuffer<u32> = self.cuda.malloc(n.max(1))?;
        let d_out: CudaBuffer<u8> = self.cuda.malloc(n * 20)?;
        self.cuda
            .memcpy_h2d_pageable(&d_data, 0, &batch.data, &stream);
        self.cuda
            .memcpy_h2d_pageable(&d_starts, 0, &starts_u32(batch), &stream);
        let mut raw: Vec<u8>;
        if self.batched {
            let k = Sha1Kernel {
                data: d_data.ptr(),
                starts: d_starts.ptr(),
                data_len: batch.data.len(),
                n_blocks: n,
                out: d_out.ptr(),
            };
            let blocks = (n as u64).div_ceil(64) as u32;
            self.cuda.try_launch(&k, blocks.max(1), 64u32, &stream)?;
            // One read for the whole digest array.
            let mut all = vec![0u8; n * 20];
            self.cuda.memcpy_d2h_pageable(&mut all, &d_out, 0, &stream);
            self.cuda.stream_synchronize(&stream);
            raw = all;
        } else {
            // The naive integration: one launch per block — "the GPU
            // kernel function has been invoked too many times without
            // using efficiently the GPU resources" (§IV-B). The read-back
            // is still coalesced into one bulk copy after the launch loop
            // and sliced on the host: n tiny D2H transfers cost n fixed
            // latencies for the same bytes.
            raw = vec![0u8; n * 20];
            for b in 0..n {
                let r = batch.block_range(b);
                let k = Sha1BlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    out: d_out.ptr(),
                    slot: b,
                };
                self.cuda.try_launch(&k, 1u32, 32u32, &stream)?;
            }
            self.cuda.memcpy_d2h_pageable(&mut raw, &d_out, 0, &stream);
            self.cuda.stream_synchronize(&stream);
        }
        let mut digests = self.pool.acquire(n);
        for (slot, c) in digests.iter_mut().zip(raw.chunks_exact(20)) {
            *slot = Digest(c.try_into().expect("20 bytes"));
        }
        Ok((
            digests,
            CudaResident {
                device: self.device,
                d_data,
                d_starts,
            },
        ))
    }

    fn compress_on_device(
        &mut self,
        batch: &Batch,
        classes: &[BlockClass],
        res: &CudaResident,
    ) -> Result<(Vec<u32>, Vec<u32>), WorkloadFault> {
        // The data lives on whatever device stage 2 used.
        self.cuda.set_device(res.device);
        let stream = self.cuda.stream_create();
        let len = batch.data.len();
        let d_len: CudaBuffer<u32> = self.cuda.malloc(len)?;
        let d_off: CudaBuffer<u32> = self.cuda.malloc(len)?;
        let mut lens = vec![0u32; len];
        let mut offs = vec![0u32; len];
        if self.batched {
            let k = FindMatchKernel {
                data: res.d_data.ptr(),
                data_len: len,
                starts: res.d_starts.ptr(),
                n_blocks: batch.block_count(),
                matches_len: d_len.ptr(),
                matches_off: d_off.ptr(),
                cfg: self.lzss,
            };
            let blocks = (len as u64).div_ceil(BLOCK_1D as u64) as u32;
            self.cuda.try_launch(&k, blocks.max(1), BLOCK_1D, &stream)?;
            self.cuda.memcpy_d2h_pageable(&mut lens, &d_len, 0, &stream);
            self.cuda.memcpy_d2h_pageable(&mut offs, &d_off, 0, &stream);
        } else {
            // Naive integration: launch per block, but read back once.
            // The skipped Dup ranges stay zero on both sides (device
            // buffers are allocated zeroed), so the bulk copy is
            // bit-identical to the old per-range reads.
            for (b, class) in classes.iter().enumerate() {
                if matches!(class, BlockClass::Dup { .. }) {
                    continue; // per-block mode can skip duplicate blocks
                }
                let r = batch.block_range(b);
                let k = FindMatchBlockKernel {
                    data: res.d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    matches_len: d_len.ptr(),
                    matches_off: d_off.ptr(),
                    cfg: self.lzss,
                };
                let lanes = (r.end - r.start) as u64;
                let blocks = lanes.div_ceil(BLOCK_1D as u64) as u32;
                self.cuda.try_launch(&k, blocks.max(1), BLOCK_1D, &stream)?;
            }
            self.cuda.memcpy_d2h_pageable(&mut lens, &d_len, 0, &stream);
            self.cuda.memcpy_d2h_pageable(&mut offs, &d_off, 0, &stream);
        }
        self.cuda.stream_synchronize(&stream);
        Ok((lens, offs))
    }
}

impl DedupBackend for CudaBackend {
    type Gpu = CudaResident;

    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx.system.as_ref().expect("CUDA backend needs a GpuSystem");
        let cuda = Cuda::new(Arc::clone(system));
        let device = replica % ctx.n_gpus;
        cuda.set_device(device); // per-thread, as §IV-A requires
        CudaBackend {
            cuda,
            device,
            batched: ctx.batched,
            lzss: ctx.lzss,
            rec: ctx.rec.clone(),
            pool: ctx.digests.clone(),
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<CudaResident> {
        match self.hash_on_device(&batch) {
            Ok((digests, res)) => HashedBatch {
                batch,
                digests,
                gpu: Some(res),
            },
            Err(fail) => {
                self.rec.fault(HASH_STAGE, fail.kind(), fail.to_string());
                self.rec.fault(
                    HASH_STAGE,
                    FaultKind::CpuFallback,
                    format!("batch {}: hashing on the host", batch.index),
                );
                let digests = cpu_digests(&self.pool, &batch);
                HashedBatch {
                    batch,
                    digests,
                    gpu: None,
                }
            }
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch<CudaResident>) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let entries = match &gpu {
            Some(res) => match self.compress_on_device(&batch, &classes, res) {
                Ok((lens, offs)) => {
                    entries_from_matches(&batch, &classes, &lens, &offs, &self.lzss)
                }
                Err(fail) => {
                    self.rec
                        .fault(COMPRESS_STAGE, fail.kind(), fail.to_string());
                    self.rec.fault(
                        COMPRESS_STAGE,
                        FaultKind::CpuFallback,
                        format!("batch {}: compressing on the host", batch.index),
                    );
                    cpu_entries(&batch, &classes, &self.lzss)
                }
            },
            // Stage 2 already fell back: the batch never reached a device.
            None => cpu_entries(&batch, &classes, &self.lzss),
        };
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}

/// Device-resident batch data produced by [`OffloadBackend`]'s stage 2.
/// Owning the concrete `O::Buffer` types (instead of the old type-erased
/// `Box<dyn Any>`) means stage 4 cannot receive buffers from a different
/// offload implementation — the downcast-and-panic path is gone.
pub struct OffloadResident<O: Offload> {
    device: usize,
    d_data: O::Buffer<u8>,
    d_starts: O::Buffer<u32>,
}

/// Backend written once against the unified [`Offload`] trait and
/// instantiated per front end (`OffloadBackend<CudaOffload>` /
/// `OffloadBackend<OclOffload>`), or selected by value through
/// `gpusim::OffloadApi` in a harness.
///
/// Always uses the batched kernels: the deliberately-naive per-block
/// integration (§IV-B's first attempt) needs offset reads the common
/// surface does not expose, so that ladder rung stays raw-façade-only
/// ([`CudaBackend`] / [`OclBackend`] with `batched = false`).
///
/// No recovery ladder is written here: both GPU stages are declared as
/// [`Workload`] impls ([`HashWork`], [`CompressWork`]) and the generic
/// [`WorkloadDriver`] owns every rung — transient faults retry per the
/// [`FaultPolicy`], a stage-2 OOM re-splits the batch into recursively
/// halved sub-batches (losing residency), and anything that still fails
/// degrades to the byte-identical host implementation for that batch.
pub struct OffloadBackend<O: Offload> {
    hash: WorkloadDriver<HashWork<O>>,
    compress: WorkloadDriver<CompressWork<O>>,
    gpu: DedupGpu<O>,
}

/// Per-replica device state shared by both GPU stages of an
/// [`OffloadBackend`]: the replica's preferred device, the
/// lazily-attached per-device lanes (stage 4 must target whatever device
/// stage 2 uploaded to) and the reused `usize → u32` starts-conversion
/// scratch. This is the [`Workload::Gpu`] type of both [`HashWork`] and
/// [`CompressWork`].
pub struct DedupGpu<O: Offload> {
    system: Arc<GpuSystem>,
    device: usize,
    lanes: Vec<Option<Lane<O>>>,
    starts_scratch: Vec<u32>,
}

/// Per-device state an [`OffloadBackend`] replica keeps across batches:
/// the offloader plus the recycled device scratch. The host-side staging
/// rings the lanes used to carry are gone — the zero-copy handoff pins
/// the source/destination memory itself (the batch's vectors, the pooled
/// digest/match arrays) and transfers straight from/into it.
struct Lane<O: Offload> {
    off: O,
    /// Recycled device scratch for stage outputs. Unlike `d_data` /
    /// `d_starts` (which travel downstream inside [`OffloadResident`]
    /// and are churned through the device-side allocation cache), these
    /// never leave the lane, so they are kept and grown in place.
    d_out: Option<O::Buffer<u8>>,
    d_len: Option<O::Buffer<u32>>,
    d_off: Option<O::Buffer<u32>>,
}

impl<O: Offload> Lane<O> {
    fn new(system: &Arc<GpuSystem>, device: usize) -> Self {
        Lane {
            off: O::attach(system, device),
            d_out: None,
            d_len: None,
            d_off: None,
        }
    }
}

/// A pooled digest array viewed as its raw bytes, so the device's
/// 20-byte-per-block digest stream can DMA directly into it.
fn digest_bytes_mut(digests: &mut [Digest]) -> &mut [u8] {
    // SAFETY: `Digest` is `repr(transparent)` over `[u8; 20]` — same
    // layout, no padding, every bit pattern valid.
    unsafe { std::slice::from_raw_parts_mut(digests.as_mut_ptr().cast::<u8>(), digests.len() * 20) }
}

/// The lazily-attached lane for `device`. A free function over the split
/// fields (not a method) so callers keep disjoint borrows of the other
/// backend fields while the lane is held.
fn lane_mut<'a, O: Offload>(
    lanes: &'a mut [Option<Lane<O>>],
    system: &Arc<GpuSystem>,
    device: usize,
) -> &'a mut Lane<O> {
    lanes[device].get_or_insert_with(|| Lane::new(system, device))
}

/// Grow-only device scratch: reallocate `slot` only when it cannot hold
/// `len` elements, freeing the old buffer first (its storage returns to
/// the device allocation cache). Sizes round up to powers of two so a
/// lane's scratch stabilizes after warmup.
fn ensure_dev<O: Offload, T: Default + Clone + Send + 'static>(
    off: &mut O,
    slot: &mut Option<O::Buffer<T>>,
    len: usize,
) -> Result<(), OutOfMemory> {
    let have = slot.as_ref().map_or(0, |b| O::buffer_len(b));
    if have < len.max(1) {
        *slot = None;
        *slot = Some(off.try_alloc(len.max(1).next_power_of_two())?);
    }
    Ok(())
}

/// Stage 2 (hashing) declared as a [`Workload`]. The device path keeps
/// the batch resident for stage 4; the OOM rung re-hashes recursively
/// halved block ranges as standalone sub-batches (residency is lost, so
/// stage 4 goes host-side for that batch); the host rung is the
/// byte-identical [`sha1`]. The retry/halve/fallback ladder itself lives
/// in [`WorkloadDriver`], not here.
pub struct HashWork<O: Offload> {
    system: Arc<GpuSystem>,
    n_gpus: usize,
    /// Shared digest pool (see [`BackendCtx::digests`]).
    pool: BufPool<Digest>,
    policy: FaultPolicy,
    _off: PhantomData<fn() -> O>,
}

impl<O: Offload> Clone for HashWork<O> {
    fn clone(&self) -> Self {
        HashWork {
            system: Arc::clone(&self.system),
            n_gpus: self.n_gpus,
            pool: self.pool.clone(),
            policy: self.policy,
            _off: PhantomData,
        }
    }
}

impl<O: Offload> HashWork<O> {
    /// Build the stage-2 workload from a GPU pipeline context.
    pub fn new(ctx: &BackendCtx) -> Self {
        let system = ctx
            .system
            .as_ref()
            .expect("offload backend needs a GpuSystem");
        HashWork {
            system: Arc::clone(system),
            n_gpus: ctx.n_gpus,
            pool: ctx.digests.clone(),
            policy: ctx.policy,
            _off: PhantomData,
        }
    }

    /// One full-batch hashing attempt that keeps the batch device-resident
    /// for stage 4. Zero-copy on both directions: the batch bytes and the
    /// starts scratch are page-locked in place and uploaded as-is, and the
    /// digest stream DMAs straight into the pooled (already-pinned) digest
    /// array — no staging ring, no memcpy. Only `d_data` / `d_starts` are
    /// per-batch device allocations (they travel downstream in the stream
    /// item), and those are device-cache hits after warmup.
    fn hash_full(
        &self,
        gpu: &mut DedupGpu<O>,
        batch: &Batch,
        digests: &mut [Digest],
    ) -> Result<OffloadResident<O>, WorkloadFault> {
        let device = gpu.device;
        let n = batch.block_count();
        let data_len = batch.data.len();
        gpu.starts_scratch.clear();
        gpu.starts_scratch
            .extend(batch.starts.iter().map(|&s| s as u32));
        // Per-batch pins for the two host sources (the pooled digest
        // destination is pinned for its whole pooled lifetime already).
        let _pin_data = PinnedSlab::register(&batch.data[..]);
        let _pin_starts = PinnedSlab::register(&gpu.starts_scratch[..]);
        let lane = lane_mut(&mut gpu.lanes, &gpu.system, device);
        let d_data: O::Buffer<u8> = lane.off.try_alloc(data_len)?;
        let d_starts: O::Buffer<u32> = lane.off.try_alloc(n.max(1))?;
        ensure_dev(&mut lane.off, &mut lane.d_out, n * 20)?;
        lane.off.h2d_pinned(&d_data, &batch.data, data_len);
        lane.off.h2d_pinned(&d_starts, &gpu.starts_scratch, n);
        lane.off.try_launch(
            Sha1Kernel {
                data: O::buffer_ptr(&d_data),
                starts: O::buffer_ptr(&d_starts),
                data_len,
                n_blocks: n,
                out: O::buffer_ptr(lane.d_out.as_ref().expect("ensured above")),
            },
            n as u64,
            64,
        )?;
        lane.off.d2h_pinned(
            lane.d_out.as_ref().expect("ensured above"),
            digest_bytes_mut(digests),
            n * 20,
        );
        lane.off.sync();
        Ok(OffloadResident {
            device,
            d_data,
            d_starts,
        })
    }

    /// Hash blocks `lo..hi` as a standalone sub-batch (own upload, no
    /// residency), writing the digests into `out`: the smaller-allocation
    /// rung after an OOM. Writing into a shared slice lets the whole
    /// halving recursion fill one pooled digest buffer.
    fn hash_range(
        &self,
        gpu: &mut DedupGpu<O>,
        batch: &Batch,
        lo: usize,
        hi: usize,
        out: &mut [Digest],
    ) -> Result<(), WorkloadFault> {
        let base = batch.block_range(lo).start;
        let end = batch.block_range(hi - 1).end;
        let data = &batch.data[base..end];
        let n = hi - lo;
        gpu.starts_scratch.clear();
        gpu.starts_scratch
            .extend(batch.starts[lo..hi].iter().map(|&s| (s - base) as u32));
        // Pin the sub-range's source bytes in place; the digest slice is
        // a window into the pooled (pinned) array, so the read-back DMAs
        // straight into the caller's positions.
        let _pin_data = PinnedSlab::register(data);
        let _pin_starts = PinnedSlab::register(&gpu.starts_scratch[..]);
        let lane = lane_mut(&mut gpu.lanes, &gpu.system, gpu.device);
        let d_data: O::Buffer<u8> = lane.off.try_alloc(data.len())?;
        let d_starts: O::Buffer<u32> = lane.off.try_alloc(n)?;
        ensure_dev(&mut lane.off, &mut lane.d_out, n * 20)?;
        lane.off.h2d_pinned(&d_data, data, data.len());
        lane.off.h2d_pinned(&d_starts, &gpu.starts_scratch, n);
        lane.off.try_launch(
            Sha1Kernel {
                data: O::buffer_ptr(&d_data),
                starts: O::buffer_ptr(&d_starts),
                data_len: data.len(),
                n_blocks: n,
                out: O::buffer_ptr(lane.d_out.as_ref().expect("ensured above")),
            },
            n as u64,
            64,
        )?;
        lane.off.d2h_pinned(
            lane.d_out.as_ref().expect("ensured above"),
            digest_bytes_mut(out),
            n * 20,
        );
        lane.off.sync();
        Ok(())
    }
}

impl<O: Offload> Workload for HashWork<O> {
    type Item = Batch;
    /// A pooled digest array plus the device residency (`None` when the
    /// batch never made it — or stopped being — device-resident).
    type Batch = (PooledBuf<Digest>, Option<OffloadResident<O>>);
    type Gpu = DedupGpu<O>;

    fn stage_label(&self) -> &'static str {
        HASH_STAGE
    }

    fn policy(&self) -> FaultPolicy {
        self.policy
    }

    fn describe(&self, item: &Batch) -> String {
        format!("batch {}", item.index)
    }

    fn attach(&self, replica: usize) -> DedupGpu<O> {
        DedupGpu {
            system: Arc::clone(&self.system),
            device: replica % self.n_gpus,
            lanes: (0..self.n_gpus).map(|_| None).collect(),
            starts_scratch: Vec::new(),
        }
    }

    fn make_batch(&self, item: &Batch) -> Self::Batch {
        (self.pool.acquire(item.block_count()), None)
    }

    fn try_gpu_batch(
        &self,
        gpu: &mut DedupGpu<O>,
        item: &Batch,
        out: &mut Self::Batch,
    ) -> Result<(), WorkloadFault> {
        out.1 = Some(self.hash_full(gpu, item, &mut out.0)?);
        Ok(())
    }

    fn split_units(&self, item: &Batch) -> usize {
        item.block_count()
    }

    fn try_gpu_split(
        &self,
        gpu: &mut DedupGpu<O>,
        item: &Batch,
        lo: usize,
        hi: usize,
        out: &mut Self::Batch,
    ) -> Result<(), WorkloadFault> {
        // Residency is lost on the split path: stage 4 goes host-side.
        out.1 = None;
        self.hash_range(gpu, item, lo, hi, &mut out.0[lo..hi])
    }

    fn cpu_batch(&self, item: &Batch, out: &mut Self::Batch) {
        out.1 = None;
        for (b, slot) in out.0.iter_mut().enumerate() {
            *slot = sha1(item.block(b));
        }
    }

    fn register_telemetry(&self, rec: &Recorder) {
        rec.register_pool("dedup.digests", self.pool.counters());
    }
}

/// Stage 4 (compression) declared as a [`Workload`]. The device path runs
/// the match kernel over the still-resident batch; the host rung encodes
/// from byte-identical match semantics, so a fallen-back batch still
/// reproduces the sequential archive exactly. Not splittable: the match
/// kernel reads the whole resident buffer, so an OOM (device scratch) is
/// retried like a transient and then degraded.
pub struct CompressWork<O: Offload> {
    system: Arc<GpuSystem>,
    n_gpus: usize,
    lzss: LzssConfig,
    policy: FaultPolicy,
    /// Shared pinned pool for the per-position match arrays (see
    /// [`BackendCtx::matches`]).
    pool: BufPool<u32>,
    _off: PhantomData<fn() -> O>,
}

impl<O: Offload> Clone for CompressWork<O> {
    fn clone(&self) -> Self {
        CompressWork {
            system: Arc::clone(&self.system),
            n_gpus: self.n_gpus,
            lzss: self.lzss,
            policy: self.policy,
            pool: self.pool.clone(),
            _off: PhantomData,
        }
    }
}

impl<O: Offload> CompressWork<O> {
    /// Build the stage-4 workload from a GPU pipeline context.
    pub fn new(ctx: &BackendCtx) -> Self {
        let system = ctx
            .system
            .as_ref()
            .expect("offload backend needs a GpuSystem");
        CompressWork {
            system: Arc::clone(system),
            n_gpus: ctx.n_gpus,
            lzss: ctx.lzss,
            policy: ctx.policy,
            pool: ctx.matches.clone(),
            _off: PhantomData,
        }
    }

    /// Stage-4 match kernel over a device-resident batch. The
    /// per-position match arrays come from the shared pinned pool and
    /// the kernel's results DMA straight into them — no staging ring;
    /// the device scratch is recycled via [`ensure_dev`]. The batched
    /// kernel writes every position below `data_len`, so recycled
    /// (non-zeroed) buffers cannot leak stale matches.
    fn compress_on_device(
        &self,
        gpu: &mut DedupGpu<O>,
        batch: &Batch,
        res: &OffloadResident<O>,
    ) -> Result<(PooledBuf<u32>, PooledBuf<u32>), WorkloadFault> {
        let len = batch.data.len();
        let lzss = self.lzss;
        let mut lens = self.pool.acquire(len);
        let mut offs = self.pool.acquire(len);
        // The data lives on whatever device stage 2 used.
        let lane = lane_mut(&mut gpu.lanes, &gpu.system, res.device);
        ensure_dev(&mut lane.off, &mut lane.d_len, len)?;
        ensure_dev(&mut lane.off, &mut lane.d_off, len)?;
        lane.off.try_launch(
            FindMatchKernel {
                data: O::buffer_ptr(&res.d_data),
                data_len: len,
                starts: O::buffer_ptr(&res.d_starts),
                n_blocks: batch.block_count(),
                matches_len: O::buffer_ptr(lane.d_len.as_ref().expect("ensured above")),
                matches_off: O::buffer_ptr(lane.d_off.as_ref().expect("ensured above")),
                cfg: lzss,
            },
            len as u64,
            BLOCK_1D,
        )?;
        lane.off
            .d2h_pinned(lane.d_len.as_ref().expect("ensured above"), &mut lens, len);
        lane.off
            .d2h_pinned(lane.d_off.as_ref().expect("ensured above"), &mut offs, len);
        lane.off.sync();
        Ok((lens, offs))
    }
}

impl<O: Offload> Workload for CompressWork<O> {
    type Item = ClassifiedBatch<OffloadResident<O>>;
    type Batch = Vec<BlockEntry>;
    type Gpu = DedupGpu<O>;

    fn stage_label(&self) -> &'static str {
        COMPRESS_STAGE
    }

    fn policy(&self) -> FaultPolicy {
        self.policy
    }

    fn describe(&self, item: &Self::Item) -> String {
        format!("batch {}", item.batch.index)
    }

    fn attach(&self, replica: usize) -> DedupGpu<O> {
        DedupGpu {
            system: Arc::clone(&self.system),
            device: replica % self.n_gpus,
            lanes: (0..self.n_gpus).map(|_| None).collect(),
            starts_scratch: Vec::new(),
        }
    }

    fn make_batch(&self, _item: &Self::Item) -> Vec<BlockEntry> {
        Vec::new()
    }

    fn try_gpu_batch(
        &self,
        gpu: &mut DedupGpu<O>,
        item: &Self::Item,
        out: &mut Vec<BlockEntry>,
    ) -> Result<(), WorkloadFault> {
        let res = item
            .gpu
            .as_ref()
            .expect("driver runs only device-resident batches (see compress_stage)");
        let (lens, offs) = self.compress_on_device(gpu, &item.batch, res)?;
        *out = entries_from_matches(&item.batch, &item.classes, &lens, &offs, &self.lzss);
        Ok(())
    }

    fn cpu_batch(&self, item: &Self::Item, out: &mut Vec<BlockEntry>) {
        *out = cpu_entries(&item.batch, &item.classes, &self.lzss);
    }
}

impl<O: Offload> DedupBackend for OffloadBackend<O> {
    type Gpu = OffloadResident<O>;

    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let hash = WorkloadDriver::new(HashWork::new(ctx)).with_recorder(ctx.rec.clone());
        let compress = WorkloadDriver::new(CompressWork::new(ctx)).with_recorder(ctx.rec.clone());
        let gpu = hash.attach(replica);
        OffloadBackend {
            hash,
            compress,
            gpu,
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<OffloadResident<O>> {
        let (digests, gpu) = self.hash.process(&mut self.gpu, &batch);
        HashedBatch {
            batch,
            digests,
            gpu,
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch<OffloadResident<O>>) -> CompressedBatch {
        // `gpu: None` means "not device-resident by design" (stage 2 fell
        // back or re-split): straight to the host path, no fault events.
        let entries = if item.gpu.is_some() {
            self.compress.process(&mut self.gpu, &item)
        } else {
            self.compress.process_host(&item)
        };
        CompressedBatch {
            index: item.batch.index,
            entries,
        }
    }
}

/// Device-resident batch data produced by [`OclBackend`]'s stage 2.
pub struct OclResident {
    device: usize,
    d_data: ClBuffer<u8>,
    d_starts: ClBuffer<u32>,
}

/// OpenCL backend. Queues and kernel objects are per replica (they are not
/// thread-safe); events order the enqueues. Like [`CudaBackend`], any
/// device fault degrades the batch straight to the host implementation.
pub struct OclBackend {
    ctx: Context,
    queues: Vec<CommandQueue>, // one per device, created lazily
    device: usize,
    batched: bool,
    lzss: LzssConfig,
    rec: Recorder,
    pool: BufPool<Digest>,
}

impl OclBackend {
    fn queue(&self, device: usize) -> &CommandQueue {
        &self.queues[device]
    }

    fn hash_on_device(
        &mut self,
        batch: &Batch,
    ) -> Result<(PooledBuf<Digest>, OclResident), WorkloadFault> {
        let dev = self.ctx.devices()[self.device];
        let n = batch.block_count();
        let d_data: ClBuffer<u8> = self.ctx.create_buffer(dev, batch.data.len())?;
        let d_starts: ClBuffer<u32> = self.ctx.create_buffer(dev, n.max(1))?;
        let d_out: ClBuffer<u8> = self.ctx.create_buffer(dev, n * 20)?;
        let q = self.queue(self.device);
        let w1 = q.enqueue_write_buffer(&d_data, false, 0, &batch.data, &[]);
        let w2 = q.enqueue_write_buffer(&d_starts, false, 0, &starts_u32(batch), &[]);
        let mut raw = vec![0u8; n * 20];
        if self.batched {
            let kernel = ClKernel::create(Sha1Kernel {
                data: d_data.ptr(),
                starts: d_starts.ptr(),
                data_len: batch.data.len(),
                n_blocks: n,
                out: d_out.ptr(),
            });
            let k_ev = q.try_enqueue_nd_range(
                &kernel,
                (n as u64).next_multiple_of(64).max(64),
                64,
                &[w1, w2],
            )?;
            let r_ev = q.enqueue_read_buffer(&d_out, false, 0, &mut raw, &[k_ev]);
            self.ctx.wait_for_events(&[r_ev]);
        } else {
            // Naive integration: one launch per block. The read-back is
            // coalesced into a single blocking read after the launch loop
            // (the in-order queue means waiting on the last kernel event
            // covers every earlier one) and sliced on the host.
            let mut last = None;
            for b in 0..n {
                let r = batch.block_range(b);
                let kernel = ClKernel::create(Sha1BlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    out: d_out.ptr(),
                    slot: b,
                });
                last = Some(q.try_enqueue_nd_range(&kernel, 32, 32, &[w1, w2])?);
            }
            if let Some(k_ev) = last {
                q.enqueue_read_buffer(&d_out, true, 0, &mut raw, &[k_ev]);
            }
        }
        let mut digests = self.pool.acquire(n);
        for (slot, c) in digests.iter_mut().zip(raw.chunks_exact(20)) {
            *slot = Digest(c.try_into().expect("20 bytes"));
        }
        Ok((
            digests,
            OclResident {
                device: self.device,
                d_data,
                d_starts,
            },
        ))
    }

    fn compress_on_device(
        &mut self,
        batch: &Batch,
        classes: &[BlockClass],
        res: &OclResident,
    ) -> Result<(Vec<u32>, Vec<u32>), WorkloadFault> {
        let dev = self.ctx.devices()[res.device];
        let len = batch.data.len();
        let d_len: ClBuffer<u32> = self.ctx.create_buffer(dev, len)?;
        let d_off: ClBuffer<u32> = self.ctx.create_buffer(dev, len)?;
        let q = self.queue(res.device);
        let mut lens = vec![0u32; len];
        let mut offs = vec![0u32; len];
        if self.batched {
            let kernel = ClKernel::create(FindMatchKernel {
                data: res.d_data.ptr(),
                data_len: len,
                starts: res.d_starts.ptr(),
                n_blocks: batch.block_count(),
                matches_len: d_len.ptr(),
                matches_off: d_off.ptr(),
                cfg: self.lzss,
            });
            let global = (len as u64)
                .next_multiple_of(BLOCK_1D as u64)
                .max(BLOCK_1D as u64);
            let k_ev = q.try_enqueue_nd_range(&kernel, global, BLOCK_1D, &[])?;
            let r1 = q.enqueue_read_buffer(&d_len, false, 0, &mut lens, &[k_ev]);
            let r2 = q.enqueue_read_buffer(&d_off, false, 0, &mut offs, &[k_ev]);
            self.ctx.wait_for_events(&[r1, r2]);
        } else {
            // Naive integration: launch per block, one coalesced read pair
            // after the loop. Skipped Dup ranges are zero on both sides
            // (buffers are created zeroed), so the bulk reads are
            // bit-identical to the old per-range ones.
            let mut last = None;
            for (b, class) in classes.iter().enumerate() {
                if matches!(class, BlockClass::Dup { .. }) {
                    continue;
                }
                let r = batch.block_range(b);
                let kernel = ClKernel::create(FindMatchBlockKernel {
                    data: res.d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    matches_len: d_len.ptr(),
                    matches_off: d_off.ptr(),
                    cfg: self.lzss,
                });
                let lanes = ((r.end - r.start) as u64)
                    .next_multiple_of(BLOCK_1D as u64)
                    .max(BLOCK_1D as u64);
                last = Some(q.try_enqueue_nd_range(&kernel, lanes, BLOCK_1D, &[])?);
            }
            if let Some(k_ev) = last {
                let r1 = q.enqueue_read_buffer(&d_len, false, 0, &mut lens, &[k_ev]);
                let r2 = q.enqueue_read_buffer(&d_off, false, 0, &mut offs, &[k_ev]);
                self.ctx.wait_for_events(&[r1, r2]);
            }
        }
        Ok((lens, offs))
    }
}

impl DedupBackend for OclBackend {
    type Gpu = OclResident;

    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx
            .system
            .as_ref()
            .expect("OpenCL backend needs a GpuSystem");
        let platform = Platform::new(Arc::clone(system));
        let ids = platform.device_ids();
        let cl_ctx = Context::create(&platform, &ids[..ctx.n_gpus]);
        let queues = cl_ctx
            .devices()
            .iter()
            .map(|&d| cl_ctx.create_queue(d))
            .collect();
        OclBackend {
            ctx: cl_ctx,
            queues,
            device: replica % ctx.n_gpus,
            batched: ctx.batched,
            lzss: ctx.lzss,
            rec: ctx.rec.clone(),
            pool: ctx.digests.clone(),
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch<OclResident> {
        match self.hash_on_device(&batch) {
            Ok((digests, res)) => HashedBatch {
                batch,
                digests,
                gpu: Some(res),
            },
            Err(fail) => {
                self.rec.fault(HASH_STAGE, fail.kind(), fail.to_string());
                self.rec.fault(
                    HASH_STAGE,
                    FaultKind::CpuFallback,
                    format!("batch {}: hashing on the host", batch.index),
                );
                let digests = cpu_digests(&self.pool, &batch);
                HashedBatch {
                    batch,
                    digests,
                    gpu: None,
                }
            }
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch<OclResident>) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let entries = match &gpu {
            Some(res) => match self.compress_on_device(&batch, &classes, res) {
                Ok((lens, offs)) => {
                    entries_from_matches(&batch, &classes, &lens, &offs, &self.lzss)
                }
                Err(fail) => {
                    self.rec
                        .fault(COMPRESS_STAGE, fail.kind(), fail.to_string());
                    self.rec.fault(
                        COMPRESS_STAGE,
                        FaultKind::CpuFallback,
                        format!("batch {}: compressing on the host", batch.index),
                    );
                    cpu_entries(&batch, &classes, &self.lzss)
                }
            },
            // Stage 2 already fell back: the batch never reached a device.
            None => cpu_entries(&batch, &classes, &self.lzss),
        };
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}
