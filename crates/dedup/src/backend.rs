//! Stage backends: CPU, CUDA and OpenCL implementations of the hashing
//! (stage 2) and compression (stage 4) work.
//!
//! GPU backends keep the batch resident on the device between stages by
//! attaching the device buffers to the stream item ("this stage reuses
//! data already on GPU to prevent unnecessary data transfers", §IV-B) —
//! stage 4 targets whatever device stage 2 uploaded to.
//!
//! `batched = false` reproduces the paper's first, slow integration: one
//! kernel launch per block instead of per batch.

use std::sync::Arc;

use gpusim::cuda::{Cuda, CudaBuffer};
use gpusim::opencl::{ClBuffer, ClKernel, CommandQueue, Context, Platform};
use gpusim::{GpuSystem, Offload};

use crate::archive::BlockEntry;
use crate::batch::Batch;
use crate::dedupe::BlockClass;
use crate::kernels::{FindMatchBlockKernel, FindMatchKernel, Sha1BlockKernel, Sha1Kernel};
use crate::lzss::{encode_block_from_matches, LzssConfig, Match};
use crate::sha1::{sha1, Digest};

const BLOCK_1D: u32 = 256;

/// Configuration shared by all backends of one pipeline run.
#[derive(Clone)]
pub struct BackendCtx {
    /// The simulated GPU system (absent for the CPU backend).
    pub system: Option<Arc<GpuSystem>>,
    /// Devices to spread batches over.
    pub n_gpus: usize,
    /// Use the batched kernels (the optimization) or per-block launches.
    pub batched: bool,
    /// Codec parameters.
    pub lzss: LzssConfig,
}

impl BackendCtx {
    /// CPU-only context.
    pub fn cpu(lzss: LzssConfig) -> Self {
        BackendCtx {
            system: None,
            n_gpus: 0,
            batched: true,
            lzss,
        }
    }

    /// GPU context over `n_gpus` devices of `system`.
    pub fn gpu(system: Arc<GpuSystem>, n_gpus: usize, batched: bool, lzss: LzssConfig) -> Self {
        assert!(n_gpus >= 1 && n_gpus <= system.device_count());
        BackendCtx {
            system: Some(system),
            n_gpus,
            batched,
            lzss,
        }
    }
}

/// Device-resident copy of a batch, handed from stage 2 to stage 4.
pub enum GpuData {
    /// CUDA buffers plus their owning device.
    Cuda {
        /// Device index the buffers live on.
        device: usize,
        /// Batch bytes.
        d_data: CudaBuffer<u8>,
        /// Block starts.
        d_starts: CudaBuffer<u32>,
    },
    /// OpenCL buffers plus their owning device index.
    Ocl {
        /// Device index the buffers live on.
        device: usize,
        /// Batch bytes.
        d_data: ClBuffer<u8>,
        /// Block starts.
        d_starts: ClBuffer<u32>,
    },
    /// Buffers from an [`OffloadBackend`], type-erased so the stream item
    /// type stays independent of which [`Offload`] implementation produced
    /// them (stage 4 downcasts back to `O::Buffer<_>`).
    Offload {
        /// Device index the buffers live on.
        device: usize,
        /// Batch bytes (`O::Buffer<u8>`).
        d_data: Box<dyn std::any::Any + Send>,
        /// Block starts (`O::Buffer<u32>`).
        d_starts: Box<dyn std::any::Any + Send>,
    },
}

/// Item emitted by stage 2.
pub struct HashedBatch {
    /// The batch (host copy).
    pub batch: Batch,
    /// SHA-1 per block.
    pub digests: Vec<Digest>,
    /// Device-resident data, if a GPU backend produced it.
    pub gpu: Option<GpuData>,
}

/// Item emitted by stage 3.
pub struct ClassifiedBatch {
    /// The batch (host copy).
    pub batch: Batch,
    /// Unique/dup class per block.
    pub classes: Vec<BlockClass>,
    /// Device-resident data, forwarded from stage 2.
    pub gpu: Option<GpuData>,
}

/// Item emitted by stage 4.
pub struct CompressedBatch {
    /// Stream position (reorder key).
    pub index: usize,
    /// Output records for this batch, in block order.
    pub entries: Vec<BlockEntry>,
}

/// A stage-2/stage-4 implementation. One instance per stage replica,
/// constructed on the replica's own thread (GPU state is thread-bound).
pub trait DedupBackend: Send + 'static {
    /// Build a replica backend. `replica` picks the device
    /// (`replica % n_gpus`).
    fn new(ctx: &BackendCtx, replica: usize) -> Self;

    /// Stage 2: hash every block of the batch.
    fn hash_stage(&mut self, batch: Batch) -> HashedBatch;

    /// Stage 4: compress every unique block.
    fn compress_stage(&mut self, item: ClassifiedBatch) -> CompressedBatch;
}

/// Pure-CPU backend (the paper's SPar CPU-only version).
pub struct CpuBackend {
    lzss: LzssConfig,
}

impl DedupBackend for CpuBackend {
    fn new(ctx: &BackendCtx, _replica: usize) -> Self {
        CpuBackend { lzss: ctx.lzss }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch {
        let digests = (0..batch.block_count())
            .map(|b| sha1(batch.block(b)))
            .collect();
        HashedBatch {
            batch,
            digests,
            gpu: None,
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch) -> CompressedBatch {
        let entries = item
            .classes
            .iter()
            .enumerate()
            .map(|(b, class)| match class {
                BlockClass::Unique { .. } => {
                    BlockEntry::compress_unique(item.batch.block(b), &self.lzss)
                }
                BlockClass::Dup { of } => BlockEntry::Dup(*of),
            })
            .collect();
        CompressedBatch {
            index: item.batch.index,
            entries,
        }
    }
}

fn starts_u32(batch: &Batch) -> Vec<u32> {
    batch.starts.iter().map(|&s| s as u32).collect()
}

/// Walk the classes and encode unique blocks from per-position matches.
fn entries_from_matches(
    batch: &Batch,
    classes: &[BlockClass],
    lens: &[u32],
    offs: &[u32],
    lzss: &LzssConfig,
) -> Vec<BlockEntry> {
    classes
        .iter()
        .enumerate()
        .map(|(b, class)| match class {
            BlockClass::Unique { .. } => {
                let r = batch.block_range(b);
                let block = &batch.data[r.clone()];
                let matches: Vec<Match> = (r.start..r.end)
                    .map(|i| Match {
                        dist: offs[i],
                        len: lens[i],
                    })
                    .collect();
                let encoded = encode_block_from_matches(block, &matches, lzss);
                BlockEntry::from_encoded(block, encoded)
            }
            BlockClass::Dup { of } => BlockEntry::Dup(*of),
        })
        .collect()
}

/// CUDA backend. Host buffers are *pageable* (Dedup `realloc`s its buffers,
/// §V-B), so all copies are synchronous — faithful to the paper's CUDA
/// behaviour.
pub struct CudaBackend {
    cuda: Cuda,
    device: usize,
    batched: bool,
    lzss: LzssConfig,
}

impl DedupBackend for CudaBackend {
    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx.system.as_ref().expect("CUDA backend needs a GpuSystem");
        let cuda = Cuda::new(Arc::clone(system));
        let device = replica % ctx.n_gpus;
        cuda.set_device(device); // per-thread, as §IV-A requires
        CudaBackend {
            cuda,
            device,
            batched: ctx.batched,
            lzss: ctx.lzss,
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch {
        self.cuda.set_device(self.device);
        let stream = self.cuda.stream_create();
        let n = batch.block_count();
        let d_data: CudaBuffer<u8> = self.cuda.malloc(batch.data.len()).expect("device mem");
        let d_starts: CudaBuffer<u32> = self.cuda.malloc(n.max(1)).expect("device mem");
        let d_out: CudaBuffer<u8> = self.cuda.malloc(n * 20).expect("device mem");
        self.cuda
            .memcpy_h2d_pageable(&d_data, 0, &batch.data, &stream);
        self.cuda
            .memcpy_h2d_pageable(&d_starts, 0, &starts_u32(&batch), &stream);
        let mut raw: Vec<u8>;
        if self.batched {
            let k = Sha1Kernel {
                data: d_data.ptr(),
                starts: d_starts.ptr(),
                data_len: batch.data.len(),
                n_blocks: n,
                out: d_out.ptr(),
            };
            let blocks = (n as u64).div_ceil(64) as u32;
            self.cuda.launch(&k, blocks.max(1), 64u32, &stream);
            // One read for the whole digest array.
            let mut all = vec![0u8; n * 20];
            self.cuda.memcpy_d2h_pageable(&mut all, &d_out, 0, &stream);
            self.cuda.stream_synchronize(&stream);
            raw = all;
        } else {
            // The naive integration: one launch AND one read-back per
            // block — "the GPU kernel function has been invoked too many
            // times without using efficiently the GPU resources" (§IV-B).
            raw = vec![0u8; n * 20];
            for b in 0..n {
                let r = batch.block_range(b);
                let k = Sha1BlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    out: d_out.ptr(),
                    slot: b,
                };
                self.cuda.launch(&k, 1u32, 32u32, &stream);
                self.cuda.memcpy_d2h_pageable(
                    &mut raw[b * 20..b * 20 + 20],
                    &d_out,
                    b * 20,
                    &stream,
                );
            }
            self.cuda.stream_synchronize(&stream);
        }
        let digests = raw
            .chunks_exact(20)
            .map(|c| Digest(c.try_into().expect("20 bytes")))
            .collect();
        HashedBatch {
            batch,
            digests,
            gpu: Some(GpuData::Cuda {
                device: self.device,
                d_data,
                d_starts,
            }),
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let Some(GpuData::Cuda {
            device,
            d_data,
            d_starts,
        }) = gpu
        else {
            panic!("CUDA compress stage received an item without CUDA buffers");
        };
        // The data lives on whatever device stage 2 used.
        self.cuda.set_device(device);
        let stream = self.cuda.stream_create();
        let len = batch.data.len();
        let d_len: CudaBuffer<u32> = self.cuda.malloc(len).expect("device mem");
        let d_off: CudaBuffer<u32> = self.cuda.malloc(len).expect("device mem");
        let mut lens = vec![0u32; len];
        let mut offs = vec![0u32; len];
        if self.batched {
            let k = FindMatchKernel {
                data: d_data.ptr(),
                data_len: len,
                starts: d_starts.ptr(),
                n_blocks: batch.block_count(),
                matches_len: d_len.ptr(),
                matches_off: d_off.ptr(),
                cfg: self.lzss,
            };
            let blocks = (len as u64).div_ceil(BLOCK_1D as u64) as u32;
            self.cuda.launch(&k, blocks.max(1), BLOCK_1D, &stream);
            self.cuda.memcpy_d2h_pageable(&mut lens, &d_len, 0, &stream);
            self.cuda.memcpy_d2h_pageable(&mut offs, &d_off, 0, &stream);
        } else {
            // Naive integration: launch AND read back per block.
            for (b, class) in classes.iter().enumerate() {
                if matches!(class, BlockClass::Dup { .. }) {
                    continue; // per-block mode can skip duplicate blocks
                }
                let r = batch.block_range(b);
                let k = FindMatchBlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    matches_len: d_len.ptr(),
                    matches_off: d_off.ptr(),
                    cfg: self.lzss,
                };
                let lanes = (r.end - r.start) as u64;
                let blocks = lanes.div_ceil(BLOCK_1D as u64) as u32;
                self.cuda.launch(&k, blocks.max(1), BLOCK_1D, &stream);
                self.cuda
                    .memcpy_d2h_pageable(&mut lens[r.clone()], &d_len, r.start, &stream);
                self.cuda
                    .memcpy_d2h_pageable(&mut offs[r.clone()], &d_off, r.start, &stream);
            }
        }
        self.cuda.stream_synchronize(&stream);
        let entries = entries_from_matches(&batch, &classes, &lens, &offs, &self.lzss);
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}

/// Backend written once against the unified [`Offload`] trait and
/// instantiated per front end (`OffloadBackend<CudaOffload>` /
/// `OffloadBackend<OclOffload>`), or selected by value through
/// `gpusim::OffloadApi` in a harness.
///
/// Always uses the batched kernels: the deliberately-naive per-block
/// integration (§IV-B's first attempt) needs offset reads the common
/// surface does not expose, so that ladder rung stays raw-façade-only
/// ([`CudaBackend`] / [`OclBackend`] with `batched = false`).
pub struct OffloadBackend<O: Offload> {
    system: Arc<GpuSystem>,
    device: usize,
    /// One offloader per device, attached lazily: stage 4 must target
    /// whatever device stage 2 uploaded to.
    offs: Vec<Option<O>>,
    lzss: LzssConfig,
}

impl<O: Offload> OffloadBackend<O> {
    fn off(&mut self, device: usize) -> &mut O {
        let slot = &mut self.offs[device];
        if slot.is_none() {
            *slot = Some(O::attach(&self.system, device));
        }
        slot.as_mut().expect("just attached")
    }
}

impl<O: Offload> DedupBackend for OffloadBackend<O> {
    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx
            .system
            .as_ref()
            .expect("offload backend needs a GpuSystem");
        OffloadBackend {
            system: Arc::clone(system),
            device: replica % ctx.n_gpus,
            offs: (0..ctx.n_gpus).map(|_| None).collect(),
            lzss: ctx.lzss,
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch {
        let device = self.device;
        let starts = starts_u32(&batch);
        let n = batch.block_count();
        let data_len = batch.data.len();
        let off = self.off(device);
        let d_data: O::Buffer<u8> = off.alloc(data_len);
        let d_starts: O::Buffer<u32> = off.alloc(n.max(1));
        let d_out: O::Buffer<u8> = off.alloc(n * 20);
        let mut h_data = off.alloc_host::<u8>(data_len);
        h_data.clone_from_slice(&batch.data);
        let mut h_starts = off.alloc_host::<u32>(n);
        h_starts.clone_from_slice(&starts);
        off.h2d(&d_data, &h_data);
        off.h2d(&d_starts, &h_starts);
        off.launch(
            Sha1Kernel {
                data: O::buffer_ptr(&d_data),
                starts: O::buffer_ptr(&d_starts),
                data_len,
                n_blocks: n,
                out: O::buffer_ptr(&d_out),
            },
            n as u64,
            64,
        );
        let mut h_out = off.alloc_host::<u8>(n * 20);
        off.d2h(&d_out, &mut h_out);
        off.sync();
        let digests = h_out
            .chunks_exact(20)
            .map(|c| Digest(c.try_into().expect("20 bytes")))
            .collect();
        HashedBatch {
            batch,
            digests,
            gpu: Some(GpuData::Offload {
                device,
                d_data: Box::new(d_data),
                d_starts: Box::new(d_starts),
            }),
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let Some(GpuData::Offload {
            device,
            d_data,
            d_starts,
        }) = gpu
        else {
            panic!("offload compress stage received an item without offload buffers");
        };
        let d_data = *d_data
            .downcast::<O::Buffer<u8>>()
            .expect("stage 2 ran a different offload backend");
        let d_starts = *d_starts
            .downcast::<O::Buffer<u32>>()
            .expect("stage 2 ran a different offload backend");
        let len = batch.data.len();
        let lzss = self.lzss;
        // The data lives on whatever device stage 2 used.
        let off = self.off(device);
        let d_len: O::Buffer<u32> = off.alloc(len);
        let d_off: O::Buffer<u32> = off.alloc(len);
        off.launch(
            FindMatchKernel {
                data: O::buffer_ptr(&d_data),
                data_len: len,
                starts: O::buffer_ptr(&d_starts),
                n_blocks: batch.block_count(),
                matches_len: O::buffer_ptr(&d_len),
                matches_off: O::buffer_ptr(&d_off),
                cfg: lzss,
            },
            len as u64,
            BLOCK_1D,
        );
        let mut h_len = off.alloc_host::<u32>(len);
        let mut h_off = off.alloc_host::<u32>(len);
        off.d2h(&d_len, &mut h_len);
        off.d2h(&d_off, &mut h_off);
        off.sync();
        let entries = entries_from_matches(&batch, &classes, &h_len, &h_off, &lzss);
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}

/// OpenCL backend. Queues and kernel objects are per replica (they are not
/// thread-safe); events order the enqueues.
pub struct OclBackend {
    ctx: Context,
    queues: Vec<CommandQueue>, // one per device, created lazily
    device: usize,
    batched: bool,
    lzss: LzssConfig,
}

impl OclBackend {
    fn queue(&self, device: usize) -> &CommandQueue {
        &self.queues[device]
    }
}

impl DedupBackend for OclBackend {
    fn new(ctx: &BackendCtx, replica: usize) -> Self {
        let system = ctx
            .system
            .as_ref()
            .expect("OpenCL backend needs a GpuSystem");
        let platform = Platform::new(Arc::clone(system));
        let ids = platform.device_ids();
        let cl_ctx = Context::create(&platform, &ids[..ctx.n_gpus]);
        let queues = cl_ctx
            .devices()
            .iter()
            .map(|&d| cl_ctx.create_queue(d))
            .collect();
        OclBackend {
            ctx: cl_ctx,
            queues,
            device: replica % ctx.n_gpus,
            batched: ctx.batched,
            lzss: ctx.lzss,
        }
    }

    fn hash_stage(&mut self, batch: Batch) -> HashedBatch {
        let dev = self.ctx.devices()[self.device];
        let n = batch.block_count();
        let d_data: ClBuffer<u8> = self.ctx.create_buffer(dev, batch.data.len()).expect("mem");
        let d_starts: ClBuffer<u32> = self.ctx.create_buffer(dev, n.max(1)).expect("mem");
        let d_out: ClBuffer<u8> = self.ctx.create_buffer(dev, n * 20).expect("mem");
        let q = self.queue(self.device);
        let w1 = q.enqueue_write_buffer(&d_data, false, 0, &batch.data, &[]);
        let w2 = q.enqueue_write_buffer(&d_starts, false, 0, &starts_u32(&batch), &[]);
        let mut raw = vec![0u8; n * 20];
        if self.batched {
            let kernel = ClKernel::create(Sha1Kernel {
                data: d_data.ptr(),
                starts: d_starts.ptr(),
                data_len: batch.data.len(),
                n_blocks: n,
                out: d_out.ptr(),
            });
            let k_ev = q.enqueue_nd_range(
                &kernel,
                (n as u64).next_multiple_of(64).max(64),
                64,
                &[w1, w2],
            );
            let r_ev = q.enqueue_read_buffer(&d_out, false, 0, &mut raw, &[k_ev]);
            self.ctx.wait_for_events(&[r_ev]);
        } else {
            // Naive integration: one launch and one blocking read per block.
            for b in 0..n {
                let r = batch.block_range(b);
                let kernel = ClKernel::create(Sha1BlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    out: d_out.ptr(),
                    slot: b,
                });
                let k_ev = q.enqueue_nd_range(&kernel, 32, 32, &[w1, w2]);
                q.enqueue_read_buffer(&d_out, true, b * 20, &mut raw[b * 20..b * 20 + 20], &[k_ev]);
            }
        }
        let digests = raw
            .chunks_exact(20)
            .map(|c| Digest(c.try_into().expect("20 bytes")))
            .collect();
        HashedBatch {
            batch,
            digests,
            gpu: Some(GpuData::Ocl {
                device: self.device,
                d_data,
                d_starts,
            }),
        }
    }

    fn compress_stage(&mut self, item: ClassifiedBatch) -> CompressedBatch {
        let ClassifiedBatch {
            batch,
            classes,
            gpu,
        } = item;
        let Some(GpuData::Ocl {
            device,
            d_data,
            d_starts,
        }) = gpu
        else {
            panic!("OpenCL compress stage received an item without OpenCL buffers");
        };
        let dev = self.ctx.devices()[device];
        let len = batch.data.len();
        let d_len: ClBuffer<u32> = self.ctx.create_buffer(dev, len).expect("mem");
        let d_off: ClBuffer<u32> = self.ctx.create_buffer(dev, len).expect("mem");
        let q = self.queue(device);
        let mut lens = vec![0u32; len];
        let mut offs = vec![0u32; len];
        if self.batched {
            let kernel = ClKernel::create(FindMatchKernel {
                data: d_data.ptr(),
                data_len: len,
                starts: d_starts.ptr(),
                n_blocks: batch.block_count(),
                matches_len: d_len.ptr(),
                matches_off: d_off.ptr(),
                cfg: self.lzss,
            });
            let global = (len as u64)
                .next_multiple_of(BLOCK_1D as u64)
                .max(BLOCK_1D as u64);
            let k_ev = q.enqueue_nd_range(&kernel, global, BLOCK_1D, &[]);
            let r1 = q.enqueue_read_buffer(&d_len, false, 0, &mut lens, &[k_ev]);
            let r2 = q.enqueue_read_buffer(&d_off, false, 0, &mut offs, &[k_ev]);
            self.ctx.wait_for_events(&[r1, r2]);
        } else {
            // Naive integration: launch and read back per block.
            for (b, class) in classes.iter().enumerate() {
                if matches!(class, BlockClass::Dup { .. }) {
                    continue;
                }
                let r = batch.block_range(b);
                let kernel = ClKernel::create(FindMatchBlockKernel {
                    data: d_data.ptr(),
                    start: r.start,
                    end: r.end,
                    matches_len: d_len.ptr(),
                    matches_off: d_off.ptr(),
                    cfg: self.lzss,
                });
                let lanes = ((r.end - r.start) as u64)
                    .next_multiple_of(BLOCK_1D as u64)
                    .max(BLOCK_1D as u64);
                let k_ev = q.enqueue_nd_range(&kernel, lanes, BLOCK_1D, &[]);
                q.enqueue_read_buffer(&d_len, true, r.start, &mut lens[r.clone()], &[k_ev]);
                q.enqueue_read_buffer(&d_off, true, r.start, &mut offs[r.clone()], &[k_ev]);
            }
        }
        let entries = entries_from_matches(&batch, &classes, &lens, &offs, &self.lzss);
        CompressedBatch {
            index: batch.index,
            entries,
        }
    }
}
