//! Single-host-thread GPU drivers for Dedup (Fig. 5's plain "CUDA" and
//! "OpenCL" bars), with the 1×/2× memory-space variants.
//!
//! The flow per batch: upload data+starts → SHA-1 kernel → read digests →
//! classify (serial, global cache) → FindMatch kernel(s) → read matches →
//! encode on CPU → append records. With `mem_spaces ≥ 2`, consecutive
//! batches use alternating buffer/queue sets, so adjacent batches' device
//! work can overlap — *if* the copies are asynchronous:
//!
//! * the **CUDA** version inherits Dedup's `realloc`-managed (pageable)
//!   host buffers, so every `cudaMemcpyAsync` degrades to a synchronous
//!   copy and 2× memory spaces buy nothing (§V-B);
//! * the **OpenCL** version enqueues non-blocking reads/writes with
//!   events, so 2× memory spaces do help — exactly the asymmetry Fig. 5
//!   shows.
//!
//! CPU-side work (rabin, classify, encode, write) advances the virtual
//! host clock via the [`HostCosts`] model.

use std::sync::Arc;

use gpusim::cuda::{Cuda, CudaBuffer, CudaStream};
use gpusim::opencl::{ClBuffer, ClEvent, ClKernel, CommandQueue, Context, Platform};
use gpusim::GpuSystem;
use simtime::{SimDuration, SimTime};

use crate::archive::Archive;
use crate::batch::{make_batches, Batch};
use crate::costs::HostCosts;
use crate::dedupe::{BlockClass, DedupCache};
use crate::kernels::{FindMatchKernel, Sha1Kernel};
use crate::lzss::Match;
use crate::pipeline::DedupConfig;
use crate::sha1::Digest;

const BLOCK_1D: u32 = 256;

fn starts_u32(batch: &Batch) -> Vec<u32> {
    batch.starts.iter().map(|&s| s as u32).collect()
}

fn classify_all(
    cache: &mut DedupCache,
    digests: &[Digest],
    system: &GpuSystem,
    costs: &HostCosts,
) -> Vec<BlockClass> {
    system.host_compute(costs.classify(digests.len() as u64));
    digests.iter().map(|&d| cache.classify(d)).collect()
}

fn encode_entries(
    batch: &Batch,
    classes: &[BlockClass],
    lens: &[u32],
    offs: &[u32],
    cfg: &DedupConfig,
    system: &GpuSystem,
    costs: &HostCosts,
) -> Vec<crate::archive::BlockEntry> {
    system.host_compute(costs.encode(batch.data.len() as u64));
    classes
        .iter()
        .enumerate()
        .map(|(b, class)| match class {
            BlockClass::Unique { .. } => {
                let r = batch.block_range(b);
                let block = &batch.data[r.clone()];
                let matches: Vec<Match> = (r.start..r.end)
                    .map(|i| Match {
                        dist: offs[i],
                        len: lens[i],
                    })
                    .collect();
                crate::archive::BlockEntry::from_encoded(
                    block,
                    crate::lzss::encode_block_from_matches(block, &matches, &cfg.lzss),
                )
            }
            BlockClass::Dup { of } => crate::archive::BlockEntry::Dup(*of),
        })
        .collect()
}

struct CudaSpace {
    stream: CudaStream,
    d_data: CudaBuffer<u8>,
    d_starts: CudaBuffer<u32>,
    d_digests: CudaBuffer<u8>,
    d_len: CudaBuffer<u32>,
    d_off: CudaBuffer<u32>,
}

/// Single-threaded CUDA Dedup. Returns the archive and the modeled run
/// time.
pub fn run_single_cuda(
    system: &Arc<GpuSystem>,
    input: &[u8],
    cfg: &DedupConfig,
    mem_spaces: usize,
) -> (Archive, SimDuration) {
    assert!(mem_spaces >= 1);
    system.reset_clock();
    let costs = HostCosts::default();
    let cuda = Cuda::new(Arc::clone(system));
    cuda.set_device(0);
    let max_blocks = cfg.batch_size; // upper bound on starts per batch
    let spaces: Vec<CudaSpace> = (0..mem_spaces)
        .map(|_| CudaSpace {
            stream: cuda.stream_create(),
            d_data: cuda.malloc(cfg.batch_size).expect("mem"),
            d_starts: cuda.malloc(max_blocks / 64 + 2).expect("mem"),
            d_digests: cuda.malloc(cfg.batch_size / 16 + 32).expect("mem"),
            d_len: cuda.malloc(cfg.batch_size).expect("mem"),
            d_off: cuda.malloc(cfg.batch_size).expect("mem"),
        })
        .collect();

    // S1: batching + rabin on the CPU.
    system.host_compute(costs.rabin(input.len() as u64));
    let batches = make_batches(input, cfg.batch_size, &cfg.rabin);

    let mut cache = DedupCache::new();
    let mut archive = Archive::new(cfg.lzss);
    for batch in &batches {
        let space = &spaces[batch.index % mem_spaces];
        let n = batch.block_count();
        // Pageable copies: synchronous under CUDA semantics.
        cuda.memcpy_h2d_pageable(&space.d_data, 0, &batch.data, &space.stream);
        cuda.memcpy_h2d_pageable(&space.d_starts, 0, &starts_u32(batch), &space.stream);
        let k = Sha1Kernel {
            data: space.d_data.ptr(),
            starts: space.d_starts.ptr(),
            data_len: batch.data.len(),
            n_blocks: n,
            out: space.d_digests.ptr(),
        };
        cuda.launch(
            &k,
            (n as u64).div_ceil(64).max(1) as u32,
            64u32,
            &space.stream,
        );
        let mut raw = vec![0u8; n * 20];
        cuda.memcpy_d2h_pageable(&mut raw, &space.d_digests, 0, &space.stream);
        let digests: Vec<Digest> = raw
            .chunks_exact(20)
            .map(|c| Digest(c.try_into().expect("20")))
            .collect();
        let classes = classify_all(&mut cache, &digests, system, &costs);

        let fm = FindMatchKernel {
            data: space.d_data.ptr(),
            data_len: batch.data.len(),
            starts: space.d_starts.ptr(),
            n_blocks: n,
            matches_len: space.d_len.ptr(),
            matches_off: space.d_off.ptr(),
            cfg: cfg.lzss,
        };
        let blocks = (batch.data.len() as u64).div_ceil(BLOCK_1D as u64).max(1) as u32;
        cuda.launch(&fm, blocks, BLOCK_1D, &space.stream);
        let mut lens = vec![0u32; batch.data.len()];
        let mut offs = vec![0u32; batch.data.len()];
        cuda.memcpy_d2h_pageable(&mut lens, &space.d_len, 0, &space.stream);
        cuda.memcpy_d2h_pageable(&mut offs, &space.d_off, 0, &space.stream);
        cuda.stream_synchronize(&space.stream);
        let entries = encode_entries(batch, &classes, &lens, &offs, cfg, system, &costs);
        archive.entries.extend(entries);
    }
    system.host_compute(costs.write(archive.serialized_len() as u64));
    cuda.device_synchronize();
    (archive, system.host_now().since(SimTime::ZERO))
}

struct OclSpace {
    queue: CommandQueue,
    d_data: ClBuffer<u8>,
    d_starts: ClBuffer<u32>,
    d_digests: ClBuffer<u8>,
    d_len: ClBuffer<u32>,
    d_off: ClBuffer<u32>,
    // Deferred compression state (overlapped across batches).
    pending: Option<PendingBatch>,
}

struct PendingBatch {
    batch: Batch,
    classes: Vec<BlockClass>,
    lens: Vec<u32>,
    offs: Vec<u32>,
    read_evs: [ClEvent; 2],
}

/// Single-threaded OpenCL Dedup. Non-blocking enqueues + events let the
/// `mem_spaces = 2` variant overlap adjacent batches, as in Fig. 5.
pub fn run_single_ocl(
    system: &Arc<GpuSystem>,
    input: &[u8],
    cfg: &DedupConfig,
    mem_spaces: usize,
) -> (Archive, SimDuration) {
    assert!(mem_spaces >= 1);
    system.reset_clock();
    let costs = HostCosts::default();
    let platform = Platform::new(Arc::clone(system));
    let ids = platform.device_ids();
    let ctx = Context::create(&platform, &ids[..1]);
    let dev = ids[0];
    let mut spaces: Vec<OclSpace> = (0..mem_spaces)
        .map(|_| OclSpace {
            queue: ctx.create_queue(dev),
            d_data: ctx.create_buffer(dev, cfg.batch_size).expect("mem"),
            d_starts: ctx
                .create_buffer(dev, cfg.batch_size / 64 + 2)
                .expect("mem"),
            d_digests: ctx
                .create_buffer(dev, cfg.batch_size / 16 + 32)
                .expect("mem"),
            d_len: ctx.create_buffer(dev, cfg.batch_size).expect("mem"),
            d_off: ctx.create_buffer(dev, cfg.batch_size).expect("mem"),
            pending: None,
        })
        .collect();

    system.host_compute(costs.rabin(input.len() as u64));
    let batches = make_batches(input, cfg.batch_size, &cfg.rabin);

    let mut cache = DedupCache::new();
    let mut archive = Archive::new(cfg.lzss);
    let finish_pending = |space: &mut OclSpace, archive: &mut Archive| {
        if let Some(p) = space.pending.take() {
            ctx.wait_for_events(&p.read_evs);
            let entries =
                encode_entries(&p.batch, &p.classes, &p.lens, &p.offs, cfg, system, &costs);
            archive.entries.extend(entries);
        }
    };

    for batch in batches {
        let slot = batch.index % mem_spaces;
        // Retire the batch previously using this space (keeps order: slots
        // are visited round-robin).
        {
            let space = &mut spaces[slot];
            finish_pending(space, &mut archive);
        }
        let space = &mut spaces[slot];
        let n = batch.block_count();
        let w1 = space
            .queue
            .enqueue_write_buffer(&space.d_data, false, 0, &batch.data, &[]);
        let w2 =
            space
                .queue
                .enqueue_write_buffer(&space.d_starts, false, 0, &starts_u32(&batch), &[]);
        let sha = ClKernel::create(Sha1Kernel {
            data: space.d_data.ptr(),
            starts: space.d_starts.ptr(),
            data_len: batch.data.len(),
            n_blocks: n,
            out: space.d_digests.ptr(),
        });
        let k1 = space.queue.enqueue_nd_range(
            &sha,
            (n as u64).next_multiple_of(64).max(64),
            64,
            &[w1, w2],
        );
        let mut raw = vec![0u8; n * 20];
        let r1 = space
            .queue
            .enqueue_read_buffer(&space.d_digests, false, 0, &mut raw, &[k1]);
        // Classification is globally serial: must wait for this batch's
        // digests before the cache can advance.
        ctx.wait_for_events(&[r1]);
        let digests: Vec<Digest> = raw
            .chunks_exact(20)
            .map(|c| Digest(c.try_into().expect("20")))
            .collect();
        let classes = classify_all(&mut cache, &digests, system, &costs);

        let fm = ClKernel::create(FindMatchKernel {
            data: space.d_data.ptr(),
            data_len: batch.data.len(),
            starts: space.d_starts.ptr(),
            n_blocks: n,
            matches_len: space.d_len.ptr(),
            matches_off: space.d_off.ptr(),
            cfg: cfg.lzss,
        });
        let global = (batch.data.len() as u64)
            .next_multiple_of(BLOCK_1D as u64)
            .max(BLOCK_1D as u64);
        let k2 = space.queue.enqueue_nd_range(&fm, global, BLOCK_1D, &[]);
        let mut lens = vec![0u32; batch.data.len()];
        let mut offs = vec![0u32; batch.data.len()];
        let r2 = space
            .queue
            .enqueue_read_buffer(&space.d_len, false, 0, &mut lens, &[k2]);
        let r3 = space
            .queue
            .enqueue_read_buffer(&space.d_off, false, 0, &mut offs, &[k2]);
        // Defer the encode until this space is needed again: the reads stay
        // in flight while the next batch is uploaded on the other space.
        space.pending = Some(PendingBatch {
            batch,
            classes,
            lens,
            offs,
            read_evs: [r2, r3],
        });
    }
    // Drain remaining spaces in batch order.
    let mut order: Vec<usize> = (0..spaces.len()).collect();
    order.sort_by_key(|&s| {
        spaces[s]
            .pending
            .as_ref()
            .map_or(usize::MAX, |p| p.batch.index)
    });
    for s in order {
        finish_pending(&mut spaces[s], &mut archive);
    }
    system.host_compute(costs.write(archive.serialized_len() as u64));
    (archive, system.host_now().since(SimTime::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::pipeline::run_sequential;
    use crate::rabin::RabinParams;
    use gpusim::DeviceProps;

    fn small_cfg() -> DedupConfig {
        DedupConfig {
            batch_size: 16 * 1024,
            rabin: RabinParams {
                window: 16,
                mask: (1 << 9) - 1,
                magic: 0x5c,
                min_chunk: 256,
                max_chunk: 4096,
            },
            lzss: crate::lzss::LzssConfig {
                window: 256,
                min_coded: 3,
            },
        }
    }

    fn sys() -> Arc<GpuSystem> {
        GpuSystem::new(1, DeviceProps::titan_xp())
    }

    #[test]
    fn single_cuda_matches_sequential() {
        let cfg = small_cfg();
        let data = datasets::parsec_like(60_000, 21).data;
        let seq = run_sequential(&data, &cfg);
        let system = sys();
        for spaces in [1, 2] {
            let (archive, t) = run_single_cuda(&system, &data, &cfg, spaces);
            assert_eq!(archive, seq, "spaces={spaces}");
            assert!(t > SimDuration::ZERO);
        }
    }

    #[test]
    fn single_ocl_matches_sequential() {
        let cfg = small_cfg();
        let data = datasets::parsec_like(60_000, 22).data;
        let seq = run_sequential(&data, &cfg);
        let system = sys();
        for spaces in [1, 2, 3] {
            let (archive, t) = run_single_ocl(&system, &data, &cfg, spaces);
            assert_eq!(archive, seq, "spaces={spaces}");
            assert!(t > SimDuration::ZERO);
        }
    }

    #[test]
    fn two_mem_spaces_help_opencl_but_not_cuda() {
        // The paper's §V-B asymmetry: async copies need pinned memory under
        // CUDA, and Dedup's realloc'd buffers are pageable.
        let cfg = small_cfg();
        let data = datasets::silesia_like(120_000, 23).data;
        let system = sys();
        let (_, cuda_1x) = run_single_cuda(&system, &data, &cfg, 1);
        let (_, cuda_2x) = run_single_cuda(&system, &data, &cfg, 2);
        let (_, ocl_1x) = run_single_ocl(&system, &data, &cfg, 1);
        let (_, ocl_2x) = run_single_ocl(&system, &data, &cfg, 2);
        let cuda_gain = cuda_1x.as_secs_f64() / cuda_2x.as_secs_f64();
        let ocl_gain = ocl_1x.as_secs_f64() / ocl_2x.as_secs_f64();
        assert!(
            ocl_gain > 1.01,
            "OpenCL must gain from 2x spaces: {ocl_gain:.3}"
        );
        assert!(
            cuda_gain < ocl_gain,
            "CUDA must gain less than OpenCL: cuda={cuda_gain:.3} ocl={ocl_gain:.3}"
        );
    }

    #[test]
    fn roundtrip_through_decompressor() {
        let cfg = small_cfg();
        let data = datasets::linux_like(50_000, 24).data;
        let system = sys();
        let (archive, _) = run_single_cuda(&system, &data, &cfg, 2);
        assert_eq!(archive.decompress().unwrap(), data);
    }
}
