//! The output container and its decompressor.
//!
//! PARSEC's Dedup writes a stream of block records; duplicates are stored
//! as references to the first occurrence, unique blocks as (optionally
//! compressed) payloads. This module defines that container, its binary
//! serialization, and the full decompressor used to verify every pipeline
//! end-to-end — the paper's "guarantee the equivalence with the original
//! implementation" requirement turned into an executable check.

use crate::lzss::{decode_block, encode_block, LzssConfig, LzssError};

/// One block record, in stream order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockEntry {
    /// Unique block whose LZSS form was not smaller: stored raw.
    UniqueRaw(Vec<u8>),
    /// Unique block stored LZSS-compressed.
    UniqueLzss {
        /// Decoded length.
        orig_len: u32,
        /// LZSS bitstream.
        payload: Vec<u8>,
    },
    /// Duplicate of unique block with this ordinal.
    Dup(u64),
}

impl BlockEntry {
    /// Build the entry for a unique block: compress, keep raw if smaller.
    pub fn compress_unique(block: &[u8], cfg: &LzssConfig) -> BlockEntry {
        Self::from_encoded(block, encode_block(block, cfg))
    }

    /// Build the entry for a unique block whose LZSS bytes were already
    /// produced (the GPU path).
    pub fn from_encoded(block: &[u8], encoded: Vec<u8>) -> BlockEntry {
        if encoded.len() < block.len() {
            BlockEntry::UniqueLzss {
                orig_len: block.len() as u32,
                payload: encoded,
            }
        } else {
            BlockEntry::UniqueRaw(block.to_vec())
        }
    }
}

/// A complete deduplicated, compressed archive.
#[derive(Clone, Debug, PartialEq)]
pub struct Archive {
    /// Codec parameters (needed to decode).
    pub lzss: LzssConfig,
    /// Block records in stream order.
    pub entries: Vec<BlockEntry>,
}

/// Errors raised by [`Archive::from_bytes`] / [`Archive::decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// Header magic or version mismatch.
    BadHeader,
    /// Serialized data ended unexpectedly.
    Truncated,
    /// A duplicate record references a unique ordinal that never appeared.
    DanglingDup(u64),
    /// An LZSS payload failed to decode.
    CorruptBlock(LzssError),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::BadHeader => write!(f, "bad archive header"),
            ArchiveError::Truncated => write!(f, "truncated archive"),
            ArchiveError::DanglingDup(n) => write!(f, "dup references unknown unique block {n}"),
            ArchiveError::CorruptBlock(e) => write!(f, "corrupt block payload: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

const MAGIC: &[u8; 4] = b"HDA1";

impl Archive {
    /// New empty archive for the given codec.
    pub fn new(lzss: LzssConfig) -> Self {
        Archive {
            lzss,
            entries: Vec::new(),
        }
    }

    /// Serialized size in bytes (the "compressed size" of Fig. 5's ratio).
    pub fn serialized_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Binary serialization.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.lzss.window as u32).to_le_bytes());
        out.extend_from_slice(&(self.lzss.min_coded as u32).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            match e {
                BlockEntry::UniqueRaw(data) => {
                    out.push(0);
                    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                    out.extend_from_slice(data);
                }
                BlockEntry::UniqueLzss { orig_len, payload } => {
                    out.push(1);
                    out.extend_from_slice(&orig_len.to_le_bytes());
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(payload);
                }
                BlockEntry::Dup(ordinal) => {
                    out.push(2);
                    out.extend_from_slice(&ordinal.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parse a serialized archive.
    pub fn from_bytes(bytes: &[u8]) -> Result<Archive, ArchiveError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ArchiveError> {
            let s = bytes.get(*pos..*pos + n).ok_or(ArchiveError::Truncated)?;
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(ArchiveError::BadHeader);
        }
        let window = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let min_coded = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        if !window.is_power_of_two() || window == 0 {
            return Err(ArchiveError::BadHeader);
        }
        let n = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let tag = take(&mut pos, 1)?[0];
            let entry = match tag {
                0 => {
                    let len =
                        u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
                    BlockEntry::UniqueRaw(take(&mut pos, len)?.to_vec())
                }
                1 => {
                    let orig_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
                    let plen =
                        u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
                    BlockEntry::UniqueLzss {
                        orig_len,
                        payload: take(&mut pos, plen)?.to_vec(),
                    }
                }
                2 => BlockEntry::Dup(u64::from_le_bytes(
                    take(&mut pos, 8)?.try_into().expect("8"),
                )),
                _ => return Err(ArchiveError::BadHeader),
            };
            entries.push(entry);
        }
        Ok(Archive {
            lzss: LzssConfig { window, min_coded },
            entries,
        })
    }

    /// Reconstruct the original input stream.
    pub fn decompress(&self) -> Result<Vec<u8>, ArchiveError> {
        let mut uniques: Vec<Vec<u8>> = Vec::new();
        let mut out = Vec::new();
        for e in &self.entries {
            match e {
                BlockEntry::UniqueRaw(data) => {
                    out.extend_from_slice(data);
                    uniques.push(data.clone());
                }
                BlockEntry::UniqueLzss { orig_len, payload } => {
                    let data = decode_block(payload, *orig_len as usize, &self.lzss)
                        .map_err(ArchiveError::CorruptBlock)?;
                    out.extend_from_slice(&data);
                    uniques.push(data);
                }
                BlockEntry::Dup(ordinal) => {
                    let data = uniques
                        .get(*ordinal as usize)
                        .ok_or(ArchiveError::DanglingDup(*ordinal))?;
                    out.extend_from_slice(data);
                }
            }
        }
        Ok(out)
    }

    /// Counters for reports: (unique blocks, duplicate blocks).
    pub fn block_counts(&self) -> (usize, usize) {
        let dups = self
            .entries
            .iter()
            .filter(|e| matches!(e, BlockEntry::Dup(_)))
            .count();
        (self.entries.len() - dups, dups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Archive {
        let cfg = LzssConfig::default();
        let mut a = Archive::new(cfg);
        a.entries.push(BlockEntry::compress_unique(
            &b"hello hello hello hello hello ".repeat(20),
            &cfg,
        ));
        a.entries.push(BlockEntry::Dup(0));
        a.entries.push(BlockEntry::compress_unique(
            &(0..=255u8).collect::<Vec<_>>(),
            &cfg,
        ));
        a
    }

    #[test]
    fn serialization_roundtrips() {
        let a = sample_archive();
        let bytes = a.to_bytes();
        let b = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decompress_reconstructs_stream_with_dups() {
        let a = sample_archive();
        let out = a.decompress().unwrap();
        let part1 = b"hello hello hello hello hello ".repeat(20);
        let mut expected = part1.clone();
        expected.extend_from_slice(&part1);
        expected.extend((0..=255u8).collect::<Vec<_>>());
        assert_eq!(out, expected);
    }

    #[test]
    fn incompressible_blocks_stored_raw() {
        let cfg = LzssConfig::default();
        // 0..=255 has no repeats >= min_coded within a 256-byte block.
        let e = BlockEntry::compress_unique(&(0..=255u8).collect::<Vec<_>>(), &cfg);
        assert!(matches!(e, BlockEntry::UniqueRaw(_)));
    }

    #[test]
    fn compressible_blocks_stored_lzss() {
        let cfg = LzssConfig::default();
        let e = BlockEntry::compress_unique(&[b'z'; 1000], &cfg);
        assert!(matches!(e, BlockEntry::UniqueLzss { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_archive().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Archive::from_bytes(&bytes), Err(ArchiveError::BadHeader));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_archive().to_bytes();
        for cut in [3, 10, bytes.len() - 1] {
            assert_eq!(
                Archive::from_bytes(&bytes[..cut]),
                Err(ArchiveError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn dangling_dup_rejected() {
        let mut a = Archive::new(LzssConfig::default());
        a.entries.push(BlockEntry::Dup(7));
        assert_eq!(a.decompress(), Err(ArchiveError::DanglingDup(7)));
    }

    #[test]
    fn block_counts() {
        let a = sample_archive();
        assert_eq!(a.block_counts(), (2, 1));
    }

    #[test]
    fn empty_archive_roundtrips() {
        let a = Archive::new(LzssConfig::default());
        let b = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(b.decompress().unwrap(), Vec::<u8>::new());
    }
}
