//! Batches and blocks — the data layout of Fig. 2.
//!
//! The paper's GPU redesign fixes the *batch* size (1 MB) so kernels always
//! get a worthwhile amount of work, and keeps rabin fingerprinting for the
//! *block* boundaries inside each batch (`startPos`), "to still benefit
//! from the rabin fingerprint ... saved all the indexes where the algorithm
//! would fragment the data" (§IV-B).

use crate::rabin::{chunk_starts, RabinParams};

/// Default batch size: the paper's 1 MB.
pub const DEFAULT_BATCH_SIZE: usize = 1 << 20;

/// A fixed-size batch of input data plus its content-defined block starts.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Position of this batch in the stream (reorder key for stage 5).
    pub index: usize,
    /// Raw input bytes (≤ batch size; the tail batch may be shorter).
    pub data: Vec<u8>,
    /// Start offset of every block within `data` (Fig. 2's `startPos`);
    /// `starts[0] == 0`.
    pub starts: Vec<usize>,
}

impl Batch {
    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.starts.len()
    }

    /// Byte range of block `b`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let start = self.starts[b];
        let end = self.starts.get(b + 1).copied().unwrap_or(self.data.len());
        start..end
    }

    /// Borrow block `b`'s bytes.
    pub fn block(&self, b: usize) -> &[u8] {
        &self.data[self.block_range(b)]
    }
}

/// Split `input` into fixed-size batches and fingerprint each (stage 1 of
/// the Fig. 3 pipeline, minus the file I/O).
pub fn make_batches(input: &[u8], batch_size: usize, rabin: &RabinParams) -> Vec<Batch> {
    assert!(batch_size > 0);
    input
        .chunks(batch_size)
        .enumerate()
        .map(|(index, chunk)| Batch {
            index,
            data: chunk.to_vec(),
            starts: chunk_starts(chunk, rabin),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn batches_cover_input_exactly() {
        let input = data(100_000);
        let batches = make_batches(&input, 1 << 14, &RabinParams::default());
        let glued: Vec<u8> = batches.iter().flat_map(|b| b.data.clone()).collect();
        assert_eq!(glued, input);
        assert_eq!(batches.len(), 100_000usize.div_ceil(1 << 14));
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.index, i);
        }
    }

    #[test]
    fn blocks_tile_each_batch() {
        let input = data(50_000);
        for b in make_batches(&input, 1 << 14, &RabinParams::default()) {
            let mut covered = 0;
            for blk in 0..b.block_count() {
                let r = b.block_range(blk);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, b.data.len());
        }
    }

    #[test]
    fn empty_input_yields_no_batches() {
        assert!(make_batches(&[], 1024, &RabinParams::default()).is_empty());
    }

    #[test]
    fn tail_batch_is_short() {
        let input = data(1000);
        let batches = make_batches(&input, 512, &RabinParams::default());
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].data.len(), 512);
        assert_eq!(batches[1].data.len(), 488);
    }
}
