//! LZSS compression, CPU reference implementation.
//!
//! This is the compressor the paper swapped in for PARSEC's Bzip2/Gzip
//! because a GPU implementation of it existed from their earlier work \[24\].
//! The codec here matches that design:
//!
//! * sliding window limited to the **current block** (so blocks stay
//!   independently decompressible, as Dedup requires);
//! * greedy longest-match parsing, first-found-wins among equal lengths —
//!   the same search policy as Listing 3's `FindMatchKernel`, so the GPU
//!   path (match arrays computed on device, encoding on host) produces a
//!   byte-identical stream;
//! * bit-packed output: literal = `0` + 8 bits; match = `1` + offset bits
//!   + 4-bit length.
//!
//! The default window is 1 KiB (the paper's code uses 4 KiB; the reduction
//! keeps the naive O(n·window) search tractable at this reproduction's
//! scale and is recorded in DESIGN.md). Window size is configurable.

/// Codec parameters. `max_coded` is derived: `min_coded + 15` (4-bit
/// length field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LzssConfig {
    /// Sliding-window width in bytes (power of two).
    pub window: usize,
    /// Shortest match worth encoding.
    pub min_coded: usize,
}

impl Default for LzssConfig {
    fn default() -> Self {
        LzssConfig {
            window: 1024,
            min_coded: 3,
        }
    }
}

impl LzssConfig {
    /// Longest encodable match.
    pub fn max_coded(&self) -> usize {
        self.min_coded + 15
    }

    /// Bits used to store a match offset.
    pub fn offset_bits(&self) -> u32 {
        debug_assert!(self.window.is_power_of_two());
        self.window.trailing_zeros()
    }
}

/// A match found at some position: `dist` bytes back, `len` bytes long.
/// `len == 0` means "no usable match".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Match {
    /// Distance back from the current position (1..=window).
    pub dist: u32,
    /// Match length (0 or min_coded..=max_coded).
    pub len: u32,
}

/// Find the longest match for `pos` within `[block_start, pos)`, never
/// reading past `block_end`; returns the match and the number of byte
/// probes performed (the GPU kernel's work unit).
///
/// Search policy (identical to Listing 3): scan candidates forward from the
/// window start, extend while bytes match, keep the first strictly-longest.
/// The match must end at or before `pos` (no self-overlap).
pub fn find_match(
    data: &[u8],
    block_start: usize,
    block_end: usize,
    pos: usize,
    cfg: &LzssConfig,
) -> (Match, u64) {
    debug_assert!(block_start <= pos && pos < block_end && block_end <= data.len());
    let w0 = block_start.max(pos.saturating_sub(cfg.window));
    let max_len = cfg.max_coded().min(block_end - pos);
    let mut best = Match::default();
    let mut best_len = 0usize;
    let mut probes: u64 = 0;
    for current in w0..pos {
        probes += 1;
        if best_len > 0 {
            // A candidate can only beat `best_len` if it matches there too
            // (and reaches past it without overlapping `pos`). This filter
            // rejects almost every candidate on repetitive data and does
            // not change the result: rejected candidates could never have
            // produced a strictly longer match.
            if current + best_len >= pos || data[current + best_len] != data[pos + best_len] {
                continue;
            }
        }
        if data[current] != data[pos] {
            continue;
        }
        let mut j = 1usize;
        while j < max_len && current + j < pos && data[current + j] == data[pos + j] {
            probes += 1;
            j += 1;
        }
        if j > best_len && j >= cfg.min_coded {
            best_len = j;
            best = Match {
                dist: (pos - current) as u32,
                len: j as u32,
            };
            if j == max_len {
                break; // cannot improve
            }
        }
    }
    (best, probes)
}

/// Decoding failure: the bitstream is inconsistent with `orig_len` or
/// references data before the start of the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzssError {
    /// The stream ended before `orig_len` bytes were produced.
    Truncated,
    /// A match token points before the beginning of the output.
    BadOffset {
        /// Output length when the bad token was met.
        at: usize,
        /// The (impossible) back-distance.
        dist: usize,
    },
    /// Decoding produced more than `orig_len` bytes (corrupt length field).
    Overrun,
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "truncated LZSS stream"),
            LzssError::BadOffset { at, dist } => {
                write!(
                    f,
                    "LZSS offset {dist} at output position {at} points before the block"
                )
            }
            LzssError::Overrun => write!(f, "LZSS stream decodes past the declared length"),
        }
    }
}

impl std::error::Error for LzssError {}

/// Bit-level writer, MSB-first within each byte.
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    n: u32,
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            n: 0,
        }
    }

    /// Append the low `bits` bits of `value`.
    pub fn push(&mut self, value: u32, bits: u32) {
        debug_assert!(bits <= 24 && (bits == 32 || value < (1 << bits)));
        self.acc = (self.acc << bits) | value;
        self.n += bits;
        while self.n >= 8 {
            self.n -= 8;
            self.out.push((self.acc >> self.n) as u8);
        }
    }

    /// Pad with zeros to a byte boundary and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.n > 0 {
            let pad = 8 - self.n;
            self.push(0, pad);
        }
        self.out
    }
}

/// Bit-level reader matching [`BitWriter`].
pub struct BitReader<'a> {
    data: &'a [u8],
    byte: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            byte: 0,
            bit: 0,
        }
    }

    /// Read `bits` bits (MSB-first). Returns `None` past the end.
    pub fn read(&mut self, bits: u32) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..bits {
            if self.byte >= self.data.len() {
                return None;
            }
            let b = (self.data[self.byte] >> (7 - self.bit)) & 1;
            v = (v << 1) | b as u32;
            self.bit += 1;
            if self.bit == 8 {
                self.bit = 0;
                self.byte += 1;
            }
        }
        Some(v)
    }
}

/// Compress one block with the naive CPU search. Returns the bitstream.
pub fn encode_block(block: &[u8], cfg: &LzssConfig) -> Vec<u8> {
    let matches = |pos: usize| find_match(block, 0, block.len(), pos, cfg).0;
    encode_with(block, cfg, matches)
}

/// Compress one block from precomputed per-position matches (the GPU path:
/// `FindMatchKernel` fills `matches`, the host walks them greedily).
/// `matches[i]` must describe position `i` of `block`.
pub fn encode_block_from_matches(block: &[u8], matches: &[Match], cfg: &LzssConfig) -> Vec<u8> {
    assert_eq!(matches.len(), block.len());
    encode_with(block, cfg, |pos| matches[pos])
}

fn encode_with(
    block: &[u8],
    cfg: &LzssConfig,
    mut match_at: impl FnMut(usize) -> Match,
) -> Vec<u8> {
    let mut w = BitWriter::new();
    let off_bits = cfg.offset_bits();
    let mut pos = 0usize;
    while pos < block.len() {
        let m = match_at(pos);
        if m.len as usize >= cfg.min_coded {
            debug_assert!(m.dist as usize <= cfg.window && m.dist >= 1);
            w.push(1, 1);
            w.push(m.dist - 1, off_bits);
            w.push(m.len - cfg.min_coded as u32, 4);
            pos += m.len as usize;
        } else {
            w.push(0, 1);
            w.push(block[pos] as u32, 8);
            pos += 1;
        }
    }
    w.finish()
}

/// Decompress one block; `orig_len` is the decoded size. Corrupt streams
/// are reported, never panicked on.
pub fn decode_block(
    encoded: &[u8],
    orig_len: usize,
    cfg: &LzssConfig,
) -> Result<Vec<u8>, LzssError> {
    let mut r = BitReader::new(encoded);
    let off_bits = cfg.offset_bits();
    let mut out = Vec::with_capacity(orig_len);
    while out.len() < orig_len {
        let flag = r.read(1).ok_or(LzssError::Truncated)?;
        if flag == 0 {
            out.push(r.read(8).ok_or(LzssError::Truncated)? as u8);
        } else {
            let dist = r.read(off_bits).ok_or(LzssError::Truncated)? as usize + 1;
            let len = r.read(4).ok_or(LzssError::Truncated)? as usize + cfg.min_coded;
            let start = out.len().checked_sub(dist).ok_or(LzssError::BadOffset {
                at: out.len(),
                dist,
            })?;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != orig_len {
        return Err(LzssError::Overrun);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LzssConfig {
        LzssConfig::default()
    }

    fn roundtrip(data: &[u8], cfg: &LzssConfig) {
        let enc = encode_block(data, cfg);
        let dec = decode_block(&enc, data.len(), cfg).expect("roundtrip decodes");
        assert_eq!(dec, data);
    }

    #[test]
    fn empty_and_single_byte() {
        roundtrip(b"", &cfg());
        roundtrip(b"x", &cfg());
    }

    #[test]
    fn repetitive_data_roundtrips_and_compresses() {
        let data: Vec<u8> = b"abcabcabcabc".iter().cycle().take(4000).copied().collect();
        let enc = encode_block(&data, &cfg());
        assert!(
            enc.len() < data.len() / 2,
            "repetitive data must compress: {} vs {}",
            enc.len(),
            data.len()
        );
        assert_eq!(decode_block(&enc, data.len(), &cfg()).unwrap(), data);
    }

    #[test]
    fn random_data_roundtrips_with_bounded_expansion() {
        let mut s = 12345u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 33) as u8
            })
            .collect();
        let enc = encode_block(&data, &cfg());
        // Worst case: 9 bits per literal = 12.5% expansion.
        assert!(enc.len() <= data.len() * 9 / 8 + 2);
        assert_eq!(decode_block(&enc, data.len(), &cfg()).unwrap(), data);
    }

    #[test]
    fn text_roundtrips() {
        let data = b"the quick brown fox jumps over the lazy dog; \
                     the quick brown fox jumps over the lazy dog again"
            .repeat(20);
        roundtrip(&data, &cfg());
    }

    #[test]
    fn all_window_sizes_roundtrip() {
        let data = b"mississippi mississippi mississippi".repeat(30);
        for window in [64usize, 256, 1024, 4096] {
            let c = LzssConfig {
                window,
                min_coded: 3,
            };
            roundtrip(&data, &c);
        }
    }

    #[test]
    fn no_self_overlap_in_matches() {
        // Listing 3 forbids a match extending into the lookahead; dist
        // must be >= len for every emitted match.
        let data = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec();
        let c = cfg();
        for pos in 1..data.len() {
            let (m, _) = find_match(&data, 0, data.len(), pos, &c);
            if m.len > 0 {
                assert!(
                    m.dist >= m.len,
                    "pos {pos}: dist {} < len {}",
                    m.dist,
                    m.len
                );
            }
        }
        roundtrip(&data, &c);
    }

    #[test]
    fn find_match_respects_block_bounds() {
        // Data repeats across the block boundary but matches must not
        // reach into the previous block.
        let data = b"abcdefghabcdefgh".to_vec();
        let c = LzssConfig {
            window: 8,
            min_coded: 3,
        };
        // Block starts at 8: position 8 sees an empty window.
        let (m, _) = find_match(&data, 8, 16, 8, &c);
        assert_eq!(m.len, 0);
    }

    #[test]
    fn matches_capped_at_max_coded() {
        let data = vec![7u8; 200];
        let c = cfg();
        let (m, _) = find_match(&data, 0, 200, 100, &c);
        assert!(m.len as usize <= c.max_coded());
    }

    /// The unfiltered reference search (Listing 3's exact loop), for
    /// equivalence testing of the best-len-filtered implementation.
    fn find_match_naive(
        data: &[u8],
        block_start: usize,
        block_end: usize,
        pos: usize,
        cfg: &LzssConfig,
    ) -> Match {
        let w0 = block_start.max(pos.saturating_sub(cfg.window));
        let max_len = cfg.max_coded().min(block_end - pos);
        let mut best = Match::default();
        for current in w0..pos {
            if data[current] != data[pos] {
                continue;
            }
            let mut j = 1usize;
            while j < max_len && current + j < pos && data[current + j] == data[pos + j] {
                j += 1;
            }
            if j > best.len as usize && j >= cfg.min_coded {
                best = Match {
                    dist: (pos - current) as u32,
                    len: j as u32,
                };
                if j == max_len {
                    break;
                }
            }
        }
        best
    }

    #[test]
    fn filtered_search_equals_naive_search() {
        let patterns: Vec<Vec<u8>> = vec![
            vec![0u8; 600],                                             // constant runs
            b"abcabcabcabcxyz".repeat(50),                              // short period
            b"the quick brown fox jumps over the lazy dog ".repeat(20), // text
            {
                let mut s = 99u64;
                (0..800)
                    .map(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (s >> 33) as u8
                    })
                    .collect() // incompressible
            },
            b"aabbaabbaabbccddccdd".repeat(40), // mixed periods
        ];
        let cfg = LzssConfig {
            window: 128,
            min_coded: 3,
        };
        for (pi, data) in patterns.iter().enumerate() {
            for pos in 0..data.len() {
                let (fast, _) = find_match(data, 0, data.len(), pos, &cfg);
                let naive = find_match_naive(data, 0, data.len(), pos, &cfg);
                assert_eq!(fast, naive, "pattern {pi}, pos {pos}");
            }
        }
    }

    #[test]
    fn repetitive_data_search_is_cheap() {
        // The best-len filter must keep probe counts near O(window) even
        // on pathological runs (this was a multi-minute hotspot).
        let data = vec![7u8; 4096];
        let cfg = LzssConfig {
            window: 1024,
            min_coded: 3,
        };
        let (_, probes) = find_match(&data, 0, data.len(), 2048, &cfg);
        assert!(
            probes < 100,
            "constant run must early-exit: {probes} probes"
        );
    }

    #[test]
    fn encode_from_matches_equals_cpu_encoding() {
        let data = b"abracadabra abracadabra banana banana banana".repeat(10);
        let c = cfg();
        let matches: Vec<Match> = (0..data.len())
            .map(|pos| find_match(&data, 0, data.len(), pos, &c).0)
            .collect();
        let from_matches = encode_block_from_matches(&data, &matches, &c);
        let direct = encode_block(&data, &c);
        assert_eq!(from_matches, direct);
    }

    #[test]
    fn bitio_roundtrips_arbitrary_fields() {
        let mut w = BitWriter::new();
        let fields = [(5u32, 3u32), (0, 1), (1023, 10), (15, 4), (255, 8), (1, 1)];
        for &(v, n) in &fields {
            w.push(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read(n), Some(v));
        }
    }

    #[test]
    fn bit_reader_returns_none_past_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read(8), Some(0xFF));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn corrupt_stream_is_reported_not_panicked() {
        // A match token pointing before the start of output.
        let mut w = BitWriter::new();
        w.push(1, 1); // match flag
        w.push(50, cfg().offset_bits()); // dist 51 with empty history
        w.push(0, 4);
        let bytes = w.finish();
        assert_eq!(
            decode_block(&bytes, 3, &cfg()),
            Err(LzssError::BadOffset { at: 0, dist: 51 })
        );
        // Truncation: ask for more output than the stream encodes.
        let enc = encode_block(b"abc", &cfg());
        assert_eq!(decode_block(&enc, 10, &cfg()), Err(LzssError::Truncated));
    }
}
