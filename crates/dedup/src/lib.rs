//! `dedup` — the Dedup case study (paper §IV-B): deduplicating compression
//! redesigned for GPUs.
//!
//! PARSEC's Dedup splits a stream into content-defined blocks, detects
//! duplicates by SHA-1, and compresses unique blocks. The paper's redesign
//! keeps rabin fingerprinting on the CPU over fixed 1 MB batches (Fig. 2),
//! offloads SHA-1 and LZSS match search to GPUs, and structures the whole
//! thing as a 5-stage SPar pipeline (Fig. 3). This crate builds all of it
//! from scratch:
//!
//! * [`rabin`] — rolling fingerprint and content-defined chunking;
//! * [`mod@sha1`] — FIPS 180-1 (test vectors included);
//! * [`lzss`] — the block-bounded LZSS codec + `find_match` search;
//! * [`batch`] — 1 MB batches with `startPos` block indexes (Fig. 2);
//! * [`kernels`] — GPU kernels: SHA-1 per block, `FindMatchKernel`
//!   (Listing 3), plus the slow per-block variants;
//! * [`dedupe`] — the global duplicate cache (stage 3);
//! * [`archive`] — output container **and full decompressor**, so every
//!   version is verified end-to-end;
//! * [`backend`] — CPU / CUDA / OpenCL stage implementations;
//! * [`pipeline`] — the 5-stage SPar pipeline (Fig. 3) + sequential
//!   reference;
//! * [`single`] — single-threaded CUDA/OpenCL drivers with 1×/2× memory
//!   spaces (Fig. 5's standalone bars, including the pageable-memory
//!   asymmetry);
//! * [`datasets`] — seeded synthetic stand-ins for PARSEC native / Linux
//!   source / Silesia;
//! * [`costs`] — the host-side CPU cost model.

pub mod archive;
pub mod backend;
pub mod batch;
pub mod costs;
pub mod datasets;
pub mod dedupe;
pub mod io;
pub mod kernels;
pub mod lzss;
pub mod pipeline;
pub mod rabin;
pub mod sha1;
pub mod sha1mb;
pub mod single;
pub mod stats;

pub use archive::{Archive, ArchiveError, BlockEntry};
pub use backend::{BackendCtx, CpuBackend, CudaBackend, DedupBackend, OclBackend, OffloadBackend};
pub use batch::{make_batches, Batch, DEFAULT_BATCH_SIZE};
pub use costs::HostCosts;
pub use dedupe::{BlockClass, DedupCache};
pub use io::{compress_file, decompress_file, IoError};
pub use lzss::{LzssConfig, Match};
pub use pipeline::{run_pipeline, run_pipeline_rec, run_sequential, DedupConfig};
pub use rabin::RabinParams;
pub use sha1::{sha1, Digest, Sha1};
pub use stats::ArchiveStats;
