//! Multi-buffer SHA-1: eight independent compressions per call, one
//! message per 32-bit AVX2 lane.
//!
//! SHA-1 is pure 32-bit integer arithmetic (xor/and/or, rotates,
//! wrapping adds), so running eight messages in the lanes of a `__m256i`
//! is *exactly* eight interleaved runs of the scalar
//! [`compress_block`] — bit-identical by
//! construction, no floating-point caveats. This is the classic
//! "multi-buffer" scheme (one message per lane, not a parallelization of
//! a single hash: SHA-1's chaining makes the latter impossible), and it
//! is what makes the hashsearch CPU fallback competitive: the nonce
//! search hashes thousands of independent one-block suffixes, a perfect
//! lane-parallel workload.
//!
//! The AVX2 path is runtime-detected; everywhere else [`compress8`]
//! falls back to eight scalar compressions with the same results.

use crate::sha1::compress_block;

/// Whether the 8-lane compression runs vectorized on this machine.
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Compress one 64-byte block into each of eight chaining states:
/// `states[l]` absorbs `blocks[l]`. Lane-parallel under AVX2, scalar
/// loop otherwise; both orders are bit-identical.
pub fn compress8(states: &mut [[u32; 5]; 8], blocks: &[[u8; 64]; 8]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { compress8_avx2(states, blocks) };
        return;
    }
    for (h, block) in states.iter_mut().zip(blocks) {
        compress_block(h, block);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn compress8_avx2(states: &mut [[u32; 5]; 8], blocks: &[[u8; 64]; 8]) {
    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn rotl1(v: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi32::<1>(v), _mm256_srli_epi32::<31>(v))
    }
    #[inline(always)]
    unsafe fn rotl5(v: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi32::<5>(v), _mm256_srli_epi32::<27>(v))
    }
    #[inline(always)]
    unsafe fn rotl30(v: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi32::<30>(v), _mm256_srli_epi32::<2>(v))
    }
    /// Big-endian word `i` of block `l` (what the scalar schedule loads).
    #[inline(always)]
    fn word(block: &[u8; 64], i: usize) -> i32 {
        u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes")) as i32
    }
    /// Lane `l` = `xs[l]` (`_mm256_set_epi32` takes lanes high-to-low).
    #[inline(always)]
    unsafe fn gather(xs: [i32; 8]) -> __m256i {
        _mm256_set_epi32(xs[7], xs[6], xs[5], xs[4], xs[3], xs[2], xs[1], xs[0])
    }

    // Transpose the eight message schedules into lane-parallel form.
    let mut w = [_mm256_setzero_si256(); 80];
    for (i, slot) in w.iter_mut().enumerate().take(16) {
        *slot = gather([
            word(&blocks[0], i),
            word(&blocks[1], i),
            word(&blocks[2], i),
            word(&blocks[3], i),
            word(&blocks[4], i),
            word(&blocks[5], i),
            word(&blocks[6], i),
            word(&blocks[7], i),
        ]);
    }
    for i in 16..80 {
        w[i] = rotl1(_mm256_xor_si256(
            _mm256_xor_si256(w[i - 3], w[i - 8]),
            _mm256_xor_si256(w[i - 14], w[i - 16]),
        ));
    }

    // Transpose the chaining states: one vector per SHA-1 word.
    let mut hv = [_mm256_setzero_si256(); 5];
    for (j, slot) in hv.iter_mut().enumerate() {
        *slot = gather([
            states[0][j] as i32,
            states[1][j] as i32,
            states[2][j] as i32,
            states[3][j] as i32,
            states[4][j] as i32,
            states[5][j] as i32,
            states[6][j] as i32,
            states[7][j] as i32,
        ]);
    }
    let [mut a, mut b, mut c, mut d, mut e] = hv;

    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            // ch: (b & c) | (!b & d) — andnot computes !b & d.
            0..=19 => (
                _mm256_or_si256(_mm256_and_si256(b, c), _mm256_andnot_si256(b, d)),
                0x5A82_7999u32,
            ),
            20..=39 => (_mm256_xor_si256(_mm256_xor_si256(b, c), d), 0x6ED9_EBA1u32),
            // maj: (b & c) | (b & d) | (c & d)
            40..=59 => (
                _mm256_or_si256(
                    _mm256_or_si256(_mm256_and_si256(b, c), _mm256_and_si256(b, d)),
                    _mm256_and_si256(c, d),
                ),
                0x8F1B_BCDCu32,
            ),
            _ => (_mm256_xor_si256(_mm256_xor_si256(b, c), d), 0xCA62_C1D6u32),
        };
        let tmp = _mm256_add_epi32(
            _mm256_add_epi32(
                _mm256_add_epi32(rotl5(a), f),
                _mm256_add_epi32(e, _mm256_set1_epi32(k as i32)),
            ),
            wi,
        );
        e = d;
        d = c;
        c = rotl30(b);
        b = a;
        a = tmp;
    }

    // Feed-forward and transpose back out.
    let out = [a, b, c, d, e];
    for (j, (&v, &h0)) in out.iter().zip(hv.iter()).enumerate() {
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), _mm256_add_epi32(h0, v));
        for (l, &lane) in lanes.iter().enumerate() {
            states[l][j] = lane as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::{sha1, Sha1};

    /// Build the single padded block for a message of `len <= 55` bytes.
    fn padded_block(msg: &[u8]) -> [u8; 64] {
        assert!(msg.len() <= 55);
        let mut block = [0u8; 64];
        block[..msg.len()].copy_from_slice(msg);
        block[msg.len()] = 0x80;
        block[56..].copy_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
        block
    }

    const IV: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];

    #[test]
    fn eight_lanes_match_eight_scalar_hashes() {
        let msgs: Vec<Vec<u8>> = (0..8u8)
            .map(|l| (0..(5 + l as usize * 6)).map(|i| l ^ (i as u8)).collect())
            .collect();
        let blocks: [[u8; 64]; 8] = std::array::from_fn(|l| padded_block(&msgs[l]));
        let mut states = [IV; 8];
        compress8(&mut states, &blocks);
        for l in 0..8 {
            let expect = sha1(&msgs[l]).0;
            let mut got = [0u8; 20];
            for (j, wrd) in states[l].iter().enumerate() {
                got[j * 4..j * 4 + 4].copy_from_slice(&wrd.to_be_bytes());
            }
            assert_eq!(got, expect, "lane {l}");
        }
    }

    #[test]
    fn lanes_are_independent() {
        // Perturbing one lane's block must not disturb the other seven.
        let base = padded_block(b"base message");
        let mut blocks = [base; 8];
        blocks[3] = padded_block(b"different");
        let mut states = [IV; 8];
        compress8(&mut states, &blocks);
        for l in 0..8 {
            if l == 3 {
                assert_ne!(states[l], states[0]);
            } else {
                assert_eq!(states[l], states[0], "lane {l}");
            }
        }
    }

    #[test]
    fn multi_block_chaining_matches_incremental() {
        // Chain two compress8 calls and compare with the incremental
        // hasher over the 128-byte concatenation.
        let first: [u8; 64] = std::array::from_fn(|i| i as u8);
        let mut msgs: Vec<Vec<u8>> = Vec::new();
        let mut blocks2 = [[0u8; 64]; 8];
        for (l, block) in blocks2.iter_mut().enumerate() {
            let tail: Vec<u8> = (0..20).map(|i| (l * 31 + i) as u8).collect();
            *block = padded_block(&tail);
            // The real message is first-block bytes ++ tail, but the
            // padded tail block encodes only the tail length; fix it up
            // to the full length as a streaming hasher would.
            block[56..].copy_from_slice(&((64 + tail.len() as u64) * 8).to_be_bytes());
            let mut m = first.to_vec();
            m.extend_from_slice(&tail);
            msgs.push(m);
        }
        let mut states = [IV; 8];
        compress8(&mut states, &[first; 8]);
        compress8(&mut states, &blocks2);
        for l in 0..8 {
            let mut h = Sha1::new();
            h.update(&msgs[l]);
            let expect = h.finalize().0;
            let mut got = [0u8; 20];
            for (j, wrd) in states[l].iter().enumerate() {
                got[j * 4..j * 4 + 4].copy_from_slice(&wrd.to_be_bytes());
            }
            assert_eq!(got, expect, "lane {l}");
        }
    }
}
