//! Synthetic dataset generators standing in for the paper's three inputs.
//!
//! The paper evaluates Dedup on (1) PARSEC's native input (185 MB), (2) the
//! Linux kernel source tree (816 MB) and (3) the Silesia corpus (202 MB).
//! None can be redistributed here, so each generator synthesizes data with
//! the property that matters to Dedup — the mix of *duplication* (whole
//! repeated regions, feeding stage 3) and *local redundancy* (feeding
//! LZSS) — documented per generator. Everything is seeded and
//! deterministic.

use simtime::rng::XorShift64;

/// A generated dataset plus its paper-scale metadata.
pub struct Dataset {
    /// Short identifier used in reports ("parsec", "linux", "silesia").
    pub name: &'static str,
    /// What the paper used (for EXPERIMENTS.md bookkeeping).
    pub paper_description: &'static str,
    /// The paper's input size in MB.
    pub paper_size_mb: f64,
    /// The synthetic bytes.
    pub data: Vec<u8>,
}

impl Dataset {
    /// Size of the generated data in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty (never, for the stock generators).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// All three paper datasets at the given synthetic size.
pub fn all(size: usize, seed: u64) -> Vec<Dataset> {
    vec![
        parsec_like(size, seed),
        linux_like(size, seed ^ 0x9E37_79B9_7F4A_7C15),
        silesia_like(size, seed ^ 0x85EB_CA6B_27D4_EB4F),
    ]
}

/// PARSEC `native` stand-in: a disk-image-like mix of incompressible
/// binary and text segments in 4 KiB-aligned extents, with ~1/3 of
/// segments exact repeats of earlier ones (backup-style duplication).
pub fn parsec_like(size: usize, seed: u64) -> Dataset {
    const EXTENT: usize = 4096;
    let mut rng = XorShift64::new(seed);
    let mut data = Vec::with_capacity(size);
    let mut history: Vec<Vec<u8>> = Vec::new();
    while data.len() < size {
        let roll: f64 = rng.next_f64();
        if roll < 0.35 && !history.is_empty() {
            // Repeat an earlier segment verbatim (a duplicate region).
            let idx = rng.range_usize(0, history.len());
            data.extend_from_slice(&history[idx].clone());
        } else if roll < 0.65 {
            // Incompressible binary segment.
            let mut seg = random_segment(&mut rng, EXTENT, 8 * EXTENT);
            seg.truncate(seg.len() / EXTENT * EXTENT);
            data.extend_from_slice(&seg);
            keep(&mut history, seg);
        } else {
            // Text-ish segment (log lines): locally redundant.
            let mut seg = log_segment(&mut rng, EXTENT, 8 * EXTENT);
            seg.truncate((seg.len() / EXTENT * EXTENT).max(EXTENT));
            data.extend_from_slice(&seg);
            keep(&mut history, seg);
        }
    }
    data.truncate(size);
    Dataset {
        name: "parsec",
        paper_description: "PARSEC native input for dedup (185 MB)",
        paper_size_mb: 185.0,
        data,
    }
}

/// Linux-kernel-source stand-in: C-like text files sharing license
/// headers and common boilerplate — high cross-file duplication and very
/// compressible content.
pub fn linux_like(size: usize, seed: u64) -> Dataset {
    let mut rng = XorShift64::new(seed);
    let license = b"/* SPDX-License-Identifier: GPL-2.0\n * This program is free software; \
                    you can redistribute it and/or modify it under the terms of the GNU \
                    General Public License as published by the Free Software Foundation.\n */\n"
        .to_vec();
    let common_includes =
        b"#include <linux/kernel.h>\n#include <linux/module.h>\n#include <linux/init.h>\n\n"
            .to_vec();
    let mut data = Vec::with_capacity(size);
    let mut file_no = 0u32;
    while data.len() < size {
        data.extend_from_slice(&license);
        data.extend_from_slice(&common_includes);
        let funcs = rng.range_u32(2, 8);
        for f in 0..funcs {
            let name = format!("static int driver_{file_no}_op_{f}(struct device *dev)\n");
            data.extend_from_slice(name.as_bytes());
            data.extend_from_slice(b"{\n\tint ret = 0;\n");
            for _ in 0..rng.range_u32(3, 20) {
                let line = match rng.range_u32(0, 4) {
                    0 => format!(
                        "\tret = readl(dev->base + 0x{:02x});\n",
                        rng.range_u32(0, 256)
                    ),
                    1 => format!(
                        "\tif (ret < 0)\n\t\treturn -EINVAL; /* {:04x} */\n",
                        rng.range_u32(0, 65536)
                    ),
                    2 => "\tusleep_range(100, 200);\n".to_string(),
                    _ => format!("\twritel(0x{:04x}, dev->base);\n", rng.range_u32(0, 65536)),
                };
                data.extend_from_slice(line.as_bytes());
            }
            data.extend_from_slice(b"\treturn ret;\n}\n\n");
        }
        file_no += 1;
    }
    data.truncate(size);
    Dataset {
        name: "linux",
        paper_description: "Linux kernel source tree (816 MB)",
        paper_size_mb: 816.0,
        data,
    }
}

/// Silesia-corpus stand-in: a heterogeneous concatenation of XML-ish
/// records (very compressible), raw binary (incompressible) and database
/// rows with shared prefixes (moderately compressible), with little
/// whole-region duplication.
pub fn silesia_like(size: usize, seed: u64) -> Dataset {
    let mut rng = XorShift64::new(seed);
    let mut data = Vec::with_capacity(size);
    let third = size / 3;
    // XML-ish part.
    while data.len() < third {
        let id: u32 = rng.range_u32(0, 1_000_000);
        let rec = format!(
            "<record id=\"{id}\"><name>entry-{id}</name><value>{}</value><flags>0x{:04x}</flags></record>\n",
            rng.range_u32(0, 10_000),
            rng.range_u32(0, 65536),
        );
        data.extend_from_slice(rec.as_bytes());
    }
    // Binary part.
    while data.len() < 2 * third {
        let seg = random_segment(&mut rng, 8192, 64 * 1024);
        data.extend_from_slice(&seg);
    }
    // Database-like rows.
    let mut row_id = 0u64;
    while data.len() < size {
        let row = format!(
            "ROW|{row_id:012}|CUSTOMER|{:08}|BALANCE|{:010}|STATUS|ACTIVE|PAD|{}\n",
            rng.range_u64(0, 100_000_000),
            rng.range_u64(0, 10_000_000),
            "#".repeat(rng.range_usize(0, 24)),
        );
        data.extend_from_slice(row.as_bytes());
        row_id += 1;
    }
    data.truncate(size);
    Dataset {
        name: "silesia",
        paper_description: "Silesia corpus (202.13 MB of real-world files)",
        paper_size_mb: 202.13,
        data,
    }
}

fn random_segment(rng: &mut XorShift64, min: usize, max: usize) -> Vec<u8> {
    let n = rng.range_usize(min, max + 1);
    rng.bytes(n)
}

fn log_segment(rng: &mut XorShift64, min: usize, max: usize) -> Vec<u8> {
    let target = rng.range_usize(min, max + 1);
    let mut v = Vec::with_capacity(target + 80);
    let hosts = ["web-01", "web-02", "db-primary", "cache-a"];
    while v.len() < target {
        let line = format!(
            "2019-02-{:02}T{:02}:{:02}:{:02}Z {} httpd[{}]: GET /api/v1/items/{} {} {}ms\n",
            rng.range_u32(1, 28),
            rng.range_u32(0, 24),
            rng.range_u32(0, 60),
            rng.range_u32(0, 60),
            hosts[rng.range_usize(0, hosts.len())],
            rng.range_u32(1000, 9999),
            rng.range_u32(0, 100_000),
            if rng.range_u32(0, 10) == 0 { 404 } else { 200 },
            rng.range_u32(1, 500),
        );
        v.extend_from_slice(line.as_bytes());
    }
    v
}

fn keep(history: &mut Vec<Vec<u8>>, seg: Vec<u8>) {
    if history.len() < 64 {
        history.push(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_hit_requested_size() {
        for ds in all(100_000, 1) {
            assert_eq!(ds.len(), 100_000, "{}", ds.name);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = linux_like(50_000, 7);
        let b = linux_like(50_000, 7);
        assert_eq!(a.data, b.data);
        let c = linux_like(50_000, 8);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn parsec_like_contains_duplicate_regions() {
        let ds = parsec_like(400_000, 3);
        // Chunk into 4K pieces and count exact repeats.
        use std::collections::HashMap;
        let mut seen: HashMap<&[u8], u32> = HashMap::new();
        for chunk in ds.data.chunks_exact(4096) {
            *seen.entry(chunk).or_default() += 1;
        }
        let dups: u32 = seen.values().filter(|&&c| c > 1).map(|&c| c - 1).sum();
        assert!(dups > 0, "expected duplicate 4K chunks");
    }

    #[test]
    fn linux_like_is_highly_compressible() {
        let ds = linux_like(100_000, 4);
        let cfg = crate::lzss::LzssConfig::default();
        let enc = crate::lzss::encode_block(&ds.data[..20_000], &cfg);
        assert!(
            enc.len() < 20_000 * 7 / 10,
            "source-like text must compress well: {} / 20000",
            enc.len()
        );
    }

    #[test]
    fn silesia_like_has_mixed_compressibility() {
        let ds = silesia_like(300_000, 5);
        let cfg = crate::lzss::LzssConfig::default();
        let xml = crate::lzss::encode_block(&ds.data[..10_000], &cfg);
        let bin_start = ds.len() / 2;
        let bin = crate::lzss::encode_block(&ds.data[bin_start..bin_start + 10_000], &cfg);
        assert!(
            xml.len() < bin.len(),
            "xml must compress better than binary"
        );
    }

    #[test]
    fn paper_metadata_is_recorded() {
        let sizes: Vec<f64> = all(10_000, 1).iter().map(|d| d.paper_size_mb).collect();
        assert_eq!(sizes, vec![185.0, 816.0, 202.13]);
    }
}
