//! Rabin-style rolling fingerprint and content-defined chunking.
//!
//! PARSEC's Dedup fragments its input at positions where a rolling
//! fingerprint of the trailing window matches a bit pattern, so chunk
//! boundaries follow *content* and survive insertions. The paper's GPU
//! redesign keeps this algorithm but runs it on the CPU over fixed 1 MB
//! batches, saving the boundary indexes (`startPos`, Fig. 2) for all later
//! stages. This module provides both the rolling hash and the boundary
//! scan.

/// Parameters of the chunker.
#[derive(Clone, Copy, Debug)]
pub struct RabinParams {
    /// Rolling window width in bytes.
    pub window: usize,
    /// A boundary is declared where `fp & mask == magic`.
    pub mask: u64,
    /// Pattern compared under the mask.
    pub magic: u64,
    /// Minimum chunk size (boundaries inside are ignored).
    pub min_chunk: usize,
    /// Maximum chunk size (forced boundary).
    pub max_chunk: usize,
}

impl Default for RabinParams {
    fn default() -> Self {
        // Expected chunk ≈ 8 KiB (mask of 13 bits), bounded to [2K, 32K] —
        // PARSEC's defaults scaled to this reproduction's batch size.
        RabinParams {
            window: 48,
            mask: (1 << 13) - 1,
            magic: 0x78,
            min_chunk: 2 * 1024,
            max_chunk: 32 * 1024,
        }
    }
}

/// Multiplier of the polynomial rolling hash (odd, large, fixed).
const PRIME: u64 = 0x003D_A335_8B4D_C173_u64;

/// A rolling hash over a fixed-width byte window.
///
/// `fp = Σ b[i] · PRIME^(w-1-i)` over the window, updated in O(1) per byte.
pub struct RollingHash {
    window: usize,
    /// PRIME^(window-1), for removing the outgoing byte.
    pow_out: u64,
    fp: u64,
    ring: Vec<u8>,
    pos: usize,
    filled: usize,
}

impl RollingHash {
    /// Hash over windows of `window` bytes.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        let mut pow_out = 1u64;
        for _ in 0..window - 1 {
            pow_out = pow_out.wrapping_mul(PRIME);
        }
        RollingHash {
            window,
            pow_out,
            fp: 0,
            ring: vec![0; window],
            pos: 0,
            filled: 0,
        }
    }

    /// Push one byte; returns the fingerprint of the current window.
    #[inline]
    pub fn push(&mut self, byte: u8) -> u64 {
        let outgoing = self.ring[self.pos];
        self.ring[self.pos] = byte;
        self.pos = (self.pos + 1) % self.window;
        if self.filled < self.window {
            self.filled += 1;
        } else {
            self.fp = self
                .fp
                .wrapping_sub((outgoing as u64).wrapping_mul(self.pow_out));
        }
        self.fp = self.fp.wrapping_mul(PRIME).wrapping_add(byte as u64);
        self.fp
    }

    /// True once a full window has been absorbed.
    pub fn primed(&self) -> bool {
        self.filled == self.window
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        self.fp = 0;
        self.pos = 0;
        self.filled = 0;
        self.ring.fill(0);
    }
}

/// Scan `data` and return the start index of every chunk (Fig. 2's
/// `startPos` array). Always begins with 0; every value is `< data.len()`.
///
/// This is the branchless fast path: because the fingerprint after a
/// chunk reset is purely position-local (the polynomial over the
/// trailing `window` bytes), the per-byte ring buffer, modulo, and
/// primed/min-chunk checks of [`chunk_starts_reference`] all vanish.
/// Each chunk is scanned in two phases — prime the window ending at the
/// first index where a boundary may legally fire, then roll with a
/// single masked compare per byte until a match or the forced
/// `max_chunk` cut. Output is bit-identical to the reference.
pub fn chunk_starts(data: &[u8], params: &RabinParams) -> Vec<usize> {
    assert!(
        params.min_chunk >= params.window,
        "window must fit in min chunk"
    );
    assert!(params.max_chunk >= params.min_chunk);
    let mut starts = vec![0usize];
    if data.is_empty() {
        return starts;
    }
    let window = params.window;
    let mut pow_out = 1u64;
    for _ in 0..window - 1 {
        pow_out = pow_out.wrapping_mul(PRIME);
    }
    // Earliest in-chunk offset where the fingerprint test may fire.
    let floor = params.min_chunk.max(window).min(params.max_chunk);
    // A cut at index i starts a new chunk at i + 1, recorded only when
    // i + 1 < len — so the last index worth scanning is len - 2.
    let last = data.len().saturating_sub(2);
    let mut s = 0usize;
    loop {
        let first = s + floor - 1;
        let forced = s + params.max_chunk - 1;
        if first > last {
            break;
        }
        // Prime: fingerprint of the window ending at `first`. The whole
        // window lies inside the current chunk (floor >= window), so this
        // equals the reference's post-reset rolling state.
        let mut fp = 0u64;
        for &b in &data[first + 1 - window..=first] {
            fp = fp.wrapping_mul(PRIME).wrapping_add(b as u64);
        }
        // Scan: one masked compare per byte, outgoing byte read straight
        // from `data` — no ring buffer.
        let stop = forced.min(last);
        let mut i = first;
        let cut = loop {
            if (fp & params.mask) == params.magic {
                break Some(i);
            }
            if i >= stop {
                break None;
            }
            fp = fp
                .wrapping_sub((data[i + 1 - window] as u64).wrapping_mul(pow_out))
                .wrapping_mul(PRIME)
                .wrapping_add(data[i + 1] as u64);
            i += 1;
        };
        let cut = match cut {
            Some(c) => c,
            // No fingerprint match in range: the max_chunk cut fires iff
            // it lands before the unrecordable tail.
            None if forced <= last => forced,
            None => break,
        };
        starts.push(cut + 1);
        s = cut + 1;
    }
    starts
}

/// The streaming reference scanner: one [`RollingHash::push`] per byte
/// with explicit primed/min-chunk/max-chunk checks, exactly as the
/// paper's CPU stage describes it. [`chunk_starts`] must agree with this
/// bit-for-bit; it also serves as the baseline in the scan benchmarks.
pub fn chunk_starts_reference(data: &[u8], params: &RabinParams) -> Vec<usize> {
    assert!(
        params.min_chunk >= params.window,
        "window must fit in min chunk"
    );
    assert!(params.max_chunk >= params.min_chunk);
    let mut starts = vec![0usize];
    if data.is_empty() {
        return starts;
    }
    let mut hash = RollingHash::new(params.window);
    let mut chunk_len = 0usize;
    for (i, &b) in data.iter().enumerate() {
        let fp = hash.push(b);
        chunk_len += 1;
        let boundary =
            (hash.primed() && chunk_len >= params.min_chunk && (fp & params.mask) == params.magic)
                || chunk_len >= params.max_chunk;
        if boundary && i + 1 < data.len() {
            starts.push(i + 1);
            chunk_len = 0;
            hash.reset();
        }
    }
    starts
}

/// Slice `data` into chunks given its `starts` (as produced by
/// [`chunk_starts`]).
pub fn chunks<'d>(data: &'d [u8], starts: &[usize]) -> Vec<&'d [u8]> {
    let mut out = Vec::with_capacity(starts.len());
    for (i, &s) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(data.len());
        out.push(&data[s..end]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_params() -> RabinParams {
        RabinParams {
            window: 16,
            mask: (1 << 6) - 1, // expected chunk 64B
            magic: 0x15,
            min_chunk: 32,
            max_chunk: 512,
        }
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        // xorshift64* — deterministic test data without external crates.
        let mut s = seed.max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn rolling_hash_matches_direct_computation() {
        let data = pseudo_random(100, 7);
        let w = 8;
        let mut rh = RollingHash::new(w);
        for (i, &b) in data.iter().enumerate() {
            let fp = rh.push(b);
            if i + 1 >= w {
                // Direct evaluation of the window polynomial.
                let mut direct = 0u64;
                for &x in &data[i + 1 - w..=i] {
                    direct = direct.wrapping_mul(PRIME).wrapping_add(x as u64);
                }
                assert_eq!(fp, direct, "at {i}");
            }
        }
    }

    #[test]
    fn starts_begin_at_zero_and_are_strictly_increasing() {
        let data = pseudo_random(64 * 1024, 42);
        let starts = chunk_starts(&data, &test_params());
        assert_eq!(starts[0], 0);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert!(starts.iter().all(|&s| s < data.len()));
    }

    #[test]
    fn chunk_sizes_respect_min_and_max() {
        let p = test_params();
        let data = pseudo_random(64 * 1024, 43);
        let starts = chunk_starts(&data, &p);
        let cs = chunks(&data, &starts);
        for (i, c) in cs.iter().enumerate() {
            assert!(c.len() <= p.max_chunk, "chunk {i} too big: {}", c.len());
            if i + 1 < cs.len() {
                assert!(c.len() >= p.min_chunk, "chunk {i} too small: {}", c.len());
            }
        }
    }

    #[test]
    fn chunks_reassemble_exactly() {
        let data = pseudo_random(10_000, 44);
        let starts = chunk_starts(&data, &test_params());
        let glued: Vec<u8> = chunks(&data, &starts).concat();
        assert_eq!(glued, data);
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = pseudo_random(32 * 1024, 45);
        let p = test_params();
        assert_eq!(chunk_starts(&data, &p), chunk_starts(&data, &p));
    }

    #[test]
    fn identical_content_produces_identical_chunks() {
        // Content-defined: two copies of the same region chunk identically
        // when each is scanned from a fresh state.
        let region = pseudo_random(16 * 1024, 46);
        let p = test_params();
        let a = chunk_starts(&region, &p);
        let b = chunk_starts(&region, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let p = test_params();
        assert_eq!(chunk_starts(&[], &p), vec![0]);
        assert_eq!(chunk_starts(&[1, 2, 3], &p), vec![0]);
        let cs = chunks(&[1, 2, 3], &[0]);
        assert_eq!(cs, vec![&[1u8, 2, 3][..]]);
    }

    #[test]
    fn fast_scan_matches_reference_exactly() {
        let p = test_params();
        for seed in 1..=8u64 {
            let data = pseudo_random(48 * 1024, seed);
            assert_eq!(
                chunk_starts(&data, &p),
                chunk_starts_reference(&data, &p),
                "seed {seed}"
            );
        }
        let p = RabinParams::default();
        let data = pseudo_random(512 * 1024, 99);
        assert_eq!(chunk_starts(&data, &p), chunk_starts_reference(&data, &p));
    }

    #[test]
    fn fast_scan_matches_reference_on_length_edges() {
        let p = test_params();
        // Lengths bracketing min_chunk, max_chunk, and the window.
        for len in [0, 1, 15, 16, 17, 31, 32, 33, 511, 512, 513, 1024, 2047] {
            let data = pseudo_random(len, 5 + len as u64);
            assert_eq!(
                chunk_starts(&data, &p),
                chunk_starts_reference(&data, &p),
                "len {len}"
            );
            let zeros = vec![0u8; len];
            assert_eq!(
                chunk_starts(&zeros, &p),
                chunk_starts_reference(&zeros, &p),
                "zeros len {len}"
            );
        }
    }

    #[test]
    fn constant_data_still_chunks_at_max() {
        // All-zero data never matches the magic; max_chunk must force cuts.
        let p = test_params();
        let data = vec![0u8; 4096];
        let starts = chunk_starts(&data, &p);
        let cs = chunks(&data, &starts);
        assert!(cs.len() >= 4096 / p.max_chunk);
        for c in &cs {
            assert!(c.len() <= p.max_chunk);
        }
    }
}
