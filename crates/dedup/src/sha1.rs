//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! Dedup identifies duplicate blocks by their SHA-1 digest (PARSEC's
//! `hashtable` stage); the GPU pipeline computes one digest per block with
//! one thread per block (§IV-B stage 2). This module is the reference
//! implementation both the CPU stages and the GPU kernel call.
//!
//! SHA-1 is used here as a *content fingerprint* exactly as PARSEC's Dedup
//! does — not as a security primitive.

/// A 160-bit SHA-1 digest.
///
/// `repr(transparent)` over its 20 bytes: a `[Digest]` slice may be
/// soundly viewed as a byte slice, which lets the GPU backends DMA a
/// device-side digest stream straight into a pooled `Digest` array.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
#[repr(transparent)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }
}

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha1 {
            h: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything merged into the partial block; do NOT fall
                // through (the tail below would clobber `buf_len`).
                return;
            }
            // `data` non-empty here implies the partial block was filled
            // and compressed: `buf_len == 0`, so the tail copy is safe.
            debug_assert_eq!(self.buf_len, 0);
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let arr: &[u8; 64] = block.try_into().expect("split_at(64)");
            self.compress(arr);
            data = rest;
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len * 8;
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Append the length without counting it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    /// The internal chaining state, available only on a block boundary
    /// (`None` if a partial block is buffered). Together with
    /// [`Sha1::resume`] this lets a caller hash a long shared prefix once
    /// and then fork the hash over many suffixes — the midstate trick
    /// nonce-search kernels rely on.
    pub fn midstate(&self) -> Option<[u32; 5]> {
        (self.buf_len == 0).then_some(self.h)
    }

    /// Rebuild a hasher from a [`Sha1::midstate`] taken after absorbing
    /// `prefix_len` bytes. `prefix_len` must be a multiple of the 64-byte
    /// block size (midstates only exist on block boundaries).
    pub fn resume(h: [u32; 5], prefix_len: u64) -> Self {
        assert!(
            prefix_len.is_multiple_of(64),
            "midstates exist only on 64-byte block boundaries"
        );
        Sha1 {
            h,
            len: prefix_len,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.h, block);
    }
}

/// One SHA-1 compression: absorb a 64-byte block into chaining state `h`.
/// The scalar reference the multi-lane path in [`crate::sha1mb`] must
/// agree with bit-for-bit.
pub fn compress_block(h: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk of 4"));
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let [mut a, mut b, mut c, mut d, mut e] = *h;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
            20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
            _ => (b ^ c ^ d, 0xCA62_C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// One-shot convenience.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn exact_block_boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes cross the padding edge cases.
        for n in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x5Au8; n];
            let one_shot = sha1(&data);
            // Byte-at-a-time must agree with one-shot.
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one_shot, "length {n}");
        }
    }

    #[test]
    fn incremental_split_points_agree() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expected = sha1(&data);
        for split in [1, 63, 64, 65, 500, 999] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split {split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha1(b"hello"), sha1(b"hellp"));
        assert_ne!(sha1(b""), sha1(b"\0"));
    }

    #[test]
    fn midstate_resume_agrees_with_one_shot() {
        let prefix = vec![0xC3u8; 128];
        let mut h = Sha1::new();
        h.update(&prefix);
        let mid = h.midstate().expect("128 bytes is a block boundary");
        for suffix in [&b"nonce-1"[..], &b""[..], &[0u8; 100][..]] {
            let mut forked = Sha1::resume(mid, prefix.len() as u64);
            forked.update(suffix);
            let full: Vec<u8> = prefix
                .iter()
                .copied()
                .chain(suffix.iter().copied())
                .collect();
            assert_eq!(forked.finalize(), sha1(&full));
        }
    }

    #[test]
    fn midstate_absent_mid_block() {
        let mut h = Sha1::new();
        h.update(b"short");
        assert!(h.midstate().is_none());
        h.update(&[0u8; 59]);
        assert!(h.midstate().is_some());
    }

    #[test]
    fn hex_rendering() {
        let d = Digest([0xab; 20]);
        assert_eq!(d.to_hex(), "ab".repeat(20));
    }
}
