//! Archive statistics: the compression/deduplication breakdown Dedup
//! reports (and Fig. 5's companion metric to throughput).

use crate::archive::{Archive, BlockEntry};

/// Summary of what an archive achieved.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchiveStats {
    /// Original stream bytes (sum of all block lengths, duplicates
    /// included).
    pub input_bytes: u64,
    /// Serialized archive bytes.
    pub output_bytes: u64,
    /// Unique blocks stored raw (incompressible).
    pub unique_raw: usize,
    /// Unique blocks stored LZSS-compressed.
    pub unique_lzss: usize,
    /// Duplicate references.
    pub dup_blocks: usize,
    /// Bytes removed by deduplication alone (duplicate block content).
    pub dedup_saved: u64,
    /// Bytes removed by compression alone (unique originals − payloads).
    pub compress_saved: u64,
}

impl ArchiveStats {
    /// Compute the stats of an archive.
    pub fn of(archive: &Archive) -> ArchiveStats {
        let mut unique_sizes: Vec<u64> = Vec::new();
        let mut input_bytes = 0u64;
        let mut unique_raw = 0usize;
        let mut unique_lzss = 0usize;
        let mut dup_blocks = 0usize;
        let mut dedup_saved = 0u64;
        let mut compress_saved = 0u64;
        for e in &archive.entries {
            match e {
                BlockEntry::UniqueRaw(data) => {
                    input_bytes += data.len() as u64;
                    unique_sizes.push(data.len() as u64);
                    unique_raw += 1;
                }
                BlockEntry::UniqueLzss { orig_len, payload } => {
                    input_bytes += *orig_len as u64;
                    unique_sizes.push(*orig_len as u64);
                    unique_lzss += 1;
                    compress_saved += *orig_len as u64 - payload.len() as u64;
                }
                BlockEntry::Dup(ordinal) => {
                    let len = unique_sizes.get(*ordinal as usize).copied().unwrap_or(0);
                    input_bytes += len;
                    dedup_saved += len;
                    dup_blocks += 1;
                }
            }
        }
        ArchiveStats {
            input_bytes,
            output_bytes: archive.serialized_len() as u64,
            unique_raw,
            unique_lzss,
            dup_blocks,
            dedup_saved,
            compress_saved,
        }
    }

    /// `output / input` as a percentage (smaller is better).
    pub fn ratio_percent(&self) -> f64 {
        if self.input_bytes == 0 {
            return 100.0;
        }
        self.output_bytes as f64 * 100.0 / self.input_bytes as f64
    }

    /// Fraction of the input that was duplicate content.
    pub fn dup_fraction(&self) -> f64 {
        if self.input_bytes == 0 {
            return 0.0;
        }
        self.dedup_saved as f64 / self.input_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lzss::LzssConfig;
    use crate::{datasets, run_sequential, DedupConfig, RabinParams};

    fn cfg() -> DedupConfig {
        DedupConfig {
            batch_size: 16 * 1024,
            rabin: RabinParams {
                window: 16,
                mask: (1 << 8) - 1,
                magic: 0x21,
                min_chunk: 256,
                max_chunk: 4096,
            },
            lzss: LzssConfig {
                window: 256,
                min_coded: 3,
            },
        }
    }

    #[test]
    fn stats_account_for_every_input_byte() {
        let data = datasets::parsec_like(200_000, 91).data;
        let archive = run_sequential(&data, &cfg());
        let stats = ArchiveStats::of(&archive);
        assert_eq!(stats.input_bytes, data.len() as u64);
        assert_eq!(
            stats.unique_raw + stats.unique_lzss + stats.dup_blocks,
            archive.entries.len()
        );
        assert!(
            stats.ratio_percent() < 100.0,
            "parsec-like data must shrink"
        );
        assert!(
            stats.dup_fraction() > 0.0,
            "parsec-like data has duplicates"
        );
    }

    #[test]
    fn savings_decompose_consistently() {
        let data = datasets::linux_like(50_000, 92).data;
        let archive = run_sequential(&data, &cfg());
        let stats = ArchiveStats::of(&archive);
        // output <= input - dedup_saved - compress_saved + container overhead
        let payload = stats.input_bytes - stats.dedup_saved - stats.compress_saved;
        assert!(
            stats.output_bytes >= payload,
            "container adds overhead: {} vs {}",
            stats.output_bytes,
            payload
        );
        // Overhead is bounded (tags + lengths per entry).
        let overhead = stats.output_bytes - payload;
        assert!(
            overhead < 32 * archive.entries.len() as u64 + 64,
            "overhead {overhead} too large"
        );
    }

    #[test]
    fn pure_duplicates_show_up_as_dedup_savings() {
        let cfg = cfg();
        let half = datasets::silesia_like(20_000, 93).data;
        let mut data = half.clone();
        data.extend_from_slice(&half);
        let archive = run_sequential(&data, &cfg);
        let stats = ArchiveStats::of(&archive);
        assert!(
            stats.dup_fraction() > 0.4,
            "half the stream is duplicate: {}",
            stats.dup_fraction()
        );
    }

    #[test]
    fn empty_archive_stats() {
        let archive = Archive::new(LzssConfig::default());
        let stats = ArchiveStats::of(&archive);
        assert_eq!(stats.input_bytes, 0);
        assert_eq!(stats.ratio_percent(), 100.0);
        assert_eq!(stats.dup_fraction(), 0.0);
    }
}
