//! Host-side CPU cost model for Dedup stages.
//!
//! The reproduction machine cannot measure the paper's i9-7900X, so
//! CPU-side service times are modeled: each stage's work is *counted*
//! during functional execution (bytes hashed, window probes, blocks
//! classified) and converted to virtual time with the per-unit costs here.
//! The constants are calibrated to published single-thread throughputs of
//! the paper's CPU generation (Skylake-X @ 3.3 GHz): scalar SHA-1
//! ≈ 400 MB/s, rolling-fingerprint chunking ≈ 700 MB/s, byte-probe loops
//! ≈ 1 probe/cycle.

use simtime::SimDuration;

/// Per-unit CPU costs (nanoseconds), single thread.
#[derive(Clone, Copy, Debug)]
pub struct HostCosts {
    /// Rabin fingerprint + batch building, per input byte.
    pub rabin_ns_per_byte: f64,
    /// SHA-1 hashing, per byte.
    pub sha1_ns_per_byte: f64,
    /// LZSS match search, per window probe (CPU compressor).
    pub lzss_ns_per_probe: f64,
    /// Greedy encode walk + bit packing, per input byte.
    pub encode_ns_per_byte: f64,
    /// Hash-table lookup/insert, per block.
    pub classify_ns_per_block: f64,
    /// Output assembly (memcpy + bookkeeping), per byte written.
    pub write_ns_per_byte: f64,
}

impl Default for HostCosts {
    fn default() -> Self {
        HostCosts {
            rabin_ns_per_byte: 1.4,
            sha1_ns_per_byte: 2.5,
            lzss_ns_per_probe: 1.1,
            encode_ns_per_byte: 1.8,
            classify_ns_per_block: 120.0,
            write_ns_per_byte: 0.25,
        }
    }
}

impl HostCosts {
    /// Time to fingerprint/batch `bytes` of input.
    pub fn rabin(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.rabin_ns_per_byte * bytes as f64 * 1e-9)
    }

    /// Time to SHA-1 `bytes` on the CPU.
    pub fn sha1(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.sha1_ns_per_byte * bytes as f64 * 1e-9)
    }

    /// Time for `probes` window probes of the CPU match search.
    pub fn lzss_probes(&self, probes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.lzss_ns_per_probe * probes as f64 * 1e-9)
    }

    /// Time to run the encode walk over `bytes` (match arrays in hand).
    pub fn encode(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.encode_ns_per_byte * bytes as f64 * 1e-9)
    }

    /// Time to classify `blocks` against the cache.
    pub fn classify(&self, blocks: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.classify_ns_per_block * blocks as f64 * 1e-9)
    }

    /// Time to assemble `bytes` of output.
    pub fn write(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.write_ns_per_byte * bytes as f64 * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_linearly() {
        let c = HostCosts::default();
        assert_eq!(c.sha1(2_000).as_nanos(), 2 * c.sha1(1_000).as_nanos());
        assert_eq!(c.rabin(0).as_nanos(), 0);
    }

    #[test]
    fn sha1_throughput_is_in_the_right_ballpark() {
        let c = HostCosts::default();
        // 1 GB at 2.5 ns/B = 2.5 s => 400 MB/s.
        let t = c.sha1(1_000_000_000);
        let mbps = 1000.0 / t.as_secs_f64();
        assert!((300.0..500.0).contains(&mbps), "{mbps} MB/s");
    }
}
