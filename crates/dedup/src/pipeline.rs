//! The 5-stage Dedup pipeline of Fig. 3, expressed with SPar.
//!
//! ```text
//! S1 read + rabin ──> S2 SHA-1 (replicated, GPU) ──> S3 dup check (serial)
//!        ──> S4 LZSS compress (replicated, GPU) ──> S5 reorder + write
//! ```
//!
//! Stage order is restored by the ordered farms the SPar region generates
//! (the paper's stage 5 "reorders the batches and writes"); stage 3 is
//! `Replicate(1)` so the global dedup cache needs no lock.

use crate::archive::Archive;
use crate::backend::{BackendCtx, ClassifiedBatch, CompressedBatch, DedupBackend, HashedBatch};
use crate::batch::make_batches;
use crate::dedupe::DedupCache;
use crate::lzss::LzssConfig;
use crate::rabin::RabinParams;
use crate::sha1::sha1;

/// Whole-run parameters.
#[derive(Clone, Debug)]
pub struct DedupConfig {
    /// Fixed batch size (the paper's 1 MB; reduced for OpenCL per §V-B).
    pub batch_size: usize,
    /// Chunker parameters.
    pub rabin: RabinParams,
    /// Codec parameters.
    pub lzss: LzssConfig,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            batch_size: crate::batch::DEFAULT_BATCH_SIZE,
            rabin: RabinParams::default(),
            lzss: LzssConfig::default(),
        }
    }
}

/// Sequential reference implementation (PARSEC's original structure):
/// the gold standard every parallel version is compared against.
pub fn run_sequential(input: &[u8], cfg: &DedupConfig) -> Archive {
    let mut cache = DedupCache::new();
    let mut archive = Archive::new(cfg.lzss);
    for batch in make_batches(input, cfg.batch_size, &cfg.rabin) {
        for b in 0..batch.block_count() {
            let block = batch.block(b);
            match cache.classify(sha1(block)) {
                crate::dedupe::BlockClass::Unique { .. } => {
                    archive
                        .entries
                        .push(crate::archive::BlockEntry::compress_unique(
                            block, &cfg.lzss,
                        ))
                }
                crate::dedupe::BlockClass::Dup { of } => {
                    archive.entries.push(crate::archive::BlockEntry::Dup(of))
                }
            }
        }
    }
    archive
}

/// Stage-2 node: one backend instance per replica, built in `on_init` on
/// the replica's thread.
struct HashNode<B: DedupBackend> {
    ctx: BackendCtx,
    replica: usize,
    backend: Option<B>,
}

impl<B: DedupBackend> fastflow::Node for HashNode<B> {
    type In = crate::batch::Batch;
    type Out = HashedBatch<B::Gpu>;
    fn on_init(&mut self) {
        self.backend = Some(B::new(&self.ctx, self.replica));
    }
    fn svc(
        &mut self,
        batch: crate::batch::Batch,
        out: &mut fastflow::Emitter<'_, HashedBatch<B::Gpu>>,
    ) {
        let backend = self
            .backend
            .get_or_insert_with(|| B::new(&self.ctx, self.replica));
        out.send(backend.hash_stage(batch));
    }
}

/// Stage-4 node.
struct CompressNode<B: DedupBackend> {
    ctx: BackendCtx,
    replica: usize,
    backend: Option<B>,
}

impl<B: DedupBackend> fastflow::Node for CompressNode<B> {
    type In = ClassifiedBatch<B::Gpu>;
    type Out = CompressedBatch;
    fn on_init(&mut self) {
        self.backend = Some(B::new(&self.ctx, self.replica));
    }
    fn svc(
        &mut self,
        item: ClassifiedBatch<B::Gpu>,
        out: &mut fastflow::Emitter<'_, CompressedBatch>,
    ) {
        let backend = self
            .backend
            .get_or_insert_with(|| B::new(&self.ctx, self.replica));
        out.send(backend.compress_stage(item));
    }
}

/// Run the Fig. 3 pipeline over `input` with `workers` replicas for the
/// hashing and compression stages. The backend type selects CPU / CUDA /
/// OpenCL (Fig. 5's SPar, SPar+CUDA and SPar+OpenCL versions).
pub fn run_pipeline<B: DedupBackend>(
    backend_ctx: BackendCtx,
    input: Vec<u8>,
    cfg: &DedupConfig,
    workers: usize,
) -> Archive {
    run_pipeline_rec::<B>(
        backend_ctx,
        input,
        cfg,
        workers,
        telemetry::Recorder::default(),
    )
}

/// [`run_pipeline`] with a telemetry recorder: every stage and replica of
/// the SPar region registers stage metrics, and — when the backend drives
/// GPUs — the simulated device command traces are merged into the same
/// recorder as engine spans (one `gpu{d}/{engine}` row per device engine).
pub fn run_pipeline_rec<B: DedupBackend>(
    backend_ctx: BackendCtx,
    input: Vec<u8>,
    cfg: &DedupConfig,
    workers: usize,
    rec: telemetry::Recorder,
) -> Archive {
    assert!(workers >= 1);
    let cfg = cfg.clone();
    let lzss = cfg.lzss;
    // Fault / retry / fallback events from the backends land in the same
    // recorder as the stage metrics.
    let backend_ctx = backend_ctx.with_recorder(rec.clone());
    let system = backend_ctx.system.clone();
    if let Some(sys) = &system {
        workload::arm_gpu_traces(sys, &rec);
    }
    let hash_ctx = backend_ctx.clone();
    let compress_ctx = backend_ctx;
    let mut archive = Archive::new(lzss);

    let source_cfg = cfg.clone();
    spar::ToStream::new()
        .recorder(rec.clone())
        .ordered(true)
        // S1: read input, build 1 MB batches, rabin-fingerprint each.
        .source(move |em| {
            for batch in make_batches(&input, source_cfg.batch_size, &source_cfg.rabin) {
                if !em.send(batch) {
                    break;
                }
            }
        })
        // S2: SHA-1 every block (replicated; offloads to GPUs).
        .stage_node(workers, |replica| HashNode::<B> {
            ctx: hash_ctx.clone(),
            replica,
            backend: None,
        })
        // S3: duplicate check against the global cache (serial, stateful).
        .stage_factory(1, |_| {
            let mut cache = DedupCache::new();
            move |h: HashedBatch<B::Gpu>| -> ClassifiedBatch<B::Gpu> {
                let classes = h.digests.iter().map(|&d| cache.classify(d)).collect();
                ClassifiedBatch {
                    batch: h.batch,
                    classes,
                    gpu: h.gpu,
                }
            }
        })
        // S4: LZSS-compress unique blocks (replicated; reuses device data).
        .stage_node(workers, |replica| CompressNode::<B> {
            ctx: compress_ctx.clone(),
            replica,
            backend: None,
        })
        // S5: reorder (guaranteed by the ordered region) and write.
        .last_stage(|done: CompressedBatch| {
            archive.entries.extend(done.entries);
        });
    if let Some(sys) = &system {
        workload::drain_gpu_traces(sys, &rec);
    }
    archive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CpuBackend, CudaBackend, OclBackend};
    use crate::datasets;
    use gpusim::{DeviceProps, GpuSystem};

    fn small_cfg() -> DedupConfig {
        DedupConfig {
            batch_size: 16 * 1024,
            rabin: RabinParams {
                window: 16,
                mask: (1 << 9) - 1,
                magic: 0x5c,
                min_chunk: 256,
                max_chunk: 4096,
            },
            lzss: LzssConfig {
                window: 256,
                min_coded: 3,
            },
        }
    }

    fn input() -> Vec<u8> {
        datasets::parsec_like(80_000, 11).data
    }

    #[test]
    fn sequential_roundtrips() {
        let cfg = small_cfg();
        let data = input();
        let archive = run_sequential(&data, &cfg);
        assert_eq!(archive.decompress().unwrap(), data);
        let (uniq, dups) = archive.block_counts();
        assert!(uniq > 0);
        assert!(dups > 0, "parsec-like data must contain duplicates");
    }

    #[test]
    fn spar_cpu_pipeline_matches_sequential() {
        let cfg = small_cfg();
        let data = input();
        let seq = run_sequential(&data, &cfg);
        let par = run_pipeline::<CpuBackend>(BackendCtx::cpu(cfg.lzss), data.clone(), &cfg, 4);
        assert_eq!(par, seq, "pipeline output must be byte-identical");
        assert_eq!(par.decompress().unwrap(), data);
    }

    #[test]
    fn spar_cuda_pipeline_matches_sequential() {
        let cfg = small_cfg();
        let data = input();
        let seq = run_sequential(&data, &cfg);
        let sys = GpuSystem::new(2, DeviceProps::titan_xp());
        let ctx = BackendCtx::gpu(sys, 2, true, cfg.lzss);
        let par = run_pipeline::<CudaBackend>(ctx, data.clone(), &cfg, 3);
        assert_eq!(par, seq);
    }

    #[test]
    fn spar_opencl_pipeline_matches_sequential() {
        let cfg = small_cfg();
        let data = input();
        let seq = run_sequential(&data, &cfg);
        let sys = GpuSystem::new(2, DeviceProps::titan_xp());
        let ctx = BackendCtx::gpu(sys, 2, true, cfg.lzss);
        let par = run_pipeline::<OclBackend>(ctx, data.clone(), &cfg, 3);
        assert_eq!(par, seq);
    }

    #[test]
    fn offload_backends_match_sequential() {
        let cfg = small_cfg();
        let data = input();
        let seq = run_sequential(&data, &cfg);
        let sys = GpuSystem::new(2, DeviceProps::titan_xp());
        let ctx = BackendCtx::gpu(sys.clone(), 2, true, cfg.lzss);
        let cuda = run_pipeline::<crate::backend::OffloadBackend<gpusim::CudaOffload>>(
            ctx.clone(),
            data.clone(),
            &cfg,
            3,
        );
        assert_eq!(cuda, seq);
        let ocl = run_pipeline::<crate::backend::OffloadBackend<gpusim::OclOffload>>(
            ctx,
            data.clone(),
            &cfg,
            3,
        );
        assert_eq!(ocl, seq);
    }

    #[test]
    fn recorder_captures_stages_and_gpu_engines() {
        let cfg = small_cfg();
        let data = input();
        let sys = GpuSystem::new(2, DeviceProps::titan_xp());
        let ctx = BackendCtx::gpu(sys, 2, true, cfg.lzss);
        let rec = telemetry::Recorder::enabled();
        let archive = run_pipeline_rec::<crate::backend::OffloadBackend<gpusim::CudaOffload>>(
            ctx,
            data.clone(),
            &cfg,
            3,
            rec.clone(),
        );
        assert_eq!(archive.decompress().unwrap(), data);
        let report = rec.report();
        // All five stages of Fig. 3's pipeline are present...
        for stage in ["source", "stage1", "stage2", "stage3", "sink"] {
            assert!(
                report.stages.iter().any(|s| s.name == stage),
                "missing stage {stage}"
            );
        }
        // ...items are conserved stage to stage...
        assert_eq!(report.items_out("source"), report.items_in("stage1"));
        assert_eq!(report.items_out("stage1"), report.items_in("stage2"));
        // ...and the simulated devices contributed engine spans.
        assert!(report.gpu.iter().any(|s| s.engine == "compute"));
        assert!(report.gpu.iter().any(|s| s.engine == "h2d"));
    }

    #[test]
    fn injected_faults_degrade_to_cpu_and_preserve_output() {
        let cfg = small_cfg();
        let data = input();
        let seq = run_sequential(&data, &cfg);
        let sys = GpuSystem::new(2, DeviceProps::titan_xp());
        // Deterministic fault storm: the first allocations OOM and the
        // first kernel launches fail on every device, then the devices heal.
        sys.inject_faults(&gpusim::FaultSpec::demo(42));
        let ctx = BackendCtx::gpu(sys, 2, true, cfg.lzss);
        let rec = telemetry::Recorder::enabled();
        let par = run_pipeline_rec::<crate::backend::OffloadBackend<gpusim::CudaOffload>>(
            ctx,
            data.clone(),
            &cfg,
            3,
            rec.clone(),
        );
        assert_eq!(par, seq, "faulty run must still be byte-identical");
        let report = rec.report();
        assert!(
            report.retry_count() >= 1,
            "expected at least one retry event, got {} fault events",
            report.faults.len()
        );
        assert!(
            report.fallback_count() >= 1,
            "expected at least one CPU fallback event, got {} fault events",
            report.faults.len()
        );
    }

    #[test]
    fn raw_backends_survive_injected_faults() {
        let cfg = small_cfg();
        let data = input();
        let seq = run_sequential(&data, &cfg);
        let sys = GpuSystem::new(1, DeviceProps::titan_xp());
        sys.inject_faults(&gpusim::FaultSpec::demo(7));
        let ctx = BackendCtx::gpu(sys, 1, true, cfg.lzss);
        let cuda = run_pipeline::<CudaBackend>(ctx, data.clone(), &cfg, 2);
        assert_eq!(cuda, seq);
        let sys = GpuSystem::new(1, DeviceProps::titan_xp());
        sys.inject_faults(&gpusim::FaultSpec::demo(7));
        let ctx = BackendCtx::gpu(sys, 1, true, cfg.lzss);
        let ocl = run_pipeline::<OclBackend>(ctx, data.clone(), &cfg, 2);
        assert_eq!(ocl, seq);
    }

    #[test]
    fn unbatched_kernels_still_produce_identical_output() {
        let cfg = small_cfg();
        let data = input();
        let seq = run_sequential(&data, &cfg);
        let sys = GpuSystem::new(1, DeviceProps::titan_xp());
        let ctx = BackendCtx::gpu(sys, 1, false, cfg.lzss);
        let par = run_pipeline::<CudaBackend>(ctx, data.clone(), &cfg, 2);
        assert_eq!(par, seq);
    }

    #[test]
    fn all_datasets_roundtrip_through_the_cpu_pipeline() {
        let cfg = small_cfg();
        for ds in datasets::all(60_000, 2) {
            let par =
                run_pipeline::<CpuBackend>(BackendCtx::cpu(cfg.lzss), ds.data.clone(), &cfg, 3);
            assert_eq!(par.decompress().unwrap(), ds.data, "{}", ds.name);
        }
    }

    #[test]
    fn deduplication_actually_shrinks_duplicated_input() {
        let cfg = small_cfg();
        let region = datasets::silesia_like(20_000, 9).data;
        let mut data = region.clone();
        data.extend_from_slice(&region); // 100% duplicate second half
        let archive = run_sequential(&data, &cfg);
        assert!(
            archive.serialized_len() < data.len() * 7 / 10,
            "dedup + compression must shrink: {} vs {}",
            archive.serialized_len(),
            data.len()
        );
    }

    #[test]
    fn empty_input_produces_empty_archive() {
        let cfg = small_cfg();
        let archive = run_pipeline::<CpuBackend>(BackendCtx::cpu(cfg.lzss), Vec::new(), &cfg, 2);
        assert!(archive.entries.is_empty());
        assert_eq!(archive.decompress().unwrap(), Vec::<u8>::new());
    }
}
