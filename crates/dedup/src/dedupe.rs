//! The duplicate-detection cache (stage 3 of Fig. 3).
//!
//! Serial and stateful: one global table maps block digests to the ordinal
//! of the first occurrence. PARSEC's Dedup uses a locked hash table; here
//! the pipeline keeps the stage at `Replicate(1)` so the state needs no
//! lock — the same design choice the paper's SPar version makes.

use std::collections::HashMap;

use crate::sha1::Digest;

/// Classification of one block against the global cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockClass {
    /// First time this content is seen; it becomes unique block `ordinal`.
    Unique {
        /// Index among unique blocks, in stream order.
        ordinal: u64,
    },
    /// Content already stored as unique block `of`.
    Dup {
        /// Ordinal of the unique block holding the content.
        of: u64,
    },
}

/// The global digest → unique-ordinal table.
#[derive(Default)]
pub struct DedupCache {
    map: HashMap<Digest, u64>,
    next_ordinal: u64,
}

impl DedupCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify a block by digest, registering it if new.
    pub fn classify(&mut self, digest: Digest) -> BlockClass {
        match self.map.get(&digest) {
            Some(&of) => BlockClass::Dup { of },
            None => {
                let ordinal = self.next_ordinal;
                self.next_ordinal += 1;
                self.map.insert(digest, ordinal);
                BlockClass::Unique { ordinal }
            }
        }
    }

    /// Unique blocks seen so far.
    pub fn unique_count(&self) -> u64 {
        self.next_ordinal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::sha1;

    #[test]
    fn first_sighting_is_unique_then_dup() {
        let mut c = DedupCache::new();
        let d = sha1(b"block");
        assert_eq!(c.classify(d), BlockClass::Unique { ordinal: 0 });
        assert_eq!(c.classify(d), BlockClass::Dup { of: 0 });
        assert_eq!(c.classify(d), BlockClass::Dup { of: 0 });
        assert_eq!(c.unique_count(), 1);
    }

    #[test]
    fn ordinals_assigned_in_stream_order() {
        let mut c = DedupCache::new();
        let a = sha1(b"a");
        let b = sha1(b"b");
        assert_eq!(c.classify(a), BlockClass::Unique { ordinal: 0 });
        assert_eq!(c.classify(b), BlockClass::Unique { ordinal: 1 });
        assert_eq!(c.classify(a), BlockClass::Dup { of: 0 });
        assert_eq!(c.classify(b), BlockClass::Dup { of: 1 });
        assert_eq!(c.unique_count(), 2);
    }
}
