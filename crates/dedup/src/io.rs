//! File-level entry points — PARSEC's Dedup is a file compressor, and so
//! is this one: read a file, run the pipeline, write the archive, restore
//! it back.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::archive::{Archive, ArchiveError};
use crate::backend::{BackendCtx, DedupBackend};
use crate::pipeline::{run_pipeline, DedupConfig};

/// Errors from file operations.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Archive parsing/decoding error.
    Archive(ArchiveError),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<ArchiveError> for IoError {
    fn from(e: ArchiveError) -> Self {
        IoError::Archive(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Archive(e) => write!(f, "archive error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Compress `input` into `output` through the Fig. 3 pipeline with the
/// given backend; returns (input bytes, archive bytes).
pub fn compress_file<B: DedupBackend>(
    backend: BackendCtx,
    input: &Path,
    output: &Path,
    cfg: &DedupConfig,
    workers: usize,
) -> Result<(u64, u64), IoError> {
    let mut data = Vec::new();
    std::fs::File::open(input)?.read_to_end(&mut data)?;
    let in_len = data.len() as u64;
    let archive = run_pipeline::<B>(backend, data, cfg, workers);
    let bytes = archive.to_bytes();
    let mut f = io::BufWriter::new(std::fs::File::create(output)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok((in_len, bytes.len() as u64))
}

/// Restore an archive file produced by [`compress_file`] into `output`.
pub fn decompress_file(input: &Path, output: &Path) -> Result<u64, IoError> {
    let mut bytes = Vec::new();
    std::fs::File::open(input)?.read_to_end(&mut bytes)?;
    let archive = Archive::from_bytes(&bytes)?;
    let data = archive.decompress()?;
    let mut f = io::BufWriter::new(std::fs::File::create(output)?);
    f.write_all(&data)?;
    f.flush()?;
    Ok(data.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use crate::lzss::LzssConfig;
    use crate::rabin::RabinParams;

    fn cfg() -> DedupConfig {
        DedupConfig {
            batch_size: 8 * 1024,
            rabin: RabinParams {
                window: 16,
                mask: (1 << 8) - 1,
                magic: 0x21,
                min_chunk: 128,
                max_chunk: 2048,
            },
            lzss: LzssConfig {
                window: 256,
                min_coded: 3,
            },
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hetstream-io-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn file_roundtrip() {
        let cfg = cfg();
        let input = tmp("in.dat");
        let arch = tmp("out.hda");
        let restored = tmp("restored.dat");
        let data = crate::datasets::linux_like(40_000, 17).data;
        std::fs::write(&input, &data).unwrap();

        let (in_len, out_len) =
            compress_file::<CpuBackend>(BackendCtx::cpu(cfg.lzss), &input, &arch, &cfg, 2).unwrap();
        assert_eq!(in_len, data.len() as u64);
        assert!(out_len < in_len, "source text must compress");

        let n = decompress_file(&arch, &restored).unwrap();
        assert_eq!(n, in_len);
        assert_eq!(std::fs::read(&restored).unwrap(), data);

        for p in [input, arch, restored] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn missing_input_is_reported() {
        let cfg = cfg();
        let err = compress_file::<CpuBackend>(
            BackendCtx::cpu(cfg.lzss),
            Path::new("/definitely/not/here"),
            &tmp("x.hda"),
            &cfg,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }

    #[test]
    fn corrupt_archive_is_reported() {
        let bad = tmp("bad.hda");
        std::fs::write(&bad, b"not an archive").unwrap();
        let err = decompress_file(&bad, &tmp("never.dat")).unwrap_err();
        assert!(matches!(err, IoError::Archive(_)));
        let _ = std::fs::remove_file(bad);
    }
}
