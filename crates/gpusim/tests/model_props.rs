//! Property tests for the timing model: durations must behave like
//! physical quantities (monotone, bounded below by overheads, additive in
//! the obvious limits) for *any* parameters, not just the calibrated ones.

use gpusim::kernel::LaunchDims;
use gpusim::model::{kernel_duration_from_units, transfer_duration};
use gpusim::DeviceProps;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_duration_is_monotone_in_total_work(
        warp_units in 1u64..10_000_000,
        extra in 1u64..1_000_000,
        threads in 32u64..100_000,
    ) {
        let props = DeviceProps::titan_xp();
        let dims = LaunchDims::cover(threads, 256);
        let base = kernel_duration_from_units(&props, &dims, 32, 0, 2.0, warp_units, 1);
        let more = kernel_duration_from_units(&props, &dims, 32, 0, 2.0, warp_units + extra, 1);
        prop_assert!(more >= base);
    }

    #[test]
    fn kernel_duration_is_bounded_below_by_launch_overhead(
        warp_units in 0u64..1_000_000,
        threads in 32u64..100_000,
    ) {
        let props = DeviceProps::titan_xp();
        let dims = LaunchDims::cover(threads, 256);
        let d = kernel_duration_from_units(&props, &dims, 32, 0, 1.0, warp_units, 0);
        prop_assert!(d.as_secs_f64() >= props.kernel_launch_s);
    }

    #[test]
    fn kernel_duration_is_bounded_below_by_critical_warp(
        max_warp in 1u64..10_000_000,
        cycles in 1u32..64,
    ) {
        let props = DeviceProps::titan_xp();
        let dims = LaunchDims::cover(1024, 256);
        let d = kernel_duration_from_units(
            &props, &dims, 32, 0, cycles as f64, max_warp, max_warp,
        );
        let floor = max_warp as f64 * cycles as f64 / props.clock_hz;
        prop_assert!(d.as_secs_f64() + 1e-12 >= floor);
    }

    #[test]
    fn more_register_pressure_never_speeds_a_kernel_up(
        regs_lo in 1u32..64,
        extra in 1u32..1024,
        warp_units in 1u64..5_000_000,
    ) {
        let props = DeviceProps::titan_xp();
        let dims = LaunchDims::cover(100_000, 256);
        let fast = kernel_duration_from_units(&props, &dims, regs_lo, 0, 2.0, warp_units, 1);
        let slow = kernel_duration_from_units(&props, &dims, regs_lo + extra, 0, 2.0, warp_units, 1);
        prop_assert!(slow >= fast);
    }

    #[test]
    fn transfers_are_monotone_and_latency_floored(
        bytes in 0u64..1_000_000_000,
        extra in 1u64..1_000_000,
    ) {
        let props = DeviceProps::titan_xp();
        for pinned in [false, true] {
            let base = transfer_duration(&props, bytes, pinned);
            let more = transfer_duration(&props, bytes + extra, pinned);
            prop_assert!(more >= base);
            prop_assert!(base.as_secs_f64() >= props.xfer_latency_s);
        }
        // Pinned never loses to pageable.
        prop_assert!(
            transfer_duration(&props, bytes, true) <= transfer_duration(&props, bytes, false)
        );
    }

    #[test]
    fn occupancy_is_within_hardware_limits(
        regs in 0u32..512,
        smem in 0u32..(128 * 1024),
        block in 32u32..1024,
    ) {
        let props = DeviceProps::titan_xp();
        let w = props.resident_warps(regs, smem, block);
        prop_assert!(w >= 1);
        prop_assert!(w <= props.max_warps_per_sm());
    }
}
