//! Randomized tests for the device timeline: for arbitrary command
//! sequences, per-stream completion times are monotone, engines never
//! overlap with themselves, and functional state matches a reference
//! model. Sequences come from the in-tree seeded RNG — deterministic and
//! offline.

use gpusim::{DeviceMemory, DeviceProps, GpuSystem, KernelFn, LaunchDims, StreamId, WorkMeter};
use simtime::{SimTime, XorShift64};

/// out[i] += add, for i < len.
struct AddKernel {
    buf: gpusim::DevicePtr<u32>,
    add: u32,
    units: u64,
}

impl KernelFn for AddKernel {
    fn name(&self) -> &'static str {
        "add"
    }
    fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
        let mut buf = mem.borrow_mut(self.buf);
        for lane in dims.lanes() {
            let i = lane as usize;
            if i < buf.len() {
                buf[i] = buf[i].wrapping_add(self.add);
            }
            meter.record(lane, self.units);
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Launch { stream: u8, add: u32, units: u16 },
    H2D { stream: u8, value: u32 },
    Event { from: u8, to: u8 },
}

fn random_op(rng: &mut XorShift64) -> Op {
    match rng.range_u32(0, 3) {
        0 => Op::Launch {
            stream: rng.range_u32(0, 2) as u8,
            add: rng.next_u32(),
            units: rng.range_u32(1, 1000) as u16,
        },
        1 => Op::H2D {
            stream: rng.range_u32(0, 2) as u8,
            value: rng.next_u32(),
        },
        _ => Op::Event {
            from: rng.range_u32(0, 2) as u8,
            to: rng.range_u32(0, 2) as u8,
        },
    }
}

#[test]
fn stream_timelines_are_monotone_and_functionally_consistent() {
    for case in 0..24u64 {
        let mut rng = XorShift64::new(0x712E ^ case);
        let ops: Vec<Op> = (0..rng.range_usize(1, 40))
            .map(|_| random_op(&mut rng))
            .collect();

        let system = GpuSystem::new(1, DeviceProps::test_tiny());
        let dev = system.device(0);
        let len = 64usize;
        let buf = dev.alloc::<u32>(len).unwrap();
        let s1 = dev.create_stream();
        let streams = [StreamId::DEFAULT, s1];
        let mut last_end = [SimTime::ZERO; 2];
        // Reference functional model.
        let mut reference = vec![0u32; len];

        for op in ops {
            match op {
                Op::Launch { stream, add, units } => {
                    let k = AddKernel {
                        buf,
                        add,
                        units: units as u64,
                    };
                    let end = dev.launch(
                        streams[stream as usize],
                        LaunchDims::cover(len as u64, 32),
                        &k,
                        SimTime::ZERO,
                    );
                    assert!(end >= last_end[stream as usize], "stream must be FIFO");
                    last_end[stream as usize] = end;
                    for v in reference.iter_mut() {
                        *v = v.wrapping_add(add);
                    }
                }
                Op::H2D { stream, value } => {
                    let host = vec![value; len];
                    let end =
                        dev.copy_h2d(streams[stream as usize], &host, buf, 0, true, SimTime::ZERO);
                    assert!(end >= last_end[stream as usize]);
                    last_end[stream as usize] = end;
                    reference = host;
                }
                Op::Event { from, to } => {
                    let ev = dev.record_event(streams[from as usize]);
                    assert_eq!(ev.time(), last_end[from as usize]);
                    dev.stream_wait_event(streams[to as usize], ev);
                    last_end[to as usize] = last_end[to as usize].max(ev.time());
                }
            }
        }

        // Functional state must match the reference (commands are eager and
        // totally ordered by our single-threaded enqueues).
        let mut out = vec![0u32; len];
        dev.copy_d2h(StreamId::DEFAULT, buf, 0, &mut out, true, SimTime::ZERO);
        assert_eq!(out, reference);

        // Device makespan covers both streams.
        let makespan = dev.device_last_end();
        assert!(makespan >= last_end[0].max(last_end[1]));

        // Engines cannot be busy longer than the makespan.
        let stats = dev.stats();
        let total = makespan.since(SimTime::ZERO);
        assert!(stats.compute_busy <= total);
        assert!(stats.h2d_busy <= total);
    }
}
