//! Simulated device global memory.
//!
//! Buffers live in a per-device table keyed by opaque ids; [`DevicePtr`] is
//! the typed, `Copy` handle kernels embed (the analogue of a raw device
//! pointer in a CUDA kernel signature). Dynamic `RefCell` borrows stand in
//! for the GPU's lack of aliasing rules: a kernel may read several buffers
//! while writing another, and misuse (writing a buffer it is also reading)
//! is caught at run time instead of being undefined behaviour.

use std::any::{Any, TypeId};
use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use telemetry::PoolCounters;

/// Error raised when an allocation exceeds device memory — the failure the
/// paper hit with 10 MB OpenCL batches ("out of memory error", §V-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Typed handle to a device buffer. `Copy`, cheap, embeddable in kernels.
pub struct DevicePtr<T> {
    pub(crate) id: u64,
    pub(crate) len: usize,
    pub(crate) device: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for DevicePtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DevicePtr<T> {}

impl<T> fmt::Debug for DevicePtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DevicePtr(dev{}, #{}, len {})",
            self.device, self.id, self.len
        )
    }
}

impl<T> DevicePtr<T> {
    /// Number of `T` elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Owning device index.
    pub fn device(&self) -> u32 {
        self.device
    }
}

/// Retired storage blocks kept per (type, size class) for recycling.
const CACHE_PER_CLASS: usize = 8;

/// One device's global-memory arena.
///
/// Freed buffer *storage* is parked in a size-classed free-list (keyed by
/// element type and power-of-two capacity class) and recycled by the next
/// [`alloc`](Self::alloc) of a fitting size, so steady-state allocate/free
/// cycles never touch the host allocator. Two invariants keep the cache
/// invisible to the memory *model*:
///
/// * **Accounting is unchanged.** `free` still decrements `used` and
///   `alloc` still re-increments it before consulting the cache, so
///   capacity-based [`OutOfMemory`] fires exactly as without the cache.
/// * **Fault injection precedes the cache.** Injected OOM is checked in
///   `Device::alloc` before `DeviceMemory::alloc` runs, so a fault-spec'd
///   device still refuses allocations even when the free-list could have
///   served them — recovery ladders stay testable with pooling on.
pub struct DeviceMemory {
    device: u32,
    capacity: u64,
    used: u64,
    next_id: u64,
    buffers: HashMap<u64, RefCell<Box<dyn Any + Send>>>,
    cache: HashMap<(TypeId, u32), Vec<Box<dyn Any + Send>>>,
    counters: Arc<PoolCounters>,
}

impl DeviceMemory {
    /// Arena for device `device` with `capacity` bytes.
    pub fn new(device: u32, capacity: u64) -> Self {
        DeviceMemory {
            device,
            capacity,
            used: 0,
            next_id: 1,
            buffers: HashMap::new(),
            cache: HashMap::new(),
            counters: PoolCounters::new(),
        }
    }

    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn alloc<T: Default + Clone + Send + 'static>(
        &mut self,
        len: usize,
    ) -> Result<DevicePtr<T>, OutOfMemory> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        if self.used + bytes > self.capacity {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let class = len.max(1).next_power_of_two().trailing_zeros();
        let storage: Box<dyn Any + Send> = match self
            .cache
            .get_mut(&(TypeId::of::<T>(), class))
            .and_then(Vec::pop)
        {
            Some(mut boxed) => {
                self.counters.hit();
                let v = boxed
                    .downcast_mut::<Vec<T>>()
                    .expect("cache entry type matches its key");
                v.clear();
                v.resize(len, T::default()); // same zero-init a fresh alloc gets
                boxed
            }
            None => {
                self.counters.miss();
                // Full class capacity up front, so recycling this block
                // later never reallocates for any length in the class.
                let mut v: Vec<T> = Vec::with_capacity(len.max(1).next_power_of_two());
                v.resize(len, T::default());
                Box::new(v)
            }
        };
        self.buffers.insert(id, RefCell::new(storage));
        self.used += bytes;
        self.counters.lease();
        Ok(DevicePtr {
            id,
            len,
            device: self.device,
            _marker: PhantomData,
        })
    }

    /// Free a buffer; double frees panic (they are driver bugs).
    pub fn free<T: 'static>(&mut self, ptr: DevicePtr<T>) {
        self.check_owner(&ptr);
        let removed = self
            .buffers
            .remove(&ptr.id)
            .unwrap_or_else(|| panic!("double free of {ptr:?}"));
        self.used -= (ptr.len * std::mem::size_of::<T>()) as u64;
        self.counters.release();
        let boxed = removed.into_inner();
        let capacity = match boxed.downcast_ref::<Vec<T>>() {
            Some(v) => v.capacity(),
            None => 0, // mistyped free: drop the storage, accounting already done
        };
        if capacity > 0 {
            // Class from *capacity* (floor log2): any future request the
            // class covers fits in this block.
            let class = usize::BITS - 1 - capacity.leading_zeros();
            let slot = self.cache.entry((TypeId::of::<T>(), class)).or_default();
            if slot.len() < CACHE_PER_CLASS {
                slot.push(boxed);
            } else {
                self.counters.shed_one();
            }
        }
    }

    /// Gauges of the allocation cache (hits/misses/outstanding), shareable
    /// with a `telemetry::Recorder`.
    pub fn cache_counters(&self) -> Arc<PoolCounters> {
        Arc::clone(&self.counters)
    }

    /// Storage blocks currently parked in the free-list.
    pub fn cached_blocks(&self) -> usize {
        self.cache.values().map(Vec::len).sum()
    }

    /// Shared borrow of a buffer's contents.
    ///
    /// # Panics
    /// Panics on wrong device, freed pointer, type mismatch, or if the
    /// buffer is mutably borrowed (a simultaneous-read-write kernel bug).
    pub fn borrow<T: 'static>(&self, ptr: DevicePtr<T>) -> Ref<'_, Vec<T>> {
        self.check_owner(&ptr);
        let cell = self
            .buffers
            .get(&ptr.id)
            .unwrap_or_else(|| panic!("use after free of {ptr:?}"));
        Ref::map(cell.borrow(), |b| {
            b.downcast_ref::<Vec<T>>()
                .expect("device buffer type mismatch")
        })
    }

    /// Exclusive borrow of a buffer's contents.
    pub fn borrow_mut<T: 'static>(&self, ptr: DevicePtr<T>) -> RefMut<'_, Vec<T>> {
        self.check_owner(&ptr);
        let cell = self
            .buffers
            .get(&ptr.id)
            .unwrap_or_else(|| panic!("use after free of {ptr:?}"));
        RefMut::map(cell.borrow_mut(), |b| {
            b.downcast_mut::<Vec<T>>()
                .expect("device buffer type mismatch")
        })
    }

    /// Host→device copy into `[offset, offset + src.len())`.
    pub fn write<T: Clone + 'static>(&self, ptr: DevicePtr<T>, offset: usize, src: &[T]) {
        let mut buf = self.borrow_mut(ptr);
        buf[offset..offset + src.len()].clone_from_slice(src);
    }

    /// Device→host copy from `[offset, offset + dst.len())`.
    pub fn read<T: Clone + 'static>(&self, ptr: DevicePtr<T>, offset: usize, dst: &mut [T]) {
        let buf = self.borrow(ptr);
        dst.clone_from_slice(&buf[offset..offset + dst.len()]);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.buffers.len()
    }

    fn check_owner<T>(&self, ptr: &DevicePtr<T>) {
        assert_eq!(
            ptr.device, self.device,
            "buffer {ptr:?} used on device {} — cross-device access without a copy",
            self.device
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut mem = DeviceMemory::new(0, 1024);
        let ptr = mem.alloc::<u32>(8).unwrap();
        mem.write(ptr, 2, &[10, 20, 30]);
        let mut out = [0u32; 3];
        mem.read(ptr, 2, &mut out);
        assert_eq!(out, [10, 20, 30]);
        assert_eq!(mem.used(), 32);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut mem = DeviceMemory::new(0, 64);
        let _a = mem.alloc::<u8>(48).unwrap();
        let err = mem.alloc::<u8>(32).unwrap_err();
        assert_eq!(err.requested, 32);
        assert_eq!(err.available, 16);
    }

    #[test]
    fn free_releases_space() {
        let mut mem = DeviceMemory::new(0, 64);
        let a = mem.alloc::<u8>(64).unwrap();
        mem.free(a);
        assert_eq!(mem.used(), 0);
        let _b = mem.alloc::<u8>(64).unwrap();
    }

    #[test]
    fn concurrent_shared_borrows_allowed() {
        let mut mem = DeviceMemory::new(0, 1024);
        let ptr = mem.alloc::<u8>(16).unwrap();
        let r1 = mem.borrow(ptr);
        let r2 = mem.borrow(ptr);
        assert_eq!(r1.len(), r2.len());
    }

    #[test]
    #[should_panic]
    fn read_write_alias_is_caught() {
        let mut mem = DeviceMemory::new(0, 1024);
        let ptr = mem.alloc::<u8>(16).unwrap();
        let _r = mem.borrow(ptr);
        let _w = mem.borrow_mut(ptr); // panics: aliasing kernel bug
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_is_caught() {
        let mut mem = DeviceMemory::new(0, 1024);
        let ptr = mem.alloc::<u8>(16).unwrap();
        mem.free(ptr);
        let _ = mem.borrow(ptr);
    }

    #[test]
    #[should_panic(expected = "cross-device access")]
    fn cross_device_access_is_caught() {
        let mut mem0 = DeviceMemory::new(0, 1024);
        let mem1 = DeviceMemory::new(1, 1024);
        let ptr = mem0.alloc::<u8>(16).unwrap();
        let _ = mem1.borrow(ptr);
    }

    #[test]
    fn alloc_free_alloc_recycles_storage() {
        let mut mem = DeviceMemory::new(0, 4096);
        let a = mem.alloc::<u32>(100).unwrap();
        mem.write(a, 0, &[0xDEAD_BEEF; 100]);
        mem.free(a);
        assert_eq!(mem.cached_blocks(), 1);
        let b = mem.alloc::<u32>(100).unwrap();
        // Recycled storage must look freshly zero-initialized.
        assert!(mem.borrow(b).iter().all(|&x| x == 0));
        let s = mem.cache_counters().snapshot();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(mem.cached_blocks(), 0);
    }

    #[test]
    fn cache_keeps_accounting_exact() {
        let mut mem = DeviceMemory::new(0, 64);
        let a = mem.alloc::<u8>(64).unwrap();
        mem.free(a);
        assert_eq!(mem.used(), 0);
        // The parked block does not count against capacity; a same-size
        // alloc succeeds and is a hit.
        let b = mem.alloc::<u8>(64).unwrap();
        assert_eq!(mem.used(), 64);
        mem.free(b);
        assert_eq!(mem.cache_counters().snapshot().hits, 1);
    }

    #[test]
    fn cache_is_bounded_per_class() {
        let mut mem = DeviceMemory::new(0, 1 << 20);
        let ptrs: Vec<_> = (0..12).map(|_| mem.alloc::<u8>(256).unwrap()).collect();
        for p in ptrs {
            mem.free(p);
        }
        assert!(mem.cached_blocks() <= 8);
        assert!(mem.cache_counters().snapshot().shed >= 4);
    }

    #[test]
    fn cache_respects_type_and_class() {
        let mut mem = DeviceMemory::new(0, 1 << 20);
        let a = mem.alloc::<u32>(64).unwrap();
        mem.free(a);
        // Different element type must not hit the u32 block.
        let _b = mem.alloc::<u8>(64).unwrap();
        // Different size class must not hit it either.
        let _c = mem.alloc::<u32>(4096).unwrap();
        assert_eq!(mem.cache_counters().snapshot().hits, 0);
    }

    #[test]
    fn zero_len_buffer_is_fine() {
        let mut mem = DeviceMemory::new(0, 1024);
        let ptr = mem.alloc::<u64>(0).unwrap();
        assert!(ptr.is_empty());
        assert_eq!(mem.used(), 0);
    }
}
