//! Backend-neutral offload façade: one trait over the [`cuda`](crate::cuda)
//! and [`opencl`](crate::opencl) front ends.
//!
//! The paper ports each application twice — once against the CUDA runtime
//! and once against OpenCL — and §IV-A shows the two integrations differ
//! only in boilerplate: select a device, allocate buffers, move data,
//! launch, synchronize. [`Offload`] captures exactly that five-verb
//! surface so stage code can be written once and instantiated per backend
//! (`run_spar_gpu::<CudaOffload>` vs `run_spar_gpu::<OclOffload>`), while
//! [`OffloadApi`] lets a harness pick the backend by value at runtime.
//!
//! The raw façades stay public and are still the right tool when an
//! application needs backend-specific machinery the common surface hides:
//! multi-stream overlap, events, pinned-vs-pageable copy semantics — the
//! whole Fig. 1 optimization ladder lives there.
//!
//! Thread discipline is inherited, not hidden: [`Offload::attach`] must run
//! on the thread that will drive the offloader. For CUDA that is where the
//! mandatory per-thread `cudaSetDevice` happens (building on one thread and
//! launching from another still panics, reproducing the paper's
//! hardest-to-find bug class); for OpenCL the per-launch `ClKernel` objects
//! stay thread-local because they are deliberately `!Sync`.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::cuda::{Cuda, CudaBuffer, CudaStream, PinnedBuf};
use crate::mem::{DevicePtr, OutOfMemory};
use crate::opencl::ClKernel;
use crate::opencl::{ClBuffer, ClDeviceId, CommandQueue, Context, Platform};
use crate::{GpuSystem, KernelFn};

/// Which front end an [`Offload`] implementation drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OffloadApi {
    /// The CUDA-like front end ([`crate::cuda`]).
    Cuda,
    /// The OpenCL-like front end ([`crate::opencl`]).
    OpenCl,
}

impl OffloadApi {
    /// Short lowercase name for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            OffloadApi::Cuda => "cuda",
            OffloadApi::OpenCl => "opencl",
        }
    }

    /// Parse a CLI-style backend name (`"cuda"` / `"opencl"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cuda" => Some(OffloadApi::Cuda),
            "opencl" | "ocl" => Some(OffloadApi::OpenCl),
            _ => None,
        }
    }
}

impl std::fmt::Display for OffloadApi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The unified offload surface: device select, buffer alloc, async
/// host↔device copies, kernel launch, synchronize.
///
/// Ordering model: all operations issued through one offloader execute in
/// FIFO order on its private queue (a CUDA stream / an in-order OpenCL
/// command queue). `h2d`, `launch` and `d2h` are asynchronous enqueues;
/// host-side buffers passed to `d2h` hold defined contents only after
/// [`sync`](Offload::sync) returns.
pub trait Offload: Send + 'static {
    /// Device-resident buffer handle (`'static` so callers may attach it
    /// to stream items, type-erased, for cross-stage buffer reuse).
    type Buffer<T: Default + Clone + Send + 'static>: Send + 'static;

    /// Host-side staging buffer eligible for asynchronous transfers
    /// (page-locked memory under CUDA, a plain vector under OpenCL).
    type HostBuf<T: Default + Clone + Send + 'static>: Send
        + 'static
        + Deref<Target = [T]>
        + DerefMut;

    /// Which front end this implementation drives.
    const API: OffloadApi;

    /// Bind an offloader to `device`. Must be called on the thread that
    /// will use it (per-thread `cudaSetDevice` / `cl_kernel` locality).
    fn attach(system: &Arc<GpuSystem>, device: usize) -> Self;

    /// The bound device index.
    fn device(&self) -> usize;

    /// Allocate a device buffer of `len` elements.
    fn try_alloc<T: Default + Clone + Send + 'static>(
        &mut self,
        len: usize,
    ) -> Result<Self::Buffer<T>, OutOfMemory>;

    /// [`try_alloc`](Offload::try_alloc), panicking on device OOM.
    #[deprecated(
        since = "0.1.0",
        note = "panics on device OOM; use `try_alloc` and run the recovery ladder (see `workload::WorkloadDriver`)"
    )]
    fn alloc<T: Default + Clone + Send + 'static>(&mut self, len: usize) -> Self::Buffer<T> {
        match self.try_alloc(len) {
            Ok(buf) => buf,
            Err(e) => panic!(
                "{} device {} out of memory: requested {} B, {} B free",
                Self::API,
                self.device(),
                e.requested,
                e.available
            ),
        }
    }

    /// Allocate a host staging buffer of `len` default-valued elements.
    fn alloc_host<T: Default + Clone + Send + 'static>(&mut self, len: usize) -> Self::HostBuf<T>;

    /// Raw device pointer for embedding into kernel structs.
    fn buffer_ptr<T: Default + Clone + Send + 'static>(buf: &Self::Buffer<T>) -> DevicePtr<T>;

    /// Element count of a device buffer.
    fn buffer_len<T: Default + Clone + Send + 'static>(buf: &Self::Buffer<T>) -> usize {
        Self::buffer_ptr(buf).len()
    }

    /// Enqueue a host→device copy from an arbitrary slice. Truly
    /// asynchronous when the slice's memory is registered as pinned
    /// ([`crate::pinned`]); otherwise the backend is allowed to degrade
    /// it to a synchronous driver bounce (charged to `telemetry::copy`).
    fn h2d<T: Default + Clone + Send + 'static>(&mut self, dst: &Self::Buffer<T>, src: &[T]) {
        self.h2d_pinned(dst, src, src.len());
    }

    /// Pinned-aware host→device copy of the first `n` elements of `src` —
    /// the zero-copy verb: a [`fastflow`-pooled] buffer whose slab is
    /// registered in the pinned registry travels pool→device with no
    /// intermediate staging memcpy.
    ///
    /// [`fastflow`-pooled]: crate::pinned
    fn h2d_pinned<T: Default + Clone + Send + 'static>(
        &mut self,
        dst: &Self::Buffer<T>,
        src: &[T],
        n: usize,
    );

    /// Enqueue an asynchronous host→device copy of the first `n` elements
    /// of a backend staging buffer — for recycled staging slabs sized to
    /// their class, not to this batch (`n <= src.len()` and `n <=` the
    /// buffer length).
    fn h2d_n<T: Default + Clone + Send + 'static>(
        &mut self,
        dst: &Self::Buffer<T>,
        src: &Self::HostBuf<T>,
        n: usize,
    );

    /// Enqueue a kernel over at least `global_threads` lanes in blocks /
    /// work-groups of `block` threads.
    ///
    /// # Panics
    /// Panics if the device fails the launch (fault injection); recovery
    /// paths use [`try_launch`](Offload::try_launch) instead.
    #[deprecated(
        since = "0.1.0",
        note = "panics on a refused launch; use `try_launch` and run the recovery ladder (see `workload::WorkloadDriver`)"
    )]
    fn launch<K: KernelFn>(&mut self, kernel: K, global_threads: u64, block: u32) {
        if let Err(e) = self.try_launch(kernel, global_threads, block) {
            panic!("{e}");
        }
    }

    /// Fallible [`launch`](Offload::launch): a failed launch is reported,
    /// enqueues nothing and leaves device memory untouched, so the caller
    /// may retry or degrade to a CPU path.
    fn try_launch<K: KernelFn>(
        &mut self,
        kernel: K,
        global_threads: u64,
        block: u32,
    ) -> Result<(), crate::fault::DeviceFault>;

    /// Enqueue a device→host copy into an arbitrary slice. `dst` holds
    /// defined contents only after [`sync`](Offload::sync). Pinned-aware
    /// like [`h2d`](Offload::h2d).
    fn d2h<T: Default + Clone + Send + 'static>(&mut self, src: &Self::Buffer<T>, dst: &mut [T]) {
        let n = dst.len();
        self.d2h_pinned(src, dst, n);
    }

    /// Pinned-aware device→host copy into the first `n` elements of
    /// `dst` — the read-side zero-copy verb: results land directly in a
    /// registered pooled buffer, no staging slab in between.
    fn d2h_pinned<T: Default + Clone + Send + 'static>(
        &mut self,
        src: &Self::Buffer<T>,
        dst: &mut [T],
        n: usize,
    );

    /// Enqueue an asynchronous device→host copy of the first `n` elements
    /// into a backend staging buffer — the read-side counterpart of
    /// [`h2d_n`](Offload::h2d_n).
    fn d2h_n<T: Default + Clone + Send + 'static>(
        &mut self,
        src: &Self::Buffer<T>,
        dst: &mut Self::HostBuf<T>,
        n: usize,
    );

    /// Block the host until every operation issued through this offloader
    /// has completed.
    fn sync(&mut self);
}

/// Round-robin ring of recycled host staging buffers — the paper's "2×
/// memory spaces" idiom (4× with overlap) as a reusable component.
///
/// Each [`next`](HostRing::next) call advances the cursor and returns a
/// staging buffer of at least `len` elements, reallocating a slot only
/// when it must grow (to the next power of two, so slot sizes stabilize
/// after warmup and the steady state never touches the allocator).
/// [`current`](HostRing::current) re-borrows the buffer `next` returned
/// last, letting a later pipeline step read back what an earlier step
/// staged without re-advancing the ring.
pub struct HostRing<O: Offload, T: Default + Clone + Send + 'static> {
    slots: Vec<Option<O::HostBuf<T>>>,
    cursor: usize,
}

impl<O: Offload, T: Default + Clone + Send + 'static> HostRing<O, T> {
    /// An empty ring of `n_slots` lazily-allocated staging buffers.
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots > 0, "a staging ring needs at least one slot");
        HostRing {
            slots: (0..n_slots).map(|_| None).collect(),
            cursor: 0,
        }
    }

    /// Advance to the next slot and return its buffer, grown to hold at
    /// least `len` elements.
    pub fn next(&mut self, off: &mut O, len: usize) -> &mut O::HostBuf<T> {
        self.cursor = (self.cursor + 1) % self.slots.len();
        let slot = &mut self.slots[self.cursor];
        let needs_alloc = match slot {
            Some(buf) => buf.len() < len,
            None => true,
        };
        if needs_alloc {
            *slot = Some(off.alloc_host(len.max(1).next_power_of_two()));
        }
        slot.as_mut().expect("slot allocated above")
    }

    /// The buffer the last [`next`](HostRing::next) returned.
    ///
    /// # Panics
    /// Panics if `next` has never been called.
    pub fn current(&self) -> &O::HostBuf<T> {
        self.slots[self.cursor]
            .as_ref()
            .expect("HostRing::current before first next()")
    }
}

/// [`Offload`] over the CUDA front end: one private stream plus pinned
/// staging, built where `cudaSetDevice` ran.
pub struct CudaOffload {
    cuda: Cuda,
    device: usize,
    stream: CudaStream,
}

impl Offload for CudaOffload {
    type Buffer<T: Default + Clone + Send + 'static> = CudaBuffer<T>;
    type HostBuf<T: Default + Clone + Send + 'static> = PinnedBuf<T>;

    const API: OffloadApi = OffloadApi::Cuda;

    fn attach(system: &Arc<GpuSystem>, device: usize) -> Self {
        let cuda = Cuda::new(Arc::clone(system));
        // The per-thread initialization §IV-A insists on.
        cuda.set_device(device);
        let stream = cuda.stream_create();
        CudaOffload {
            cuda,
            device,
            stream,
        }
    }

    fn device(&self) -> usize {
        self.device
    }

    fn try_alloc<T: Default + Clone + Send + 'static>(
        &mut self,
        len: usize,
    ) -> Result<CudaBuffer<T>, OutOfMemory> {
        self.cuda.set_device(self.device);
        self.cuda.malloc(len)
    }

    fn alloc_host<T: Default + Clone + Send + 'static>(&mut self, len: usize) -> PinnedBuf<T> {
        self.cuda.malloc_host(len)
    }

    fn buffer_ptr<T: Default + Clone + Send + 'static>(buf: &CudaBuffer<T>) -> DevicePtr<T> {
        buf.ptr()
    }

    fn h2d_pinned<T: Default + Clone + Send + 'static>(
        &mut self,
        dst: &CudaBuffer<T>,
        src: &[T],
        n: usize,
    ) {
        // Re-bind before every operation: the raw integrations must remember
        // this themselves (the paper's bug class); the façade encapsulates it
        // so several offloaders can share one thread.
        self.cuda.set_device(self.device);
        self.cuda.memcpy_h2d_auto(dst, 0, &src[..n], &self.stream);
    }

    fn h2d_n<T: Default + Clone + Send + 'static>(
        &mut self,
        dst: &CudaBuffer<T>,
        src: &PinnedBuf<T>,
        n: usize,
    ) {
        self.cuda.set_device(self.device);
        self.cuda
            .memcpy_h2d_async_prefix(dst, 0, src, n, &self.stream);
    }

    fn try_launch<K: KernelFn>(
        &mut self,
        kernel: K,
        global_threads: u64,
        block: u32,
    ) -> Result<(), crate::fault::DeviceFault> {
        self.cuda.set_device(self.device);
        let blocks = global_threads.div_ceil(block as u64).max(1) as u32;
        self.cuda.try_launch(&kernel, blocks, block, &self.stream)
    }

    fn d2h_pinned<T: Default + Clone + Send + 'static>(
        &mut self,
        src: &CudaBuffer<T>,
        dst: &mut [T],
        n: usize,
    ) {
        self.cuda.set_device(self.device);
        self.cuda
            .memcpy_d2h_auto(&mut dst[..n], src, 0, &self.stream);
    }

    fn d2h_n<T: Default + Clone + Send + 'static>(
        &mut self,
        src: &CudaBuffer<T>,
        dst: &mut PinnedBuf<T>,
        n: usize,
    ) {
        self.cuda.set_device(self.device);
        self.cuda
            .memcpy_d2h_async_prefix(dst, n, src, 0, &self.stream);
    }

    fn sync(&mut self) {
        self.cuda.stream_synchronize(&self.stream);
    }
}

/// [`Offload`] over the OpenCL front end: one in-order command queue; a
/// fresh thread-local [`ClKernel`] object per launch (the `!Sync` rule).
pub struct OclOffload {
    ctx: Context,
    queue: CommandQueue,
    device: ClDeviceId,
}

impl Offload for OclOffload {
    type Buffer<T: Default + Clone + Send + 'static> = ClBuffer<T>;
    type HostBuf<T: Default + Clone + Send + 'static> = Vec<T>;

    const API: OffloadApi = OffloadApi::OpenCl;

    fn attach(system: &Arc<GpuSystem>, device: usize) -> Self {
        let platform = Platform::new(Arc::clone(system));
        let ids = platform.device_ids();
        let ctx = Context::create(&platform, &ids);
        let queue = ctx.create_queue(ids[device]);
        OclOffload {
            ctx,
            queue,
            device: ids[device],
        }
    }

    fn device(&self) -> usize {
        self.device.index()
    }

    fn try_alloc<T: Default + Clone + Send + 'static>(
        &mut self,
        len: usize,
    ) -> Result<ClBuffer<T>, OutOfMemory> {
        self.ctx.create_buffer(self.device, len)
    }

    fn alloc_host<T: Default + Clone + Send + 'static>(&mut self, len: usize) -> Vec<T> {
        vec![T::default(); len]
    }

    fn buffer_ptr<T: Default + Clone + Send + 'static>(buf: &ClBuffer<T>) -> DevicePtr<T> {
        buf.ptr()
    }

    fn h2d_pinned<T: Default + Clone + Send + 'static>(
        &mut self,
        dst: &ClBuffer<T>,
        src: &[T],
        n: usize,
    ) {
        self.queue
            .enqueue_write_buffer(dst, false, 0, &src[..n], &[]);
    }

    fn h2d_n<T: Default + Clone + Send + 'static>(
        &mut self,
        dst: &ClBuffer<T>,
        src: &Vec<T>,
        n: usize,
    ) {
        self.queue
            .enqueue_write_buffer(dst, false, 0, &src[..n], &[]);
    }

    fn try_launch<K: KernelFn>(
        &mut self,
        kernel: K,
        global_threads: u64,
        block: u32,
    ) -> Result<(), crate::fault::DeviceFault> {
        // A fresh (thread-local) kernel object per launch: cl_kernel is not
        // thread-safe and must not be shared.
        let kernel = ClKernel::create(kernel);
        let global = global_threads
            .next_multiple_of(block as u64)
            .max(block as u64);
        self.queue
            .try_enqueue_nd_range(&kernel, global, block, &[])
            .map(|_| ())
    }

    fn d2h_pinned<T: Default + Clone + Send + 'static>(
        &mut self,
        src: &ClBuffer<T>,
        dst: &mut [T],
        n: usize,
    ) {
        self.queue
            .enqueue_read_buffer(src, false, 0, &mut dst[..n], &[]);
    }

    fn d2h_n<T: Default + Clone + Send + 'static>(
        &mut self,
        src: &ClBuffer<T>,
        dst: &mut Vec<T>,
        n: usize,
    ) {
        self.queue
            .enqueue_read_buffer(src, false, 0, &mut dst[..n], &[]);
    }

    fn sync(&mut self) {
        self.queue.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DeviceMemory;
    use crate::meter::WorkMeter;
    use crate::props::DeviceProps;
    use crate::LaunchDims;

    /// `out[i] = in[i] + 1` — enough to exercise every trait verb.
    struct IncKernel {
        src: DevicePtr<u32>,
        dst: DevicePtr<u32>,
        n: usize,
    }

    impl KernelFn for IncKernel {
        fn name(&self) -> &'static str {
            "inc"
        }
        fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
            let src = mem.borrow(self.src);
            let mut dst = mem.borrow_mut(self.dst);
            for lane in dims.lanes() {
                let i = lane as usize;
                if i < self.n {
                    dst[i] = src[i] + 1;
                    meter.record(lane, 1);
                }
            }
        }
    }

    fn roundtrip<O: Offload>() {
        let system = GpuSystem::new(2, DeviceProps::titan_xp());
        let mut off = O::attach(&system, 1);
        assert_eq!(off.device(), 1);
        let n = 1000;
        let src: O::Buffer<u32> = off.try_alloc(n).expect("healthy device");
        let dst: O::Buffer<u32> = off.try_alloc(n).expect("healthy device");
        assert_eq!(O::buffer_len(&src), n);
        let mut host = off.alloc_host::<u32>(n);
        for (i, v) in host.iter_mut().enumerate() {
            *v = i as u32;
        }
        off.h2d_n(&src, &host, n);
        off.try_launch(
            IncKernel {
                src: O::buffer_ptr(&src),
                dst: O::buffer_ptr(&dst),
                n,
            },
            n as u64,
            256,
        )
        .expect("healthy device");
        let mut out = off.alloc_host::<u32>(n);
        off.d2h_n(&dst, &mut out, n);
        off.sync();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
    }

    #[test]
    fn cuda_offload_roundtrips() {
        roundtrip::<CudaOffload>();
    }

    #[test]
    fn opencl_offload_roundtrips() {
        roundtrip::<OclOffload>();
    }

    #[test]
    fn api_names_parse_back() {
        for api in [OffloadApi::Cuda, OffloadApi::OpenCl] {
            assert_eq!(OffloadApi::parse(api.name()), Some(api));
        }
        assert_eq!(OffloadApi::parse("ocl"), Some(OffloadApi::OpenCl));
        assert_eq!(OffloadApi::parse("vulkan"), None);
    }

    fn prefix_roundtrip<O: Offload>() {
        let system = GpuSystem::new(1, DeviceProps::titan_xp());
        let mut off = O::attach(&system, 0);
        let n = 100;
        let dev: O::Buffer<u32> = off.try_alloc(n).expect("healthy device");
        let mut ring: HostRing<O, u32> = HostRing::new(2);
        // Slot sized to the class (128), payload only n elements.
        let host = ring.next(&mut off, n);
        assert!(host.len() >= n);
        for (i, v) in host[..n].iter_mut().enumerate() {
            *v = i as u32 * 3;
        }
        off.h2d_n(&dev, ring.current(), n);
        let out = ring.next(&mut off, n);
        out.iter_mut().for_each(|v| *v = u32::MAX);
        off.d2h_n(&dev, out, n);
        off.sync();
        for (i, &v) in ring.current()[..n].iter().enumerate() {
            assert_eq!(v, i as u32 * 3);
        }
        // Same lengths again: the ring must not reallocate.
        let p0 = ring.next(&mut off, n).as_ptr();
        let p1 = ring.next(&mut off, n).as_ptr();
        assert_eq!(ring.next(&mut off, n).as_ptr(), p0);
        assert_eq!(ring.next(&mut off, n).as_ptr(), p1);
    }

    #[test]
    fn cuda_prefix_copies_roundtrip() {
        prefix_roundtrip::<CudaOffload>();
    }

    #[test]
    fn opencl_prefix_copies_roundtrip() {
        prefix_roundtrip::<OclOffload>();
    }

    fn pinned_slice_roundtrip<O: Offload>() {
        let system = GpuSystem::new(1, DeviceProps::titan_xp());
        let mut off = O::attach(&system, 0);
        let n = 300;
        let dev: O::Buffer<u32> = off.try_alloc(n).expect("healthy device");
        let data: Vec<u32> = (0..n as u32).map(|i| i * 7).collect();
        let mut out = vec![0u32; n];
        let _pin_in = crate::pinned::PinnedSlab::register(&data);
        let _pin_out = crate::pinned::PinnedSlab::register(&out);
        off.h2d_pinned(&dev, &data, n);
        off.d2h_pinned(&dev, &mut out, n);
        off.sync();
        assert_eq!(out, data);
        // Prefix form: only the first 10 elements are overwritten.
        let mut tail = vec![u32::MAX; n];
        {
            let _pin = crate::pinned::PinnedSlab::register(&tail);
            off.d2h_pinned(&dev, &mut tail, 10);
            off.sync();
        }
        assert_eq!(&tail[..10], &data[..10]);
        assert!(tail[10..].iter().all(|&v| v == u32::MAX));
    }

    #[test]
    fn cuda_pinned_slice_verbs_roundtrip() {
        pinned_slice_roundtrip::<CudaOffload>();
    }

    #[test]
    fn opencl_pinned_slice_verbs_roundtrip() {
        pinned_slice_roundtrip::<OclOffload>();
    }

    #[test]
    fn unregistered_slices_bounce_and_block_under_cuda() {
        let system = GpuSystem::new(1, DeviceProps::titan_xp());
        let mut off = CudaOffload::attach(&system, 0);
        let n = 1 << 20;
        let dev: crate::cuda::CudaBuffer<u8> = off.try_alloc(n).expect("healthy device");
        let src = vec![1u8; n];
        let t0 = system.host_now();
        {
            let _pin = crate::pinned::PinnedSlab::register(&src);
            off.h2d_pinned(&dev, &src, n);
        }
        let t_pinned = system.host_now().since(t0);
        system.reset_clock();
        let before = telemetry::copy::snapshot();
        let t1 = system.host_now();
        off.h2d_pinned(&dev, &src, n); // guard dropped: pageable now
        let t_bounce = system.host_now().since(t1);
        let delta = telemetry::copy::snapshot().since(&before);
        assert!(
            delta.bounce_bytes >= n as u64,
            "unregistered transfer must be charged as a driver bounce"
        );
        assert!(
            t_bounce.as_nanos() > 10 * t_pinned.as_nanos(),
            "unregistered copy must block the host: pinned={t_pinned:?} bounce={t_bounce:?}"
        );
    }

    #[test]
    fn try_alloc_reports_oom() {
        let mut props = DeviceProps::titan_xp();
        props.global_mem = 4096;
        let system = GpuSystem::new(1, props);
        let mut off = CudaOffload::attach(&system, 0);
        assert!(off.try_alloc::<u8>(1 << 20).is_err());
    }

    #[test]
    fn offload_timeline_is_traced() {
        let system = GpuSystem::new(1, DeviceProps::titan_xp());
        system.device(0).enable_trace();
        let mut off = OclOffload::attach(&system, 0);
        let buf: ClBuffer<u32> = off.try_alloc(256).expect("healthy device");
        let host = off.alloc_host::<u32>(256);
        off.h2d_n(&buf, &host, 256);
        let mut out = off.alloc_host::<u32>(256);
        off.d2h_n(&buf, &mut out, 256);
        off.sync();
        let trace = system.device(0).take_trace();
        assert!(trace.iter().any(|r| r.engine == crate::TraceEngine::H2D));
        assert!(trace.iter().any(|r| r.engine == crate::TraceEngine::D2H));
    }
}
