//! Kernel abstraction and launch geometry.

use crate::mem::DeviceMemory;
use crate::meter::WorkMeter;

/// A three-component extent, as in CUDA's `dim3` / OpenCL's NDRange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dim3 {
    /// Fastest-varying extent.
    pub x: u32,
    /// Middle extent.
    pub y: u32,
    /// Slowest extent.
    pub z: u32,
}

impl Dim3 {
    /// `(x, 1, 1)`.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Product of extents.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

/// Grid/block geometry of one kernel launch (`<<<grid, block>>>`).
#[derive(Clone, Copy, Debug)]
pub struct LaunchDims {
    /// Blocks in the grid.
    pub grid: Dim3,
    /// Threads per block.
    pub block: Dim3,
}

impl LaunchDims {
    /// 1-D helper: `blocks` × `threads`.
    pub fn linear(blocks: u32, threads: u32) -> Self {
        LaunchDims {
            grid: Dim3::x(blocks),
            block: Dim3::x(threads),
        }
    }

    /// 1-D helper sized to cover at least `total` threads with the given
    /// block size.
    pub fn cover(total: u64, block_threads: u32) -> Self {
        let blocks = total.div_ceil(block_threads as u64) as u32;
        LaunchDims::linear(blocks.max(1), block_threads)
    }

    /// Threads per block.
    pub fn block_threads(&self) -> u32 {
        self.block.count() as u32
    }

    /// Blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> u64 {
        self.total_blocks() * self.block_threads() as u64
    }

    /// Iterate over global linear lane ids, warp-ordered exactly as CUDA
    /// forms warps: threads linearized within a block (x fastest), blocks
    /// linearized in grid order.
    pub fn lanes(&self) -> std::ops::Range<u64> {
        0..self.total_threads()
    }
}

/// A device kernel: functional body plus its cost-model metadata.
///
/// The body receives the whole launch and iterates lanes itself (the host
/// executes it eagerly and sequentially — results must be identical to any
/// parallel schedule, which the memory system's borrow discipline enforces),
/// reporting per-lane work units to the meter for the divergence-aware
/// timing model.
pub trait KernelFn: Send + Sync {
    /// Kernel name for reports (the `__global__` function name).
    fn name(&self) -> &'static str;

    /// Registers per thread, as `nvcc --ptxas-options=-v` would report.
    /// Feeds the occupancy model. The paper's Mandelbrot kernel uses 18.
    fn regs_per_thread(&self) -> u32 {
        32
    }

    /// Static shared memory per block, bytes.
    fn smem_per_block(&self) -> u32 {
        0
    }

    /// Device cycles one work unit costs a warp (kernel-specific: a
    /// Mandelbrot iteration, a SHA-1 byte, an LZSS probe...).
    fn cycles_per_unit(&self) -> f64 {
        1.0
    }

    /// Execute the kernel functionally over device memory, recording work.
    fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_counts() {
        assert_eq!(Dim3::x(5).count(), 5);
        assert_eq!(Dim3::xy(4, 3).count(), 12);
        assert_eq!(Dim3 { x: 2, y: 3, z: 4 }.count(), 24);
    }

    #[test]
    fn launch_cover_rounds_up() {
        let d = LaunchDims::cover(1000, 256);
        assert_eq!(d.total_blocks(), 4);
        assert_eq!(d.total_threads(), 1024);
        assert!(d.total_threads() >= 1000);
    }

    #[test]
    fn cover_zero_still_launches_one_block() {
        let d = LaunchDims::cover(0, 128);
        assert_eq!(d.total_blocks(), 1);
    }

    #[test]
    fn lanes_iterate_all_threads() {
        let d = LaunchDims::linear(3, 64);
        assert_eq!(d.lanes().count(), 192);
    }
}
