//! The device timing model: kernel and transfer durations.
//!
//! Captures the performance mechanisms the paper's optimization ladder
//! exercises, and nothing more:
//!
//! * **Launch overhead** — a fixed driver/dispatch cost per kernel; with
//!   per-line Mandelbrot kernels this dominates and caps speedup at ~3×.
//! * **Block scheduling** — a small per-block dispatch cost.
//! * **Occupancy** — resident warps per SM limited by threads, registers
//!   and shared memory ([`DeviceProps::resident_warps`]).
//! * **Divergence** — warp time is the *max* lane work
//!   ([`WorkMeter::warp_units`]).
//! * **Throughput vs latency bound** — a kernel cannot finish faster than
//!   its slowest warp, nor faster than total warp work divided by the
//!   device's warp execution slots.
//! * **PCIe transfers** — fixed latency + bytes/bandwidth; pinned
//!   (page-locked) memory is somewhat faster, and — modeled at the API
//!   layer — pageable async copies block the host.

use simtime::SimDuration;

use crate::kernel::{KernelFn, LaunchDims};
use crate::meter::WorkMeter;
use crate::props::DeviceProps;

/// Transfer direction (engines are modeled per direction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XferDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// Modeled duration of one kernel execution (excludes queueing).
pub fn kernel_duration(
    props: &DeviceProps,
    dims: &LaunchDims,
    kernel: &dyn KernelFn,
    meter: &WorkMeter,
) -> SimDuration {
    kernel_duration_from_units(
        props,
        dims,
        kernel.regs_per_thread(),
        kernel.smem_per_block(),
        kernel.cycles_per_unit(),
        meter.warp_units(),
        meter.max_warp_units(),
    )
}

/// [`kernel_duration`] from pre-summarized meter data (sum and max of
/// per-warp work). Lets performance models time kernels without holding
/// the full [`WorkMeter`] or the kernel object.
#[allow(clippy::too_many_arguments)]
pub fn kernel_duration_from_units(
    props: &DeviceProps,
    dims: &LaunchDims,
    regs_per_thread: u32,
    smem_per_block: u32,
    cycles_per_unit: f64,
    warp_units: u64,
    max_warp_units: u64,
) -> SimDuration {
    let resident = props.resident_warps(regs_per_thread, smem_per_block, dims.block_threads());
    // Warps the whole device can *execute* at once: per-SM execution units,
    // further limited by occupancy (too few resident warps = no latency
    // hiding, modeled as proportionally fewer effective slots).
    let slots_per_sm = (props.warp_exec_units.min(resident)) as f64;
    let device_slots = props.sm_count as f64 * slots_per_sm;

    let total_warp_cycles = warp_units as f64 * cycles_per_unit;

    // Latency starvation: `cycles_per_unit` is a *throughput* cost that
    // assumes enough co-resident busy warps to hide operation latency.
    // When the launch provides too few (the per-line Mandelbrot kernels:
    // ~2 busy warps per SM), dependent chains run at latency, not
    // throughput — modeled as up to `warp_exec_units`× inflation of the
    // critical warp. "Busy" warps are counted work-weighted
    // (`warp_units / max_warp_units`) so near-idle bounds-check lanes (the
    // 2-D grid variant) don't pose as latency hiders.
    let eff_warps = if max_warp_units > 0 {
        (warp_units as f64 / max_warp_units as f64).max(1.0)
    } else {
        1.0
    };
    let busy_per_sm = eff_warps / props.sm_count as f64;
    let starvation =
        (props.warp_exec_units as f64 / busy_per_sm).clamp(1.0, props.warp_exec_units as f64);
    let critical_warp_cycles = max_warp_units as f64 * cycles_per_unit * starvation;

    let throughput_bound = total_warp_cycles / device_slots;
    let compute_cycles = throughput_bound.max(critical_warp_cycles);
    let compute_s = compute_cycles / props.clock_hz;

    let overhead_s = props.kernel_launch_s + props.block_sched_s * dims.total_blocks() as f64;

    SimDuration::from_secs_f64(compute_s + overhead_s)
}

/// Modeled duration of one host↔device transfer.
pub fn transfer_duration(props: &DeviceProps, bytes: u64, pinned: bool) -> SimDuration {
    let bw = if pinned {
        props.pcie_pinned_bw
    } else {
        props.pcie_pageable_bw
    };
    SimDuration::from_secs_f64(props.xfer_latency_s + bytes as f64 / bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DeviceMemory;

    struct Uniform {
        units: u64,
        regs: u32,
        cycles: f64,
    }
    impl KernelFn for Uniform {
        fn name(&self) -> &'static str {
            "uniform"
        }
        fn regs_per_thread(&self) -> u32 {
            self.regs
        }
        fn cycles_per_unit(&self) -> f64 {
            self.cycles
        }
        fn run(&self, dims: &LaunchDims, _mem: &DeviceMemory, meter: &mut WorkMeter) {
            meter.record_uniform(dims.total_threads(), self.units);
        }
    }

    fn meter_for(kernel: &dyn KernelFn, dims: &LaunchDims) -> WorkMeter {
        let mem = DeviceMemory::new(0, 1024);
        let mut meter = WorkMeter::new(dims.total_threads(), 32);
        kernel.run(dims, &mem, &mut meter);
        meter
    }

    #[test]
    fn tiny_kernels_are_launch_bound() {
        let props = DeviceProps::titan_xp();
        let k = Uniform {
            units: 1,
            regs: 18,
            cycles: 1.0,
        };
        let dims = LaunchDims::cover(2_000, 256);
        let meter = meter_for(&k, &dims);
        let d = kernel_duration(&props, &dims, &k, &meter);
        // Launch overhead (8us) must dominate the compute (~a few ns).
        assert!(d.as_secs_f64() > props.kernel_launch_s);
        assert!(d.as_secs_f64() < 3.0 * props.kernel_launch_s);
    }

    #[test]
    fn big_kernels_are_compute_bound_and_scale_with_work() {
        let props = DeviceProps::titan_xp();
        let k = Uniform {
            units: 100_000,
            regs: 18,
            cycles: 4.0,
        };
        let dims = LaunchDims::cover(64_000, 256);
        let meter = meter_for(&k, &dims);
        let d1 = kernel_duration(&props, &dims, &k, &meter);
        let k2 = Uniform {
            units: 200_000,
            regs: 18,
            cycles: 4.0,
        };
        let meter2 = meter_for(&k2, &dims);
        let d2 = kernel_duration(&props, &dims, &k2, &meter2);
        let ratio = d2.as_secs_f64() / d1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    fn divergent_warps_cost_more_than_convergent() {
        let props = DeviceProps::titan_xp();
        let dims = LaunchDims::cover(2_048, 32);
        let k = Uniform {
            units: 0,
            regs: 18,
            cycles: 2.0,
        };
        // Convergent: every lane 100k units (big enough that compute, not
        // launch overhead, dominates).
        let mut conv = WorkMeter::new(dims.total_threads(), 32);
        conv.record_uniform(dims.total_threads(), 100_000);
        // Divergent: same *total* work concentrated in one lane per warp.
        let mut div = WorkMeter::new(dims.total_threads(), 32);
        for lane in dims.lanes() {
            div.record(lane, if lane % 32 == 0 { 3_200_000 } else { 0 });
        }
        assert_eq!(conv.total_units(), div.total_units());
        let d_conv = kernel_duration(&props, &dims, &k, &conv);
        let d_div = kernel_duration(&props, &dims, &k, &div);
        assert!(
            d_div.as_secs_f64() > 10.0 * d_conv.as_secs_f64(),
            "divergence must hurt: conv={d_conv:?} div={d_div:?}"
        );
    }

    #[test]
    fn single_warp_kernel_is_latency_bound() {
        let props = DeviceProps::titan_xp();
        let dims = LaunchDims::linear(1, 32);
        let k = Uniform {
            units: 1_000_000,
            regs: 18,
            cycles: 1.0,
        };
        let meter = meter_for(&k, &dims);
        let d = kernel_duration(&props, &dims, &k, &meter);
        // One warp cannot be split: time >= warp cycles / clock.
        let floor = 1_000_000.0 / props.clock_hz;
        assert!(d.as_secs_f64() >= floor);
    }

    #[test]
    fn low_occupancy_slows_kernels() {
        let props = DeviceProps::titan_xp();
        let dims = LaunchDims::cover(100_000, 256);
        let light = Uniform {
            units: 1000,
            regs: 18,
            cycles: 1.0,
        };
        // 512 regs/thread -> 65536/(512*32) = 4 warps resident... still 4
        // exec units; push to 1024 regs -> 2 warps resident < 4 units.
        let heavy = Uniform {
            units: 1000,
            regs: 1024,
            cycles: 1.0,
        };
        let m1 = meter_for(&light, &dims);
        let m2 = meter_for(&heavy, &dims);
        let d_light = kernel_duration(&props, &dims, &light, &m1);
        let d_heavy = kernel_duration(&props, &dims, &heavy, &m2);
        assert!(d_heavy > d_light);
    }

    #[test]
    fn pinned_transfers_beat_pageable() {
        let props = DeviceProps::titan_xp();
        let pinned = transfer_duration(&props, 10 << 20, true);
        let pageable = transfer_duration(&props, 10 << 20, false);
        assert!(pageable.as_secs_f64() > 1.1 * pinned.as_secs_f64());
    }

    #[test]
    fn transfer_latency_floors_small_copies() {
        let props = DeviceProps::titan_xp();
        let d = transfer_duration(&props, 1, true);
        assert!(d.as_secs_f64() >= props.xfer_latency_s);
    }
}
