//! OpenCL-style front end over the simulated device.
//!
//! Follows the workflow §III-E describes: discover platform/devices, create
//! a context, create kernels and command queues, manage buffers, enqueue
//! work and collect events.
//!
//! The one semantic the paper leans on hardest — *"the `cl_kernel` objects
//! of OpenCL library are not thread-safe and must be allocated for each
//! thread"* (§IV-A) — is encoded in the type system: [`ClKernel`] is `Send`
//! but **not `Sync`**, so sharing one kernel object across pipeline workers
//! is a compile error in Rust rather than a data race; each worker allocates
//! its own, exactly as the paper's implementations do by putting a
//! `cl_kernel` on each stream item.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::Arc;

use simtime::{SimDuration, SimTime};

use crate::device::{EventStamp, GpuSystem, StreamId};
use crate::kernel::{KernelFn, LaunchDims};
use crate::mem::{DevicePtr, OutOfMemory};

/// The (single) simulated platform.
pub struct Platform {
    system: Arc<GpuSystem>,
}

/// Opaque device id returned by discovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClDeviceId(pub(crate) usize);

impl ClDeviceId {
    /// Position of this device in the platform's device list.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl Platform {
    /// Bind the platform to a [`GpuSystem`] (`clGetPlatformIDs`).
    pub fn new(system: Arc<GpuSystem>) -> Self {
        Platform { system }
    }

    /// Platform name string.
    pub fn name(&self) -> &'static str {
        "hetstream simulated OpenCL platform"
    }

    /// Discover GPU devices (`clGetDeviceIDs`).
    pub fn device_ids(&self) -> Vec<ClDeviceId> {
        (0..self.system.device_count()).map(ClDeviceId).collect()
    }
}

/// An OpenCL context over a set of devices (`clCreateContext`).
pub struct Context {
    system: Arc<GpuSystem>,
    devices: Vec<usize>,
}

impl Context {
    /// Create a context over the given devices.
    ///
    /// # Panics
    /// Panics on an empty device list.
    pub fn create(platform: &Platform, devices: &[ClDeviceId]) -> Self {
        assert!(!devices.is_empty(), "context needs at least one device");
        Context {
            system: Arc::clone(&platform.system),
            devices: devices.iter().map(|d| d.0).collect(),
        }
    }

    /// Devices in this context.
    pub fn devices(&self) -> Vec<ClDeviceId> {
        self.devices.iter().copied().map(ClDeviceId).collect()
    }

    /// The underlying system (virtual clock, stats).
    pub fn system(&self) -> &Arc<GpuSystem> {
        &self.system
    }

    /// Create an in-order command queue on `device`
    /// (`clCreateCommandQueue`).
    pub fn create_queue(&self, device: ClDeviceId) -> CommandQueue {
        assert!(
            self.devices.contains(&device.0),
            "device {:?} is not part of this context",
            device
        );
        CommandQueue {
            system: Arc::clone(&self.system),
            device: device.0,
            stream: self.system.device(device.0).create_stream(),
        }
    }

    /// Create a device buffer (`clCreateBuffer`). Unlike real OpenCL, the
    /// buffer is pinned to one device instead of migrating lazily across
    /// the context — a deliberate simplification that keeps data movement
    /// explicit (see DESIGN.md).
    pub fn create_buffer<T: Default + Clone + Send + 'static>(
        &self,
        device: ClDeviceId,
        len: usize,
    ) -> Result<ClBuffer<T>, OutOfMemory> {
        assert!(self.devices.contains(&device.0));
        let ptr = self.system.device(device.0).alloc::<T>(len)?;
        Ok(ClBuffer {
            ptr,
            device: device.0,
            system: Arc::clone(&self.system),
        })
    }

    /// Block the host until all `events` have completed
    /// (`clWaitForEvents`).
    pub fn wait_for_events(&self, events: &[ClEvent]) {
        let latest = events
            .iter()
            .map(|e| e.stamp.time())
            .fold(SimTime::ZERO, SimTime::max);
        self.system.host_wait_until(latest);
    }
}

/// A device buffer created from a [`Context`]. Freed on drop.
pub struct ClBuffer<T: Send + 'static> {
    ptr: DevicePtr<T>,
    device: usize,
    system: Arc<GpuSystem>,
}

impl<T: Send + 'static> ClBuffer<T> {
    /// Raw device pointer for embedding into kernels.
    pub fn ptr(&self) -> DevicePtr<T> {
        self.ptr
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.ptr.len()
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.ptr.is_empty()
    }

    /// Owning device.
    pub fn device(&self) -> ClDeviceId {
        ClDeviceId(self.device)
    }
}

impl<T: Send + 'static> Drop for ClBuffer<T> {
    fn drop(&mut self) {
        self.system.device(self.device).free(self.ptr);
    }
}

/// A kernel object: the simulated `cl_kernel`.
///
/// `Send` but **not** `Sync` — one thread at a time may hold and use it,
/// mirroring the OpenCL 1.2 thread-safety rules for `clSetKernelArg`.
/// Sharing a kernel object between threads is a compile error:
///
/// ```compile_fail
/// use gpusim::opencl::ClKernel;
/// use gpusim::{DeviceMemory, KernelFn, LaunchDims, WorkMeter};
///
/// struct Noop;
/// impl KernelFn for Noop {
///     fn name(&self) -> &'static str { "noop" }
///     fn run(&self, _: &LaunchDims, _: &DeviceMemory, _: &mut WorkMeter) {}
/// }
///
/// fn share_across_threads<T: Sync>(_: T) {}
/// share_across_threads(ClKernel::create(Noop)); // ERROR: not Sync
/// ```
pub struct ClKernel<K: KernelFn> {
    inner: K,
    _not_sync: PhantomData<Cell<()>>,
}

impl<K: KernelFn> ClKernel<K> {
    /// Wrap a kernel implementation (`clCreateKernel`).
    pub fn create(inner: K) -> Self {
        ClKernel {
            inner,
            _not_sync: PhantomData,
        }
    }

    /// Mutate the kernel's bound arguments (`clSetKernelArg`). Requires
    /// `&mut self`: concurrent argument setting cannot compile.
    pub fn set_args(&mut self, f: impl FnOnce(&mut K)) {
        f(&mut self.inner);
    }

    /// Read-only access to the bound arguments.
    pub fn args(&self) -> &K {
        &self.inner
    }
}

/// A completion event returned by every enqueue.
#[derive(Clone, Copy, Debug)]
pub struct ClEvent {
    stamp: EventStamp,
}

impl ClEvent {
    /// Modeled completion instant.
    pub fn time(&self) -> SimTime {
        self.stamp.time()
    }
}

/// An in-order command queue bound to one device (`cl_command_queue`).
pub struct CommandQueue {
    system: Arc<GpuSystem>,
    device: usize,
    stream: StreamId,
}

impl CommandQueue {
    /// The queue's device.
    pub fn device(&self) -> ClDeviceId {
        ClDeviceId(self.device)
    }

    /// Enqueue a host→device write (`clEnqueueWriteBuffer`).
    pub fn enqueue_write_buffer<T: Clone + Send + 'static>(
        &self,
        buf: &ClBuffer<T>,
        blocking: bool,
        offset: usize,
        src: &[T],
        wait_list: &[ClEvent],
    ) -> ClEvent {
        assert_eq!(buf.device, self.device, "buffer/queue device mismatch");
        // Real OpenCL runtimes bounce writes from unregistered host memory
        // through a driver staging area; the simulator keeps the timing
        // optimistic but charges the copy so the data path stays honest.
        if !crate::pinned::is_pinned(src) {
            telemetry::copy::count_bounce(std::mem::size_of_val(src));
        }
        self.apply_waits(wait_list);
        let now = self.api_cost();
        let end =
            self.system
                .device(self.device)
                .copy_h2d(self.stream, src, buf.ptr, offset, true, now);
        if blocking {
            self.system.host_wait_until(end);
        }
        ClEvent {
            stamp: self.system.device(self.device).record_event(self.stream),
        }
    }

    /// Enqueue a device→host read (`clEnqueueReadBuffer`).
    pub fn enqueue_read_buffer<T: Clone + Send + 'static>(
        &self,
        buf: &ClBuffer<T>,
        blocking: bool,
        offset: usize,
        dst: &mut [T],
        wait_list: &[ClEvent],
    ) -> ClEvent {
        assert_eq!(buf.device, self.device, "buffer/queue device mismatch");
        if !crate::pinned::is_pinned(dst) {
            telemetry::copy::count_bounce(std::mem::size_of_val(dst));
        }
        self.apply_waits(wait_list);
        let now = self.api_cost();
        let end =
            self.system
                .device(self.device)
                .copy_d2h(self.stream, buf.ptr, offset, dst, true, now);
        if blocking {
            self.system.host_wait_until(end);
        }
        ClEvent {
            stamp: self.system.device(self.device).record_event(self.stream),
        }
    }

    /// Enqueue a kernel over `global_work_size` work-items in groups of
    /// `local_work_size` (`clEnqueueNDRangeKernel`, 1-D).
    pub fn enqueue_nd_range<K: KernelFn>(
        &self,
        kernel: &ClKernel<K>,
        global_work_size: u64,
        local_work_size: u32,
        wait_list: &[ClEvent],
    ) -> ClEvent {
        self.apply_waits(wait_list);
        let now = self.api_cost();
        let dims = LaunchDims::cover(global_work_size, local_work_size);
        self.system
            .device(self.device)
            .launch(self.stream, dims, &kernel.inner, now);
        ClEvent {
            stamp: self.system.device(self.device).record_event(self.stream),
        }
    }

    /// Fallible [`enqueue_nd_range`](Self::enqueue_nd_range): reports an
    /// injected kernel fault (the simulated `CL_OUT_OF_RESOURCES` launch
    /// failure) instead of panicking.
    pub fn try_enqueue_nd_range<K: KernelFn>(
        &self,
        kernel: &ClKernel<K>,
        global_work_size: u64,
        local_work_size: u32,
        wait_list: &[ClEvent],
    ) -> Result<ClEvent, crate::fault::DeviceFault> {
        self.apply_waits(wait_list);
        let now = self.api_cost();
        let dims = LaunchDims::cover(global_work_size, local_work_size);
        self.system
            .device(self.device)
            .try_launch(self.stream, dims, &kernel.inner, now)?;
        Ok(ClEvent {
            stamp: self.system.device(self.device).record_event(self.stream),
        })
    }

    /// Block until everything in the queue completes (`clFinish`).
    pub fn finish(&self) {
        let end = self.system.device(self.device).stream_last_end(self.stream);
        self.system.host_wait_until(end);
    }

    fn apply_waits(&self, wait_list: &[ClEvent]) {
        for ev in wait_list {
            self.system
                .device(self.device)
                .stream_wait_event(self.stream, ev.stamp);
        }
    }

    fn api_cost(&self) -> SimTime {
        let api = self.system.device(self.device).props().api_call_s;
        self.system.host_compute(SimDuration::from_secs_f64(api))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DeviceMemory;
    use crate::meter::WorkMeter;
    use crate::props::DeviceProps;

    struct Scale {
        factor: u32,
        buf: DevicePtr<u32>,
    }
    impl KernelFn for Scale {
        fn name(&self) -> &'static str {
            "scale"
        }
        fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
            let mut buf = mem.borrow_mut(self.buf);
            for lane in dims.lanes() {
                let gid = lane as usize; // get_global_id(0)
                if gid < buf.len() {
                    buf[gid] *= self.factor;
                }
                meter.record(lane, 1);
            }
        }
    }

    fn context(n: usize) -> Context {
        let platform = Platform::new(GpuSystem::new(n, DeviceProps::test_tiny()));
        let ids = platform.device_ids();
        Context::create(&platform, &ids)
    }

    #[test]
    fn discovery_finds_all_devices() {
        let platform = Platform::new(GpuSystem::new(2, DeviceProps::test_tiny()));
        assert_eq!(platform.device_ids().len(), 2);
    }

    #[test]
    fn write_ndrange_read_roundtrip() {
        let ctx = context(1);
        let dev = ctx.devices()[0];
        let queue = ctx.create_queue(dev);
        let buf = ctx.create_buffer::<u32>(dev, 50).unwrap();
        let data: Vec<u32> = (0..50).collect();
        let w = queue.enqueue_write_buffer(&buf, false, 0, &data, &[]);
        let mut kernel = ClKernel::create(Scale {
            factor: 3,
            buf: buf.ptr(),
        });
        kernel.set_args(|k| k.factor = 4);
        let k_ev = queue.enqueue_nd_range(&kernel, 64, 32, &[w]);
        let mut out = vec![0u32; 50];
        let r = queue.enqueue_read_buffer(&buf, false, 0, &mut out, &[k_ev]);
        ctx.wait_for_events(&[r]);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 4));
    }

    #[test]
    fn blocking_read_advances_host_clock() {
        let ctx = context(1);
        let dev = ctx.devices()[0];
        let queue = ctx.create_queue(dev);
        let buf = ctx.create_buffer::<u8>(dev, 1 << 20).unwrap();
        let t0 = ctx.system().host_now();
        let mut out = vec![0u8; 1 << 20];
        queue.enqueue_read_buffer(&buf, true, 0, &mut out, &[]);
        let elapsed = ctx.system().host_now().since(t0);
        // 1MB at 1GB/s on the tiny device ≈ 1ms ≫ the api cost.
        assert!(
            elapsed > SimDuration::from_micros(500),
            "elapsed={elapsed:?}"
        );
    }

    #[test]
    fn events_chain_across_queues() {
        let ctx = context(1);
        let dev = ctx.devices()[0];
        let q1 = ctx.create_queue(dev);
        let q2 = ctx.create_queue(dev);
        let buf = ctx.create_buffer::<u32>(dev, 8).unwrap();
        let w = q1.enqueue_write_buffer(&buf, false, 0, &[1u32; 8], &[]);
        let kernel = ClKernel::create(Scale {
            factor: 10,
            buf: buf.ptr(),
        });
        let k_ev = q2.enqueue_nd_range(&kernel, 8, 8, &[w]);
        assert!(k_ev.time() > w.time());
    }

    #[test]
    fn multi_device_queues_are_independent() {
        let ctx = context(2);
        let ids = ctx.devices();
        let q0 = ctx.create_queue(ids[0]);
        let q1 = ctx.create_queue(ids[1]);
        let b0 = ctx.create_buffer::<u32>(ids[0], 4).unwrap();
        let b1 = ctx.create_buffer::<u32>(ids[1], 4).unwrap();
        q0.enqueue_write_buffer(&b0, true, 0, &[1, 2, 3, 4], &[]);
        q1.enqueue_write_buffer(&b1, true, 0, &[5, 6, 7, 8], &[]);
        let mut o0 = [0u32; 4];
        let mut o1 = [0u32; 4];
        q0.enqueue_read_buffer(&b0, true, 0, &mut o0, &[]);
        q1.enqueue_read_buffer(&b1, true, 0, &mut o1, &[]);
        assert_eq!(o0, [1, 2, 3, 4]);
        assert_eq!(o1, [5, 6, 7, 8]);
    }

    #[test]
    fn kernel_objects_are_send() {
        // `ClKernel` must move between pipeline workers (each worker owns
        // its own). The complementary property — that it is NOT `Sync`, so
        // sharing one across workers cannot compile — is checked by the
        // `compile_fail` doc-test on [`ClKernel`].
        fn assert_send<T: Send>() {}
        assert_send::<ClKernel<Scale>>();
    }

    #[test]
    #[should_panic(expected = "buffer/queue device mismatch")]
    fn cross_device_buffer_use_is_caught() {
        let ctx = context(2);
        let ids = ctx.devices();
        let q0 = ctx.create_queue(ids[0]);
        let b1 = ctx.create_buffer::<u32>(ids[1], 4).unwrap();
        q0.enqueue_write_buffer(&b1, true, 0, &[0u32; 4], &[]);
    }

    #[test]
    fn oom_reproduces_the_papers_opencl_failure() {
        // §V-B: "we had to reduce the batch size for OpenCL because the
        // number of items being processed resulted in an out of memory
        // error".
        let ctx = context(1);
        let dev = ctx.devices()[0];
        let cap = ctx.system().device(0).props().global_mem as usize;
        assert!(ctx.create_buffer::<u8>(dev, cap + 1).is_err());
    }
}
