//! Command tracing: record every command's modeled interval and render a
//! text Gantt chart of the device timeline.
//!
//! This is the visual counterpart of §IV-A's optimization story — with
//! tracing enabled, the difference between the synchronous batch loop and
//! the multi-stream overlapped version is literally visible: gaps close on
//! the compute row while copies slide under kernels.

use simtime::{SimDuration, SimTime};

/// Which engine executed a command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEngine {
    /// Kernel execution.
    Compute,
    /// Host→device copy.
    H2D,
    /// Device→host copy.
    D2H,
}

impl TraceEngine {
    /// Row label in rendered timelines.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEngine::Compute => "compute",
            TraceEngine::H2D => "h2d    ",
            TraceEngine::D2H => "d2h    ",
        }
    }

    /// Engine name without padding (telemetry row keys).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEngine::Compute => "compute",
            TraceEngine::H2D => "h2d",
            TraceEngine::D2H => "d2h",
        }
    }
}

/// One traced command.
#[derive(Clone, Debug)]
pub struct CommandRecord {
    /// Engine the command ran on.
    pub engine: TraceEngine,
    /// Command label (kernel name, "h2d", "d2h").
    pub name: &'static str,
    /// Stream it was enqueued on.
    pub stream: usize,
    /// Modeled start.
    pub start: SimTime,
    /// Modeled end.
    pub end: SimTime,
}

impl CommandRecord {
    /// Modeled duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Render records as a fixed-width text Gantt: one row per engine, `#` for
/// busy spans, `.` for idle, `width` columns across the full makespan.
pub fn render_timeline(records: &[CommandRecord], width: usize) -> String {
    assert!(width >= 10, "need at least 10 columns");
    if records.is_empty() {
        return String::from("(no commands traced)\n");
    }
    let t0 = records.iter().map(|r| r.start).min().expect("non-empty");
    let t1 = records.iter().map(|r| r.end).max().expect("non-empty");
    let span = t1.since(t0).as_nanos().max(1) as f64;
    let mut out = String::new();
    for engine in [TraceEngine::H2D, TraceEngine::Compute, TraceEngine::D2H] {
        let mut row = vec!['.'; width];
        for r in records.iter().filter(|r| r.engine == engine) {
            let a = ((r.start.since(t0).as_nanos() as f64 / span) * width as f64) as usize;
            let b = ((r.end.since(t0).as_nanos() as f64 / span) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                *cell = '#';
            }
        }
        out.push_str(engine.label());
        out.push_str(" |");
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "          0{:>w$}\n",
        format!("{}", t1.since(t0)),
        w = width + 1
    ));
    out
}

/// Feed traced commands into a [`telemetry::Recorder`] as GPU engine spans
/// so they land on the same merged timeline as CPU stage metrics.
///
/// The spans keep the simulator's modeled clock (nanoseconds since the
/// device clock was last reset), which the unified report juxtaposes with
/// the wall-clock CPU rows — the same two-clock presentation as the
/// paper's Fig. 3 activity graph.
pub fn feed_recorder(rec: &telemetry::Recorder, device: usize, records: &[CommandRecord]) {
    if !rec.is_enabled() {
        return;
    }
    for r in records {
        rec.gpu_span(telemetry::EngineSpan {
            device,
            engine: r.engine.name(),
            name: r.name.to_string(),
            stream: r.stream,
            start_ns: r.start.as_nanos(),
            end_ns: r.end.as_nanos(),
        });
    }
}

/// Fraction of the traced makespan during which at least two engines were
/// busy simultaneously — the "overlap" the paper's 2×-memory optimization
/// buys.
pub fn overlap_fraction(records: &[CommandRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    // Sweep over engine busy intervals.
    let mut events: Vec<(u64, i32)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        events.push((r.start.as_nanos(), 1));
        events.push((r.end.as_nanos(), -1));
    }
    events.sort_unstable();
    let t0 = records
        .iter()
        .map(|r| r.start.as_nanos())
        .min()
        .expect("non-empty");
    let t1 = records
        .iter()
        .map(|r| r.end.as_nanos())
        .max()
        .expect("non-empty");
    let span = (t1 - t0).max(1) as f64;
    let mut active = 0i32;
    let mut last = t0;
    let mut overlapped = 0u64;
    for (t, delta) in events {
        if active >= 2 {
            overlapped += t - last;
        }
        active += delta;
        last = t;
    }
    overlapped as f64 / span
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(engine: TraceEngine, start: u64, end: u64) -> CommandRecord {
        CommandRecord {
            engine,
            name: "t",
            stream: 0,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn render_shows_busy_and_idle() {
        let recs = vec![
            rec(TraceEngine::Compute, 0, 50),
            rec(TraceEngine::D2H, 50, 100),
        ];
        let s = render_timeline(&recs, 20);
        assert!(s.contains("compute |##########"));
        assert!(s.contains("d2h"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // 3 engine rows + axis
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(render_timeline(&[], 20).contains("no commands"));
    }

    #[test]
    fn overlap_fraction_detects_concurrency() {
        // Serial: compute then copy — no overlap.
        let serial = vec![
            rec(TraceEngine::Compute, 0, 50),
            rec(TraceEngine::D2H, 50, 100),
        ];
        assert_eq!(overlap_fraction(&serial), 0.0);
        // Fully overlapped halves.
        let overlapped = vec![
            rec(TraceEngine::Compute, 0, 100),
            rec(TraceEngine::D2H, 0, 100),
        ];
        assert!((overlap_fraction(&overlapped) - 1.0).abs() < 1e-9);
        // Half overlap.
        let half = vec![
            rec(TraceEngine::Compute, 0, 100),
            rec(TraceEngine::D2H, 50, 150),
        ];
        let f = overlap_fraction(&half);
        assert!((f - 1.0 / 3.0).abs() < 0.01, "f={f}");
    }
}
