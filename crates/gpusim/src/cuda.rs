//! CUDA-style front end over the simulated device.
//!
//! Mirrors the driver/runtime semantics the paper wrestles with:
//!
//! * [`Cuda::set_device`] is **thread-local** ("the `cudaSetDevice` function
//!   also has thread-side effects, thus, it must be called after
//!   initializing each thread", §IV-A) — streams and buffers are bound to
//!   the device that was current when they were created, and using them
//!   while another device is current panics, making the paper's bug class
//!   loud instead of silent.
//! * Async copies are only truly asynchronous from **page-locked** host
//!   memory ([`PinnedBuf`]); from pageable memory (any plain slice) the copy
//!   degrades to synchronous — the exact reason the paper's 2×-memory-space
//!   optimization did not help Dedup under CUDA (`realloc`'d buffers are
//!   pageable, §V-B).
//! * Streams ([`CudaStream`]) order commands FIFO per stream and overlap
//!   across streams; [`CudaEvent`]s order across streams.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use simtime::{SimDuration, SimTime};

use crate::device::{EventStamp, GpuSystem, StreamId};
use crate::kernel::{Dim3, KernelFn, LaunchDims};
use crate::mem::{DevicePtr, OutOfMemory};

thread_local! {
    static CURRENT_DEVICE: Cell<usize> = const { Cell::new(0) };
}

/// Handle to the CUDA-like runtime; cheap to clone, one per host thread is
/// idiomatic.
#[derive(Clone)]
pub struct Cuda {
    system: Arc<GpuSystem>,
}

/// Page-locked host memory (`cudaMallocHost`). Transfers from/to it run at
/// full PCIe bandwidth and may be truly asynchronous. The backing range is
/// registered in the [`crate::pinned`] registry for its lifetime, so the
/// pinned-aware slice verbs recognize it too.
pub struct PinnedBuf<T> {
    data: Vec<T>,
    // Declared after `data`: the registration is dropped while the Vec is
    // still alive (fields drop in declaration order).
    _slab: crate::pinned::PinnedSlab,
}

impl<T> Deref for PinnedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for PinnedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> PinnedBuf<T> {
    /// Mutable access as a slice (explicit form of `DerefMut`).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// A device buffer allocated with [`Cuda::malloc`]. Freed on drop.
pub struct CudaBuffer<T: Send + 'static> {
    ptr: DevicePtr<T>,
    device: usize,
    system: Arc<GpuSystem>,
}

impl<T: Send + 'static> CudaBuffer<T> {
    /// Raw device pointer for embedding into kernels.
    pub fn ptr(&self) -> DevicePtr<T> {
        self.ptr
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.ptr.len()
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.ptr.is_empty()
    }

    /// Owning device index.
    pub fn device(&self) -> usize {
        self.device
    }
}

impl<T: Send + 'static> Drop for CudaBuffer<T> {
    fn drop(&mut self) {
        self.system.device(self.device).free(self.ptr);
    }
}

/// A CUDA stream, bound to the device current at creation.
pub struct CudaStream {
    device: usize,
    id: StreamId,
}

impl CudaStream {
    /// Owning device index.
    pub fn device(&self) -> usize {
        self.device
    }
}

/// A recorded CUDA event.
#[derive(Clone, Copy, Debug)]
pub struct CudaEvent {
    stamp: EventStamp,
}

impl CudaEvent {
    /// Modeled completion instant the event captured.
    pub fn time(&self) -> SimTime {
        self.stamp.time()
    }
}

impl Cuda {
    /// Bind the runtime to a [`GpuSystem`].
    pub fn new(system: Arc<GpuSystem>) -> Self {
        Cuda { system }
    }

    /// The underlying system (virtual clock, stats).
    pub fn system(&self) -> &Arc<GpuSystem> {
        &self.system
    }

    /// Number of devices (`cudaGetDeviceCount`).
    pub fn device_count(&self) -> usize {
        self.system.device_count()
    }

    /// Select the current device **for this thread** (`cudaSetDevice`).
    ///
    /// # Panics
    /// Panics on an out-of-range index (CUDA would return
    /// `cudaErrorInvalidDevice`).
    pub fn set_device(&self, device: usize) {
        assert!(
            device < self.system.device_count(),
            "cudaSetDevice({device}): only {} devices",
            self.system.device_count()
        );
        CURRENT_DEVICE.with(|d| d.set(device));
    }

    /// The current device for this thread.
    pub fn current_device(&self) -> usize {
        CURRENT_DEVICE.with(|d| d.get())
    }

    /// Allocate device memory on the current device (`cudaMalloc`).
    pub fn malloc<T: Default + Clone + Send + 'static>(
        &self,
        len: usize,
    ) -> Result<CudaBuffer<T>, OutOfMemory> {
        let device = self.current_device();
        self.api_cost(device);
        let ptr = self.system.device(device).alloc::<T>(len)?;
        Ok(CudaBuffer {
            ptr,
            device,
            system: Arc::clone(&self.system),
        })
    }

    /// Allocate page-locked host memory (`cudaMallocHost`).
    pub fn malloc_host<T: Default + Clone>(&self, len: usize) -> PinnedBuf<T> {
        self.api_cost(self.current_device());
        let data = vec![T::default(); len];
        let _slab = crate::pinned::PinnedSlab::register(&data);
        PinnedBuf { data, _slab }
    }

    /// Create a stream on the current device (`cudaStreamCreate`).
    pub fn stream_create(&self) -> CudaStream {
        let device = self.current_device();
        self.api_cost(device);
        CudaStream {
            device,
            id: self.system.device(device).create_stream(),
        }
    }

    /// The default stream of the current device.
    pub fn default_stream(&self) -> CudaStream {
        CudaStream {
            device: self.current_device(),
            id: StreamId::DEFAULT,
        }
    }

    /// Asynchronous host→device copy from **pinned** memory
    /// (`cudaMemcpyAsync` with a page-locked source): returns immediately.
    pub fn memcpy_h2d_async<T: Clone + Send + 'static>(
        &self,
        dst: &CudaBuffer<T>,
        dst_offset: usize,
        src: &PinnedBuf<T>,
        stream: &CudaStream,
    ) {
        self.check_binding(dst.device, stream);
        let now = self.api_cost(stream.device);
        self.system
            .device(stream.device)
            .copy_h2d(stream.id, src, dst.ptr, dst_offset, true, now);
    }

    /// [`memcpy_h2d_async`](Self::memcpy_h2d_async) of only the first `n`
    /// elements of `src` — the staging-ring case where the pinned buffer
    /// is a recycled slab larger than this batch's payload.
    pub fn memcpy_h2d_async_prefix<T: Clone + Send + 'static>(
        &self,
        dst: &CudaBuffer<T>,
        dst_offset: usize,
        src: &PinnedBuf<T>,
        n: usize,
        stream: &CudaStream,
    ) {
        self.check_binding(dst.device, stream);
        let now = self.api_cost(stream.device);
        self.system.device(stream.device).copy_h2d(
            stream.id,
            &src[..n],
            dst.ptr,
            dst_offset,
            true,
            now,
        );
    }

    /// `cudaMemcpyAsync` from **pageable** memory: per CUDA semantics this
    /// degrades to a synchronous copy — the host blocks until the transfer
    /// completes, at pageable bandwidth — and the driver bounces the data
    /// through its own staging area (charged to `telemetry::copy`).
    pub fn memcpy_h2d_pageable<T: Clone + Send + 'static>(
        &self,
        dst: &CudaBuffer<T>,
        dst_offset: usize,
        src: &[T],
        stream: &CudaStream,
    ) {
        self.check_binding(dst.device, stream);
        telemetry::copy::count_bounce(std::mem::size_of_val(src));
        let now = self.api_cost(stream.device);
        let end = self
            .system
            .device(stream.device)
            .copy_h2d(stream.id, src, dst.ptr, dst_offset, false, now);
        self.system.host_wait_until(end);
    }

    /// Pinned-aware host→device copy from an arbitrary slice: if the
    /// source range is registered in the [`crate::pinned`] registry the
    /// transfer is a true async DMA; otherwise it degrades to
    /// [`memcpy_h2d_pageable`](Self::memcpy_h2d_pageable) (synchronous +
    /// driver bounce). This is `cudaMemcpyAsync`'s actual contract — the
    /// *memory*, not the call site, decides.
    pub fn memcpy_h2d_auto<T: Clone + Send + 'static>(
        &self,
        dst: &CudaBuffer<T>,
        dst_offset: usize,
        src: &[T],
        stream: &CudaStream,
    ) {
        if crate::pinned::is_pinned(src) {
            self.check_binding(dst.device, stream);
            let now = self.api_cost(stream.device);
            self.system
                .device(stream.device)
                .copy_h2d(stream.id, src, dst.ptr, dst_offset, true, now);
        } else {
            self.memcpy_h2d_pageable(dst, dst_offset, src, stream);
        }
    }

    /// Asynchronous device→host copy into pinned memory.
    pub fn memcpy_d2h_async<T: Clone + Send + 'static>(
        &self,
        dst: &mut PinnedBuf<T>,
        src: &CudaBuffer<T>,
        src_offset: usize,
        stream: &CudaStream,
    ) {
        self.check_binding(src.device, stream);
        let now = self.api_cost(stream.device);
        self.system.device(stream.device).copy_d2h(
            stream.id,
            src.ptr,
            src_offset,
            &mut dst.data,
            true,
            now,
        );
    }

    /// [`memcpy_d2h_async`](Self::memcpy_d2h_async) into only the first
    /// `n` elements of `dst` — the recycled-slab counterpart for reads.
    pub fn memcpy_d2h_async_prefix<T: Clone + Send + 'static>(
        &self,
        dst: &mut PinnedBuf<T>,
        n: usize,
        src: &CudaBuffer<T>,
        src_offset: usize,
        stream: &CudaStream,
    ) {
        self.check_binding(src.device, stream);
        let now = self.api_cost(stream.device);
        self.system.device(stream.device).copy_d2h(
            stream.id,
            src.ptr,
            src_offset,
            &mut dst.data[..n],
            true,
            now,
        );
    }

    /// Device→host copy into pageable memory: synchronous, like CUDA, and
    /// bounced through the driver's staging area (`telemetry::copy`).
    pub fn memcpy_d2h_pageable<T: Clone + Send + 'static>(
        &self,
        dst: &mut [T],
        src: &CudaBuffer<T>,
        src_offset: usize,
        stream: &CudaStream,
    ) {
        self.check_binding(src.device, stream);
        telemetry::copy::count_bounce(std::mem::size_of_val(dst));
        let now = self.api_cost(stream.device);
        let end = self
            .system
            .device(stream.device)
            .copy_d2h(stream.id, src.ptr, src_offset, dst, false, now);
        self.system.host_wait_until(end);
    }

    /// Pinned-aware device→host copy into an arbitrary slice — the read
    /// counterpart of [`memcpy_h2d_auto`](Self::memcpy_h2d_auto):
    /// registered destination → async DMA, anything else → synchronous
    /// pageable bounce.
    pub fn memcpy_d2h_auto<T: Clone + Send + 'static>(
        &self,
        dst: &mut [T],
        src: &CudaBuffer<T>,
        src_offset: usize,
        stream: &CudaStream,
    ) {
        if crate::pinned::is_pinned(dst) {
            self.check_binding(src.device, stream);
            let now = self.api_cost(stream.device);
            self.system
                .device(stream.device)
                .copy_d2h(stream.id, src.ptr, src_offset, dst, true, now);
        } else {
            self.memcpy_d2h_pageable(dst, src, src_offset, stream);
        }
    }

    /// Launch `kernel` with `<<<grid, block>>>` on `stream` (asynchronous).
    ///
    /// # Panics
    /// Panics if the stream's device is not the thread's current device —
    /// the misuse the paper warns multi-threaded integrations about.
    pub fn launch(
        &self,
        kernel: &dyn KernelFn,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
        stream: &CudaStream,
    ) {
        let cur = self.current_device();
        assert_eq!(
            stream.device,
            cur,
            "kernel {} launched on stream of device {} while device {} is current \
             (missing cudaSetDevice after thread start?)",
            kernel.name(),
            stream.device,
            cur
        );
        let now = self.api_cost(stream.device);
        let dims = LaunchDims {
            grid: grid.into(),
            block: block.into(),
        };
        self.system
            .device(stream.device)
            .launch(stream.id, dims, kernel, now);
    }

    /// Fallible [`launch`](Self::launch): reports an injected kernel fault
    /// (the simulated `cudaErrorLaunchFailure`) instead of panicking. The
    /// device-binding assertion still applies — that one is programmer
    /// error, not runtime state.
    pub fn try_launch(
        &self,
        kernel: &dyn KernelFn,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
        stream: &CudaStream,
    ) -> Result<(), crate::fault::DeviceFault> {
        let cur = self.current_device();
        assert_eq!(
            stream.device,
            cur,
            "kernel {} launched on stream of device {} while device {} is current \
             (missing cudaSetDevice after thread start?)",
            kernel.name(),
            stream.device,
            cur
        );
        let now = self.api_cost(stream.device);
        let dims = LaunchDims {
            grid: grid.into(),
            block: block.into(),
        };
        self.system
            .device(stream.device)
            .try_launch(stream.id, dims, kernel, now)
            .map(|_| ())
    }

    /// Block until everything on `stream` completes
    /// (`cudaStreamSynchronize`).
    pub fn stream_synchronize(&self, stream: &CudaStream) {
        let end = self.system.device(stream.device).stream_last_end(stream.id);
        self.system.host_wait_until(end);
    }

    /// Block until everything on the current device completes
    /// (`cudaDeviceSynchronize`).
    pub fn device_synchronize(&self) {
        let end = self.system.device(self.current_device()).device_last_end();
        self.system.host_wait_until(end);
    }

    /// Record an event on `stream` (`cudaEventRecord`).
    pub fn event_record(&self, stream: &CudaStream) -> CudaEvent {
        CudaEvent {
            stamp: self.system.device(stream.device).record_event(stream.id),
        }
    }

    /// Make `stream` wait for `event` (`cudaStreamWaitEvent`); works across
    /// devices.
    pub fn stream_wait_event(&self, stream: &CudaStream, event: &CudaEvent) {
        self.system
            .device(stream.device)
            .stream_wait_event(stream.id, event.stamp);
    }

    /// Block the host until `event` completes (`cudaEventSynchronize`).
    pub fn event_synchronize(&self, event: &CudaEvent) {
        self.system.host_wait_until(event.time());
    }

    fn check_binding(&self, buffer_device: usize, stream: &CudaStream) {
        assert_eq!(
            buffer_device, stream.device,
            "buffer on device {buffer_device} used with a stream of device {}",
            stream.device
        );
    }

    fn api_cost(&self, device: usize) -> SimTime {
        let api = self.system.device(device).props().api_call_s;
        self.system.host_compute(SimDuration::from_secs_f64(api))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DeviceMemory;
    use crate::meter::WorkMeter;
    use crate::props::DeviceProps;

    /// img[i] = base + i, one lane per element.
    struct Iota {
        base: u32,
        img: DevicePtr<u32>,
    }
    impl KernelFn for Iota {
        fn name(&self) -> &'static str {
            "iota"
        }
        fn run(&self, dims: &LaunchDims, mem: &DeviceMemory, meter: &mut WorkMeter) {
            let mut img = mem.borrow_mut(self.img);
            for lane in dims.lanes() {
                let i = lane as usize;
                if i < img.len() {
                    img[i] = self.base + i as u32;
                }
                meter.record(lane, 1);
            }
        }
    }

    fn cuda(n: usize) -> Cuda {
        Cuda::new(GpuSystem::new(n, DeviceProps::test_tiny()))
    }

    #[test]
    fn kernel_writes_are_visible_after_sync() {
        let cuda = cuda(1);
        let buf = cuda.malloc::<u32>(100).unwrap();
        let stream = cuda.stream_create();
        let k = Iota {
            base: 5,
            img: buf.ptr(),
        };
        cuda.launch(&k, 1u32, 128u32, &stream);
        let mut out = vec![0u32; 100];
        cuda.memcpy_d2h_pageable(&mut out, &buf, 0, &stream);
        cuda.stream_synchronize(&stream);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 5 + i as u32));
    }

    #[test]
    fn pinned_roundtrip() {
        let cuda = cuda(1);
        let buf = cuda.malloc::<u8>(64).unwrap();
        let stream = cuda.stream_create();
        let mut src = cuda.malloc_host::<u8>(64);
        src.as_mut_slice().copy_from_slice(&[7u8; 64]);
        cuda.memcpy_h2d_async(&buf, 0, &src, &stream);
        let mut dst = cuda.malloc_host::<u8>(64);
        cuda.memcpy_d2h_async(&mut dst, &buf, 0, &stream);
        cuda.stream_synchronize(&stream);
        assert_eq!(&dst[..], &[7u8; 64][..]);
    }

    #[test]
    fn pageable_copy_blocks_host_but_pinned_does_not() {
        let cuda = cuda(1);
        let buf = cuda.malloc::<u8>(1 << 20).unwrap();
        let stream = cuda.stream_create();
        let pinned = cuda.malloc_host::<u8>(1 << 20);
        let t0 = cuda.system().host_now();
        cuda.memcpy_h2d_async(&buf, 0, &pinned, &stream);
        let t_async = cuda.system().host_now().since(t0);
        cuda.system().reset_clock();
        let pageable = vec![0u8; 1 << 20];
        let t1 = cuda.system().host_now();
        cuda.memcpy_h2d_pageable(&buf, 0, &pageable, &stream);
        let t_sync = cuda.system().host_now().since(t1);
        assert!(
            t_sync.as_nanos() > 10 * t_async.as_nanos(),
            "pageable copy must block the host: async={t_async:?} sync={t_sync:?}"
        );
    }

    #[test]
    fn multi_device_round_robin() {
        let cuda = cuda(2);
        let mut bufs = Vec::new();
        for d in 0..2 {
            cuda.set_device(d);
            bufs.push((cuda.malloc::<u32>(16).unwrap(), cuda.stream_create()));
        }
        for (d, (buf, stream)) in bufs.iter().enumerate() {
            cuda.set_device(d);
            let k = Iota {
                base: (d * 100) as u32,
                img: buf.ptr(),
            };
            cuda.launch(&k, 1u32, 32u32, stream);
        }
        for (d, (buf, stream)) in bufs.iter().enumerate() {
            cuda.set_device(d);
            let mut out = vec![0u32; 16];
            cuda.memcpy_d2h_pageable(&mut out, buf, 0, stream);
            assert_eq!(out[3], (d * 100) as u32 + 3);
        }
    }

    #[test]
    #[should_panic(expected = "missing cudaSetDevice")]
    fn launching_on_wrong_device_panics() {
        let cuda = cuda(2);
        cuda.set_device(1);
        let buf = cuda.malloc::<u32>(4).unwrap();
        let stream = cuda.stream_create();
        cuda.set_device(0); // forgot to switch back — the paper's bug
        let k = Iota {
            base: 0,
            img: buf.ptr(),
        };
        cuda.launch(&k, 1u32, 32u32, &stream);
    }

    #[test]
    fn events_serialize_across_streams() {
        let cuda = cuda(1);
        let buf = cuda.malloc::<u32>(8).unwrap();
        let s1 = cuda.stream_create();
        let s2 = cuda.stream_create();
        let k = Iota {
            base: 1,
            img: buf.ptr(),
        };
        cuda.launch(&k, 1u32, 32u32, &s1);
        let ev = cuda.event_record(&s1);
        cuda.stream_wait_event(&s2, &ev);
        let k2 = Iota {
            base: 2,
            img: buf.ptr(),
        };
        cuda.launch(&k2, 1u32, 32u32, &s2);
        let end2 = cuda.system().device(0).stream_last_end(s2.id);
        assert!(end2 > ev.time());
    }

    #[test]
    fn oom_propagates() {
        let cuda = cuda(1);
        let total = cuda.system().device(0).props().global_mem as usize;
        assert!(cuda.malloc::<u8>(total + 1).is_err());
    }
}
