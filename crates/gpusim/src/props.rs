//! Device property sheets: the hardware parameters of the simulated GPU.
//!
//! The default profile is the NVIDIA Titan XP the paper's testbed used
//! (compute capability 6.1): 30 SMs × 2048 resident threads, 64 K registers
//! and 96 KB shared memory per SM — the numbers §IV-A quotes when deriving
//! the 32-line batch size.

/// Static properties of one simulated device.
#[derive(Clone, Debug)]
pub struct DeviceProps {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Warps an SM can *execute* concurrently (CUDA cores / warp size).
    pub warp_exec_units: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Shared memory per SM, bytes.
    pub smem_per_sm: u32,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Device global memory, bytes.
    pub global_mem: u64,
    /// Host↔device bandwidth for page-locked (pinned) host memory, bytes/s.
    pub pcie_pinned_bw: f64,
    /// Host↔device bandwidth for pageable host memory, bytes/s.
    pub pcie_pageable_bw: f64,
    /// Fixed latency per host↔device transfer, seconds.
    pub xfer_latency_s: f64,
    /// Fixed cost of a kernel launch (driver + hardware dispatch), seconds.
    pub kernel_launch_s: f64,
    /// Per-thread-block hardware scheduling cost, seconds.
    pub block_sched_s: f64,
    /// Host-side cost of any asynchronous API call (enqueue), seconds.
    pub api_call_s: f64,
}

impl DeviceProps {
    /// The paper's GPU: NVIDIA Titan XP, compute capability 6.1.
    pub fn titan_xp() -> Self {
        DeviceProps {
            name: "Titan XP (simulated)",
            sm_count: 30,
            max_threads_per_sm: 2048,
            warp_size: 32,
            // 128 CUDA cores per Pascal SM / 32-wide warps.
            warp_exec_units: 4,
            regs_per_sm: 65_536,
            smem_per_sm: 96 * 1024,
            clock_hz: 1.582e9,
            global_mem: 12 * 1024 * 1024 * 1024,
            pcie_pinned_bw: 12.0e9,
            // Pageable copies stage through a driver bounce buffer: a bit
            // slower than pinned, but the dominant penalty is the loss of
            // asynchrony (the copy blocks the host), not raw bandwidth.
            pcie_pageable_bw: 10.0e9,
            xfer_latency_s: 8e-6,
            kernel_launch_s: 8e-6,
            block_sched_s: 0.3e-6,
            api_call_s: 1.5e-6,
        }
    }

    /// A deliberately tiny device for tests (2 SMs, fast constants) so unit
    /// tests exercise occupancy limits with small grids.
    pub fn test_tiny() -> Self {
        DeviceProps {
            name: "TestTiny",
            sm_count: 2,
            max_threads_per_sm: 128,
            warp_size: 32,
            warp_exec_units: 1,
            regs_per_sm: 4096,
            smem_per_sm: 16 * 1024,
            clock_hz: 1.0e9,
            global_mem: 16 * 1024 * 1024,
            pcie_pinned_bw: 1.0e9,
            pcie_pageable_bw: 0.5e9,
            xfer_latency_s: 1e-6,
            kernel_launch_s: 10e-6,
            block_sched_s: 1e-6,
            api_call_s: 1e-6,
        }
    }

    /// A derated copy of this sheet: core clock and host↔device
    /// bandwidths scaled by `factor` (in `(0, 1]`). Building an
    /// N-device [`GpuSystem::new_mixed`](crate::GpuSystem::new_mixed)
    /// fleet from full-rate and derated sheets gives a heterogeneous
    /// system where per-device cost genuinely differs — the setting a
    /// cost-model scheduler must beat round-robin in.
    ///
    /// # Panics
    /// Panics unless `0.0 < factor <= 1.0`.
    pub fn derated(mut self, name: &'static str, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derate factor must be in (0, 1], got {factor}"
        );
        self.name = name;
        self.clock_hz *= factor;
        self.pcie_pinned_bw *= factor;
        self.pcie_pageable_bw *= factor;
        self
    }

    /// Resident warps per SM allowed by the thread limit.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Resident threads across the whole device ("61,440 resident threads"
    /// in §IV-A for the Titan XP).
    pub fn max_resident_threads(&self) -> u64 {
        self.sm_count as u64 * self.max_threads_per_sm as u64
    }

    /// Occupancy: resident warps per SM given a kernel's per-thread register
    /// count and per-block shared memory / block size.
    ///
    /// Returns at least 1 so pathological kernels still make progress.
    pub fn resident_warps(
        &self,
        regs_per_thread: u32,
        smem_per_block: u32,
        block_threads: u32,
    ) -> u32 {
        let by_threads = self.max_warps_per_sm();
        let by_regs = if regs_per_thread == 0 {
            by_threads
        } else {
            self.regs_per_sm / (regs_per_thread * self.warp_size)
        };
        let block_warps = block_threads.div_ceil(self.warp_size).max(1);
        let by_smem = match self.smem_per_sm.checked_div(smem_per_block) {
            Some(blocks) => blocks.max(1) * block_warps,
            None => by_threads, // no shared memory used
        };
        by_threads.min(by_regs).min(by_smem).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_xp_headline_numbers_match_the_paper() {
        let p = DeviceProps::titan_xp();
        assert_eq!(p.sm_count, 30);
        assert_eq!(p.max_threads_per_sm, 2048);
        // "up to 61,440 resident threads across the entire board"
        assert_eq!(p.max_resident_threads(), 61_440);
        assert_eq!(p.regs_per_sm, 65_536);
        assert_eq!(p.smem_per_sm, 96 * 1024);
        assert_eq!(p.max_warps_per_sm(), 64);
    }

    #[test]
    fn mandel_kernel_occupancy_is_not_register_limited() {
        // §IV-A: "the kernel function uses only 18 registers, thus it is not
        // a limiting factor".
        let p = DeviceProps::titan_xp();
        let warps = p.resident_warps(18, 0, 256);
        assert_eq!(warps, p.max_warps_per_sm());
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let p = DeviceProps::titan_xp();
        // 64 regs/thread: 65536 / (64*32) = 32 warps < 64.
        assert_eq!(p.resident_warps(64, 0, 256), 32);
    }

    #[test]
    fn smem_pressure_limits_occupancy() {
        let p = DeviceProps::titan_xp();
        // 48KB/block with 256-thread (8-warp) blocks: 2 blocks resident -> 16 warps.
        assert_eq!(p.resident_warps(0, 48 * 1024, 256), 16);
    }

    #[test]
    fn occupancy_never_zero() {
        let p = DeviceProps::test_tiny();
        assert!(p.resident_warps(u32::MAX / 64, u32::MAX / 2, 32) >= 1);
    }
}
