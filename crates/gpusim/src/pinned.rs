//! Host-memory pinning registry — the simulator's `cudaHostRegister`.
//!
//! Real CUDA can page-lock *any* host allocation after the fact
//! (`cudaHostRegister`), which is how frameworks make externally owned
//! buffers DMA-able without copying them into driver-owned staging
//! memory. The simulator mirrors that: pinnedness here is a property of
//! an *address range*, tracked in a process-wide registry, and the copy
//! verbs consult it to decide whether a transfer is a true async DMA
//! (registered range) or a pageable bounce through the simulated
//! driver's staging area (anything else — charged to
//! `telemetry::copy::count_bounce`).
//!
//! Ownership rules (see DESIGN.md §"Zero-copy handoff"):
//!
//! * Registration is RAII: a [`PinnedSlab`] guard pins the range on
//!   construction and unpins it on drop. The guard borrows nothing — the
//!   caller must keep the backing memory alive and un-moved (no
//!   reallocation) while the guard lives, exactly the real-CUDA rule
//!   that a registered range must not be freed or `realloc`ed.
//! * Registration is idempotent in effect: nested/overlapping
//!   registrations each need their own guard; a range is pinned while at
//!   least one covering guard lives.
//! * The registry keeps its capacity across register/unregister cycles,
//!   so a steady-state stream that pins and unpins per batch allocates
//!   nothing.

use std::sync::Mutex;

/// Registered `(start, len_bytes)` ranges. A plain vector: the registry
/// holds a handful of pool slabs, and a linear scan on the (already
/// API-cost-modeled) copy path is cheaper than any tree would be.
static RANGES: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());

/// RAII registration of one host address range as pinned.
///
/// While this guard lives, transfers whose host side falls entirely
/// inside the range are treated as page-locked (true async DMA, no
/// bounce). Dropping the guard unpins the range.
#[derive(Debug)]
pub struct PinnedSlab {
    start: usize,
    bytes: usize,
}

impl PinnedSlab {
    /// Pin the memory backing `slice`. Empty slices yield an inert guard.
    pub fn register<T>(slice: &[T]) -> PinnedSlab {
        Self::register_raw(slice.as_ptr() as usize, std::mem::size_of_val(slice))
    }

    /// Pin `bytes` bytes starting at `start` (for callers that hold raw
    /// capacity rather than an initialized slice).
    pub fn register_raw(start: usize, bytes: usize) -> PinnedSlab {
        if bytes > 0 {
            RANGES.lock().expect("pinned registry").push((start, bytes));
        }
        PinnedSlab { start, bytes }
    }

    /// The registered range, for diagnostics.
    pub fn range(&self) -> (usize, usize) {
        (self.start, self.bytes)
    }
}

impl Drop for PinnedSlab {
    fn drop(&mut self) {
        if self.bytes == 0 {
            return;
        }
        let mut r = RANGES.lock().expect("pinned registry");
        if let Some(i) = r
            .iter()
            .position(|&(s, b)| s == self.start && b == self.bytes)
        {
            // swap_remove keeps the Vec's capacity: steady-state
            // pin/unpin cycles never touch the allocator.
            r.swap_remove(i);
        }
    }
}

/// True when `[start, start+bytes)` lies entirely inside one registered
/// range. Zero-length queries are pinned by convention (nothing moves).
pub fn is_pinned_raw(start: usize, bytes: usize) -> bool {
    if bytes == 0 {
        return true;
    }
    let end = start + bytes;
    RANGES
        .lock()
        .expect("pinned registry")
        .iter()
        .any(|&(s, b)| start >= s && end <= s + b)
}

/// True when the memory backing `slice` is registered as pinned.
pub fn is_pinned<T>(slice: &[T]) -> bool {
    is_pinned_raw(slice.as_ptr() as usize, std::mem::size_of_val(slice))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_covers_subranges_and_unpins_on_drop() {
        let buf = vec![0u8; 4096];
        assert!(!is_pinned(&buf[..]));
        {
            let _g = PinnedSlab::register(&buf[..]);
            assert!(is_pinned(&buf[..]));
            assert!(is_pinned(&buf[100..200]), "interior subrange is pinned");
            assert!(is_pinned(&buf[4090..]), "tail subrange is pinned");
        }
        assert!(!is_pinned(&buf[..]), "drop unpins");
    }

    #[test]
    fn empty_ranges_are_trivially_pinned_and_inert() {
        let buf: Vec<u8> = Vec::new();
        assert!(is_pinned(&buf[..]), "zero bytes move for an empty slice");
        let g = PinnedSlab::register(&buf[..]);
        assert_eq!(g.range().1, 0);
        drop(g); // must not disturb other registrations
    }

    #[test]
    fn overlapping_guards_keep_range_pinned_until_last_drop() {
        let buf = [0u8; 64];
        let g1 = PinnedSlab::register(&buf[..]);
        let g2 = PinnedSlab::register(&buf[..]);
        drop(g1);
        assert!(is_pinned(&buf[..]), "second guard still covers the range");
        drop(g2);
        assert!(!is_pinned(&buf[..]));
    }

    #[test]
    fn typed_slices_use_byte_extents() {
        let buf = vec![0u32; 100];
        let _g = PinnedSlab::register(&buf[..]);
        assert!(is_pinned(&buf[..]));
        assert!(is_pinned(&buf[50..100]));
    }
}
