//! Host-memory pinning registry — the simulator's `cudaHostRegister`.
//!
//! Real CUDA can page-lock *any* host allocation after the fact
//! (`cudaHostRegister`), which is how frameworks make externally owned
//! buffers DMA-able without copying them into driver-owned staging
//! memory. The simulator mirrors that: pinnedness here is a property of
//! an *address range*, tracked in a process-wide registry, and the copy
//! verbs consult it to decide whether a transfer is a true async DMA
//! (registered range) or a pageable bounce through the simulated
//! driver's staging area (anything else — charged to
//! `telemetry::copy::count_bounce`).
//!
//! Ownership rules (see DESIGN.md §"Zero-copy handoff"):
//!
//! * Registration is RAII: a [`PinnedSlab`] guard pins the range on
//!   construction and unpins it on drop. The guard borrows nothing — the
//!   caller must keep the backing memory alive and un-moved (no
//!   reallocation) while the guard lives, exactly the real-CUDA rule
//!   that a registered range must not be freed or `realloc`ed.
//! * Registration is idempotent in effect: nested/overlapping
//!   registrations each need their own guard; a range is pinned while at
//!   least one covering guard lives.
//! * The registry keeps its capacity across register/unregister cycles,
//!   so a steady-state stream that pins and unpins per batch allocates
//!   nothing.

use std::sync::Mutex;

/// Registered `(start, len_bytes)` ranges. A plain vector: the registry
/// holds a handful of pool slabs, and a linear scan on the (already
/// API-cost-modeled) copy path is cheaper than any tree would be.
static RANGES: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());

/// RAII registration of one host address range as pinned.
///
/// While this guard lives, transfers whose host side falls entirely
/// inside the range are treated as page-locked (true async DMA, no
/// bounce). Dropping the guard unpins the range.
#[derive(Debug)]
pub struct PinnedSlab {
    start: usize,
    bytes: usize,
}

impl PinnedSlab {
    /// Pin the memory backing `slice`. Empty slices yield an inert guard.
    pub fn register<T>(slice: &[T]) -> PinnedSlab {
        Self::register_raw(slice.as_ptr() as usize, std::mem::size_of_val(slice))
    }

    /// Pin `bytes` bytes starting at `start` (for callers that hold raw
    /// capacity rather than an initialized slice). A range whose end would
    /// overflow the address space cannot describe real memory; it yields
    /// an inert guard instead of poisoning the registry.
    pub fn register_raw(start: usize, bytes: usize) -> PinnedSlab {
        if bytes > 0 && start.checked_add(bytes).is_some() {
            RANGES.lock().expect("pinned registry").push((start, bytes));
            PinnedSlab { start, bytes }
        } else {
            PinnedSlab { start, bytes: 0 }
        }
    }

    /// The registered range, for diagnostics.
    pub fn range(&self) -> (usize, usize) {
        (self.start, self.bytes)
    }
}

impl Drop for PinnedSlab {
    fn drop(&mut self) {
        if self.bytes == 0 {
            return;
        }
        let mut r = RANGES.lock().expect("pinned registry");
        if let Some(i) = r
            .iter()
            .position(|&(s, b)| s == self.start && b == self.bytes)
        {
            // swap_remove keeps the Vec's capacity: steady-state
            // pin/unpin cycles never touch the allocator.
            r.swap_remove(i);
        }
    }
}

/// True when `[start, start+bytes)` lies entirely inside registered
/// memory. Zero-length queries are pinned by convention (nothing moves).
///
/// Adjacent registered slabs coalesce: a query spanning two *abutting*
/// ranges (one pool slab ending exactly where the next begins) is pinned,
/// because every byte of it is page-locked — which registration guard
/// covers which half is an accounting detail the DMA engine never sees.
/// All arithmetic is checked; a query whose end would overflow the
/// address space cannot be a real buffer and reports unpinned instead of
/// panicking (debug) or wrapping into a false positive (release).
pub fn is_pinned_raw(start: usize, bytes: usize) -> bool {
    if bytes == 0 {
        return true;
    }
    let Some(end) = start.checked_add(bytes) else {
        return false;
    };
    let ranges = RANGES.lock().expect("pinned registry");
    // Greedy sweep, no allocation (this sits on the per-transfer copy
    // path): repeatedly extend covered ground by the farthest-reaching
    // range that contains the current frontier. Abutting slabs chain
    // because the next range starts exactly at the frontier.
    let mut frontier = start;
    loop {
        let mut reach = None;
        for &(s, b) in ranges.iter() {
            let Some(e) = s.checked_add(b) else { continue };
            if s <= frontier && frontier < e {
                reach = Some(reach.map_or(e, |r: usize| r.max(e)));
            }
        }
        match reach {
            Some(e) if e >= end => return true,
            Some(e) => frontier = e,
            None => return false,
        }
    }
}

/// True when the memory backing `slice` is registered as pinned.
pub fn is_pinned<T>(slice: &[T]) -> bool {
    is_pinned_raw(slice.as_ptr() as usize, std::mem::size_of_val(slice))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_covers_subranges_and_unpins_on_drop() {
        let buf = vec![0u8; 4096];
        assert!(!is_pinned(&buf[..]));
        {
            let _g = PinnedSlab::register(&buf[..]);
            assert!(is_pinned(&buf[..]));
            assert!(is_pinned(&buf[100..200]), "interior subrange is pinned");
            assert!(is_pinned(&buf[4090..]), "tail subrange is pinned");
        }
        assert!(!is_pinned(&buf[..]), "drop unpins");
    }

    #[test]
    fn empty_ranges_are_trivially_pinned_and_inert() {
        let buf: Vec<u8> = Vec::new();
        assert!(is_pinned(&buf[..]), "zero bytes move for an empty slice");
        let g = PinnedSlab::register(&buf[..]);
        assert_eq!(g.range().1, 0);
        drop(g); // must not disturb other registrations
    }

    #[test]
    fn overlapping_guards_keep_range_pinned_until_last_drop() {
        let buf = [0u8; 64];
        let g1 = PinnedSlab::register(&buf[..]);
        let g2 = PinnedSlab::register(&buf[..]);
        drop(g1);
        assert!(is_pinned(&buf[..]), "second guard still covers the range");
        drop(g2);
        assert!(!is_pinned(&buf[..]));
    }

    #[test]
    fn near_address_space_end_queries_do_not_overflow() {
        // `start + bytes` overflows usize: the old unchecked add panicked
        // in debug builds and wrapped to a tiny `end` in release builds,
        // where any low registered range made the query a false positive.
        let _low = PinnedSlab::register_raw(0x1000, 0x10000);
        assert!(!is_pinned_raw(usize::MAX - 8, 64));
        assert!(!is_pinned_raw(usize::MAX, 1));
        // Registering a wrapping range is refused (inert guard), so it can
        // never satisfy containment queries either.
        let g = PinnedSlab::register_raw(usize::MAX - 4, 1024);
        assert_eq!(g.range().1, 0, "wrapping registration must be inert");
        assert!(!is_pinned_raw(usize::MAX - 4, 8));
    }

    #[test]
    fn range_spanning_two_abutting_slabs_is_pinned() {
        // One backing buffer registered as two adjacent slabs — the shape
        // a size-classed pool produces for neighbouring class slabs. A
        // transfer spanning the seam is fully page-locked and must not be
        // charged as a driver bounce.
        let buf = vec![0u8; 8192];
        let base = buf.as_ptr() as usize;
        let _g1 = PinnedSlab::register_raw(base, 4096);
        let _g2 = PinnedSlab::register_raw(base + 4096, 4096);
        assert!(is_pinned_raw(base, 8192), "seam-spanning range is pinned");
        assert!(is_pinned_raw(base + 4000, 200), "window over the seam");
        assert!(!is_pinned_raw(base, 8193), "past the second slab is not");
        assert!(!is_pinned_raw(base.wrapping_sub(1), 2), "before the first");
        // Overlapping + abutting mix: a third guard overlapping the seam
        // must not confuse the sweep.
        let _g3 = PinnedSlab::register_raw(base + 2048, 4096);
        assert!(is_pinned_raw(base, 8192));
    }

    #[test]
    fn typed_slices_use_byte_extents() {
        let buf = vec![0u32; 100];
        let _g = PinnedSlab::register(&buf[..]);
        assert!(is_pinned(&buf[..]));
        assert!(is_pinned(&buf[50..100]));
    }
}
