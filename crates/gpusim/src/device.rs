//! The simulated device and the virtual system clock.
//!
//! Execution is **functionally eager**: every command runs to completion at
//! enqueue time on the host, so results are available immediately and are
//! bit-identical to what properly synchronized device code would produce.
//! *Timing* is modeled separately: each command is also scheduled on the
//! device's virtual timeline — three engines (compute, H2D copy, D2H copy)
//! with per-stream FIFO ordering — and the system tracks a virtual host
//! clock. Asynchronous commands advance the host clock only by the API-call
//! cost; synchronizing operations advance it to the awaited completion time.
//!
//! The modeled makespan is meaningful for single-host-thread programs (the
//! paper's GPU-only versions, i.e. the whole Fig. 1 ladder). Multi-threaded
//! host programs are timed by the `perfmodel` crate's DES instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use simtime::{SimDuration, SimTime};

use crate::fault::{DeviceFault, FaultInjector, FaultSpec};
use crate::kernel::{KernelFn, LaunchDims};
use crate::mem::{DeviceMemory, DevicePtr, OutOfMemory};
use crate::meter::WorkMeter;
use crate::model::{self, XferDir};
use crate::props::DeviceProps;
use crate::trace::{CommandRecord, TraceEngine};

/// Identifier of a stream on one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// The default stream (stream 0), always present.
    pub const DEFAULT: StreamId = StreamId(0);
}

/// A recorded synchronization point: completion time of everything enqueued
/// on a stream before the record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventStamp {
    pub(crate) device: u32,
    pub(crate) time: SimTime,
}

impl EventStamp {
    /// The modeled completion instant this event represents.
    pub fn time(&self) -> SimTime {
        self.time
    }
}

/// Aggregate per-device counters for reports and tests.
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Kernels launched.
    pub kernels: u64,
    /// Bytes copied host→device.
    pub h2d_bytes: u64,
    /// Bytes copied device→host.
    pub d2h_bytes: u64,
    /// Modeled busy time of the compute engine.
    pub compute_busy: SimDuration,
    /// Modeled busy time of the H2D engine.
    pub h2d_busy: SimDuration,
    /// Modeled busy time of the D2H engine.
    pub d2h_busy: SimDuration,
}

impl DeviceStats {
    /// Total modeled busy time across all three engines. Busy time only
    /// ever accumulates, and one worker thread per device serializes its
    /// batches, so differencing this around a batch yields that batch's
    /// modeled cost deterministically — the cost-model scheduler's
    /// measurement primitive.
    pub fn total_busy(&self) -> SimDuration {
        self.compute_busy + self.h2d_busy + self.d2h_busy
    }
}

#[derive(Clone, Copy)]
enum Engine {
    Compute,
    Copy(XferDir),
}

struct DevState {
    mem: DeviceMemory,
    compute_free: SimTime,
    h2d_free: SimTime,
    d2h_free: SimTime,
    streams: Vec<SimTime>, // last_end per stream
    stats: DeviceStats,
    trace: Option<Vec<CommandRecord>>,
    injector: Option<FaultInjector>,
    /// Live flight-recorder emitter (noop until attached): every copy
    /// and kernel drops a compact event so the run's black box shows
    /// device activity interleaved with the CPU stages and the ladder.
    flight: telemetry::FlightHandle,
    /// Reusable work meter: reset per launch so launching allocates
    /// nothing once the per-warp buffer has grown to the launch width.
    meter: WorkMeter,
}

impl DevState {
    fn schedule(
        &mut self,
        engine: Engine,
        name: &'static str,
        stream: StreamId,
        earliest: SimTime,
        dur: SimDuration,
    ) -> SimTime {
        let engine_free = match engine {
            Engine::Compute => &mut self.compute_free,
            Engine::Copy(XferDir::H2D) => &mut self.h2d_free,
            Engine::Copy(XferDir::D2H) => &mut self.d2h_free,
        };
        let stream_last = self.streams[stream.0];
        let start = earliest.max(*engine_free).max(stream_last);
        let end = start + dur;
        *engine_free = end;
        self.streams[stream.0] = end;
        match engine {
            Engine::Compute => self.stats.compute_busy += dur,
            Engine::Copy(XferDir::H2D) => self.stats.h2d_busy += dur,
            Engine::Copy(XferDir::D2H) => self.stats.d2h_busy += dur,
        }
        if let Some(trace) = &mut self.trace {
            trace.push(CommandRecord {
                engine: match engine {
                    Engine::Compute => TraceEngine::Compute,
                    Engine::Copy(XferDir::H2D) => TraceEngine::H2D,
                    Engine::Copy(XferDir::D2H) => TraceEngine::D2H,
                },
                name,
                stream: stream.0,
                start,
                end,
            });
        }
        end
    }
}

/// One simulated GPU.
pub struct Device {
    id: u32,
    props: DeviceProps,
    state: Mutex<DevState>,
}

impl Device {
    fn new(id: u32, props: DeviceProps) -> Self {
        let mem = DeviceMemory::new(id, props.global_mem);
        Device {
            id,
            props: props.clone(),
            state: Mutex::new(DevState {
                mem,
                compute_free: SimTime::ZERO,
                h2d_free: SimTime::ZERO,
                d2h_free: SimTime::ZERO,
                streams: vec![SimTime::ZERO], // default stream
                stats: DeviceStats::default(),
                trace: None,
                injector: None,
                flight: telemetry::FlightHandle::noop(),
                meter: WorkMeter::new(0, props.warp_size),
            }),
        }
    }

    /// Device index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Hardware properties.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    fn lock(&self) -> MutexGuard<'_, DevState> {
        // A panicking kernel must not brick the device: recover the guard
        // so later operations (and the CPU-fallback paths) keep working.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arm (or, with [`FaultSpec::none`], disarm) fault injection on this
    /// device. Usually called through [`GpuSystem::inject_faults`].
    pub fn inject_faults(&self, spec: &FaultSpec) {
        self.lock().injector = Some(FaultInjector::new(spec, self.id));
    }

    /// Allocate a zero-initialized device buffer.
    pub fn alloc<T: Default + Clone + Send + 'static>(
        &self,
        len: usize,
    ) -> Result<DevicePtr<T>, OutOfMemory> {
        let mut st = self.lock();
        if st.injector.as_mut().is_some_and(|i| i.inject_oom()) {
            return Err(OutOfMemory {
                requested: (len * std::mem::size_of::<T>()) as u64,
                available: st.mem.available(),
            });
        }
        st.mem.alloc(len)
    }

    /// Free a device buffer.
    pub fn free<T: 'static>(&self, ptr: DevicePtr<T>) {
        self.lock().mem.free(ptr)
    }

    /// Create a new stream; returns its id.
    pub fn create_stream(&self) -> StreamId {
        let mut st = self.lock();
        st.streams.push(SimTime::ZERO);
        StreamId(st.streams.len() - 1)
    }

    /// Run `f` with shared access to device memory (host-side peeking in
    /// tests; not part of the modeled API).
    pub fn with_memory<R>(&self, f: impl FnOnce(&DeviceMemory) -> R) -> R {
        f(&self.lock().mem)
    }

    /// Gauges of this device's allocation cache, for
    /// `telemetry::Recorder::register_pool`.
    pub fn cache_counters(&self) -> std::sync::Arc<telemetry::PoolCounters> {
        self.lock().mem.cache_counters()
    }

    /// Attach a live flight-recorder emitter (usually
    /// `Recorder::flight_handle("gpuN")`, one per device): copies and
    /// kernel launches then drop compact events into the shared ring as
    /// they are enqueued. Pass [`telemetry::FlightHandle::noop`] to
    /// detach.
    pub fn attach_flight(&self, handle: telemetry::FlightHandle) {
        self.lock().flight = handle;
    }

    /// Enqueue a kernel: executes functionally now, schedules on the
    /// compute engine, returns the modeled completion time.
    ///
    /// # Panics
    /// Panics if fault injection fails the launch; use
    /// [`try_launch`](Self::try_launch) on paths that recover.
    pub fn launch(
        &self,
        stream: StreamId,
        dims: LaunchDims,
        kernel: &dyn KernelFn,
        enqueue_at: SimTime,
    ) -> SimTime {
        match self.try_launch(stream, dims, kernel, enqueue_at) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`launch`](Self::launch): an injected kernel fault is
    /// reported instead of panicking. A failed launch leaves device memory
    /// untouched (the kernel never ran) and schedules nothing, so retrying
    /// the same launch is always safe.
    pub fn try_launch(
        &self,
        stream: StreamId,
        dims: LaunchDims,
        kernel: &dyn KernelFn,
        enqueue_at: SimTime,
    ) -> Result<SimTime, DeviceFault> {
        let mut st = self.lock();
        let slow = match st.injector.as_mut() {
            Some(inj) => {
                if inj.inject_kernel_fault() {
                    return Err(DeviceFault {
                        device: self.id,
                        kernel: kernel.name(),
                        injected: true,
                    });
                }
                inj.slow_factor()
            }
            None => 1.0,
        };
        let st = &mut *st;
        st.flight.emit(
            telemetry::FlightKind::KernelLaunch,
            telemetry::NO_BATCH,
            dims.total_threads(),
            stream.0 as u64,
        );
        st.meter.reset(dims.total_threads(), self.props.warp_size);
        kernel.run(&dims, &st.mem, &mut st.meter);
        let mut dur = model::kernel_duration(&self.props, &dims, kernel, &st.meter);
        if slow > 1.0 {
            // Busy/slow-device episode: same result, stretched timeline.
            dur = SimDuration::from_secs_f64(dur.as_secs_f64() * slow);
        }
        st.stats.kernels += 1;
        let end = st.schedule(Engine::Compute, kernel.name(), stream, enqueue_at, dur);
        st.flight.emit(
            telemetry::FlightKind::KernelComplete,
            telemetry::NO_BATCH,
            dims.total_threads(),
            dur.as_nanos(),
        );
        Ok(end)
    }

    /// Enqueue a host→device copy; data lands immediately (eager), timing
    /// is scheduled on the H2D engine.
    pub fn copy_h2d<T: Clone + Send + 'static>(
        &self,
        stream: StreamId,
        src: &[T],
        dst: DevicePtr<T>,
        dst_offset: usize,
        pinned: bool,
        enqueue_at: SimTime,
    ) -> SimTime {
        let bytes = std::mem::size_of_val(src) as u64;
        let mut st = self.lock();
        st.mem.write(dst, dst_offset, src);
        st.stats.h2d_bytes += bytes;
        let dur = model::transfer_duration(&self.props, bytes, pinned);
        st.flight.emit(
            telemetry::FlightKind::H2d,
            telemetry::NO_BATCH,
            bytes,
            dur.as_nanos(),
        );
        st.schedule(Engine::Copy(XferDir::H2D), "h2d", stream, enqueue_at, dur)
    }

    /// Enqueue a device→host copy.
    pub fn copy_d2h<T: Clone + Send + 'static>(
        &self,
        stream: StreamId,
        src: DevicePtr<T>,
        src_offset: usize,
        dst: &mut [T],
        pinned: bool,
        enqueue_at: SimTime,
    ) -> SimTime {
        let bytes = std::mem::size_of_val(dst) as u64;
        let mut st = self.lock();
        st.mem.read(src, src_offset, dst);
        st.stats.d2h_bytes += bytes;
        let dur = model::transfer_duration(&self.props, bytes, pinned);
        st.flight.emit(
            telemetry::FlightKind::D2h,
            telemetry::NO_BATCH,
            bytes,
            dur.as_nanos(),
        );
        st.schedule(Engine::Copy(XferDir::D2H), "d2h", stream, enqueue_at, dur)
    }

    /// Enqueue a device→device copy on this device (both buffers local).
    #[allow(clippy::too_many_arguments)]
    pub fn copy_d2d<T: Clone + Send + 'static>(
        &self,
        stream: StreamId,
        src: DevicePtr<T>,
        src_offset: usize,
        dst: DevicePtr<T>,
        dst_offset: usize,
        len: usize,
        enqueue_at: SimTime,
    ) -> SimTime {
        let mut st = self.lock();
        let data: Vec<T> = {
            let s = st.mem.borrow(src);
            s[src_offset..src_offset + len].to_vec()
        };
        st.mem.write(dst, dst_offset, &data);
        // On-device copies run at global-memory bandwidth; approximate with
        // the compute engine at 10× PCIe pinned bandwidth.
        let bytes = (len * std::mem::size_of::<T>()) as f64;
        let dur = SimDuration::from_secs_f64(bytes / (self.props.pcie_pinned_bw * 10.0));
        st.schedule(Engine::Compute, "d2d", stream, enqueue_at, dur)
    }

    /// Completion time of everything enqueued so far on `stream`.
    pub fn stream_last_end(&self, stream: StreamId) -> SimTime {
        self.lock().streams[stream.0]
    }

    /// Record an event on `stream`.
    pub fn record_event(&self, stream: StreamId) -> EventStamp {
        EventStamp {
            device: self.id,
            time: self.stream_last_end(stream),
        }
    }

    /// Make `stream` wait for `event` (cross-stream / cross-device dep).
    pub fn stream_wait_event(&self, stream: StreamId, event: EventStamp) {
        let mut st = self.lock();
        let cur = st.streams[stream.0];
        st.streams[stream.0] = cur.max(event.time);
    }

    /// Completion time of everything enqueued on any stream.
    pub fn device_last_end(&self) -> SimTime {
        let st = self.lock();
        st.streams.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }

    /// Snapshot the stats.
    pub fn stats(&self) -> DeviceStats {
        self.lock().stats.clone()
    }

    /// Start recording a command trace (see [`crate::trace`]).
    pub fn enable_trace(&self) {
        self.lock().trace = Some(Vec::new());
    }

    /// Take the recorded trace (empties it; tracing stays enabled).
    pub fn take_trace(&self) -> Vec<CommandRecord> {
        self.lock()
            .trace
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Reset the virtual timeline and stats (memory contents are kept).
    pub fn reset_timeline(&self) {
        let mut st = self.lock();
        st.compute_free = SimTime::ZERO;
        st.h2d_free = SimTime::ZERO;
        st.d2h_free = SimTime::ZERO;
        for s in &mut st.streams {
            *s = SimTime::ZERO;
        }
        st.stats = DeviceStats::default();
        if let Some(trace) = &mut st.trace {
            trace.clear();
        }
    }
}

/// A host plus a set of devices sharing one virtual clock. The devices
/// are identical when built with [`GpuSystem::new`] and may differ per
/// slot when built with [`GpuSystem::new_mixed`].
pub struct GpuSystem {
    devices: Vec<Arc<Device>>,
    host_now: AtomicU64, // ns; atomic max-advance
}

impl GpuSystem {
    /// Build a system of `n_devices` copies of `props`.
    ///
    /// # Panics
    /// Panics if `n_devices == 0`.
    pub fn new(n_devices: usize, props: DeviceProps) -> Arc<Self> {
        assert!(n_devices > 0, "need at least one device");
        Self::new_mixed((0..n_devices).map(|_| props.clone()).collect())
    }

    /// Build a heterogeneous system: one property sheet per device slot,
    /// in device-index order. This is what an N-device scheduler runs
    /// against — a fleet where the cost of the same batch genuinely
    /// differs by device, so placement quality is observable in the
    /// modeled makespan.
    ///
    /// # Panics
    /// Panics if `props` is empty.
    pub fn new_mixed(props: Vec<DeviceProps>) -> Arc<Self> {
        assert!(!props.is_empty(), "need at least one device");
        Arc::new(GpuSystem {
            devices: props
                .into_iter()
                .enumerate()
                .map(|(i, p)| Arc::new(Device::new(i as u32, p)))
                .collect(),
            host_now: AtomicU64::new(0),
        })
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Access device `i`.
    pub fn device(&self, i: usize) -> &Arc<Device> {
        &self.devices[i]
    }

    /// Current virtual host time.
    pub fn host_now(&self) -> SimTime {
        SimTime::from_nanos(self.host_now.load(Ordering::Acquire))
    }

    /// Model host-side CPU work of the given duration.
    pub fn host_compute(&self, d: SimDuration) -> SimTime {
        SimTime::from_nanos(self.host_now.fetch_add(d.as_nanos(), Ordering::AcqRel) + d.as_nanos())
    }

    /// Advance the host clock to at least `t` (a blocking wait on the
    /// device); returns the new host time.
    pub fn host_wait_until(&self, t: SimTime) -> SimTime {
        let target = t.as_nanos();
        let mut cur = self.host_now.load(Ordering::Acquire);
        while cur < target {
            match self.host_now.compare_exchange_weak(
                cur,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return t,
                Err(c) => cur = c,
            }
        }
        SimTime::from_nanos(cur)
    }

    /// Arm deterministic fault injection on every device: each gets its
    /// own decision stream seeded with `spec.seed ^ device_id`. Passing
    /// [`FaultSpec::none`] disarms. Only the system this is called on is
    /// affected — a fault-free reference system stays fault-free.
    pub fn inject_faults(&self, spec: &FaultSpec) {
        for d in &self.devices {
            d.inject_faults(spec);
        }
    }

    /// Reset the host clock and every device timeline (for back-to-back
    /// benchmark configurations).
    pub fn reset_clock(&self) {
        self.host_now.store(0, Ordering::Release);
        for d in &self.devices {
            d.reset_timeline();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Busy {
        units: u64,
    }
    impl KernelFn for Busy {
        fn name(&self) -> &'static str {
            "busy"
        }
        fn run(&self, dims: &LaunchDims, _mem: &DeviceMemory, meter: &mut WorkMeter) {
            meter.record_uniform(dims.total_threads(), self.units);
        }
    }

    fn system() -> Arc<GpuSystem> {
        GpuSystem::new(1, DeviceProps::test_tiny())
    }

    #[test]
    fn same_stream_commands_serialize() {
        let sys = system();
        let dev = sys.device(0);
        let dims = LaunchDims::linear(1, 32);
        let k = Busy { units: 1000 };
        let e1 = dev.launch(StreamId::DEFAULT, dims, &k, SimTime::ZERO);
        let e2 = dev.launch(StreamId::DEFAULT, dims, &k, SimTime::ZERO);
        assert!(e2 > e1);
        assert!(e2.since(e1) >= e1.since(SimTime::ZERO) - SimDuration::from_nanos(1));
    }

    #[test]
    fn different_streams_overlap_copy_and_compute() {
        let sys = system();
        let dev = sys.device(0);
        let s1 = StreamId::DEFAULT;
        let s2 = dev.create_stream();
        let buf = dev.alloc::<u8>(1 << 20).unwrap();
        let host = vec![0u8; 1 << 20];
        let k = Busy { units: 2_000_000 };
        let dims = LaunchDims::linear(2, 64);
        // kernel on s1 and a big H2D on s2 start together: different engines.
        let kend = dev.launch(s1, dims, &k, SimTime::ZERO);
        let cend = dev.copy_h2d(s2, &host, buf, 0, true, SimTime::ZERO);
        let makespan = dev.device_last_end();
        let serial = kend.since(SimTime::ZERO) + cend.since(SimTime::ZERO);
        assert!(
            makespan.since(SimTime::ZERO) < serial,
            "engines must overlap: makespan={makespan:?} serial={serial:?}"
        );
    }

    #[test]
    fn two_kernels_on_different_streams_share_one_compute_engine() {
        let sys = system();
        let dev = sys.device(0);
        let s2 = dev.create_stream();
        let k = Busy { units: 1_000_000 };
        let dims = LaunchDims::linear(1, 32);
        let e1 = dev.launch(StreamId::DEFAULT, dims, &k, SimTime::ZERO);
        let e2 = dev.launch(s2, dims, &k, SimTime::ZERO);
        // Compute engine is serial: second kernel starts after the first.
        assert!(
            e2 >= e1
                + (e1
                    .since(SimTime::ZERO)
                    .saturating_sub(SimDuration::from_micros(20)))
        );
    }

    #[test]
    fn functional_copies_are_eager() {
        let sys = system();
        let dev = sys.device(0);
        let buf = dev.alloc::<u32>(4).unwrap();
        dev.copy_h2d(
            StreamId::DEFAULT,
            &[1, 2, 3, 4],
            buf,
            0,
            false,
            SimTime::ZERO,
        );
        let mut out = [0u32; 4];
        dev.copy_d2h(StreamId::DEFAULT, buf, 0, &mut out, false, SimTime::ZERO);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn events_order_cross_stream_work() {
        let sys = system();
        let dev = sys.device(0);
        let s2 = dev.create_stream();
        let k = Busy { units: 500_000 };
        let dims = LaunchDims::linear(1, 32);
        let e1 = dev.launch(StreamId::DEFAULT, dims, &k, SimTime::ZERO);
        let ev = dev.record_event(StreamId::DEFAULT);
        assert_eq!(ev.time(), e1);
        dev.stream_wait_event(s2, ev);
        let e2 = dev.launch(s2, dims, &k, SimTime::ZERO);
        assert!(e2 > e1);
    }

    #[test]
    fn host_clock_advances_monotonically() {
        let sys = system();
        let t1 = sys.host_compute(SimDuration::from_micros(5));
        let t2 = sys.host_wait_until(SimTime::from_nanos(1)); // behind: no-op
        assert!(t2 >= t1);
        let t3 = sys.host_wait_until(SimTime::from_nanos(10_000_000));
        assert_eq!(t3.as_nanos(), 10_000_000);
    }

    #[test]
    fn reset_clears_timeline_but_not_memory() {
        let sys = system();
        let dev = sys.device(0);
        let buf = dev.alloc::<u32>(2).unwrap();
        dev.copy_h2d(StreamId::DEFAULT, &[7, 8], buf, 0, true, SimTime::ZERO);
        sys.reset_clock();
        assert_eq!(dev.stats().h2d_bytes, 0);
        assert_eq!(dev.device_last_end(), SimTime::ZERO);
        let mut out = [0u32; 2];
        dev.copy_d2h(StreamId::DEFAULT, buf, 0, &mut out, true, SimTime::ZERO);
        assert_eq!(out, [7, 8]);
    }

    #[test]
    fn device_to_device_copy_moves_data_locally() {
        let sys = system();
        let dev = sys.device(0);
        let a = dev.alloc::<u32>(8).unwrap();
        let b = dev.alloc::<u32>(8).unwrap();
        dev.copy_h2d(
            StreamId::DEFAULT,
            &[1, 2, 3, 4, 5, 6, 7, 8],
            a,
            0,
            true,
            SimTime::ZERO,
        );
        dev.copy_d2d(StreamId::DEFAULT, a, 2, b, 0, 4, SimTime::ZERO);
        let mut out = [0u32; 4];
        dev.copy_d2h(StreamId::DEFAULT, b, 0, &mut out, true, SimTime::ZERO);
        assert_eq!(out, [3, 4, 5, 6]);
    }

    #[test]
    fn injected_faults_are_transient_and_leave_memory_intact() {
        let sys = system();
        sys.inject_faults(&crate::fault::FaultSpec::demo(42));
        let dev = sys.device(0);
        // Demo spec: first 2 allocs fail, then the device heals.
        assert!(dev.alloc::<u8>(16).is_err());
        assert!(dev.alloc::<u8>(16).is_err());
        let buf = dev.alloc::<u32>(4).expect("healed after max injections");
        dev.copy_h2d(
            StreamId::DEFAULT,
            &[9, 9, 9, 9],
            buf,
            0,
            true,
            SimTime::ZERO,
        );
        // First 3 launches fail without running the kernel...
        let k = Busy { units: 10 };
        let dims = LaunchDims::linear(1, 32);
        for _ in 0..3 {
            assert!(dev
                .try_launch(StreamId::DEFAULT, dims, &k, SimTime::ZERO)
                .is_err());
        }
        assert_eq!(dev.stats().kernels, 0, "failed launches must not count");
        // ...then a retry succeeds and memory is unchanged.
        assert!(dev
            .try_launch(StreamId::DEFAULT, dims, &k, SimTime::ZERO)
            .is_ok());
        let mut out = [0u32; 4];
        dev.copy_d2h(StreamId::DEFAULT, buf, 0, &mut out, true, SimTime::ZERO);
        assert_eq!(out, [9, 9, 9, 9]);
    }

    #[test]
    fn disarmed_system_never_faults() {
        let sys = system();
        sys.inject_faults(&crate::fault::FaultSpec::none(1));
        let dev = sys.device(0);
        let k = Busy { units: 10 };
        for _ in 0..50 {
            assert!(dev.alloc::<u8>(1).is_ok());
            assert!(dev
                .try_launch(
                    StreamId::DEFAULT,
                    LaunchDims::linear(1, 32),
                    &k,
                    SimTime::ZERO
                )
                .is_ok());
        }
    }

    #[test]
    fn stats_accumulate() {
        let sys = system();
        let dev = sys.device(0);
        let buf = dev.alloc::<u8>(100).unwrap();
        dev.copy_h2d(StreamId::DEFAULT, &[0u8; 100], buf, 0, true, SimTime::ZERO);
        let k = Busy { units: 10 };
        dev.launch(
            StreamId::DEFAULT,
            LaunchDims::linear(1, 32),
            &k,
            SimTime::ZERO,
        );
        let st = dev.stats();
        assert_eq!(st.h2d_bytes, 100);
        assert_eq!(st.kernels, 1);
        assert!(st.compute_busy > SimDuration::ZERO);
    }
}
