//! `gpusim` — a functional + discrete-event GPU simulator with CUDA-like and
//! OpenCL-like front ends.
//!
//! The reproduction machine has no GPU, so this crate stands in for the
//! paper's two Titan XPs. The substitution is *behavioural*, not numeric:
//!
//! * **Functional layer** — kernels are Rust implementations of the paper's
//!   `__global__` functions ([`KernelFn`]); they execute eagerly over
//!   simulated device memory ([`DeviceMemory`]) and produce bit-exact
//!   results, so every application built on top can be verified end-to-end.
//! * **Timing layer** — every command is scheduled on a per-device virtual
//!   timeline (compute + H2D + D2H engines, FIFO streams, events) using a
//!   cost model ([`model`]) that captures launch overhead, per-block
//!   dispatch, occupancy, warp divergence and PCIe transfer behaviour —
//!   the exact mechanisms behind the paper's Fig. 1 optimization ladder.
//!
//! Front ends:
//!
//! * [`cuda`] — `cudaSetDevice` (thread-local), streams, events,
//!   `cudaMemcpyAsync` with pinned-vs-pageable semantics;
//! * [`opencl`] — platform/context/queue/buffer/kernel objects with
//!   `cl_event` chaining; `ClKernel` is deliberately `!Sync`.
//!
//! See `DESIGN.md` §2 for the full substitution argument.

pub mod cuda;
pub mod device;
pub mod fault;
pub mod kernel;
pub mod mem;
pub mod meter;
pub mod model;
pub mod offload;
pub mod opencl;
pub mod pinned;
pub mod props;
pub mod trace;

pub use device::{Device, DeviceStats, EventStamp, GpuSystem, StreamId};
pub use fault::{DeviceFault, FaultClass, FaultSpec};
pub use kernel::{Dim3, KernelFn, LaunchDims};
pub use mem::{DeviceMemory, DevicePtr, OutOfMemory};
pub use meter::WorkMeter;
pub use offload::{CudaOffload, HostRing, OclOffload, Offload, OffloadApi};
pub use pinned::PinnedSlab;
pub use props::DeviceProps;
pub use trace::{feed_recorder, overlap_fraction, render_timeline, CommandRecord, TraceEngine};
