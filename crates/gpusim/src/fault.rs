//! Deterministic fault injection for the simulated devices.
//!
//! The paper's heterogeneous runtimes must keep streaming when a device
//! misbehaves: allocation fails (real GPUs run out of global memory under
//! multi-replica pressure), a kernel launch fails transiently, or a device
//! is busy/slow. This module injects exactly those faults *behind* the
//! normal device API so every front end (CUDA-like, OpenCL-like, the
//! [`crate::Offload`] trait) observes them the same way, and the recovery
//! paths in `dedup`/`mandel` can be exercised without real hardware.
//!
//! Injection is deterministic: decisions are count-based per device
//! (`every` N-th operation) with an optional seeded probabilistic
//! component, and each class stops after `max` injections — so a seeded
//! run always produces the same fault schedule regardless of thread
//! interleaving, and faults are transient (a retry eventually succeeds).
#![deny(clippy::unwrap_used)]

use std::fmt;

use simtime::XorShift64;

/// One class of injected fault (OOM, kernel failure, slow device).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultClass {
    /// Inject on every `every`-th eligible operation (0 disables the
    /// count-based trigger). `every == 1` means "every operation".
    pub every: u64,
    /// Additionally inject with this probability per operation (seeded,
    /// deterministic stream; 0.0 disables).
    pub prob: f64,
    /// Stop after this many injections (makes the fault transient).
    pub max: u64,
}

impl FaultClass {
    /// A disabled class.
    pub const OFF: FaultClass = FaultClass {
        every: 0,
        prob: 0.0,
        max: 0,
    };

    /// Inject on the first `n` operations, then never again.
    pub fn first(n: u64) -> FaultClass {
        FaultClass {
            every: 1,
            prob: 0.0,
            max: n,
        }
    }

    fn armed(&self) -> bool {
        self.max > 0 && (self.every > 0 || self.prob > 0.0)
    }
}

/// A seeded fault-injection configuration for a whole [`crate::GpuSystem`].
///
/// Armed via [`crate::GpuSystem::inject_faults`]; each device gets its own
/// injector seeded with `seed ^ device_id` so multi-GPU schedules differ
/// but stay reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Base seed for the per-device decision streams.
    pub seed: u64,
    /// Device-memory allocation failures (`OutOfMemory`).
    pub oom: FaultClass,
    /// Transient kernel-launch failures (`DeviceFault`).
    pub kernel: FaultClass,
    /// Slow/busy-device episodes: affected launches take `slow_factor`×
    /// their modeled duration (functional result is unchanged).
    pub slow: FaultClass,
    /// Duration multiplier for `slow` injections (ignored unless > 1).
    pub slow_factor: f64,
}

impl FaultSpec {
    /// A spec with every class disabled.
    pub fn none(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            oom: FaultClass::OFF,
            kernel: FaultClass::OFF,
            slow: FaultClass::OFF,
            slow_factor: 1.0,
        }
    }

    /// The demonstration schedule the fig harnesses and CI smoke use:
    /// the first 2 allocations and first 3 kernel launches on each device
    /// fail, then the device heals. Guarantees at least one retry *and*
    /// at least one CPU fallback from any driver that allocates or
    /// launches more than a couple of times, independent of interleaving.
    pub fn demo(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            oom: FaultClass::first(2),
            kernel: FaultClass::first(3),
            slow: FaultClass {
                every: 7,
                prob: 0.0,
                max: 4,
            },
            slow_factor: 8.0,
        }
    }
}

/// Error returned by the fallible launch paths when a kernel fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceFault {
    /// Device the launch targeted.
    pub device: u32,
    /// Kernel name.
    pub kernel: &'static str,
    /// True when the failure came from the injection harness (always the
    /// case today; kept so real failure modes can share the type).
    pub injected: bool,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} failed to launch kernel '{}'{}",
            self.device,
            self.kernel,
            if self.injected { " (injected)" } else { "" }
        )
    }
}

impl std::error::Error for DeviceFault {}

#[derive(Debug)]
struct ClassState {
    class: FaultClass,
    trials: u64,
    injected: u64,
}

impl ClassState {
    fn new(class: FaultClass) -> Self {
        ClassState {
            class,
            trials: 0,
            injected: 0,
        }
    }

    fn decide(&mut self, rng: &mut XorShift64) -> bool {
        if !self.class.armed() {
            return false;
        }
        self.trials += 1;
        if self.injected >= self.class.max {
            return false;
        }
        let count_hit = self.class.every > 0 && self.trials.is_multiple_of(self.class.every);
        let prob_hit = self.class.prob > 0.0 && rng.chance(self.class.prob);
        if count_hit || prob_hit {
            self.injected += 1;
            true
        } else {
            false
        }
    }
}

/// Per-device injection state, owned by the device behind its mutex.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    oom: ClassState,
    kernel: ClassState,
    slow: ClassState,
    slow_factor: f64,
    rng: XorShift64,
}

impl FaultInjector {
    pub(crate) fn new(spec: &FaultSpec, device: u32) -> Self {
        FaultInjector {
            oom: ClassState::new(spec.oom),
            kernel: ClassState::new(spec.kernel),
            slow: ClassState::new(spec.slow),
            slow_factor: spec.slow_factor,
            rng: XorShift64::new(spec.seed ^ (device as u64).wrapping_mul(0x9E37_79B9)),
        }
    }

    /// Should this allocation fail with `OutOfMemory`?
    pub(crate) fn inject_oom(&mut self) -> bool {
        self.oom.decide(&mut self.rng)
    }

    /// Should this kernel launch fail with `DeviceFault`?
    pub(crate) fn inject_kernel_fault(&mut self) -> bool {
        self.kernel.decide(&mut self.rng)
    }

    /// Duration multiplier for this launch (1.0 = healthy).
    pub(crate) fn slow_factor(&mut self) -> f64 {
        if self.slow_factor > 1.0 && self.slow.decide(&mut self.rng) {
            self.slow_factor
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_class_never_fires() {
        let mut st = ClassState::new(FaultClass::OFF);
        let mut rng = XorShift64::new(1);
        for _ in 0..1000 {
            assert!(!st.decide(&mut rng));
        }
    }

    #[test]
    fn first_n_fires_exactly_n_times_then_heals() {
        let mut st = ClassState::new(FaultClass::first(3));
        let mut rng = XorShift64::new(1);
        let fired: Vec<bool> = (0..10).map(|_| st.decide(&mut rng)).collect();
        assert_eq!(
            fired,
            [true, true, true, false, false, false, false, false, false, false]
        );
    }

    #[test]
    fn every_k_is_periodic_until_max() {
        let mut st = ClassState::new(FaultClass {
            every: 3,
            prob: 0.0,
            max: 2,
        });
        let mut rng = XorShift64::new(9);
        let fired: Vec<bool> = (0..12).map(|_| st.decide(&mut rng)).collect();
        // Fires on trials 3 and 6 (1-based), then the max cap holds.
        let hits: Vec<usize> = (0..12).filter(|&i| fired[i]).collect();
        assert_eq!(hits, vec![2, 5]);
    }

    #[test]
    fn probabilistic_stream_is_deterministic_per_seed() {
        let run = |seed| {
            let spec = FaultSpec {
                seed,
                oom: FaultClass {
                    every: 0,
                    prob: 0.3,
                    max: u64::MAX,
                },
                kernel: FaultClass::OFF,
                slow: FaultClass::OFF,
                slow_factor: 1.0,
            };
            let mut inj = FaultInjector::new(&spec, 0);
            (0..64).map(|_| inj.inject_oom()).collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn devices_get_distinct_streams() {
        let spec = FaultSpec {
            seed: 7,
            oom: FaultClass {
                every: 0,
                prob: 0.5,
                max: u64::MAX,
            },
            kernel: FaultClass::OFF,
            slow: FaultClass::OFF,
            slow_factor: 1.0,
        };
        let mut a = FaultInjector::new(&spec, 0);
        let mut b = FaultInjector::new(&spec, 1);
        let sa: Vec<bool> = (0..64).map(|_| a.inject_oom()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.inject_oom()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn slow_factor_defaults_to_healthy() {
        let mut inj = FaultInjector::new(&FaultSpec::none(1), 0);
        for _ in 0..10 {
            assert_eq!(inj.slow_factor(), 1.0);
        }
        let mut inj = FaultInjector::new(&FaultSpec::demo(1), 0);
        let factors: Vec<f64> = (0..14).map(|_| inj.slow_factor()).collect();
        assert!(factors.iter().any(|&f| f > 1.0));
        assert!(factors.contains(&1.0));
    }

    #[test]
    fn device_fault_displays_context() {
        let e = DeviceFault {
            device: 1,
            kernel: "mandel_kernel",
            injected: true,
        };
        let s = e.to_string();
        assert!(s.contains("device 1"));
        assert!(s.contains("mandel_kernel"));
        assert!(s.contains("injected"));
    }
}
