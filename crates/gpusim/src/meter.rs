//! Work metering: the bridge between functional kernel execution and the
//! timing model.
//!
//! Kernels report, per *lane* (global thread index), how many abstract work
//! units they executed — Mandelbrot iterations, SHA-1 bytes, LZSS
//! comparisons. The meter folds lanes into warps keeping the **maximum**
//! per warp: a warp is as slow as its slowest lane, which is exactly the
//! branch-divergence effect §IV-A highlights for Mandelbrot.

/// Collects per-lane work and aggregates it per warp.
#[derive(Debug, Clone)]
pub struct WorkMeter {
    warp_size: u32,
    /// max work units over the lanes of each warp.
    warp_max: Vec<u64>,
    /// total units over all lanes (for reporting / CPU-equivalence checks).
    total_units: u64,
    lanes_recorded: u64,
}

impl WorkMeter {
    /// Meter for a launch of `lanes` total threads in warps of `warp_size`.
    pub fn new(lanes: u64, warp_size: u32) -> Self {
        assert!(warp_size > 0);
        let warps = lanes.div_ceil(warp_size as u64) as usize;
        WorkMeter {
            warp_size,
            warp_max: vec![0; warps],
            total_units: 0,
            lanes_recorded: 0,
        }
    }

    /// Re-arm an existing meter for a new launch, reusing the per-warp
    /// buffer. Equivalent to `*self = WorkMeter::new(lanes, warp_size)`
    /// but allocation-free once the buffer has grown to the steady-state
    /// launch width — the device keeps one meter per state and resets it
    /// per launch, so kernel launches stay off the heap.
    pub fn reset(&mut self, lanes: u64, warp_size: u32) {
        assert!(warp_size > 0);
        self.warp_size = warp_size;
        let warps = lanes.div_ceil(warp_size as u64) as usize;
        self.warp_max.clear();
        self.warp_max.resize(warps, 0);
        self.total_units = 0;
        self.lanes_recorded = 0;
    }

    /// Record `units` of work done by `lane`.
    #[inline]
    pub fn record(&mut self, lane: u64, units: u64) {
        let w = (lane / self.warp_size as u64) as usize;
        assert!(w < self.warp_max.len(), "lane {lane} outside launch");
        if units > self.warp_max[w] {
            self.warp_max[w] = units;
        }
        self.total_units += units;
        self.lanes_recorded += 1;
    }

    /// Record the same `units` for every lane of the launch (uniform
    /// kernels).
    pub fn record_uniform(&mut self, lanes: u64, units: u64) {
        for w in self.warp_max.iter_mut() {
            *w = (*w).max(units);
        }
        self.total_units += lanes * units;
        self.lanes_recorded += lanes;
    }

    /// Sum of per-warp maxima: the cycle-weighted work the SMs must issue.
    pub fn warp_units(&self) -> u64 {
        self.warp_max.iter().sum()
    }

    /// The largest single-warp work (lower bound on kernel time).
    pub fn max_warp_units(&self) -> u64 {
        self.warp_max.iter().copied().max().unwrap_or(0)
    }

    /// Total units across lanes (what a sequential CPU would execute).
    pub fn total_units(&self) -> u64 {
        self.total_units
    }

    /// Number of warps in the launch.
    pub fn warps(&self) -> usize {
        self.warp_max.len()
    }

    /// Number of record calls (diagnostic).
    pub fn lanes_recorded(&self) -> u64 {
        self.lanes_recorded
    }

    /// Divergence factor: warp-time work divided by ideal (total/width).
    /// 1.0 means perfectly convergent warps; higher is worse.
    pub fn divergence_factor(&self) -> f64 {
        if self.total_units == 0 {
            return 1.0;
        }
        let ideal = self.total_units as f64 / self.warp_size as f64;
        self.warp_units() as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_max_is_divergence() {
        let mut m = WorkMeter::new(64, 32);
        // Warp 0: lanes 0..32 do 1 unit except lane 3 doing 100.
        for lane in 0..32 {
            m.record(lane, if lane == 3 { 100 } else { 1 });
        }
        // Warp 1: uniform 10.
        for lane in 32..64 {
            m.record(lane, 10);
        }
        assert_eq!(m.warp_units(), 110);
        assert_eq!(m.max_warp_units(), 100);
        assert_eq!(m.total_units(), 31 + 100 + 320);
        assert!(m.divergence_factor() > 1.0);
    }

    #[test]
    fn uniform_recording_matches_loop() {
        let mut a = WorkMeter::new(96, 32);
        a.record_uniform(96, 7);
        let mut b = WorkMeter::new(96, 32);
        for lane in 0..96 {
            b.record(lane, 7);
        }
        assert_eq!(a.warp_units(), b.warp_units());
        assert_eq!(a.total_units(), b.total_units());
    }

    #[test]
    fn convergent_warp_divergence_factor_is_one() {
        let mut m = WorkMeter::new(32, 32);
        m.record_uniform(32, 50);
        assert!((m.divergence_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_last_warp_rounds_up() {
        let m = WorkMeter::new(33, 32);
        assert_eq!(m.warps(), 2);
    }

    #[test]
    #[should_panic(expected = "outside launch")]
    fn out_of_range_lane_panics() {
        let mut m = WorkMeter::new(32, 32);
        m.record(32, 1);
    }

    #[test]
    fn empty_meter_is_sane() {
        let m = WorkMeter::new(0, 32);
        assert_eq!(m.warps(), 0);
        assert_eq!(m.warp_units(), 0);
        assert_eq!(m.max_warp_units(), 0);
        assert_eq!(m.divergence_factor(), 1.0);
    }
}
