//! Pinned buffer pools: `fastflow` slabs registered with the GPU
//! simulator's page-lock registry.
//!
//! The zero-copy handoff (DESIGN.md §"Zero-copy handoff") needs pooled
//! batch buffers to be DMA-able for their whole cached lifetime, so a
//! `PooledBuf` can be handed to [`gpusim::Offload::h2d_pinned`] /
//! [`gpusim::Offload::d2h_pinned`] with no staging copy in between. This
//! module is the glue: [`GpuPinnedRegistrar`] implements
//! [`fastflow::SlabRegistrar`] on top of [`gpusim::PinnedSlab`] guards,
//! and [`pinned_pool`] builds a [`fastflow::BufPool`] wired to it.
//!
//! Pinning happens once per allocator miss and lasts until the slab
//! permanently leaves the pool (shed / detach / pool drop) — the
//! recycle path touches neither the allocator nor the registry, which
//! is what keeps the steady state at zero staging copies *and* zero
//! registry churn.

use std::sync::{Arc, Mutex};

use gpusim::PinnedSlab;

/// [`fastflow::SlabRegistrar`] that page-locks pool slabs via the GPU
/// simulator's pinned-memory registry.
///
/// Holds one [`PinnedSlab`] guard per registered slab; `unregister`
/// drops the matching guard, which removes the range from the registry.
#[derive(Default)]
pub struct GpuPinnedRegistrar {
    guards: Mutex<Vec<PinnedSlab>>,
}

impl fastflow::SlabRegistrar for GpuPinnedRegistrar {
    fn register(&self, ptr: usize, bytes: usize) {
        let guard = PinnedSlab::register_raw(ptr, bytes);
        self.guards.lock().expect("pinned guard table").push(guard);
    }

    fn unregister(&self, ptr: usize, bytes: usize) {
        let mut guards = self.guards.lock().expect("pinned guard table");
        if let Some(i) = guards.iter().position(|g| g.range() == (ptr, bytes)) {
            guards.swap_remove(i); // dropping the guard unpins the range
        }
    }
}

/// A [`fastflow::BufPool`] whose slabs are page-locked for their whole
/// pooled lifetime, so batches acquired from it travel
/// pool → device → pool with zero staging copies.
pub fn pinned_pool<T: Default + Clone + Send + 'static>() -> fastflow::BufPool<T> {
    fastflow::BufPool::with_registrar(Arc::new(GpuPinnedRegistrar::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_buffers_are_pinned_while_cached() {
        let pool = pinned_pool::<u8>();
        let buf = pool.acquire(4096);
        assert!(
            gpusim::pinned::is_pinned(&buf[..]),
            "fresh pooled slab is page-locked"
        );
        let (ptr, len) = (buf.as_ptr() as usize, buf.len());
        drop(buf);
        // Recycled, not freed: the slab stays pinned while cached.
        assert!(gpusim::pinned::is_pinned_raw(ptr, len));
        let again = pool.acquire(4096);
        assert!(gpusim::pinned::is_pinned(&again[..]));
        drop(again);
        drop(pool);
        // Pool drop releases the page-locks.
        assert!(!gpusim::pinned::is_pinned_raw(ptr, len));
    }

    #[test]
    fn detached_buffers_lose_their_pinning() {
        let pool = pinned_pool::<u32>();
        let buf = pool.acquire(256);
        let vec = buf.detach();
        assert!(
            !gpusim::pinned::is_pinned(&vec[..]),
            "detached storage left the pool and must be unpinned"
        );
    }
}
