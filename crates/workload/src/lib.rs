//! Workload SDK: the one place where "offload a batch, survive the device"
//! lives.
//!
//! The paper's case studies (Mandelbrot Streaming §IV-A, Dedup §IV-B) each
//! re-hand-rolled the same heterogeneous plumbing: form a batch, try the
//! GPU, retry transient faults, halve the batch when the device is out of
//! memory, fall back to a bit-identical CPU implementation, re-emit in
//! order, and report every rung to telemetry. This crate extracts that
//! commonality behind two types:
//!
//! * [`Workload`] — what an *application* declares: its item/batch/GPU
//!   state types, a fallible GPU path, an optional sub-batch path for OOM
//!   halving, and a CPU path that is byte-identical to the kernels.
//! * [`WorkloadDriver`] — what the *runtime* owns: the recovery ladder
//!   (retry → batch-halve → CPU fallback), recycled-buffer discipline
//!   (every rung writes into a caller-supplied batch), telemetry fault
//!   events, and ordered farm plumbing ([`WorkloadDriver::run_ordered`]).
//!
//! The ladder exists *only here*; `mandel`, `dedup` and `hashsearch` are
//! pure [`Workload`] impls. Adding a fourth application is ~100 lines: a
//! kernel, a `Workload` impl, and a harness.
//!
//! # Ladder semantics
//!
//! For each item the driver attempts the whole batch on the GPU. On
//! failure it records the fault and picks a rung:
//!
//! 1. **OOM with a splittable batch** ([`Workload::split_units`] > 1) —
//!    recursively halve the unit range via [`Workload::try_gpu_split`];
//!    each sub-range gets its own retry budget. A sub-range that can
//!    neither run nor split abandons the device.
//! 2. **Transient fault** (kernel fault, or OOM on an unsplittable batch)
//!    — retry per [`Workload::policy`] with backoff.
//! 3. **CPU fallback** — the batch is recomputed on the host,
//!    bit-identical, into the same output buffer.
#![deny(missing_docs)]
#![deny(clippy::unwrap_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fastflow::FaultPolicy;
use gpusim::GpuSystem;
use telemetry::{FaultKind, FlightHandle, FlightKind, Recorder};

pub mod pinned;
pub use pinned::{pinned_pool, GpuPinnedRegistrar};

/// Why a batch failed on the device: the two operational fault classes the
/// recovery ladder absorbs (allocation refusals and launch refusals).
#[derive(Debug)]
pub enum WorkloadFault {
    /// The device refused an allocation.
    Oom(gpusim::OutOfMemory),
    /// The kernel launch was refused (fault injection / device error).
    Kernel(gpusim::DeviceFault),
}

impl WorkloadFault {
    /// Telemetry classification of this fault.
    pub fn kind(&self) -> FaultKind {
        match self {
            WorkloadFault::Oom(_) => FaultKind::DeviceOom,
            WorkloadFault::Kernel(_) => FaultKind::KernelFault,
        }
    }
}

impl std::fmt::Display for WorkloadFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadFault::Oom(e) => e.fmt(f),
            WorkloadFault::Kernel(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for WorkloadFault {}

impl From<gpusim::OutOfMemory> for WorkloadFault {
    fn from(e: gpusim::OutOfMemory) -> Self {
        WorkloadFault::Oom(e)
    }
}

impl From<gpusim::DeviceFault> for WorkloadFault {
    fn from(e: gpusim::DeviceFault) -> Self {
        WorkloadFault::Kernel(e)
    }
}

/// One heterogeneous application, declared once.
///
/// A `Workload` is a cheap, cloneable *description*: shared configuration
/// plus constructors for the per-replica GPU state. All methods take
/// `&self`; mutable state lives in [`Workload::Gpu`], which the driver
/// threads through every call on the worker that owns it.
///
/// The contract (checked by the workspace `workload_contract` suite):
///
/// * [`cpu_batch`](Workload::cpu_batch) must be **bit-identical** to
///   [`try_gpu_batch`](Workload::try_gpu_batch) on a healthy device.
/// * [`try_gpu_split`](Workload::try_gpu_split) over any partition of
///   `0..split_units(item)` must equal one full-batch computation.
/// * Every path writes into the caller's `out` batch (recycled buffers);
///   a steady-state stream must not touch the allocator.
pub trait Workload: Send + Clone + 'static {
    /// One stream item (e.g. a batch index, a chunk of input blocks).
    type Item: Send + 'static;
    /// The computed result for one item (e.g. pixels, digests).
    type Batch: Send + 'static;
    /// Per-replica device state (offloader + lazily grown buffers). Built
    /// on the worker thread that uses it ([`Workload::attach`]), honoring
    /// the per-thread `cudaSetDevice` discipline.
    type Gpu: Send + 'static;

    /// Telemetry stage label for fault events (e.g. `"stage1 (gpu)"`).
    fn stage_label(&self) -> &'static str;

    /// Retry budget for transient faults. Defaults to the runtime default
    /// (2 retries, 50 µs backoff).
    fn policy(&self) -> FaultPolicy {
        FaultPolicy::default()
    }

    /// Short human description of an item, used in fault-event details.
    fn describe(&self, _item: &Self::Item) -> String {
        "item".to_string()
    }

    /// Build the GPU state for farm replica `replica`. Called on the
    /// worker thread that will compute.
    fn attach(&self, replica: usize) -> Self::Gpu;

    /// Produce an output batch for `item`, recycled where possible. The
    /// driver passes it through every ladder rung unchanged.
    fn make_batch(&self, item: &Self::Item) -> Self::Batch;

    /// Compute the whole batch on the device, writing into `out`.
    fn try_gpu_batch(
        &self,
        gpu: &mut Self::Gpu,
        item: &Self::Item,
        out: &mut Self::Batch,
    ) -> Result<(), WorkloadFault>;

    /// How many units an item's batch can be split into when the device
    /// is out of memory (rows, blocks, nonces…). `1` (the default)
    /// disables halving: OOM is then treated as transient and retried.
    fn split_units(&self, _item: &Self::Item) -> usize {
        1
    }

    /// Compute units `lo..hi` of the batch on the device, writing into
    /// the corresponding region of `out`. Only called when
    /// [`split_units`](Workload::split_units) returns > 1.
    fn try_gpu_split(
        &self,
        _gpu: &mut Self::Gpu,
        _item: &Self::Item,
        _lo: usize,
        _hi: usize,
        _out: &mut Self::Batch,
    ) -> Result<(), WorkloadFault> {
        unimplemented!("a Workload with split_units > 1 must implement try_gpu_split")
    }

    /// Compute the whole batch on the host, bit-identical to the device
    /// path, writing into `out`.
    fn cpu_batch(&self, item: &Self::Item, out: &mut Self::Batch);

    /// Register pools/gauges with a live recorder (called once by
    /// [`WorkloadDriver::with_recorder`]).
    fn register_telemetry(&self, _rec: &Recorder) {}
}

/// A finished item: the input that produced it plus its computed batch.
/// What [`WorkloadNode`] emits downstream (ordered farms re-emit these in
/// submission order).
pub struct Done<W: Workload> {
    /// The stream item.
    pub item: W::Item,
    /// Its computed batch.
    pub batch: W::Batch,
}

/// The generic driver owning the recovery ladder for one [`Workload`].
///
/// Cheap to clone (clones the workload description and the recorder
/// handle); every farm replica holds one.
pub struct WorkloadDriver<W: Workload> {
    work: W,
    rec: Recorder,
    /// Shared causal batch-id spring: every [`process_into`] call draws a
    /// fresh non-zero id so the flight recorder can stitch one batch's
    /// whole ladder journey together across replicas.
    ///
    /// [`process_into`]: WorkloadDriver::process_into
    batch_ids: Arc<AtomicU64>,
    flight: FlightHandle,
    /// Optional delta-scoped copy ledger; when set, every
    /// [`process_into`](WorkloadDriver::process_into) call runs under a
    /// ledger scope so this pipeline's copy traffic is measurable in
    /// isolation from anything else sharing the process.
    copy_ledger: Option<telemetry::copy::CopyLedger>,
}

impl<W: Workload> Clone for WorkloadDriver<W> {
    fn clone(&self) -> Self {
        WorkloadDriver {
            work: self.work.clone(),
            rec: self.rec.clone(),
            batch_ids: Arc::clone(&self.batch_ids),
            flight: self.flight.clone(),
            copy_ledger: self.copy_ledger.clone(),
        }
    }
}

impl<W: Workload> WorkloadDriver<W> {
    /// Wrap a workload with telemetry disabled.
    pub fn new(work: W) -> Self {
        WorkloadDriver {
            work,
            rec: Recorder::default(),
            batch_ids: Arc::new(AtomicU64::new(0)),
            flight: FlightHandle::noop(),
            copy_ledger: None,
        }
    }

    /// Attach a telemetry recorder; the workload's pools/gauges are
    /// registered immediately when it is live, and the driver's flight
    /// emitter binds to `driver:<stage_label>`.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        if rec.is_enabled() {
            self.work.register_telemetry(&rec);
        }
        self.flight = rec.flight_handle(&format!("driver:{}", self.work.stage_label()));
        self.rec = rec;
        self
    }

    /// Attribute this driver's data-path copies to `ledger`. The ledger
    /// travels with driver clones, so every farm replica charges the same
    /// counters — cloning shares, it does not fork.
    pub fn with_copy_ledger(mut self, ledger: telemetry::copy::CopyLedger) -> Self {
        self.copy_ledger = Some(ledger);
        self
    }

    /// Draw the next causal batch id (non-zero; `0` is
    /// [`NO_BATCH`](telemetry::NO_BATCH)).
    fn next_batch_id(&self) -> u64 {
        self.batch_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The wrapped workload description.
    pub fn workload(&self) -> &W {
        &self.work
    }

    /// The recorder fault events are reported to.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Build GPU state for `replica` (delegates to [`Workload::attach`]).
    pub fn attach(&self, replica: usize) -> W::Gpu {
        self.work.attach(replica)
    }

    /// Compute one item with the full ladder, into a fresh
    /// (workload-recycled) batch.
    pub fn process(&self, gpu: &mut W::Gpu, item: &W::Item) -> W::Batch {
        let mut out = self.work.make_batch(item);
        self.process_into(gpu, item, &mut out);
        out
    }

    /// Compute one item on the host path only — for items that are not
    /// device-resident by design. Records no fault events (this is a
    /// policy choice, not a failure).
    pub fn process_host(&self, item: &W::Item) -> W::Batch {
        let mut out = self.work.make_batch(item);
        self.work.cpu_batch(item, &mut out);
        out
    }

    /// The recovery ladder: try the device, retry transients, halve on
    /// OOM, degrade to the host — always writing into `out` so recovery
    /// recycles the same buffer the happy path does.
    pub fn process_into(&self, gpu: &mut W::Gpu, item: &W::Item, out: &mut W::Batch) {
        let batch_id = self.next_batch_id();
        self.process_into_with_id(gpu, item, out, batch_id);
    }

    /// [`process_into`](Self::process_into) with a caller-supplied causal
    /// batch id. The placement path draws ids serially at feed time (so
    /// the id order is the stream order regardless of which device runs
    /// the batch) and hands them through here; the plain path draws one
    /// per call.
    pub fn process_into_with_id(
        &self,
        gpu: &mut W::Gpu,
        item: &W::Item,
        out: &mut W::Batch,
        batch_id: u64,
    ) {
        // Activate the driver's scoped ledger (if any) for the whole
        // ladder walk, so retries and CPU fallbacks are charged too.
        let _ledger_scope = self.copy_ledger.as_ref().map(|l| l.enter());
        // One batch crossing the data path: the copy ledger divides its
        // byte counters by this to report copies-per-batch.
        telemetry::copy::record_batch();
        let w = &self.work;
        let policy = w.policy();
        let stage = w.stage_label();
        let units = w.split_units(item);
        self.flight
            .emit(FlightKind::BatchFormed, batch_id, units as u64, 0);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match w.try_gpu_batch(gpu, item, out) {
                Ok(()) => return,
                Err(fault) => {
                    self.rec
                        .fault_in_batch(stage, fault.kind(), batch_id, fault.to_string());
                    if matches!(fault, WorkloadFault::Oom(_)) && units > 1 {
                        self.rec.fault_in_batch(
                            stage,
                            FaultKind::Retry,
                            batch_id,
                            format!("{}: retrying as halved sub-batches", w.describe(item)),
                        );
                        if self.split_range(gpu, item, batch_id, 0, units, out) {
                            return;
                        }
                        break; // device abandoned for this item
                    } else if attempts <= policy.max_retries {
                        self.rec.fault_in_batch(
                            stage,
                            FaultKind::Retry,
                            batch_id,
                            format!("{}: attempt {}", w.describe(item), attempts + 1),
                        );
                        if !policy.backoff.is_zero() {
                            std::thread::sleep(policy.backoff);
                        }
                    } else {
                        break;
                    }
                }
            }
        }
        self.rec.fault_in_batch(
            stage,
            FaultKind::CpuFallback,
            batch_id,
            format!("{}: computing on the host", w.describe(item)),
        );
        w.cpu_batch(item, out);
    }

    /// Compute units `lo..hi` with per-range retries and recursive OOM
    /// halving. Returns false when the range can neither run nor split —
    /// the caller then degrades the whole item to the CPU.
    fn split_range(
        &self,
        gpu: &mut W::Gpu,
        item: &W::Item,
        batch_id: u64,
        lo: usize,
        hi: usize,
        out: &mut W::Batch,
    ) -> bool {
        let w = &self.work;
        let policy = w.policy();
        let stage = w.stage_label();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match w.try_gpu_split(gpu, item, lo, hi, out) {
                Ok(()) => return true,
                Err(fault) => {
                    self.rec
                        .fault_in_batch(stage, fault.kind(), batch_id, fault.to_string());
                    if matches!(fault, WorkloadFault::Oom(_)) && hi - lo > 1 {
                        let mid = lo + (hi - lo) / 2;
                        self.flight
                            .emit(FlightKind::OomHalve, batch_id, lo as u64, hi as u64);
                        self.rec.fault_in_batch(
                            stage,
                            FaultKind::Retry,
                            batch_id,
                            format!("{}: halving units {lo}..{hi}", w.describe(item)),
                        );
                        return self.split_range(gpu, item, batch_id, lo, mid, out)
                            && self.split_range(gpu, item, batch_id, mid, hi, out);
                    } else if attempts <= policy.max_retries {
                        self.rec.fault_in_batch(
                            stage,
                            FaultKind::Retry,
                            batch_id,
                            format!(
                                "{}: units {lo}..{hi} attempt {}",
                                w.describe(item),
                                attempts + 1
                            ),
                        );
                        if !policy.backoff.is_zero() {
                            std::thread::sleep(policy.backoff);
                        }
                    } else {
                        return false;
                    }
                }
            }
        }
    }

    /// A farm-ready [`Node`](fastflow::Node) computing items on replica
    /// `replica`'s GPU state (built lazily on the worker thread).
    pub fn node(&self, replica: usize) -> WorkloadNode<W> {
        WorkloadNode {
            driver: self.clone(),
            replica,
            gpu: None,
        }
    }

    /// Run `items` through an ordered farm of `workers` replicas, calling
    /// `sink` with each [`Done`] in submission order on the caller thread.
    /// The driver's recorder instruments every stage.
    pub fn run_ordered<I, F>(&self, workers: usize, items: I, sink: F)
    where
        I: IntoIterator<Item = W::Item> + Send + 'static,
        F: FnMut(Done<W>),
    {
        fastflow::Pipeline::builder()
            .recorder(self.rec.clone())
            .from_iter(items)
            .farm_ordered(workers, |replica| self.node(replica))
            .for_each(sink);
    }

    /// The graph/placement path next to the fixed ladder: run `items`
    /// through an ordered farm of `n_devices` replicas — replica *i*
    /// owning device *i* — where `placer` chooses the device for every
    /// batch instead of round-robin.
    ///
    /// Determinism contract:
    ///
    /// * Causal batch ids are drawn **serially in the feeder thread**, so
    ///   id order is stream order regardless of placement.
    /// * [`Placement::place`] runs serially on the farm's emitter thread
    ///   in batch-id order, and every decision is logged as a
    ///   [`FlightKind::Placement`] event keyed by the batch id.
    /// * [`Placement::observe`] runs on the device-owning worker right
    ///   after the batch's ladder walk finishes; one replica per device
    ///   serializes the observations a device produces.
    /// * The collector restores submission order, so `sink` sees outputs
    ///   bit-identically and in the same order under *any* placement.
    ///
    /// `key_of` extracts the stream key residency is tracked by (shard,
    /// lane, …).
    pub fn run_placed<I, K, F>(
        &self,
        placer: Arc<dyn Placement>,
        n_devices: usize,
        key_of: K,
        items: I,
        sink: F,
    ) where
        I: IntoIterator<Item = W::Item> + Send + 'static,
        K: Fn(&W::Item) -> u64 + Send + 'static,
        F: FnMut(Done<W>),
    {
        assert!(n_devices > 0, "placement needs at least one device");
        let ids = Arc::clone(&self.batch_ids);
        let work = self.work.clone();
        let flight = self.flight.clone();
        let route_placer = Arc::clone(&placer);
        let router: fastflow::Router<Keyed<W::Item>> = Box::new(move |_seq, k| {
            let d = route_placer.place(k.batch_id, k.key, work.split_units(&k.item) as u64);
            flight.emit(
                FlightKind::Placement,
                k.batch_id,
                d.device as u64,
                d.predicted_ns,
            );
            d.device
        });
        let driver = self.clone();
        fastflow::Pipeline::builder()
            .recorder(self.rec.clone())
            .source(move |em| {
                for item in items {
                    let batch_id = ids.fetch_add(1, Ordering::Relaxed) + 1;
                    let key = key_of(&item);
                    if !em.send(Keyed {
                        batch_id,
                        key,
                        item,
                    }) {
                        break;
                    }
                }
            })
            .farm_routed(
                n_devices,
                |replica| PlacedNode {
                    driver: driver.clone(),
                    placer: Arc::clone(&placer),
                    replica,
                    gpu: None,
                },
                router,
            )
            .for_each(sink);
    }
}

/// One placement decision: the chosen device and the cost the policy
/// predicts for it (`0` when the policy does not model cost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Device (= farm replica) index.
    pub device: usize,
    /// Predicted modeled cost of the batch on that device, ns.
    pub predicted_ns: u64,
}

/// A device-placement policy driving [`WorkloadDriver::run_placed`].
///
/// `place` is invoked serially on the farm's emitter thread in causal
/// batch-id order; `observe` is invoked from the device-owning worker
/// thread right after a batch finishes (per-device serialized, since one
/// replica owns each device). Implementations use interior mutability;
/// the driver guarantees the deterministic call order, the policy must
/// keep its *decisions* a pure function of that order.
pub trait Placement: Send + Sync + 'static {
    /// Choose a device for batch `batch_id` carrying `units` work units
    /// under stream key `key`.
    fn place(&self, batch_id: u64, key: u64, units: u64) -> Decision;

    /// A batch this policy placed has finished on `device`; measure and
    /// fold its cost into the model.
    fn observe(&self, batch_id: u64, device: usize);
}

/// The static baseline placement: cyclic assignment, blind to cost,
/// residency and queue pressure — exactly what the paper's hand-coded
/// versions do over their 2 GPUs, generalized to N.
#[derive(Debug)]
pub struct RoundRobinPlacement {
    n: usize,
    next: AtomicU64,
}

impl RoundRobinPlacement {
    /// Cyclic placement over `n` devices.
    pub fn new(n: usize) -> Arc<Self> {
        assert!(n > 0, "need at least one device");
        Arc::new(RoundRobinPlacement {
            n,
            next: AtomicU64::new(0),
        })
    }
}

impl Placement for RoundRobinPlacement {
    fn place(&self, _batch_id: u64, _key: u64, _units: u64) -> Decision {
        Decision {
            device: (self.next.fetch_add(1, Ordering::Relaxed) as usize) % self.n,
            predicted_ns: 0,
        }
    }

    fn observe(&self, _batch_id: u64, _device: usize) {}
}

/// One stream item annotated with its pre-drawn causal batch id and
/// stream key, flowing through a placed farm.
pub struct Keyed<T> {
    /// Causal batch id, drawn serially at feed time.
    pub batch_id: u64,
    /// Stream key residency is tracked by.
    pub key: u64,
    /// The item itself.
    pub item: T,
}

/// Worker node of the placement path: like [`WorkloadNode`] but
/// consuming [`Keyed`] items (the pre-drawn batch id rides along) and
/// reporting each finished batch back to the [`Placement`] policy.
pub struct PlacedNode<W: Workload> {
    driver: WorkloadDriver<W>,
    placer: Arc<dyn Placement>,
    replica: usize,
    gpu: Option<W::Gpu>,
}

impl<W: Workload> fastflow::Node for PlacedNode<W> {
    type In = Keyed<W::Item>;
    type Out = Done<W>;

    fn on_init(&mut self) {
        self.gpu = Some(self.driver.attach(self.replica));
    }

    fn svc(&mut self, keyed: Keyed<W::Item>, out: &mut fastflow::Emitter<'_, Done<W>>) {
        let gpu = self
            .gpu
            .get_or_insert_with(|| self.driver.work.attach(self.replica));
        let mut batch = self.driver.work.make_batch(&keyed.item);
        self.driver
            .process_into_with_id(gpu, &keyed.item, &mut batch, keyed.batch_id);
        self.placer.observe(keyed.batch_id, self.replica);
        out.send(Done {
            item: keyed.item,
            batch,
        });
    }
}

/// Worker node owning one replica's GPU state, for SPar/FastFlow farms.
/// Built by [`WorkloadDriver::node`]; the GPU state is constructed in
/// `on_init` on the worker thread (the per-thread `cudaSetDevice`
/// discipline the paper's §IV-A bug hunt is about).
pub struct WorkloadNode<W: Workload> {
    driver: WorkloadDriver<W>,
    replica: usize,
    gpu: Option<W::Gpu>,
}

impl<W: Workload> fastflow::Node for WorkloadNode<W> {
    type In = W::Item;
    type Out = Done<W>;

    fn on_init(&mut self) {
        self.gpu = Some(self.driver.attach(self.replica));
    }

    fn svc(&mut self, item: W::Item, out: &mut fastflow::Emitter<'_, Done<W>>) {
        let gpu = self
            .gpu
            .get_or_insert_with(|| self.driver.work.attach(self.replica));
        let mut batch = self.driver.work.make_batch(&item);
        self.driver.process_into(gpu, &item, &mut batch);
        out.send(Done { item, batch });
    }
}

/// Enable command tracing on every simulated device when the recorder is
/// live, and expose each device's allocation-cache gauges in the report.
/// Call before running a workload, pair with [`drain_gpu_traces`] after.
pub fn arm_gpu_traces(system: &Arc<GpuSystem>, rec: &Recorder) {
    if rec.is_enabled() {
        for d in 0..system.device_count() {
            system.device(d).enable_trace();
            system
                .device(d)
                .attach_flight(rec.flight_handle(&format!("gpu{d}")));
            rec.register_pool(format!("gpu{d}.cache"), &system.device(d).cache_counters());
        }
    }
}

/// Drain device command traces into the recorder as GPU engine spans.
pub fn drain_gpu_traces(system: &Arc<GpuSystem>, rec: &Recorder) {
    if rec.is_enabled() {
        for d in 0..system.device_count() {
            gpusim::feed_recorder(rec, d, &system.device(d).take_trace());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn oom() -> WorkloadFault {
        WorkloadFault::Oom(gpusim::OutOfMemory {
            requested: 1024,
            available: 0,
        })
    }

    fn kfault() -> WorkloadFault {
        WorkloadFault::Kernel(gpusim::DeviceFault {
            device: 0,
            kernel: "toy",
            injected: true,
        })
    }

    /// What the scripted device should do on one call.
    #[derive(Clone, Copy, Debug)]
    enum Step {
        Ok,
        Oom,
        Kernel,
    }

    /// A scripted workload: items are `(base, len)` ranges, batches are
    /// `base + offset` vectors, and the "device" consumes a shared script
    /// of outcomes. The CPU path writes `base + offset + 1000` so tests
    /// can tell which rung produced the output.
    #[derive(Clone)]
    struct Toy {
        script: Arc<Mutex<Vec<Step>>>,
        units: usize,
        policy: FaultPolicy,
    }

    impl Toy {
        fn new(script: Vec<Step>, units: usize) -> Self {
            Toy {
                script: Arc::new(Mutex::new(script)),
                units,
                policy: FaultPolicy::retries(2, std::time::Duration::ZERO),
            }
        }

        fn next_step(&self) -> Step {
            let mut s = self.script.lock().expect("script lock");
            if s.is_empty() {
                Step::Ok
            } else {
                s.remove(0)
            }
        }
    }

    impl Workload for Toy {
        type Item = (u64, usize);
        type Batch = Vec<u64>;
        type Gpu = ();

        fn stage_label(&self) -> &'static str {
            "toy (gpu)"
        }
        fn policy(&self) -> FaultPolicy {
            self.policy
        }
        fn describe(&self, item: &(u64, usize)) -> String {
            format!("range {}+{}", item.0, item.1)
        }
        fn attach(&self, _replica: usize) {}
        fn make_batch(&self, item: &(u64, usize)) -> Vec<u64> {
            vec![0; item.1]
        }
        fn try_gpu_batch(
            &self,
            _gpu: &mut (),
            item: &(u64, usize),
            out: &mut Vec<u64>,
        ) -> Result<(), WorkloadFault> {
            match self.next_step() {
                Step::Ok => {
                    for (i, slot) in out.iter_mut().enumerate().take(item.1) {
                        *slot = item.0 + i as u64;
                    }
                    Ok(())
                }
                Step::Oom => Err(oom()),
                Step::Kernel => Err(kfault()),
            }
        }
        fn split_units(&self, _item: &(u64, usize)) -> usize {
            self.units
        }
        fn try_gpu_split(
            &self,
            _gpu: &mut (),
            item: &(u64, usize),
            lo: usize,
            hi: usize,
            out: &mut Vec<u64>,
        ) -> Result<(), WorkloadFault> {
            match self.next_step() {
                Step::Ok => {
                    let per = item.1 / self.units;
                    for (u, slot) in out.iter_mut().enumerate().take(hi * per).skip(lo * per) {
                        *slot = item.0 + u as u64;
                    }
                    Ok(())
                }
                Step::Oom => Err(oom()),
                Step::Kernel => Err(kfault()),
            }
        }
        fn cpu_batch(&self, item: &(u64, usize), out: &mut Vec<u64>) {
            out.clear();
            out.resize(item.1, 0);
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = item.0 + i as u64 + 1000;
            }
        }
    }

    fn gpu_result(base: u64, len: usize) -> Vec<u64> {
        (0..len as u64).map(|i| base + i).collect()
    }

    fn cpu_result(base: u64, len: usize) -> Vec<u64> {
        (0..len as u64).map(|i| base + i + 1000).collect()
    }

    #[test]
    fn healthy_device_records_no_faults() {
        let rec = Recorder::enabled();
        let d = WorkloadDriver::new(Toy::new(vec![], 1)).with_recorder(rec.clone());
        let out = d.process(&mut (), &(10, 4));
        assert_eq!(out, gpu_result(10, 4));
        assert!(rec.report().faults.is_empty());
    }

    #[test]
    fn transient_kernel_fault_is_retried_then_succeeds() {
        let rec = Recorder::enabled();
        let toy = Toy::new(vec![Step::Kernel, Step::Ok], 1);
        let d = WorkloadDriver::new(toy).with_recorder(rec.clone());
        let out = d.process(&mut (), &(5, 3));
        assert_eq!(out, gpu_result(5, 3), "second attempt must win");
        let report = rec.report();
        assert_eq!(report.retry_count(), 1);
        assert_eq!(report.fallback_count(), 0);
        assert_eq!(report.faults_of(FaultKind::KernelFault).count(), 1);
    }

    #[test]
    fn exhausted_retries_degrade_to_cpu() {
        let rec = Recorder::enabled();
        // Policy allows 2 retries = 3 attempts; fail all of them.
        let toy = Toy::new(vec![Step::Kernel, Step::Kernel, Step::Kernel], 1);
        let d = WorkloadDriver::new(toy).with_recorder(rec.clone());
        let out = d.process(&mut (), &(7, 4));
        assert_eq!(out, cpu_result(7, 4), "fallback output is the CPU's");
        let report = rec.report();
        assert_eq!(report.retry_count(), 2);
        assert_eq!(report.fallback_count(), 1);
    }

    #[test]
    fn oom_on_unsplittable_batch_is_treated_as_transient() {
        let rec = Recorder::enabled();
        let toy = Toy::new(vec![Step::Oom, Step::Ok], 1);
        let d = WorkloadDriver::new(toy).with_recorder(rec.clone());
        let out = d.process(&mut (), &(3, 2));
        assert_eq!(out, gpu_result(3, 2));
        assert_eq!(rec.report().retry_count(), 1);
    }

    #[test]
    fn oom_on_splittable_batch_halves_and_stays_on_device() {
        let rec = Recorder::enabled();
        // Full batch OOMs, both halves succeed.
        let toy = Toy::new(vec![Step::Oom, Step::Ok, Step::Ok], 4);
        let d = WorkloadDriver::new(toy).with_recorder(rec.clone());
        let out = d.process(&mut (), &(100, 8));
        assert_eq!(out, gpu_result(100, 8), "halved path must be identical");
        let report = rec.report();
        assert_eq!(report.fallback_count(), 0, "no CPU fallback");
        assert_eq!(report.faults_of(FaultKind::DeviceOom).count(), 1);
        assert!(report.retry_count() >= 1);
    }

    #[test]
    fn oom_recursion_bottoms_out_to_cpu_when_even_one_unit_oomsteadily() {
        let rec = Recorder::enabled();
        // Full batch OOMs; the first half OOMs down to a single unit that
        // keeps OOMing past the retry budget -> the whole item goes CPU.
        let toy = Toy::new(vec![Step::Oom; 32], 2);
        let d = WorkloadDriver::new(toy).with_recorder(rec.clone());
        let out = d.process(&mut (), &(9, 4));
        assert_eq!(out, cpu_result(9, 4));
        assert_eq!(rec.report().fallback_count(), 1);
    }

    #[test]
    fn process_host_records_no_fault_events() {
        let rec = Recorder::enabled();
        let d = WorkloadDriver::new(Toy::new(vec![], 1)).with_recorder(rec.clone());
        let out = d.process_host(&(20, 3));
        assert_eq!(out, cpu_result(20, 3));
        assert!(rec.report().faults.is_empty(), "host path is not a fault");
    }

    #[test]
    fn run_ordered_preserves_submission_order_across_replicas() {
        let toy = Toy::new(vec![], 1);
        let d = WorkloadDriver::new(toy);
        let mut seen = Vec::new();
        d.run_ordered(3, (0..50u64).map(|b| (b, 2)), |done| {
            assert_eq!(done.batch, gpu_result(done.item.0, 2));
            seen.push(done.item.0);
        });
        assert_eq!(seen, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn run_placed_round_robin_matches_run_ordered() {
        let d = WorkloadDriver::new(Toy::new(vec![], 1));
        let mut seen = Vec::new();
        d.run_placed(
            RoundRobinPlacement::new(3),
            3,
            |item: &(u64, usize)| item.0 % 2,
            (0..50u64).map(|b| (b, 2)),
            |done| {
                assert_eq!(done.batch, gpu_result(done.item.0, 2));
                seen.push(done.item.0);
            },
        );
        assert_eq!(seen, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn run_placed_calls_place_in_batch_id_order_and_observes_on_the_placed_device() {
        struct Pin {
            placed: Mutex<Vec<(u64, u64)>>,
            observed: Mutex<Vec<(u64, usize)>>,
        }
        impl Placement for Pin {
            fn place(&self, batch_id: u64, key: u64, _units: u64) -> Decision {
                self.placed.lock().expect("lock").push((batch_id, key));
                Decision {
                    device: key as usize,
                    predicted_ns: 7,
                }
            }
            fn observe(&self, batch_id: u64, device: usize) {
                self.observed.lock().expect("lock").push((batch_id, device));
            }
        }
        let rec = Recorder::enabled();
        let pin = Arc::new(Pin {
            placed: Mutex::new(Vec::new()),
            observed: Mutex::new(Vec::new()),
        });
        let d = WorkloadDriver::new(Toy::new(vec![], 1)).with_recorder(rec.clone());
        let mut n = 0usize;
        d.run_placed(
            Arc::clone(&pin) as Arc<dyn Placement>,
            2,
            |item: &(u64, usize)| item.0 % 2,
            (0..20u64).map(|b| (b, 2)),
            |done| {
                assert_eq!(done.batch, gpu_result(done.item.0, 2));
                n += 1;
            },
        );
        assert_eq!(n, 20);
        // place() ran serially in strictly increasing batch-id order.
        let placed = pin.placed.lock().expect("lock").clone();
        assert_eq!(placed.len(), 20);
        assert!(placed.windows(2).all(|w| w[0].0 < w[1].0));
        // Every observation came from the device the key pinned.
        let observed = pin.observed.lock().expect("lock").clone();
        assert_eq!(observed.len(), 20);
        let by_id: std::collections::HashMap<u64, u64> = placed.iter().copied().collect();
        for (batch_id, device) in &observed {
            assert_eq!(*device as u64, by_id[batch_id] % 2);
        }
        // Every decision landed in the flight log as a Placement event
        // keyed by the causal batch id, carrying device + predicted cost.
        let events = rec.flight_snapshot();
        let placements: Vec<_> = events
            .iter()
            .filter(|e| e.kind == FlightKind::Placement)
            .collect();
        assert_eq!(placements.len(), 20);
        for e in placements {
            assert_eq!(e.a, by_id[&e.batch_id] % 2);
            assert_eq!(e.b, 7);
        }
    }

    #[test]
    fn run_ordered_survives_a_scripted_fault_mix() {
        let rec = Recorder::enabled();
        let toy = Toy::new(vec![Step::Kernel, Step::Oom, Step::Kernel, Step::Kernel], 1);
        let d = WorkloadDriver::new(toy).with_recorder(rec.clone());
        let mut n = 0usize;
        d.run_ordered(2, (0..10u64).map(|b| (b * 10, 4)), |done| {
            n += 1;
            // Every item is either the GPU or the CPU result, never garbage.
            assert!(
                done.batch == gpu_result(done.item.0, 4)
                    || done.batch == cpu_result(done.item.0, 4)
            );
        });
        assert_eq!(n, 10);
        assert!(rec.report().retry_count() >= 1);
    }
}
