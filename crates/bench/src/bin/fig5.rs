//! Fig. 5 — "Dedup results": throughput (MB/s) on the three datasets for
//! every version, with and without the batch-kernel optimization and with
//! 1×/2× memory spaces.
//!
//! Versions:
//!
//! * `spar` — CPU-only pipeline (testbed queueing model over a functional
//!   profile of the dataset);
//! * `cuda` / `opencl` — single-threaded GPU drivers **measured** on the
//!   simulated devices (including the pageable-memory asymmetry that makes
//!   2× spaces useless under CUDA);
//! * `spar+cuda` / `spar+opencl` — the 5-stage GPU pipeline, modeled with
//!   per-device engine contention; `no-batch` variants use per-block
//!   kernel launches.
//!
//! Usage: `cargo run --release -p bench --bin fig5 [--mb 1] [--batch-kb 256]`
//!
//! Pass `--inject-faults <seed>` to arm deterministic GPU fault injection
//! on the instrumented run: the archive must still decompress bit-exactly
//! via OOM halving / retry / CPU fallback, and the recorded fault events
//! are printed and asserted.
//!
//! Pass `--source file` (with `--shards N`) to feed the dedup pipeline
//! from a segmented file log: the dataset enters as batch-sized segment
//! records sharded **per key** ([`bench::shard_of`] over the segment
//! index), lands in pinned pooled buffers (copy ledger asserted at 0),
//! is consumed with resumable group offsets, and the reassembled stream
//! must round-trip bit-exactly through the GPU dedup pipeline.

use std::path::PathBuf;
use std::sync::Arc;

use bench::{arg, emit_telemetry, figures_dir, live_observability, shard_of, Report, ShapeChecks};
use dedup::datasets;
use dedup::single::{run_single_cuda, run_single_ocl};
use dedup::{BackendCtx, DedupConfig, HostCosts, LzssConfig, OffloadBackend, RabinParams};
use gpusim::{CudaOffload, DeviceProps, GpuSystem};
use ingress::filelog::{read_all, GroupOffsets};
use ingress::{
    spawn_pump, FileLogSink, FileLogSource, IngressStats, PumpConfig, ShardId, Sink, StreamKey,
};
use perfmodel::dedupmodel::{self, GpuApi};
use perfmodel::machine::CpuModel;
use telemetry::Recorder;

fn config(batch_kb: usize) -> DedupConfig {
    DedupConfig {
        batch_size: batch_kb * 1024,
        rabin: RabinParams {
            window: 32,
            mask: (1 << 11) - 1, // ~2 KiB expected chunks at this scale
            magic: 0x78,
            min_chunk: 512,
            max_chunk: 8 * 1024,
        },
        lzss: LzssConfig {
            window: 512,
            min_coded: 3,
        },
    }
}

fn main() {
    let mb: f64 = arg("--mb", 1.0);
    let batch_kb: usize = arg("--batch-kb", 256);
    let workers: usize = arg("--workers", 19);
    let size = (mb * 1e6) as usize;
    let cfg = config(batch_kb);
    println!(
        "Fig. 5 reproduction — Dedup throughput; synthetic datasets of {mb} MB \
         (paper: 185/816/202 MB), batches of {batch_kb} KB (paper: 1 MB), \
         LZSS window {} (paper: 4096). Scale reductions per DESIGN.md §2.",
        cfg.lzss.window
    );

    // `--source file` turns the run into the sharded-ingress demo; the
    // model sweep is not the subject there.
    let source_mode: String = arg("--source", String::new());
    if !source_mode.is_empty() {
        assert_eq!(source_mode, "file", "fig5 supports --source file");
        file_source_demo(size, &cfg);
        return;
    }

    let cpu = CpuModel::default();
    let costs = HostCosts::default();
    let props = DeviceProps::titan_xp();
    let system = GpuSystem::new(2, DeviceProps::titan_xp());

    let mut report = Report::new(
        "Fig. 5 — Dedup throughput (MB/s)",
        vec!["dataset", "version", "batch-opt", "mem", "MB/s"],
    );
    let mut checks = ShapeChecks::new();

    for ds in datasets::all(size, 42) {
        println!("\n[{}] profiling ({} bytes)...", ds.name, ds.len());
        let profile = dedupmodel::profile(&ds.data, &cfg, &props);
        let seq_ref = dedup::run_sequential(&ds.data, &cfg);
        assert_eq!(
            seq_ref.decompress().expect("roundtrip"),
            ds.data,
            "{}: archive must decompress to the input",
            ds.name
        );
        let st = dedup::ArchiveStats::of(&seq_ref);
        println!(
            "[{}] {} unique blocks ({} lzss / {} raw) + {} duplicates;              archive {:.1}% of input ({:.0}% duplicate content)",
            ds.name,
            st.unique_lzss + st.unique_raw,
            st.unique_lzss,
            st.unique_raw,
            st.dup_blocks,
            st.ratio_percent(),
            st.dup_fraction() * 100.0
        );

        // SPar CPU-only.
        let spar = dedupmodel::spar_cpu(&profile, &cpu, &costs, workers);
        report.row(vec![
            ds.name.into(),
            "spar (CPU)".into(),
            "-".into(),
            "-".into(),
            format!("{:.1}", spar.throughput_mbps),
        ]);

        // Single-threaded GPU drivers, measured (verify outputs too).
        let (a_c1, t_c1) = run_single_cuda(&system, &ds.data, &cfg, 1);
        assert_eq!(a_c1, seq_ref, "{}: CUDA 1x output mismatch", ds.name);
        let (_, t_c2) = run_single_cuda(&system, &ds.data, &cfg, 2);
        let (a_o1, t_o1) = run_single_ocl(&system, &ds.data, &cfg, 1);
        assert_eq!(a_o1, seq_ref, "{}: OpenCL 1x output mismatch", ds.name);
        let (_, t_o2) = run_single_ocl(&system, &ds.data, &cfg, 2);
        let thr = |t: simtime::SimDuration| ds.len() as f64 / 1e6 / t.as_secs_f64();
        for (version, mem, t) in [
            ("cuda", "1x", t_c1),
            ("cuda", "2x", t_c2),
            ("opencl", "1x", t_o1),
            ("opencl", "2x", t_o2),
        ] {
            report.row(vec![
                ds.name.into(),
                version.into(),
                "yes".into(),
                mem.into(),
                format!("{:.1}", thr(t)),
            ]);
        }

        // Pipeline + GPU versions, modeled, batched and not.
        let mut best_named: Vec<(String, f64)> = vec![("spar (CPU)".into(), spar.throughput_mbps)];
        let mut nobatch_worst = f64::MAX;
        let mut batch_best_gpu = 0.0f64;
        for (api, api_name) in [(GpuApi::Cuda, "spar+cuda"), (GpuApi::OpenCl, "spar+opencl")] {
            for batched in [true, false] {
                let run = dedupmodel::spar_gpu(&profile, &cpu, &props, &costs, 10, 2, api, batched);
                report.row(vec![
                    ds.name.into(),
                    api_name.into(),
                    if batched { "yes" } else { "no" }.into(),
                    "2 gpus".into(),
                    format!("{:.1}", run.throughput_mbps),
                ]);
                if batched {
                    let (stage, util) = run.bottleneck();
                    println!(
                        "[{}] {} bottleneck: stage '{}' at {:.0}% utilization",
                        ds.name,
                        api_name,
                        stage,
                        util * 100.0
                    );
                    best_named.push((api_name.into(), run.throughput_mbps));
                    batch_best_gpu = batch_best_gpu.max(run.throughput_mbps);
                } else {
                    nobatch_worst = nobatch_worst.min(run.throughput_mbps);
                }
            }
        }

        // Shape checks per dataset.
        let spar_cuda = best_named
            .iter()
            .find(|(n, _)| n == "spar+cuda")
            .expect("spar+cuda present")
            .1;
        let max_all = best_named
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max)
            .max(thr(t_c2))
            .max(thr(t_o2));
        checks.check(
            &format!("[{}] batch optimization is a large win (>5x)", ds.name),
            batch_best_gpu / nobatch_worst > 5.0,
        );
        checks.check(
            &format!("[{}] SPar+CUDA is the best version", ds.name),
            spar_cuda >= max_all * 0.999,
        );
        checks.check(
            &format!("[{}] SPar+CUDA beats SPar CPU-only", ds.name),
            spar_cuda > spar.throughput_mbps,
        );
        let ocl_gain = t_o1.as_secs_f64() / t_o2.as_secs_f64();
        let cuda_gain = t_c1.as_secs_f64() / t_c2.as_secs_f64();
        checks.check(
            &format!("[{}] 2x memory spaces help OpenCL more than CUDA", ds.name),
            ocl_gain > cuda_gain && ocl_gain > 1.01,
        );
    }

    report.emit("fig5");

    // Regenerate Fig. 3's activity graph from a *real* instrumented run of
    // the 5-stage pipeline: stage metrics from the SPar region merged with
    // the two simulated devices' command traces.
    let rec = Recorder::enabled();
    let live = live_observability("fig5", &rec);
    let sampler = rec.sample_windows(std::time::Duration::from_millis(1));
    let watchdog = rec.watchdog(std::time::Duration::from_millis(10), 5);
    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let fault_seed: u64 = arg("--inject-faults", 0u64);
    if fault_seed != 0 {
        println!("\n[fault injection armed on the instrumented run: seed {fault_seed}]");
        tsys.inject_faults(&gpusim::FaultSpec::demo(fault_seed));
    }
    let ctx = BackendCtx::gpu(tsys, 2, true, cfg.lzss);
    let ds = datasets::parsec_like(size.min(400_000), 42);
    let archive = dedup::run_pipeline_rec::<OffloadBackend<CudaOffload>>(
        ctx,
        ds.data.clone(),
        &cfg,
        3,
        rec.clone(),
    );
    assert_eq!(
        archive.decompress().expect("roundtrip"),
        ds.data,
        "instrumented run: archive must decompress to the input"
    );
    sampler.stop();
    // Stalls (if any) are printed by emit_telemetry; a healthy run has none.
    let _ = watchdog.stop();
    let trep = rec.report();
    emit_telemetry("fig5", &trep);
    if fault_seed != 0 {
        assert!(
            trep.retry_count() >= 1,
            "fault injection armed but no retry was recorded"
        );
        assert!(
            trep.fallback_count() >= 1,
            "fault injection armed but no CPU fallback was recorded"
        );
        println!(
            "fault injection: archive bit-identical to the fault-free run \
             ({} retries, {} cpu fallbacks)",
            trep.retry_count(),
            trep.fallback_count()
        );
    }
    println!("{}", rec.health().describe());
    live.finish();

    println!("\nShape checks (the paper's qualitative claims):");
    checks.finish();
}

// ---------------------------------------------------------------------
// Sharded ingress demo (`--source file`)
// ---------------------------------------------------------------------

/// One ingress record: `[u32 segment-idx][segment bytes]` LE.
fn segment_payload(idx: u32, bytes: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + bytes.len());
    p.extend_from_slice(&idx.to_le_bytes());
    p.extend_from_slice(bytes);
    p
}

/// The durable path for fig5: the dataset enters as per-key-sharded
/// segment records, the consumer resumes from committed group offsets,
/// and the reassembled stream feeds the real GPU dedup pipeline.
fn file_source_demo(size: usize, cfg: &DedupConfig) {
    let shards: u32 = arg("--shards", 2u32);
    assert!(shards >= 1, "--shards must be at least 1");
    let rec = Recorder::enabled();
    let live = live_observability("fig5", &rec);
    let root = PathBuf::from(arg(
        "--ingress-dir",
        figures_dir()
            .join("fig5_ingress")
            .to_string_lossy()
            .into_owned(),
    ));
    let in_key = StreamKey::new("fig5-segments").expect("valid key");
    let ds = datasets::parsec_like(size.min(400_000), 42);
    let seg = cfg.batch_size.max(1);
    let n_segments = ds.data.len().div_ceil(seg);

    // Produce once; a restart finds the records durable and consumes.
    {
        let mut sink = FileLogSink::open(&root, &in_key, shards).expect("open input log");
        let durable: u64 = (0..shards)
            .map(|s| sink.next_seq(ShardId(s)).expect("next_seq"))
            .sum();
        if durable == 0 {
            for (i, chunk) in ds.data.chunks(seg).enumerate() {
                sink.send(
                    ShardId(shard_of(i as u64, shards)),
                    &segment_payload(i as u32, chunk),
                )
                .expect("send segment");
            }
            sink.flush().expect("flush input log");
            println!(
                "ingress(file): produced {n_segments} segment records, per-key \
                 sharded over {shards} shards under {}",
                root.display()
            );
        } else {
            println!("ingress(file): found {durable} durable input records (restart)");
        }
    }

    // Resumable consumption: only the uncommitted suffix flows through
    // the pump (a fully-committed restart pumps nothing); landing is
    // pinned + zero-copy either way.
    let offsets = GroupOffsets::open(&root, &in_key, "fig5").expect("open group offsets");
    let mut total_per_shard = vec![0u64; shards as usize];
    for i in 0..n_segments {
        total_per_shard[shard_of(i as u64, shards) as usize] += 1;
    }
    let mut remaining = 0u64;
    for s in 0..shards {
        let committed = offsets.load(ShardId(s)).expect("load offset").unwrap_or(0);
        if committed > 0 {
            println!("resumed shard {s} at seq {committed}");
        }
        remaining += total_per_shard[s as usize].saturating_sub(committed);
    }

    let ledger = telemetry::copy::CopyLedger::new();
    let stats = IngressStats::new(&rec, "fig5-segments");
    let src = FileLogSource::open_resume(&root, &in_key, "fig5", workload::pinned_pool::<u8>())
        .expect("open resumable source");
    let (tx, rx) = fastflow::channel::<(u32, u64, u32, usize)>(32, fastflow::WaitStrategy::Block);
    let pump = spawn_pump(
        Box::new(src),
        tx,
        |m| {
            assert!(
                gpusim::pinned::is_pinned(&m.payload[..]),
                "ingress payload must land in a pinned slab"
            );
            let idx = u32::from_le_bytes(m.payload[..4].try_into().expect("4 bytes"));
            (m.shard.0, m.seq, idx, m.payload.len() - 4)
        },
        PumpConfig {
            ledger: Some(ledger.clone()),
            ..PumpConfig::default()
        },
        &rec,
        Arc::clone(&stats),
    );

    let mut pumped_bytes = 0usize;
    let mut seen_segments = vec![false; n_segments];
    let mut items: Vec<(u32, u64, u32, usize)> = Vec::new();
    while remaining > 0 {
        items.clear();
        if rx.recv_batch(&mut items, 16) == 0 {
            panic!("ingress pump hung up with {remaining} records outstanding");
        }
        for (s, seq, idx, len) in items.drain(..) {
            assert_eq!(
                s,
                shard_of(u64::from(idx), shards),
                "segment {idx} arrived on the wrong shard for its key"
            );
            assert!(!seen_segments[idx as usize], "segment {idx} pumped twice");
            seen_segments[idx as usize] = true;
            pumped_bytes += len;
            offsets.commit(ShardId(s), seq + 1).expect("commit offset");
            stats.counters(s).add_acks(1);
            stats.counters(s).committed_to(seq + 1);
            remaining -= 1;
        }
    }
    drop(rx);
    let pumped = pump.join().expect("pump result");
    let copies = ledger.stats();
    assert_eq!(
        copies.bytes_copied(),
        0,
        "pooled pinned ingress path must not copy: {copies:?}"
    );
    println!(
        "ingress copy ledger: 0 staging bytes/batch across {pumped} pumped \
         records ({pumped_bytes} payload bytes this run)"
    );

    // Reassemble the full stream from the durable log (covers both the
    // fresh run and the fully-committed restart) and push it through the
    // real GPU dedup pipeline: bit-exact round-trip required.
    let mut segments: Vec<Option<Vec<u8>>> = vec![None; n_segments];
    for (shard, records) in &read_all(&root, &in_key).expect("replay input log") {
        for bytes in records {
            let idx = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
            assert_eq!(*shard, shard_of(idx as u64, shards));
            assert!(
                segments[idx].is_none(),
                "segment {idx} duplicated in the log"
            );
            segments[idx] = Some(bytes[4..].to_vec());
        }
    }
    let mut data = Vec::with_capacity(ds.data.len());
    for (i, segment) in segments.into_iter().enumerate() {
        data.extend_from_slice(&segment.unwrap_or_else(|| panic!("segment {i} missing")));
    }
    assert_eq!(data, ds.data, "reassembled stream differs from the dataset");

    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let ctx = BackendCtx::gpu(tsys, 2, true, cfg.lzss);
    let archive =
        dedup::run_pipeline_rec::<OffloadBackend<CudaOffload>>(ctx, data, cfg, 3, rec.clone());
    assert_eq!(
        archive.decompress().expect("roundtrip"),
        ds.data,
        "ingress-fed archive must decompress to the input"
    );
    println!(
        "ingress archive bit-exact ({n_segments} segments, per-key sharded, \
         exactly-once consumption)"
    );
    emit_telemetry("fig5", &rec.report());
    println!("{}", rec.health().describe());
    live.finish();
}
