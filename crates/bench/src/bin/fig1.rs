//! Fig. 1 — "Optimizing Mandelbrot Streaming application": the full
//! optimization ladder, sequential → CPU 20 threads → naive GPU → 2-D grid
//! → batched → copy/compute overlap (2×, 4× memory) → multi-GPU.
//!
//! Every GPU configuration *functionally renders* the image on the
//! simulated devices (bit-checked against the sequential render) and its
//! time is the modeled makespan on the Titan XP timeline; sequential and
//! CPU-pipeline times come from the calibrated testbed model. The paper's
//! measured numbers are printed alongside for comparison.
//!
//! Usage: `cargo run --release -p bench --bin fig1 [--dim 600] [--niter 2000]`
//!
//! Pass `--tiny` for a fast smoke run (reduced scale; shape checks that
//! only hold at figure scale are skipped, telemetry is still emitted).
//! Pass `--inject-faults <seed>` to arm deterministic GPU fault injection
//! (device OOM, transient kernel faults, slow devices) on the instrumented
//! run: it must still produce the bit-exact image via retry + CPU
//! fallback, and the recorded fault events are printed and asserted.
//! Pass `--paper-model 1` to additionally print the model's *paper-scale*
//! prediction (absolute seconds at 2000² × 200 000 iterations, from a
//! 200×200 full-depth sample — takes a couple of minutes).
//!
//! Pass `--auto-tune` to run the online controller instead of the fixed
//! ladder: an [`AutoTuner`] starts from the naive
//! corner (batch 4, 1 memory space) and hill-climbs batch size and
//! memory-space count from modeled throughput/p99 probes, with no
//! knowledge of the paper's hand-picked optimum; the run gates on the
//! tuned configuration reaching ≥ 90% of the hand-picked rung's
//! throughput. The mode then demos the cost-model task-graph scheduler
//! on an N=4 mixed fleet (two full Titan XPs + two derated ones),
//! comparing its deterministic max-device-busy makespan against static
//! round-robin on the bit-checked placed pipeline.
//!
//! Pass `--source file|tcp` to feed the pipeline from a real ingress
//! transport instead of the in-process generator: row-span records enter
//! through `crates/ingress` (segmented file log or TCP), land in pinned
//! pooled buffers (copy ledger asserted at 0 staging bytes), and the
//! rendered spans leave through a durable egress log. With `--source
//! file`, `--kill-after N` exits after the Nth egress record is durable
//! but *before* its input offset commits; rerunning the same command
//! resumes from the committed offsets and must re-emit nothing (the
//! egress watermark skips the already-durable record) while still
//! producing the bit-exact image — the exactly-once demo driven by
//! `ci.sh`.

use std::path::PathBuf;
use std::sync::Arc;

use bench::{
    arg, emit_telemetry, figures_dir, flag, live_observability, secs, Report, ShapeChecks,
};
use gpusim::{CudaOffload, DeviceProps, GpuSystem};
use ingress::filelog::{read_all, GroupOffsets};
use ingress::{
    spawn_pump, FileLogSink, FileLogSource, IngressStats, PumpConfig, ShardId, Sink, StreamKey,
    TcpIngressServer, TcpSink,
};
use mandel::core::FractalParams;
use mandel::cpu::run_sequential;
use mandel::gpu;
use mandel::hybrid::MandelWork;
use perfmodel::machine::{CpuModel, CpuRuntime};
use perfmodel::mandelmodel::{self, characterize};
use simtime::SimDuration;
use taskgraph::{AutoTuner, CostModelScheduler, EpochMeasure, SchedConfig};
use telemetry::{FlightKind, Recorder};
use workload::{Placement, RoundRobinPlacement, WorkloadDriver};

/// A GPU driver entry point from `mandel::gpu`.
type GpuDriver<'a> = &'a dyn Fn(&Arc<GpuSystem>, &FractalParams) -> (mandel::Image, SimDuration);

/// The paper's measured results for each ladder rung (time s, speedup ×).
const PAPER: &[(&str, f64, f64)] = &[
    ("sequential", 400.0, 1.0),
    ("CPU 20 threads", 23.5, 17.0),
    ("GPU naive 1D", 129.0, 3.1),
    ("GPU 2D grid", 250.0, 1.6),
    ("GPU batch 32", 8.9, 45.0),
    ("GPU batch + 2x mem", 5.98, 67.0),
    ("GPU batch + 4x mem", 5.4, 74.0),
    ("2 GPUs, 1x mem each", 4.48, 89.0),
    ("2 GPUs, 2x mem each", 3.02, 132.0),
];

fn main() {
    let tiny = flag("--tiny");
    let dim: usize = arg("--dim", if tiny { 128 } else { 600 });
    let niter: u32 = arg("--niter", if tiny { 300 } else { 2_000 });
    let batch: usize = arg("--batch", 32);
    let params = FractalParams::view(dim, niter);
    println!(
        "Fig. 1 reproduction — Mandelbrot Streaming {dim}x{dim}, niter={niter} \
         (paper scale: 2000x2000, niter=200000; reduced per DESIGN.md §2)"
    );

    // Reference render + workload characterization.
    let (seq_img, _) = run_sequential(&params);

    // `--source` replaces the in-process generator with a real ingress
    // transport and turns the run into the kill-and-resume demo; the
    // optimization ladder is not the subject there, so it is skipped.
    let source_mode: String = arg("--source", String::new());
    if !source_mode.is_empty() {
        ingress_demo(&source_mode, &params, &seq_img, batch);
        return;
    }

    // `--auto-tune` replaces the hand-picked ladder with the online
    // controller + N-device task-graph scheduler.
    if flag("--auto-tune") {
        auto_tune_demo(&params, &seq_img, tiny);
        return;
    }

    let workload = characterize(&params);
    let cpu = CpuModel::default();
    let t_seq = mandelmodel::seq_time(&workload, &cpu);
    let t_cpu20 = mandelmodel::cpu_pipeline_time(&workload, &cpu, CpuRuntime::Spar, 19);

    let system = GpuSystem::new(2, DeviceProps::titan_xp());
    let mut results: Vec<(&str, SimDuration)> =
        vec![("sequential", t_seq), ("CPU 20 threads", t_cpu20)];

    let mut run_gpu = |name: &'static str, f: GpuDriver<'_>| -> SimDuration {
        let (img, t) = f(&system, &params);
        assert_eq!(
            img.digest(),
            seq_img.digest(),
            "{name}: GPU image differs from sequential render"
        );
        results.push((name, t));
        t
    };

    let t_1d = run_gpu("GPU naive 1D", &gpu::cuda_per_line);
    let t_2d = run_gpu("GPU 2D grid", &gpu::cuda_2d);
    let t_batch = run_gpu("GPU batch 32", &|s, p| gpu::cuda_batch(s, p, batch));
    let t_2x = run_gpu("GPU batch + 2x mem", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 2, 1)
    });
    let t_4x = run_gpu("GPU batch + 4x mem", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 4, 1)
    });
    let t_2gpu = run_gpu("2 GPUs, 1x mem each", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 2, 2)
    });
    let t_2gpu2x = run_gpu("2 GPUs, 2x mem each", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 4, 2)
    });

    // OpenCL spot checks (the paper reports CUDA ≈ OpenCL on every rung).
    let (ocl_img, t_ocl_batch) = gpu::ocl_batch(&system, &params, batch);
    assert_eq!(ocl_img.digest(), seq_img.digest());
    let (_, t_ocl_over) = gpu::ocl_overlap(&system, &params, batch, 4, 2);

    let mut report = Report::new(
        format!("Fig. 1 — Mandelbrot optimization ladder ({dim}x{dim}, niter={niter})"),
        vec![
            "configuration",
            "modeled time",
            "speedup",
            "paper time",
            "paper speedup",
        ],
    );
    for (i, (name, t)) in results.iter().enumerate() {
        let speedup = t_seq.as_secs_f64() / t.as_secs_f64();
        let (pname, pt, ps) = PAPER[i];
        assert_eq!(*name, pname);
        report.row(vec![
            name.to_string(),
            secs(*t),
            format!("{speedup:.1}x"),
            format!("{pt}s"),
            format!("{ps}x"),
        ]);
    }
    report.row(vec![
        "OpenCL batch 32 (vs CUDA)".into(),
        secs(t_ocl_batch),
        format!("{:.1}x", t_seq.as_secs_f64() / t_ocl_batch.as_secs_f64()),
        "9.1s".into(),
        "44x".into(),
    ]);
    report.emit("fig1");

    // A real instrumented run of the fastest rung's pipeline shape — SPar
    // whose replicated stage drives both GPUs through the unified Offload
    // surface — recorded stage-by-stage and merged with the device traces.
    let rec = Recorder::enabled();
    let live = live_observability("fig1", &rec);
    let sampler = rec.sample_windows(std::time::Duration::from_millis(1));
    let watchdog = rec.watchdog(std::time::Duration::from_millis(10), 5);
    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let fault_seed: u64 = arg("--inject-faults", 0u64);
    // The armed run is serial on one device so the injected fault budget
    // lands on consecutive attempts of the same batch: the recovery
    // ladder deterministically walks retry → OOM halving → retry
    // exhaustion → CPU fallback, whatever the seed (same idiom as fig4).
    let (tworkers, tgpus) = if fault_seed != 0 {
        println!("\n[fault injection armed on the instrumented run: seed {fault_seed}]");
        tsys.inject_faults(&gpusim::FaultSpec::demo(fault_seed));
        (1, 1)
    } else {
        (4, 2)
    };
    let timg = mandel::hybrid::run_spar_gpu_rec::<CudaOffload>(
        &tsys,
        &params,
        tworkers,
        batch,
        tgpus,
        rec.clone(),
    );
    assert_eq!(
        timg.digest(),
        seq_img.digest(),
        "instrumented run: image differs from sequential render"
    );
    sampler.stop();
    // Stalls (if any) are printed by emit_telemetry; a healthy run has none.
    let _ = watchdog.stop();
    let trep = rec.report();
    emit_telemetry("fig1", &trep);
    if fault_seed != 0 {
        assert!(
            trep.retry_count() >= 1,
            "fault injection armed but no retry was recorded"
        );
        assert!(
            trep.fallback_count() >= 1,
            "fault injection armed but no CPU fallback was recorded"
        );
        println!(
            "fault injection: image bit-identical to the fault-free render \
             ({} retries, {} cpu fallbacks)",
            trep.retry_count(),
            trep.fallback_count()
        );
    }
    println!("{}", rec.health().describe());
    live.finish();

    if tiny {
        println!("\n(tiny smoke run: figure-scale shape checks skipped)");
        return;
    }

    println!("\nShape checks (the paper's qualitative claims):");
    let mut checks = ShapeChecks::new();
    checks.check("2D grid is slower than naive 1D", t_2d > t_1d);
    checks.check("naive 1D is far below the CPU version", t_1d > t_cpu20);
    checks.check("batching beats the CPU version", t_batch < t_cpu20);
    checks.check(
        "batching gives an order of magnitude over naive",
        t_1d.as_secs_f64() / t_batch.as_secs_f64() > 8.0,
    );
    checks.check("2x memory overlap improves on plain batch", t_2x < t_batch);
    checks.check(
        "4x memory at least matches 2x (the paper's +10% appears at paper scale)",
        t_4x.as_secs_f64() <= t_2x.as_secs_f64() * 1.03,
    );
    checks.check("two GPUs improve on one", t_2gpu < t_4x);
    checks.check(
        "2 GPUs with 2x memory each is the fastest rung",
        t_2gpu2x <= t_2gpu,
    );
    let ratio = t_ocl_batch.as_secs_f64() / t_batch.as_secs_f64();
    checks.check(
        "OpenCL and CUDA are within 15%",
        (0.85..1.15).contains(&ratio),
    );
    let cuda_ocl_2gpu = t_ocl_over.as_secs_f64() / t_2gpu2x.as_secs_f64();
    checks.check(
        "OpenCL multi-GPU matches CUDA multi-GPU",
        (0.85..1.15).contains(&cuda_ocl_2gpu),
    );
    if arg("--paper-model", 0u32) == 1 {
        let sample: usize = arg("--paper-sample", 200);
        println!("\ncharacterizing at paper depth (sample {sample}x{sample} @ 200k iters)...");
        let rungs = perfmodel::paper::predict_fig1(sample, &cpu, &DeviceProps::titan_xp());
        let mut pr = Report::new(
            "Fig. 1 at PAPER scale — model prediction vs measurement",
            vec!["configuration", "predicted", "paper measured"],
        );
        for ((name, t), (pname, pt, _)) in rungs.iter().zip(PAPER) {
            assert_eq!(name, pname);
            pr.row(vec![name.to_string(), secs(*t), format!("{pt}s")]);
        }
        pr.emit("fig1_paper_scale");
    }

    checks.finish();
}

// ---------------------------------------------------------------------
// Auto-tune demo (`--auto-tune`)
// ---------------------------------------------------------------------

/// The paper's testbed generalized to N=4: two full Titan XPs plus two
/// derated to half clock and half PCIe bandwidth — the heterogeneous
/// fleet the cost-model scheduler has to discover.
fn mixed_fleet() -> Arc<GpuSystem> {
    GpuSystem::new_mixed(vec![
        DeviceProps::titan_xp(),
        DeviceProps::titan_xp(),
        DeviceProps::titan_xp().derated("titan-xp-half", 0.5),
        DeviceProps::titan_xp().derated("titan-xp-half", 0.5),
    ])
}

/// The closed-loop mode: rediscover the fig1 operating point online,
/// then place a long batch stream over an N=4 mixed fleet with the
/// cost-model task-graph scheduler and compare it against round-robin.
fn auto_tune_demo(params: &FractalParams, seq_img: &mandel::Image, tiny: bool) {
    let dim = params.dim;
    let pixels = (dim * dim) as f64;
    let rec = Recorder::enabled();
    let live = live_observability("fig1", &rec);

    // The reference the controller never sees: the paper's hand-picked
    // fastest rung (batch 32, 4 memory spaces, 2 GPUs).
    let sys = GpuSystem::new(2, DeviceProps::titan_xp());
    let (hand_img, t_hand) = gpu::cuda_overlap(&sys, params, 32, 4, 2);
    assert_eq!(hand_img.digest(), seq_img.digest());
    let hand_tput = pixels / t_hand.as_secs_f64();

    // Climb from the naive corner on modeled throughput/p99 probes.
    // Every probe also bit-checks its render, so the controller can
    // never tune its way into a wrong image.
    let tuner_counters = telemetry::SchedCounters::new();
    rec.register_sched("fig1.autotune", &tuner_counters);
    let outcome = AutoTuner::new()
        .with_counters(Arc::clone(&tuner_counters))
        .run(|b, s| {
            let (img, t) = gpu::cuda_overlap(&sys, params, b, s, 2);
            assert_eq!(
                img.digest(),
                seq_img.digest(),
                "auto-tune probe batch={b} spaces={s}: wrong image"
            );
            EpochMeasure {
                throughput: pixels / t.as_secs_f64(),
                p99_ns: t.as_nanos() / dim.div_ceil(b) as u64,
            }
        });

    let mut tr = Report::new(
        format!("fig1 --auto-tune — controller trajectory ({dim}x{dim})"),
        vec![
            "epoch",
            "batch",
            "mem spaces",
            "modeled Mpx/s",
            "per-batch p99",
            "accepted",
        ],
    );
    for step in &outcome.trajectory {
        tr.row(vec![
            step.epoch.to_string(),
            step.batch_size.to_string(),
            step.mem_spaces.to_string(),
            format!("{:.1}", step.measure.throughput / 1e6),
            format!("{}", SimDuration::from_nanos(step.measure.p99_ns)),
            if step.accepted { "->" } else { "" }.into(),
        ]);
    }
    tr.emit("fig1_autotune");

    let ratio = outcome.measure.throughput / hand_tput;
    println!(
        "auto-tune converged: batch={} mem_spaces={} after {} probes ({} epochs)",
        outcome.batch_size,
        outcome.mem_spaces,
        outcome.trajectory.len(),
        outcome.epochs
    );
    println!(
        "auto-tune throughput ratio vs hand-picked (batch 32, 4x mem, 2 GPUs): \
         {ratio:.3} (gate >= 0.90)"
    );
    assert!(
        ratio >= 0.90,
        "auto-tuner converged to batch={} spaces={} at only {ratio:.3} of the \
         hand-picked throughput",
        outcome.batch_size,
        outcome.mem_spaces
    );

    placed_fleet_demo(params, seq_img, &rec, tiny);

    emit_telemetry("fig1", &rec.report());
    println!("{}", rec.health().describe());
    live.finish();
}

/// Cost-model placement vs static round-robin on the N=4 mixed fleet,
/// compared on the deterministic max-device-busy makespan proxy of the
/// bit-checked placed pipeline.
fn placed_fleet_demo(params: &FractalParams, seq_img: &mandel::Image, rec: &Recorder, tiny: bool) {
    let dim = params.dim;
    // Short row spans so the stream is long enough for the scheduler to
    // learn the fleet (75 batches at figure scale).
    let pbatch: usize = 8;
    let n_dev = 4usize;
    let n_batches = dim.div_ceil(pbatch);

    let run = |placer: Arc<dyn Placement>, sys: &Arc<GpuSystem>| -> u64 {
        let work = MandelWork::<CudaOffload>::new(sys, params, pbatch, n_dev, n_dev);
        let driver = WorkloadDriver::new(work).with_recorder(rec.clone());
        let mut img = mandel::Image::new(dim);
        driver.run_placed(
            placer,
            n_dev,
            |b| *b as u64,
            0..n_batches,
            |done| {
                let y0 = done.item * pbatch;
                let rows = pbatch.min(dim - y0);
                img.data[y0 * dim..y0 * dim + rows * dim]
                    .copy_from_slice(&done.batch[..rows * dim]);
            },
        );
        assert_eq!(
            img.digest(),
            seq_img.digest(),
            "placed pipeline image differs from sequential render"
        );
        (0..n_dev)
            .map(|d| sys.device(d).stats().total_busy().as_nanos())
            .max()
            .unwrap_or(0)
    };

    let sys_cm = mixed_fleet();
    let sched =
        CostModelScheduler::new(&sys_cm, SchedConfig::for_devices(n_dev), rec, "fig1.graph");
    let cm_busy = run(Arc::clone(&sched) as Arc<dyn Placement>, &sys_cm);
    let snap = sched.counters().snapshot();

    let sys_rr = mixed_fleet();
    let rr_busy = run(RoundRobinPlacement::new(n_dev), &sys_rr);

    println!(
        "placement on N={n_dev} mixed fleet ({n_batches} batches): cost-model \
         max-device-busy {} vs round-robin {} ({} decisions, {:.0} ns/decision \
         overhead)",
        SimDuration::from_nanos(cm_busy),
        SimDuration::from_nanos(rr_busy),
        snap.decisions,
        snap.overhead_per_decision_ns()
    );
    assert_eq!(snap.decisions, n_batches as u64, "one decision per batch");
    if tiny {
        println!("(tiny smoke run: placement makespan shape check skipped)");
        return;
    }
    assert!(
        cm_busy < rr_busy,
        "cost-model placement must beat round-robin on the mixed fleet: \
         {cm_busy} vs {rr_busy}"
    );
}

// ---------------------------------------------------------------------
// Ingress demo (`--source file|tcp`)
// ---------------------------------------------------------------------

/// One ingress record: the row span `[y0, y0 + rows)` as `[u32 y0][u32 rows]` LE.
fn span_payload(y0: u32, rows: u32) -> [u8; 8] {
    let mut p = [0u8; 8];
    p[..4].copy_from_slice(&y0.to_le_bytes());
    p[4..].copy_from_slice(&rows.to_le_bytes());
    p
}

fn decode_span(payload: &[u8]) -> (u32, u32) {
    assert_eq!(payload.len(), 8, "fig1 row-span payload is 8 bytes");
    (
        u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")),
        u32::from_le_bytes(payload[4..].try_into().expect("4 bytes")),
    )
}

/// Pipeline item decoded from an ingress [`ingress::Message`]:
/// `(shard, seq, y0, rows)`.
type SpanItem = (u32, u64, u32, u32);

fn ingress_demo(mode: &str, params: &FractalParams, seq_img: &mandel::Image, batch: usize) {
    let shards: u32 = arg("--shards", 2u32);
    assert!(shards >= 1, "--shards must be at least 1");
    let rec = Recorder::enabled();
    let live = live_observability("fig1", &rec);
    match mode {
        "file" => file_source_demo(params, seq_img, batch, shards, &rec),
        "tcp" => tcp_source_demo(params, seq_img, batch, shards, &rec),
        other => panic!("--source {other}: expected 'file' or 'tcp'"),
    }
    emit_telemetry("fig1", &rec.report());
    println!("{}", rec.health().describe());
    live.finish();
}

/// The durable path: produce the input stream once into a segmented file
/// log, consume it as group `fig1` with resumable offsets, render each
/// span through the full `WorkloadDriver` ladder, and emit the pixels to
/// a second log with fsync-on-ack per record. `--kill-after N` exits in
/// the window between "egress record durable" and "input offset
/// committed" — the crash the exactly-once rule exists for.
fn file_source_demo(
    params: &FractalParams,
    seq_img: &mandel::Image,
    batch: usize,
    shards: u32,
    rec: &Recorder,
) {
    let dim = params.dim;
    let n_batches = dim.div_ceil(batch);
    let kill_after: u64 = arg("--kill-after", 0u64);
    let root = PathBuf::from(arg(
        "--ingress-dir",
        figures_dir()
            .join("fig1_ingress")
            .to_string_lossy()
            .into_owned(),
    ));
    let in_key = StreamKey::new("fig1-rows").expect("valid key");
    let out_key = StreamKey::new("fig1-pixels").expect("valid key");

    // Produce the input stream exactly once: a restarted run finds the
    // records already durable and goes straight to consuming.
    {
        let mut sink = FileLogSink::open(&root, &in_key, shards).expect("open input log");
        let durable: u64 = (0..shards)
            .map(|s| sink.next_seq(ShardId(s)).expect("next_seq"))
            .sum();
        if durable == 0 {
            for b in 0..n_batches {
                let y0 = (b * batch) as u32;
                let rows = batch.min(dim - b * batch) as u32;
                sink.send(ShardId(b as u32 % shards), &span_payload(y0, rows))
                    .expect("send row span");
            }
            sink.flush().expect("flush input log");
            println!(
                "ingress(file): produced {n_batches} row-span records across \
                 {shards} shards under {}",
                root.display()
            );
        } else {
            println!("ingress(file): found {durable} durable input records (restart)");
        }
    }

    // Where does each shard restart? The consumer group's committed
    // offsets decide; the source below loads the same store.
    let offsets = GroupOffsets::open(&root, &in_key, "fig1").expect("open group offsets");
    let mut total_per_shard = vec![0u64; shards as usize];
    for b in 0..n_batches {
        total_per_shard[b % shards as usize] += 1;
    }
    let mut remaining = 0u64;
    let mut resumed = 0u32;
    for s in 0..shards {
        let committed = offsets.load(ShardId(s)).expect("load offset").unwrap_or(0);
        if committed > 0 {
            println!("resumed shard {s} at seq {committed}");
            resumed += 1;
        }
        remaining += total_per_shard[s as usize].saturating_sub(committed);
    }

    // Pump: file log → pinned pooled buffers → batched fastflow channel.
    // The delta-scoped ledger covers the pump thread, so "external bytes
    // land pinned with no extra copy" is asserted, not assumed.
    let ledger = telemetry::copy::CopyLedger::new();
    let stats = IngressStats::new(rec, "fig1-rows");
    let src = FileLogSource::open_resume(&root, &in_key, "fig1", workload::pinned_pool::<u8>())
        .expect("open resumable source");
    let (tx, rx) = fastflow::channel::<SpanItem>(32, fastflow::WaitStrategy::Block);
    let pump = spawn_pump(
        Box::new(src),
        tx,
        |m| {
            assert!(
                gpusim::pinned::is_pinned(&m.payload[..]),
                "ingress payload must land in a pinned slab"
            );
            let (y0, rows) = decode_span(&m.payload);
            (m.shard.0, m.seq, y0, rows)
        },
        PumpConfig {
            ledger: Some(ledger.clone()),
            ..PumpConfig::default()
        },
        rec,
        Arc::clone(&stats),
    );

    // Consumer: full recovery-ladder driver, one egress record per input
    // record, committed only after the egress write is fsynced.
    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let work = MandelWork::<CudaOffload>::new(&tsys, params, batch, 1, 1);
    let driver = WorkloadDriver::new(work).with_recorder(rec.clone());
    let mut gpu = driver.attach(0);
    let mut egress = FileLogSink::open(&root, &out_key, shards)
        .expect("open egress log")
        .with_max_in_flight(1); // fsync-on-ack per record
    let ack_flight = rec.flight_handle("ingress:fig1-pixels");
    let stage_handles: Vec<telemetry::StageHandle> = (0..shards)
        .map(|s| rec.stage(format!("ingress.s{s}"), s as usize))
        .collect();

    let mut emitted = 0u64;
    let mut skipped = 0u64;
    let mut items: Vec<SpanItem> = Vec::new();
    while remaining > 0 {
        items.clear();
        if rx.recv_batch(&mut items, 16) == 0 {
            panic!("ingress pump hung up with {remaining} records outstanding");
        }
        let depth = items.len();
        for (s, seq, y0, rows) in items.drain(..) {
            let h = &stage_handles[s as usize];
            h.item_in(depth);
            let next_out = egress.next_seq(ShardId(s)).expect("egress next_seq");
            if seq < next_out {
                // Emitted by a previous incarnation that died before
                // committing: skip the re-emit, commit the offset.
                skipped += 1;
            } else {
                assert_eq!(
                    seq, next_out,
                    "shard {s}: input seq {seq} vs egress watermark {next_out}"
                );
                let b = y0 as usize / batch;
                let pixels = h.service(|| driver.process(&mut gpu, &b));
                let mut payload = Vec::with_capacity(8 + rows as usize * dim);
                payload.extend_from_slice(&span_payload(y0, rows));
                payload.extend_from_slice(&pixels[..rows as usize * dim]);
                let receipt = egress.send(ShardId(s), &payload).expect("egress send");
                assert!(receipt.is_acked(), "max_in_flight(1) acks every send");
                stats.counters(s).add_acks(1);
                ack_flight.emit(
                    FlightKind::IngressAck,
                    u64::from(s),
                    1,
                    payload.len() as u64,
                );
                emitted += 1;
                if kill_after > 0 && emitted == kill_after {
                    println!(
                        "killed after {kill_after} batches \
                         (egress record durable, input offset uncommitted)"
                    );
                    std::process::exit(0);
                }
            }
            offsets.commit(ShardId(s), seq + 1).expect("commit offset");
            stats.counters(s).committed_to(seq + 1);
            h.items_out(1);
            remaining -= 1;
        }
    }
    drop(rx);
    let pumped = pump.join().expect("pump result");

    let copies = ledger.stats();
    assert_eq!(
        copies.bytes_copied(),
        0,
        "pooled pinned ingress path must not copy: {copies:?}"
    );
    println!(
        "ingress copy ledger: 0 staging bytes/batch across {pumped} pumped records \
         ({} staging ops, {} bounce ops)",
        copies.staging_ops, copies.bounce_ops
    );

    // Replay the egress log from disk and rebuild the image: every span
    // exactly once, bit-identical to the sequential render.
    let out = read_all(&root, &out_key).expect("replay egress log");
    let mut img = mandel::Image::new(dim);
    let mut seen = vec![false; n_batches];
    for records in out.values() {
        for bytes in records {
            let (y0, rows) = decode_span(&bytes[..8]);
            let (y0, rows) = (y0 as usize, rows as usize);
            assert_eq!(bytes.len(), 8 + rows * dim, "egress record framing");
            let bi = y0 / batch;
            assert!(!seen[bi], "row span at y0={y0} emitted twice");
            seen[bi] = true;
            img.data[y0 * dim..y0 * dim + rows * dim].copy_from_slice(&bytes[8..]);
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "egress log is missing row spans: {seen:?}"
    );
    assert_eq!(
        img.digest(),
        seq_img.digest(),
        "ingress-assembled image differs from the sequential render"
    );
    if resumed > 0 {
        assert!(
            skipped >= 1,
            "a resumed run must skip the emitted-but-uncommitted record"
        );
    }
    println!(
        "ingress image bit-identical ({emitted} spans rendered this run, \
         {skipped} skipped re-emits — exactly-once egress)"
    );
}

/// The live path: an in-process TCP ingress server fed by a producer
/// thread over a real socket, consumed in real time. No durable egress —
/// the point here is the wire transport, windowed acks and the pinned
/// zero-copy landing.
fn tcp_source_demo(
    params: &FractalParams,
    seq_img: &mandel::Image,
    batch: usize,
    shards: u32,
    rec: &Recorder,
) {
    let dim = params.dim;
    let n_batches = dim.div_ceil(batch);
    let key = StreamKey::new("fig1-rows").expect("valid key");
    let server = TcpIngressServer::bind("127.0.0.1:0", &key, workload::pinned_pool::<u8>(), 64)
        .expect("bind ingress server");
    let addr = server.addr();
    println!("ingress(tcp): server on {addr}, {n_batches} records across {shards} shards");

    let producer_key = key.clone();
    let producer = std::thread::Builder::new()
        .name("fig1-tcp-producer".into())
        .spawn(move || {
            let mut sink = TcpSink::connect(addr, &producer_key, shards)
                .expect("connect producer")
                .with_max_in_flight(8);
            for b in 0..n_batches {
                let y0 = (b * batch) as u32;
                let rows = batch.min(dim - b * batch) as u32;
                sink.send(ShardId(b as u32 % shards), &span_payload(y0, rows))
                    .expect("tcp send");
            }
            sink.flush().expect("tcp flush (all acks in)");
        })
        .expect("spawn producer");

    let ledger = telemetry::copy::CopyLedger::new();
    let stats = IngressStats::new(rec, "fig1-rows");
    let (tx, rx) = fastflow::channel::<SpanItem>(32, fastflow::WaitStrategy::Block);
    let pump = spawn_pump(
        Box::new(server.source()),
        tx,
        |m| {
            assert!(
                gpusim::pinned::is_pinned(&m.payload[..]),
                "ingress payload must land in a pinned slab"
            );
            let (y0, rows) = decode_span(&m.payload);
            (m.shard.0, m.seq, y0, rows)
        },
        PumpConfig {
            ledger: Some(ledger.clone()),
            ..PumpConfig::default()
        },
        rec,
        Arc::clone(&stats),
    );

    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let work = MandelWork::<CudaOffload>::new(&tsys, params, batch, 1, 1);
    let driver = WorkloadDriver::new(work).with_recorder(rec.clone());
    let mut gpu = driver.attach(0);
    let stage_handles: Vec<telemetry::StageHandle> = (0..shards)
        .map(|s| rec.stage(format!("ingress.s{s}"), s as usize))
        .collect();

    let mut img = mandel::Image::new(dim);
    let mut got = 0usize;
    let mut items: Vec<SpanItem> = Vec::new();
    while got < n_batches {
        items.clear();
        if rx.recv_batch(&mut items, 16) == 0 {
            panic!(
                "tcp pump hung up with {} records outstanding",
                n_batches - got
            );
        }
        let depth = items.len();
        for (s, seq, y0, rows) in items.drain(..) {
            let h = &stage_handles[s as usize];
            h.item_in(depth);
            let (y0, rows) = (y0 as usize, rows as usize);
            let b = y0 / batch;
            let pixels = h.service(|| driver.process(&mut gpu, &b));
            img.data[y0 * dim..y0 * dim + rows * dim].copy_from_slice(&pixels[..rows * dim]);
            stats.counters(s).add_acks(1);
            stats.counters(s).committed_to(seq + 1);
            h.items_out(1);
            got += 1;
        }
    }
    producer.join().expect("producer thread");
    let pumped = pump.join().expect("pump result");
    server.stop();
    assert_eq!(pumped, n_batches as u64, "every record pumped exactly once");

    let copies = ledger.stats();
    assert_eq!(
        copies.bytes_copied(),
        0,
        "pooled pinned ingress path must not copy: {copies:?}"
    );
    println!("ingress copy ledger: 0 staging bytes/batch across {pumped} pumped records");
    assert_eq!(
        img.digest(),
        seq_img.digest(),
        "tcp-ingress image differs from the sequential render"
    );
    println!("ingress image bit-identical (tcp source, {n_batches} spans rendered)");
}
