//! Fig. 1 — "Optimizing Mandelbrot Streaming application": the full
//! optimization ladder, sequential → CPU 20 threads → naive GPU → 2-D grid
//! → batched → copy/compute overlap (2×, 4× memory) → multi-GPU.
//!
//! Every GPU configuration *functionally renders* the image on the
//! simulated devices (bit-checked against the sequential render) and its
//! time is the modeled makespan on the Titan XP timeline; sequential and
//! CPU-pipeline times come from the calibrated testbed model. The paper's
//! measured numbers are printed alongside for comparison.
//!
//! Usage: `cargo run --release -p bench --bin fig1 [--dim 600] [--niter 2000]`
//!
//! Pass `--tiny` for a fast smoke run (reduced scale; shape checks that
//! only hold at figure scale are skipped, telemetry is still emitted).
//! Pass `--inject-faults <seed>` to arm deterministic GPU fault injection
//! (device OOM, transient kernel faults, slow devices) on the instrumented
//! run: it must still produce the bit-exact image via retry + CPU
//! fallback, and the recorded fault events are printed and asserted.
//! Pass `--paper-model 1` to additionally print the model's *paper-scale*
//! prediction (absolute seconds at 2000² × 200 000 iterations, from a
//! 200×200 full-depth sample — takes a couple of minutes).

use std::sync::Arc;

use bench::{arg, emit_telemetry, flag, live_observability, secs, Report, ShapeChecks};
use gpusim::{CudaOffload, DeviceProps, GpuSystem};
use mandel::core::FractalParams;
use mandel::cpu::run_sequential;
use mandel::gpu;
use perfmodel::machine::{CpuModel, CpuRuntime};
use perfmodel::mandelmodel::{self, characterize};
use simtime::SimDuration;
use telemetry::Recorder;

/// A GPU driver entry point from `mandel::gpu`.
type GpuDriver<'a> = &'a dyn Fn(&Arc<GpuSystem>, &FractalParams) -> (mandel::Image, SimDuration);

/// The paper's measured results for each ladder rung (time s, speedup ×).
const PAPER: &[(&str, f64, f64)] = &[
    ("sequential", 400.0, 1.0),
    ("CPU 20 threads", 23.5, 17.0),
    ("GPU naive 1D", 129.0, 3.1),
    ("GPU 2D grid", 250.0, 1.6),
    ("GPU batch 32", 8.9, 45.0),
    ("GPU batch + 2x mem", 5.98, 67.0),
    ("GPU batch + 4x mem", 5.4, 74.0),
    ("2 GPUs, 1x mem each", 4.48, 89.0),
    ("2 GPUs, 2x mem each", 3.02, 132.0),
];

fn main() {
    let tiny = flag("--tiny");
    let dim: usize = arg("--dim", if tiny { 128 } else { 600 });
    let niter: u32 = arg("--niter", if tiny { 300 } else { 2_000 });
    let batch: usize = arg("--batch", 32);
    let params = FractalParams::view(dim, niter);
    println!(
        "Fig. 1 reproduction — Mandelbrot Streaming {dim}x{dim}, niter={niter} \
         (paper scale: 2000x2000, niter=200000; reduced per DESIGN.md §2)"
    );

    // Reference render + workload characterization.
    let (seq_img, _) = run_sequential(&params);
    let workload = characterize(&params);
    let cpu = CpuModel::default();
    let t_seq = mandelmodel::seq_time(&workload, &cpu);
    let t_cpu20 = mandelmodel::cpu_pipeline_time(&workload, &cpu, CpuRuntime::Spar, 19);

    let system = GpuSystem::new(2, DeviceProps::titan_xp());
    let mut results: Vec<(&str, SimDuration)> =
        vec![("sequential", t_seq), ("CPU 20 threads", t_cpu20)];

    let mut run_gpu = |name: &'static str, f: GpuDriver<'_>| -> SimDuration {
        let (img, t) = f(&system, &params);
        assert_eq!(
            img.digest(),
            seq_img.digest(),
            "{name}: GPU image differs from sequential render"
        );
        results.push((name, t));
        t
    };

    let t_1d = run_gpu("GPU naive 1D", &gpu::cuda_per_line);
    let t_2d = run_gpu("GPU 2D grid", &gpu::cuda_2d);
    let t_batch = run_gpu("GPU batch 32", &|s, p| gpu::cuda_batch(s, p, batch));
    let t_2x = run_gpu("GPU batch + 2x mem", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 2, 1)
    });
    let t_4x = run_gpu("GPU batch + 4x mem", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 4, 1)
    });
    let t_2gpu = run_gpu("2 GPUs, 1x mem each", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 2, 2)
    });
    let t_2gpu2x = run_gpu("2 GPUs, 2x mem each", &|s, p| {
        gpu::cuda_overlap(s, p, batch, 4, 2)
    });

    // OpenCL spot checks (the paper reports CUDA ≈ OpenCL on every rung).
    let (ocl_img, t_ocl_batch) = gpu::ocl_batch(&system, &params, batch);
    assert_eq!(ocl_img.digest(), seq_img.digest());
    let (_, t_ocl_over) = gpu::ocl_overlap(&system, &params, batch, 4, 2);

    let mut report = Report::new(
        format!("Fig. 1 — Mandelbrot optimization ladder ({dim}x{dim}, niter={niter})"),
        vec![
            "configuration",
            "modeled time",
            "speedup",
            "paper time",
            "paper speedup",
        ],
    );
    for (i, (name, t)) in results.iter().enumerate() {
        let speedup = t_seq.as_secs_f64() / t.as_secs_f64();
        let (pname, pt, ps) = PAPER[i];
        assert_eq!(*name, pname);
        report.row(vec![
            name.to_string(),
            secs(*t),
            format!("{speedup:.1}x"),
            format!("{pt}s"),
            format!("{ps}x"),
        ]);
    }
    report.row(vec![
        "OpenCL batch 32 (vs CUDA)".into(),
        secs(t_ocl_batch),
        format!("{:.1}x", t_seq.as_secs_f64() / t_ocl_batch.as_secs_f64()),
        "9.1s".into(),
        "44x".into(),
    ]);
    report.emit("fig1");

    // A real instrumented run of the fastest rung's pipeline shape — SPar
    // whose replicated stage drives both GPUs through the unified Offload
    // surface — recorded stage-by-stage and merged with the device traces.
    let rec = Recorder::enabled();
    let live = live_observability("fig1", &rec);
    let sampler = rec.sample_windows(std::time::Duration::from_millis(1));
    let watchdog = rec.watchdog(std::time::Duration::from_millis(10), 5);
    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let fault_seed: u64 = arg("--inject-faults", 0u64);
    // The armed run is serial on one device so the injected fault budget
    // lands on consecutive attempts of the same batch: the recovery
    // ladder deterministically walks retry → OOM halving → retry
    // exhaustion → CPU fallback, whatever the seed (same idiom as fig4).
    let (tworkers, tgpus) = if fault_seed != 0 {
        println!("\n[fault injection armed on the instrumented run: seed {fault_seed}]");
        tsys.inject_faults(&gpusim::FaultSpec::demo(fault_seed));
        (1, 1)
    } else {
        (4, 2)
    };
    let timg = mandel::hybrid::run_spar_gpu_rec::<CudaOffload>(
        &tsys,
        &params,
        tworkers,
        batch,
        tgpus,
        rec.clone(),
    );
    assert_eq!(
        timg.digest(),
        seq_img.digest(),
        "instrumented run: image differs from sequential render"
    );
    sampler.stop();
    // Stalls (if any) are printed by emit_telemetry; a healthy run has none.
    let _ = watchdog.stop();
    let trep = rec.report();
    emit_telemetry("fig1", &trep);
    if fault_seed != 0 {
        assert!(
            trep.retry_count() >= 1,
            "fault injection armed but no retry was recorded"
        );
        assert!(
            trep.fallback_count() >= 1,
            "fault injection armed but no CPU fallback was recorded"
        );
        println!(
            "fault injection: image bit-identical to the fault-free render \
             ({} retries, {} cpu fallbacks)",
            trep.retry_count(),
            trep.fallback_count()
        );
    }
    println!("{}", rec.health().describe());
    live.finish();

    if tiny {
        println!("\n(tiny smoke run: figure-scale shape checks skipped)");
        return;
    }

    println!("\nShape checks (the paper's qualitative claims):");
    let mut checks = ShapeChecks::new();
    checks.check("2D grid is slower than naive 1D", t_2d > t_1d);
    checks.check("naive 1D is far below the CPU version", t_1d > t_cpu20);
    checks.check("batching beats the CPU version", t_batch < t_cpu20);
    checks.check(
        "batching gives an order of magnitude over naive",
        t_1d.as_secs_f64() / t_batch.as_secs_f64() > 8.0,
    );
    checks.check("2x memory overlap improves on plain batch", t_2x < t_batch);
    checks.check(
        "4x memory at least matches 2x (the paper's +10% appears at paper scale)",
        t_4x.as_secs_f64() <= t_2x.as_secs_f64() * 1.03,
    );
    checks.check("two GPUs improve on one", t_2gpu < t_4x);
    checks.check(
        "2 GPUs with 2x memory each is the fastest rung",
        t_2gpu2x <= t_2gpu,
    );
    let ratio = t_ocl_batch.as_secs_f64() / t_batch.as_secs_f64();
    checks.check(
        "OpenCL and CUDA are within 15%",
        (0.85..1.15).contains(&ratio),
    );
    let cuda_ocl_2gpu = t_ocl_over.as_secs_f64() / t_2gpu2x.as_secs_f64();
    checks.check(
        "OpenCL multi-GPU matches CUDA multi-GPU",
        (0.85..1.15).contains(&cuda_ocl_2gpu),
    );
    if arg("--paper-model", 0u32) == 1 {
        let sample: usize = arg("--paper-sample", 200);
        println!("\ncharacterizing at paper depth (sample {sample}x{sample} @ 200k iters)...");
        let rungs = perfmodel::paper::predict_fig1(sample, &cpu, &DeviceProps::titan_xp());
        let mut pr = Report::new(
            "Fig. 1 at PAPER scale — model prediction vs measurement",
            vec!["configuration", "predicted", "paper measured"],
        );
        for ((name, t), (pname, pt, _)) in rungs.iter().zip(PAPER) {
            assert_eq!(name, pname);
            pr.row(vec![name.to_string(), secs(*t), format!("{pt}s")]);
        }
        pr.emit("fig1_paper_scale");
    }

    checks.finish();
}
