//! Hash search — the third GPU application, driven end-to-end through
//! the Workload SDK: a SHA-1 nonce sweep whose header is hashed once on
//! the CPU (midstate), fanned over the simulated devices one thread per
//! nonce, scored by leading-zero bits, and reduced to a deterministic
//! top-k by the ordered sink.
//!
//! Every CUDA/OpenCL × 1/2-GPU combination must produce bit-identical
//! rankings to the sequential host reference — the SDK's recovery ladder
//! makes that hold even under injected device faults.
//!
//! Usage: `cargo run --release -p bench --bin hashsearch
//!         [--nonces 262144] [--range 4096] [--top 8] [--workers 4]`
//!
//! Pass `--tiny` for a fast smoke run (reduced scale; shape checks that
//! only hold at figure scale are skipped, telemetry is still emitted).
//! Pass `--inject-faults <seed>` to arm deterministic GPU fault injection
//! on the instrumented run: the ranking must stay bit-exact via retry +
//! CPU fallback, and the recorded fault events are printed and asserted.

use bench::{arg, emit_telemetry, flag, live_observability, Report, ShapeChecks};
use gpusim::{CudaOffload, DeviceProps, GpuSystem, OclOffload};
use hashsearch::{search, search_cpu, SearchConfig};
use telemetry::Recorder;

fn main() {
    let tiny = flag("--tiny");
    let total: u64 = arg("--nonces", if tiny { 2_048 } else { 262_144 });
    let range: usize = arg("--range", if tiny { 256 } else { 4_096 });
    let k: usize = arg("--top", 8);
    let workers: usize = arg("--workers", 4);

    let mut cfg = SearchConfig::new(vec![0xA5u8; 64], total);
    cfg.range = range;
    cfg.k = k;
    println!(
        "Hash search — SHA-1 nonce sweep through the Workload SDK \
         ({total} nonces, ranges of {range}, top-{k}, {workers} workers)"
    );

    let reference = search_cpu(&cfg);

    let mut report = Report::new(
        "hash search — device compute time and agreement per version",
        vec!["version", "gpus", "compute busy", "matches cpu"],
    );
    let mut runs = Vec::new();
    for gpus in [1usize, 2] {
        for api in ["cuda", "opencl"] {
            let sys = GpuSystem::new(2, DeviceProps::titan_xp());
            let rec = Recorder::enabled();
            let got = match api {
                "cuda" => search::<CudaOffload>(&sys, &cfg, workers, gpus, rec.clone()),
                _ => search::<OclOffload>(&sys, &cfg, workers, gpus, rec.clone()),
            };
            let rep = rec.report();
            let busy: u64 = rep
                .gpu
                .iter()
                .filter(|s| s.engine == "compute")
                .map(|s| s.end_ns - s.start_ns)
                .sum();
            let ok = got == reference;
            report.row(vec![
                api.into(),
                gpus.to_string(),
                format!("{:.3} ms", busy as f64 / 1e6),
                if ok { "yes" } else { "NO" }.into(),
            ]);
            runs.push((api, gpus, ok, rep));
        }
    }
    report.emit("hashsearch");

    let mut topk = Report::new(
        "top candidates (identical across every version)",
        vec!["rank", "nonce", "score (leading zero bits)", "digest"],
    );
    for (i, c) in reference.iter().enumerate() {
        topk.row(vec![
            (i + 1).to_string(),
            c.nonce.to_string(),
            c.score.to_string(),
            c.digest.to_hex(),
        ]);
    }
    topk.emit("hashsearch_topk");

    // An instrumented run for the merged stage/engine timeline — and the
    // fault-injection gate when armed. The armed run is serial on one
    // device so the injected fault budget lands on consecutive attempts
    // of the same item: the ladder deterministically walks retry → OOM
    // halving → retry exhaustion → CPU fallback, whatever the seed.
    let fault_seed: u64 = arg("--inject-faults", 0u64);
    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let (tworkers, tgpus) = if fault_seed != 0 {
        println!("\n[fault injection armed on the instrumented run: seed {fault_seed}]");
        tsys.inject_faults(&gpusim::FaultSpec::demo(fault_seed));
        (1, 1)
    } else {
        (workers, 2)
    };
    let trec = Recorder::enabled();
    let live = live_observability("hashsearch", &trec);
    let tgot = search::<CudaOffload>(&tsys, &cfg, tworkers, tgpus, trec.clone());
    assert_eq!(
        tgot, reference,
        "instrumented run: ranking differs from the host reference"
    );
    let trep = trec.report();
    emit_telemetry("hashsearch", &trep);
    // Pool-registration parity with the figure binaries: the digest
    // recycle pool must surface in the report (and hence in /metrics).
    assert!(
        trep.pools.iter().any(|p| p.name == "hashsearch.digests"),
        "hashsearch.digests pool missing from the telemetry report"
    );
    if fault_seed != 0 {
        assert!(
            trep.retry_count() >= 1,
            "fault injection armed but no retry was recorded"
        );
        assert!(
            trep.fallback_count() >= 1,
            "fault injection armed but no CPU fallback was recorded"
        );
        println!(
            "fault injection: ranking bit-identical to the host reference \
             ({} retries, {} cpu fallbacks)",
            trep.retry_count(),
            trep.fallback_count()
        );
    }
    println!("{}", trec.health().describe());
    live.finish();

    if tiny {
        println!("\n(tiny smoke run: figure-scale shape checks skipped)");
        return;
    }

    println!("\nShape checks:");
    let mut checks = ShapeChecks::new();
    checks.check(
        "every CUDA/OpenCL × 1/2-GPU ranking matches the host reference",
        runs.iter().all(|(_, _, ok, _)| *ok),
    );
    checks.check(
        "2-GPU runs spread compute over both devices",
        runs.iter()
            .filter(|(_, g, _, _)| *g == 2)
            .all(|(_, _, _, rep)| {
                rep.gpu
                    .iter()
                    .any(|s| s.device == 0 && s.engine == "compute")
                    && rep
                        .gpu
                        .iter()
                        .any(|s| s.device == 1 && s.engine == "compute")
            }),
    );
    checks.check(
        "the nonce-search kernel appears on the device timeline",
        runs[0]
            .3
            .gpu
            .iter()
            .any(|s| s.name.contains("sha1_nonce_search")),
    );
    checks.check(
        "the ranking is full (k candidates survive the reduction)",
        reference.len() == k,
    );
    checks.finish();
}
