//! Hash search — the third GPU application, driven end-to-end through
//! the Workload SDK: a SHA-1 nonce sweep whose header is hashed once on
//! the CPU (midstate), fanned over the simulated devices one thread per
//! nonce, scored by leading-zero bits, and reduced to a deterministic
//! top-k by the ordered sink.
//!
//! Every CUDA/OpenCL × 1/2-GPU combination must produce bit-identical
//! rankings to the sequential host reference — the SDK's recovery ladder
//! makes that hold even under injected device faults.
//!
//! Usage: `cargo run --release -p bench --bin hashsearch
//!         [--nonces 262144] [--range 4096] [--top 8] [--workers 4]`
//!
//! Pass `--tiny` for a fast smoke run (reduced scale; shape checks that
//! only hold at figure scale are skipped, telemetry is still emitted).
//! Pass `--inject-faults <seed>` to arm deterministic GPU fault injection
//! on the instrumented run: the ranking must stay bit-exact via retry +
//! CPU fallback, and the recorded fault events are printed and asserted.
//! Pass `--devices N` (N >= 2) to also place the sweep over an N-device
//! mixed fleet (odd indices derated to half speed) with the cost-model
//! task-graph scheduler: nonce ranges are keyed into persistent lanes so
//! device residency matters, the ranking must stay bit-identical under
//! any placement, and at figure scale the cost-model makespan proxy
//! (max device busy) must beat static round-robin.

use std::sync::Arc;

use bench::{arg, emit_telemetry, flag, live_observability, Report, ShapeChecks};
use dedup::sha1::Digest;
use gpusim::{CudaOffload, DeviceProps, GpuSystem, OclOffload};
use hashsearch::{
    score, search, search_cpu, Candidate, SearchConfig, SearchWork, TopK, DIGEST_BYTES,
};
use simtime::SimDuration;
use taskgraph::{CostModelScheduler, SchedConfig};
use telemetry::Recorder;
use workload::{Placement, RoundRobinPlacement, WorkloadDriver};

/// Lanes the placement demo keys ranges into: few enough that every lane
/// recurs many times (residency has something to exploit), more than the
/// device count so no device can own the whole stream.
const PLACEMENT_LANES: u64 = 8;

fn main() {
    let tiny = flag("--tiny");
    let total: u64 = arg("--nonces", if tiny { 2_048 } else { 262_144 });
    let range: usize = arg("--range", if tiny { 256 } else { 4_096 });
    let k: usize = arg("--top", 8);
    let workers: usize = arg("--workers", 4);

    let mut cfg = SearchConfig::new(vec![0xA5u8; 64], total);
    cfg.range = range;
    cfg.k = k;
    println!(
        "Hash search — SHA-1 nonce sweep through the Workload SDK \
         ({total} nonces, ranges of {range}, top-{k}, {workers} workers)"
    );

    let reference = search_cpu(&cfg);

    let mut report = Report::new(
        "hash search — device compute time and agreement per version",
        vec!["version", "gpus", "compute busy", "matches cpu"],
    );
    let mut runs = Vec::new();
    for gpus in [1usize, 2] {
        for api in ["cuda", "opencl"] {
            let sys = GpuSystem::new(2, DeviceProps::titan_xp());
            let rec = Recorder::enabled();
            let got = match api {
                "cuda" => search::<CudaOffload>(&sys, &cfg, workers, gpus, rec.clone()),
                _ => search::<OclOffload>(&sys, &cfg, workers, gpus, rec.clone()),
            };
            let rep = rec.report();
            let busy: u64 = rep
                .gpu
                .iter()
                .filter(|s| s.engine == "compute")
                .map(|s| s.end_ns - s.start_ns)
                .sum();
            let ok = got == reference;
            report.row(vec![
                api.into(),
                gpus.to_string(),
                format!("{:.3} ms", busy as f64 / 1e6),
                if ok { "yes" } else { "NO" }.into(),
            ]);
            runs.push((api, gpus, ok, rep));
        }
    }
    report.emit("hashsearch");

    let mut topk = Report::new(
        "top candidates (identical across every version)",
        vec!["rank", "nonce", "score (leading zero bits)", "digest"],
    );
    for (i, c) in reference.iter().enumerate() {
        topk.row(vec![
            (i + 1).to_string(),
            c.nonce.to_string(),
            c.score.to_string(),
            c.digest.to_hex(),
        ]);
    }
    topk.emit("hashsearch_topk");

    // An instrumented run for the merged stage/engine timeline — and the
    // fault-injection gate when armed. The armed run is serial on one
    // device so the injected fault budget lands on consecutive attempts
    // of the same item: the ladder deterministically walks retry → OOM
    // halving → retry exhaustion → CPU fallback, whatever the seed.
    let fault_seed: u64 = arg("--inject-faults", 0u64);
    let tsys = GpuSystem::new(2, DeviceProps::titan_xp());
    let (tworkers, tgpus) = if fault_seed != 0 {
        println!("\n[fault injection armed on the instrumented run: seed {fault_seed}]");
        tsys.inject_faults(&gpusim::FaultSpec::demo(fault_seed));
        (1, 1)
    } else {
        (workers, 2)
    };
    let trec = Recorder::enabled();
    let live = live_observability("hashsearch", &trec);
    let tgot = search::<CudaOffload>(&tsys, &cfg, tworkers, tgpus, trec.clone());
    assert_eq!(
        tgot, reference,
        "instrumented run: ranking differs from the host reference"
    );
    let trep = trec.report();
    emit_telemetry("hashsearch", &trep);
    // Pool-registration parity with the figure binaries: the digest
    // recycle pool must surface in the report (and hence in /metrics).
    assert!(
        trep.pools.iter().any(|p| p.name == "hashsearch.digests"),
        "hashsearch.digests pool missing from the telemetry report"
    );
    if fault_seed != 0 {
        assert!(
            trep.retry_count() >= 1,
            "fault injection armed but no retry was recorded"
        );
        assert!(
            trep.fallback_count() >= 1,
            "fault injection armed but no CPU fallback was recorded"
        );
        println!(
            "fault injection: ranking bit-identical to the host reference \
             ({} retries, {} cpu fallbacks)",
            trep.retry_count(),
            trep.fallback_count()
        );
    }
    println!("{}", trec.health().describe());
    live.finish();

    let n_dev: usize = arg("--devices", 0usize);
    if n_dev >= 2 {
        placed_fleet_demo(&cfg, &reference, n_dev, tiny);
    }

    if tiny {
        println!("\n(tiny smoke run: figure-scale shape checks skipped)");
        return;
    }

    println!("\nShape checks:");
    let mut checks = ShapeChecks::new();
    checks.check(
        "every CUDA/OpenCL × 1/2-GPU ranking matches the host reference",
        runs.iter().all(|(_, _, ok, _)| *ok),
    );
    checks.check(
        "2-GPU runs spread compute over both devices",
        runs.iter()
            .filter(|(_, g, _, _)| *g == 2)
            .all(|(_, _, _, rep)| {
                rep.gpu
                    .iter()
                    .any(|s| s.device == 0 && s.engine == "compute")
                    && rep
                        .gpu
                        .iter()
                        .any(|s| s.device == 1 && s.engine == "compute")
            }),
    );
    checks.check(
        "the nonce-search kernel appears on the device timeline",
        runs[0]
            .3
            .gpu
            .iter()
            .any(|s| s.name.contains("sha1_nonce_search")),
    );
    checks.check(
        "the ranking is full (k candidates survive the reduction)",
        reference.len() == k,
    );
    checks.finish();
}

/// Cost-model placement vs static round-robin over an N-device mixed
/// fleet (odd indices derated to half clock and half PCIe bandwidth).
/// Ranges are keyed into [`PLACEMENT_LANES`] recurring lanes so the
/// scheduler's residency tracking has persistent keys to keep warm; both
/// placements must reproduce the host reference ranking bit-for-bit.
fn placed_fleet_demo(cfg: &SearchConfig, reference: &[Candidate], n_dev: usize, tiny: bool) {
    let rec = Recorder::enabled();
    let mixed = || -> Arc<GpuSystem> {
        GpuSystem::new_mixed(
            (0..n_dev)
                .map(|d| {
                    if d % 2 == 1 {
                        DeviceProps::titan_xp().derated("titan-xp-half", 0.5)
                    } else {
                        DeviceProps::titan_xp()
                    }
                })
                .collect(),
        )
    };
    let ranges = cfg.ranges();
    let n_items = ranges.len();

    let run = |placer: Arc<dyn Placement>, sys: &Arc<GpuSystem>| -> u64 {
        let work = SearchWork::<CudaOffload>::new(sys, cfg, n_dev, n_dev);
        let recycle = work.recycler().clone();
        let driver = WorkloadDriver::new(work).with_recorder(rec.clone());
        let mut top = TopK::new(cfg.k);
        driver.run_placed(
            placer,
            n_dev,
            |r| r.index as u64 % PLACEMENT_LANES,
            ranges.clone(),
            |done| {
                for i in 0..done.item.count {
                    let mut raw = [0u8; DIGEST_BYTES];
                    raw.copy_from_slice(&done.batch[i * DIGEST_BYTES..(i + 1) * DIGEST_BYTES]);
                    let digest = Digest(raw);
                    top.offer(Candidate {
                        nonce: done.item.start + i as u64,
                        score: score(&digest),
                        digest,
                    });
                }
                recycle.give(done.batch);
            },
        );
        assert_eq!(
            top.into_sorted(),
            reference,
            "placed sweep: ranking differs from the host reference"
        );
        (0..n_dev)
            .map(|d| sys.device(d).stats().total_busy().as_nanos())
            .max()
            .unwrap_or(0)
    };

    let sys_cm = mixed();
    // Nonce ranges are cheap (~tens of µs modeled) — the default 20 µs
    // migration penalty would exceed the fast/slow cost delta per range
    // and greedily pin every lane wherever warm-up dropped it. Size the
    // penalty below that delta so lanes can drain off the slow devices.
    let mut sched_cfg = SchedConfig::for_devices(n_dev);
    sched_cfg.migration_penalty_ns = 2_000;
    let sched = CostModelScheduler::new(&sys_cm, sched_cfg, &rec, "hashsearch.graph");
    let cm_busy = run(Arc::clone(&sched) as Arc<dyn Placement>, &sys_cm);
    let snap = sched.counters().snapshot();

    let sys_rr = mixed();
    let rr_busy = run(RoundRobinPlacement::new(n_dev), &sys_rr);

    println!(
        "\nplacement on N={n_dev} mixed fleet ({n_items} ranges, {PLACEMENT_LANES} key lanes): \
         cost-model max-device-busy {} vs round-robin {} ({} decisions, \
         {} residency hits, {:.0} ns/decision overhead)",
        SimDuration::from_nanos(cm_busy),
        SimDuration::from_nanos(rr_busy),
        snap.decisions,
        snap.residency_hits,
        snap.overhead_per_decision_ns()
    );
    assert_eq!(snap.decisions, n_items as u64, "one decision per range");
    if tiny {
        println!("(tiny smoke run: placement makespan shape check skipped)");
        return;
    }
    assert!(
        cm_busy < rr_busy,
        "cost-model placement must beat round-robin on the mixed fleet: \
         {cm_busy} vs {rr_busy}"
    );
}
