//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Batch-size sweep** — §IV-A derives that ~31 lines are needed to
//!    fill the Titan XP (61,440 resident threads / 2,000-pixel lines) and
//!    picks 32. The sweep shows the saturation knee around that size.
//! 2. **Worker-count sweep** — the CPU pipeline's speedup curve: linear to
//!    10 cores, sub-linear through SMT to 20 threads (the paper's 17×).
//! 3. **Scheduling policy** — round-robin vs on-demand farms under
//!    Mandelbrot's skewed line costs.
//! 4. **TBB live-token sweep** — the knob the paper tunes to 2×/5× workers.
//!
//! Usage: `cargo run --release -p bench --bin ablate [--dim 600] [--niter 2000]`

use bench::{arg, secs, Report};
use gpusim::{DeviceProps, GpuSystem};
use mandel::core::FractalParams;
use mandel::gpu;
use perfmodel::machine::{CpuModel, CpuRuntime};
use perfmodel::mandelmodel::{self, characterize};
use perfmodel::pipe::{Phase, PipeModel};
use simtime::SimDuration;

fn main() {
    let dim: usize = arg("--dim", 600);
    let niter: u32 = arg("--niter", 2_000);
    let params = FractalParams::view(dim, niter);
    println!("Ablation studies ({dim}x{dim}, niter={niter})");

    let workload = characterize(&params);
    let cpu = CpuModel::default();
    let t_seq = mandelmodel::seq_time(&workload, &cpu);

    // 1. Batch-size sweep on one simulated GPU.
    let system = GpuSystem::new(1, DeviceProps::titan_xp());
    let mut r = Report::new(
        "Ablation 1 — GPU batch size (paper derives ~31 lines to saturate)",
        vec!["batch (lines)", "modeled time", "speedup vs seq"],
    );
    let mut knee: Vec<(usize, f64)> = Vec::new();
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let (_, t) = gpu::cuda_batch(&system, &params, batch);
        let s = t_seq.as_secs_f64() / t.as_secs_f64();
        knee.push((batch, s));
        r.row(vec![batch.to_string(), secs(t), format!("{s:.1}x")]);
    }
    r.emit("ablate_batch");
    let s1 = knee
        .iter()
        .find(|(b, _)| *b == 1)
        .expect("batch 1 present")
        .1;
    let s32 = knee
        .iter()
        .find(|(b, _)| *b == 32)
        .expect("batch 32 present")
        .1;
    let s128 = knee
        .iter()
        .find(|(b, _)| *b == 128)
        .expect("batch 128 present")
        .1;
    println!(
        "saturation: batch1 {s1:.1}x -> batch32 {s32:.1}x -> batch128 {s128:.1}x \
         (diminishing returns past the knee: {})",
        if s128 < s32 * 1.5 {
            "yes"
        } else {
            "NO — check the model"
        }
    );

    // 2. Worker-count sweep for the CPU pipeline.
    let mut r = Report::new(
        "Ablation 2 — CPU pipeline workers (linear to 10 cores, SMT beyond)",
        vec!["workers", "modeled time", "speedup"],
    );
    for workers in [1usize, 2, 4, 8, 10, 14, 19] {
        let t = mandelmodel::cpu_pipeline_time(&workload, &cpu, CpuRuntime::Spar, workers);
        r.row(vec![
            workers.to_string(),
            secs(t),
            format!("{:.1}x", t_seq.as_secs_f64() / t.as_secs_f64()),
        ]);
    }
    r.emit("ablate_workers");

    // 3. Scheduling policy under skewed service times (model study):
    //    round-robin suffers when consecutive items differ wildly; an
    //    on-demand (least-loaded) farm approximates ideal load balance.
    //    We model RR by pinning item i to worker i%N (per-worker serial
    //    chains via a dedicated server each), and on-demand as the plain
    //    replicated stage.
    let line_costs: Vec<SimDuration> = (0..dim)
        .map(|row| cpu.mandel_time(workload.line_iters(row)))
        .collect();
    let n = line_costs.len();
    let workers = 8usize;
    let od = {
        let costs = line_costs.clone();
        PipeModel::new(n, |_| SimDuration::ZERO)
            .stage("od", workers, move |i| vec![Phase::Cpu(costs[i])])
            .run()
            .makespan
    };
    let rr = {
        let costs = line_costs.clone();
        let mut m = PipeModel::new(n, |_| SimDuration::ZERO);
        let servers: Vec<usize> = (0..workers).map(|_| m.add_server("w", 1)).collect();
        m.stage("rr", workers, move |i| {
            vec![Phase::Resource {
                server: servers[i % workers],
                dur: costs[i],
            }]
        })
        .run()
        .makespan
    };
    let mut r = Report::new(
        "Ablation 3 — farm scheduling under skewed Mandelbrot lines (8 workers)",
        vec!["policy", "modeled time", "vs on-demand"],
    );
    r.row(vec!["on-demand".into(), secs(od), "1.00".into()]);
    r.row(vec![
        "round-robin".into(),
        secs(rr),
        format!("{:.2}", rr.as_secs_f64() / od.as_secs_f64()),
    ]);
    r.emit("ablate_sched");
    println!(
        "round-robin penalty from divergent line costs: {:.1}%",
        (rr.as_secs_f64() / od.as_secs_f64() - 1.0) * 100.0
    );

    // 4. TBB live-token sweep (hybrid GPU pipeline, 10 workers).
    let props = DeviceProps::titan_xp();
    let mut r = Report::new(
        "Ablation 4 — in-flight item cap (TBB's max_number_of_live_tokens)",
        vec!["tokens", "modeled time", "speedup"],
    );
    for tokens in [1usize, 2, 5, 10, 20, 50, 100] {
        // Reuse the hybrid model with a custom buffer cap by modeling the
        // cap as the pipe buffer size.
        let n_batches = dim.div_ceil(32);
        let services: Vec<(SimDuration, SimDuration)> = (0..n_batches)
            .map(|b| mandelmodel::batch_gpu_service(&workload, &props, b * 32, 32, true))
            .collect();
        // TBB's token cap bounds *total* in-flight items: idle workers
        // beyond the token count can never hold an item, so the effective
        // worker count is min(workers, tokens).
        let mut m = PipeModel::new(n_batches, |_| SimDuration::from_nanos(900)).buffer_cap(tokens);
        let compute = m.add_server("gpu", 1);
        let copy = m.add_server("d2h", 1);
        let workers = 10usize.min(tokens);
        let t = m
            .stage("offload", workers, move |b| {
                let (k, d) = services[b];
                vec![
                    Phase::Resource {
                        server: compute,
                        dur: k,
                    },
                    Phase::Resource {
                        server: copy,
                        dur: d,
                    },
                ]
            })
            .run()
            .makespan;
        r.row(vec![
            tokens.to_string(),
            secs(t),
            format!("{:.1}x", t_seq.as_secs_f64() / t.as_secs_f64()),
        ]);
    }
    r.emit("ablate_tokens");
}
